#!/usr/bin/env python
"""Explore how a matrix's structure maps onto the DASP categories and how
each SpMV method would perform on it (modeled A100 time).

Run:  python examples/matrix_explorer.py [matrix-name]

``matrix-name`` is any Table 2 / highlight matrix ('cant', 'wiki-Talk',
'mc2depi', ...); default is 'dc2'.
"""

import sys

import numpy as np

from repro.analysis import csr_breakdown
from repro.baselines import paper_methods
from repro.bench import markdown_table
from repro.core import DASPMatrix
from repro.matrices import (
    blockiness,
    category_ratios,
    column_locality,
    row_length_stats,
    suite_by_name,
    warp_imbalance,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "dc2"
    entry = suite_by_name(name)
    csr = entry.matrix()
    print(f"matrix '{name}' ({entry.family}): {entry.note}")
    print(f"  paper size {entry.paper_shape} / {entry.paper_nnz:,} nnz; "
          f"scaled stand-in {csr.shape} / {csr.nnz:,} nnz\n")

    # --- structure ----------------------------------------------------
    stats = row_length_stats(csr)
    print(f"row lengths: min={stats.min_len} mean={stats.mean_len:.1f} "
          f"max={stats.max_len} (gini {stats.gini:.2f}, "
          f"{stats.empty_rows} empty rows)")
    print(f"blockiness={blockiness(csr):.2f}  "
          f"column locality={column_locality(csr):.2f}  "
          f"CSR-scalar warp imbalance={warp_imbalance(csr):.1f}x\n")

    c = category_ratios(csr)
    print(markdown_table(
        ("category", "row share", "nnz share"),
        [("long", f"{c.row_long:.1%}", f"{c.nnz_long:.1%}"),
         ("medium", f"{c.row_medium:.1%}", f"{c.nnz_medium:.1%}"),
         ("short", f"{c.row_short:.1%}", f"{c.nnz_short:.1%}"),
         ("empty", f"{c.row_empty:.1%}", "-")]))

    dasp = DASPMatrix.from_csr(csr)
    print(f"\n{dasp.summary()}\n")

    # --- modeled method comparison -------------------------------------
    rows = []
    times = {}
    for method in paper_methods():
        meas = method.measure(csr, "A100", matrix_name=name)
        times[method.name] = meas.time_s
        rows.append((method.name, f"{meas.time_s * 1e6:.1f}",
                     f"{meas.gflops:.1f}"))
    best = min(times, key=times.get)
    print(markdown_table(("method", "modeled A100 us", "GFlops"), rows))
    print(f"\nfastest (model): {best}")
    for base, t in sorted(times.items()):
        if base != "DASP":
            print(f"  DASP speedup vs {base}: {t / times['DASP']:.2f}x")

    # --- CSR breakdown (the Figure 2 lens) -----------------------------
    b = csr_breakdown(csr, "A100", matrix_name=name)
    print(f"\nstandard-CSR time breakdown: random access {b.random_access:.0%}, "
          f"compute {b.compute:.0%}, misc {b.misc:.0%}")

    # --- correctness spot check ----------------------------------------
    rng = np.random.default_rng(0)
    x = rng.standard_normal(csr.shape[1])
    from repro.core import dasp_spmv

    err = np.max(np.abs(dasp_spmv(dasp, x) - csr.matvec(x)))
    print(f"\nDASP vs reference max abs error: {err:.2e}")


if __name__ == "__main__":
    main()
