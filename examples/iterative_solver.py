#!/usr/bin/env python
"""Conjugate-gradient solver driven by DASP SpMV.

SpMV dominates Krylov solvers, which is why the paper argues its
preprocessing cost amortizes "if more SpMV kernel calls are needed in an
iterative solver" (Section 4.4).  This example:

1. builds a symmetric positive-definite FEM-style system,
2. solves it with CG using DASP for every matrix-vector product,
3. compares the modeled A100 cost of the whole solve for DASP vs the
   cuSPARSE-CSR baseline, amortizing each method's preprocessing.

Run:  python examples/iterative_solver.py
"""

import numpy as np

from repro import CSRMatrix, DASPMatrix, dasp_spmv
from repro.baselines import MergeCSRMethod
from repro.core import DASPMethod, dasp_preprocess_events
from repro.gpu import estimate_preprocess_time
from repro.matrices import fem_blocked


def make_spd(m: int, seed: int = 0) -> CSRMatrix:
    """Symmetric positive-definite matrix: A = B + B^T + diag(shift)."""
    b = fem_blocked(m, 24, seed=seed)
    dense = b.to_dense()
    sym = dense + dense.T
    np.fill_diagonal(sym, np.abs(sym).sum(axis=1) + 1.0)
    return CSRMatrix.from_dense(sym)


def cg(dasp: DASPMatrix, b: np.ndarray, *, tol: float = 1e-10,
       max_iter: int = 500):
    """Textbook conjugate gradient; every A@p goes through DASP."""
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rs = r @ r
    history = []
    for it in range(max_iter):
        ap = dasp_spmv(dasp, p)
        alpha = rs / (p @ ap)
        x += alpha * p
        r -= alpha * ap
        rs_new = r @ r
        history.append(np.sqrt(rs_new))
        if np.sqrt(rs_new) < tol * np.linalg.norm(b):
            break
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, history


def main() -> None:
    rng = np.random.default_rng(7)
    A = make_spd(900, seed=3)
    print(f"system: {A.shape[0]}x{A.shape[1]}, nnz={A.nnz}")

    dasp = DASPMatrix.from_csr(A)
    b = rng.standard_normal(A.shape[0])
    x, history = cg(dasp, b)
    residual = np.linalg.norm(A.matvec(x) - b) / np.linalg.norm(b)
    print(f"CG converged in {len(history)} iterations, "
          f"relative residual {residual:.2e}")
    assert residual < 1e-8

    # Amortization argument: preprocessing once, SpMV many times.
    n_spmv = len(history)
    dasp_method = DASPMethod()
    merge = MergeCSRMethod()
    t_dasp_spmv = dasp_method.measure(A, "A100").time_s
    t_merge_spmv = merge.measure(A, "A100").time_s
    t_dasp_pre = estimate_preprocess_time(dasp_preprocess_events(dasp), "A100")
    t_merge_pre = estimate_preprocess_time(
        merge.preprocess_events(merge.prepare(A)), "A100")

    total_dasp = t_dasp_pre + n_spmv * t_dasp_spmv
    total_merge = t_merge_pre + n_spmv * t_merge_spmv
    print(f"modeled A100 solve cost over {n_spmv} SpMVs:")
    print(f"  DASP        : {total_dasp * 1e3:.2f} ms "
          f"(preprocess {t_dasp_pre * 1e6:.0f} us + "
          f"{t_dasp_spmv * 1e6:.1f} us/SpMV)")
    print(f"  cuSPARSE-CSR: {total_merge * 1e3:.2f} ms "
          f"(preprocess {t_merge_pre * 1e6:.0f} us + "
          f"{t_merge_spmv * 1e6:.1f} us/SpMV)")
    print(f"  amortized speedup: {total_merge / total_dasp:.2f}x")


if __name__ == "__main__":
    main()
