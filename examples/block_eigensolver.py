#!/usr/bin/env python
"""Block eigensolver on the DASP SpMM extension.

Subspace (block power) iteration computes the top-k eigenpairs of a
symmetric matrix using one SpMM per iteration.  With k = 8 the DASP
layout drives the MMA units at full utilization (see
benchmarks/test_spmm_extension.py), so the whole solver runs ~3x
cheaper than k separate SpMV-based power iterations.

Run:  python examples/block_eigensolver.py
"""

import numpy as np

from repro import CSRMatrix, DASPMatrix, dasp_spmm
from repro.core import mma_utilization, spmm_events
from repro.gpu import estimate_time
from repro.matrices import fem_blocked


def make_symmetric(m: int, seed: int) -> CSRMatrix:
    """Symmetric positive-definite: shifting by the infinity norm keeps
    the spectrum positive, so block power iteration targets the true
    top-k eigenvalues (no +/- |lambda| ambiguity)."""
    b = fem_blocked(m, 24, seed=seed).to_dense()
    sym = (b + b.T) / 2
    shift = np.abs(sym).sum(axis=1).max() + 1.0
    np.fill_diagonal(sym, sym.diagonal() + shift)
    # plant well-separated dominant eigenvalues so the block iteration
    # converges quickly (FEM spectra are tightly clustered at the top)
    rng = np.random.default_rng(seed + 1)
    spikes = rng.choice(m, size=12, replace=False)
    sym[spikes, spikes] += shift * (1.0 + 0.35 * np.arange(12))
    return CSRMatrix.from_dense(sym)


def subspace_iteration(dasp: DASPMatrix, k: int, *, iters: int = 400,
                       seed: int = 0):
    """Orthogonal (block power) iteration: V <- orth(A V)."""
    rng = np.random.default_rng(seed)
    v = np.linalg.qr(rng.standard_normal((dasp.shape[1], k)))[0]
    for _ in range(iters):
        w = dasp_spmm(dasp, v)          # one SpMM feeds all k vectors
        v, _ = np.linalg.qr(w)
    # Rayleigh-Ritz for the eigenvalue estimates.
    av = dasp_spmm(dasp, v)
    t = v.T @ av
    evals, rot = np.linalg.eigh(t)
    order = np.argsort(-evals)
    return evals[order], v @ rot[:, order]


def main() -> None:
    k = 8
    A = make_symmetric(1200, seed=4)
    dasp = DASPMatrix.from_csr(A)
    print(f"matrix: {A.shape[0]}x{A.shape[1]}, nnz={A.nnz:,}")
    print(f"MMA utilization at k={k}: {mma_utilization(dasp, k):.0%} "
          f"(vs {mma_utilization(dasp, 1):.0%} for plain SpMV)")

    evals, vecs = subspace_iteration(dasp, k)
    exact = np.linalg.eigvalsh(A.to_dense())
    exact_top = exact[::-1][:k]
    print("\n   block iteration    exact (numpy)     rel err")
    worst = 0.0
    for approx, ref in zip(evals, exact_top):
        err = abs(approx - ref) / abs(ref)
        worst = max(worst, err)
        print(f"   {approx:15.6f}  {ref:15.6f}  {err:9.2e}")
    assert worst < 1e-5, "subspace iteration should converge"

    # Residual check: ||A v - lambda v|| per pair.
    res = np.linalg.norm(dasp_spmm(dasp, vecs) - vecs * evals, axis=0)
    print(f"\nmax eigenpair residual: {res.max():.2e}")

    # Modeled cost: one SpMM vs k SpMVs per iteration (A100).
    t_spmm = estimate_time(spmm_events(dasp, "A100", k), "A100").total
    t_spmv = estimate_time(spmm_events(dasp, "A100", 1), "A100").total
    print(f"modeled per-iteration cost: SpMM {t_spmm * 1e6:.1f} us vs "
          f"{k} SpMVs {k * t_spmv * 1e6:.1f} us "
          f"({k * t_spmv / t_spmm:.1f}x saved)")


if __name__ == "__main__":
    main()
