#!/usr/bin/env python
"""FP16 SpMV with tensor-core semantics, and iterative refinement.

The paper's FP16 path stores the matrix in binary16 and lets the MMA
units accumulate in FP32 — halving memory traffic at some accuracy cost.
This example quantifies that cost and shows the classic remedy: mixed-
precision iterative refinement, where the cheap FP16 operator does the
heavy lifting and an FP64 residual correction restores full accuracy.

Run:  python examples/mixed_precision.py
"""

import numpy as np

from repro import CSRMatrix, DASPMatrix, dasp_spmv
from repro.core import DASPMethod
from repro.matrices import fem_blocked
from repro.precision import (
    cast_matrix_fp16,
    relative_l2_error,
    representable_fraction,
)


def main() -> None:
    rng = np.random.default_rng(11)
    A64 = fem_blocked(3000, 40, seed=5)
    x = rng.uniform(-1, 1, A64.shape[1])
    print(f"matrix: {A64.shape[0]}x{A64.shape[1]}, nnz={A64.nnz}")

    # 1. Is the matrix FP16-safe at all?
    frac = representable_fraction(A64.data)
    print(f"values representable in binary16: {frac:.1%}")

    # 2. FP16 SpMV (FP32 accumulate, like mma.sync f16/f32).
    A16 = cast_matrix_fp16(A64)
    dasp16 = DASPMatrix.from_csr(A16)
    y16 = dasp_spmv(dasp16, x.astype(np.float16))
    y64 = A64.matvec(x)
    print(f"FP16 SpMV relative L2 error: {relative_l2_error(y16, y64):.2e}")

    # 3. Modeled speedup of the half-precision operator (A100).
    t64 = DASPMethod().measure(A64, "A100").time_s
    t16 = DASPMethod().measure(A16, "A100").time_s
    print(f"modeled A100 SpMV: FP64 {t64 * 1e6:.1f} us, "
          f"FP16 {t16 * 1e6:.1f} us ({t64 / t16:.2f}x faster)")

    # 4. Iterative refinement: solve (I + c*A) z = b with the FP16
    #    operator inside a Richardson loop and FP64 residuals outside.
    c = 0.5 / max(np.abs(A64.matvec(np.ones(A64.shape[1]))).max(), 1.0)
    b = rng.uniform(-1, 1, A64.shape[0])

    def op64(v):
        return v + c * A64.matvec(v)

    def op16(v):
        return v + c * np.asarray(
            dasp_spmv(dasp16, v.astype(np.float16)), dtype=np.float64)

    z = np.zeros_like(b)
    print("\niterative refinement (FP16 operator, FP64 residual):")
    for it in range(12):
        r = b - op64(z)              # exact residual in FP64
        # one cheap fixed-point sweep with the FP16 operator
        dz = r.copy()
        for _ in range(4):
            dz = r - (op16(dz) - dz)
        z += dz
        rel = np.linalg.norm(r) / np.linalg.norm(b)
        print(f"  iter {it:2d}: residual {rel:.2e}")
        if rel < 1e-12:
            break
    final = np.linalg.norm(b - op64(z)) / np.linalg.norm(b)
    print(f"final FP64 residual: {final:.2e}")
    assert final < 1e-10, "refinement should reach FP64-level accuracy"


if __name__ == "__main__":
    main()
