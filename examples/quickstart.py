#!/usr/bin/env python
"""Quickstart: convert a sparse matrix to the DASP layout and multiply.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CSRMatrix, DASPMatrix, dasp_spmv
from repro.core import DASPMethod


def main() -> None:
    rng = np.random.default_rng(42)

    # Build a sparse matrix any way you like; CSR is the entry format.
    # Here: a 2000x2000 matrix with a mix of row lengths so all three
    # DASP categories (long / medium / short) are exercised.
    m = n = 2000
    lens = np.where(rng.random(m) < 0.02, rng.integers(300, 600, m),
                    rng.integers(0, 30, m))
    rows = np.repeat(np.arange(m), lens)
    cols = rng.integers(0, n, rows.size)
    vals = rng.standard_normal(rows.size)
    from repro.formats import COOMatrix

    A = COOMatrix((m, n), rows, cols, vals).to_csr()
    print(f"input matrix: {A.shape[0]}x{A.shape[1]}, nnz={A.nnz}")

    # 1. Preprocess: CSR -> DASP layout (the paper's Section 3.2).
    dasp = DASPMatrix.from_csr(A)
    print(dasp.summary())

    # 2. SpMV (Section 3.3's kernels, vectorized engine).
    x = rng.standard_normal(n)
    y = dasp_spmv(dasp, x)

    # 3. Verify against the reference CSR product.
    y_ref = A.matvec(x)
    err = np.max(np.abs(y - y_ref)) / np.max(np.abs(y_ref))
    print(f"max relative error vs CSR reference: {err:.2e}")
    assert err < 1e-12

    # 4. Ask the cost model what this SpMV would cost on an A100.
    meas = DASPMethod().measure(A, "A100", matrix_name="quickstart")
    print(f"modeled A100 time: {meas.time_s * 1e6:.1f} us "
          f"({meas.gflops:.1f} GFlops)")
    parts = meas.parts.fractions()
    print("  breakdown: "
          + ", ".join(f"{k}={v:.0%}" for k, v in parts.items()))

    # 5. The lane-accurate engine (Algorithms 2-5 verbatim) agrees:
    small = A.row_slice(np.arange(200))
    dasp_small = DASPMatrix.from_csr(small)
    y_warp = dasp_spmv(dasp_small, x, engine="warp")
    y_vec = dasp_spmv(dasp_small, x)
    assert np.allclose(y_warp, y_vec, rtol=1e-12)
    print("lane-accurate warp engine matches the vectorized engine.")


if __name__ == "__main__":
    main()
