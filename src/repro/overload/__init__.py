"""Overload control and tail tolerance for the serving fabric.

Four mechanisms, layered from the front door inwards:

1. **Admission control** (:mod:`~repro.overload.admission`) — a
   token-bucket at ``submit`` that sheds excess load *before* it costs
   anything, batch-priority traffic first.
2. **Retry budget** (:mod:`~repro.overload.budget`) — a shared token
   pool bounding aggregate retries so a cluster-wide transient fault
   cannot amplify into a retry storm.
3. **Hedged requests** (:mod:`~repro.overload.hedge`) — duplicate the
   occasional slow request to a second replica and take the first
   result, cutting the latency tail a straggler imposes.
4. **Straggler-aware health** — the latency EWMA from the hedge
   tracker doubles as a health signal
   (:class:`~repro.cluster.health.ReplicaSignals`), demoting
   slow-but-alive replicas in the preference walk before they are
   marked down.

How the layers relate (and why all four exist) is written up in
DESIGN.md; the one-line version: admission bounds *offered* load,
backpressure bounds *queued* load, the retry budget bounds *retried*
load, and hedging spends a bounded amount of extra load to buy back
tail latency.  Everything defaults off — a server or driver with no
:class:`OverloadConfig` behaves bit-identically to one built before
this package existed.
"""

from __future__ import annotations

from dataclasses import dataclass

from .admission import (
    PRIORITIES,
    AdmissionConfig,
    AdmissionController,
    AdmissionRejectedError,
    TokenBucket,
)
from .budget import RetryBudget, RetryBudgetConfig
from .hedge import HedgeConfig, HedgePair, LatencyTracker

__all__ = [
    "PRIORITIES",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRejectedError",
    "TokenBucket",
    "RetryBudget",
    "RetryBudgetConfig",
    "HedgeConfig",
    "HedgePair",
    "LatencyTracker",
    "OverloadConfig",
    "OverloadContext",
]


@dataclass(frozen=True)
class OverloadConfig:
    """One knob bundle enabling any subset of the overload features.

    Each field is ``None``/off by default; a sub-config present means
    that mechanism is active.  ``batch_fraction`` only matters to the
    workload drivers — it is the share of generated traffic tagged
    batch-priority (drawn from a dedicated RNG stream so runs with
    overload disabled consume exactly the same random numbers as
    before this package existed).
    """

    admission: AdmissionConfig | None = None
    retry_budget: RetryBudgetConfig | None = None
    hedge: HedgeConfig | None = None
    batch_fraction: float = 0.3

    def __post_init__(self) -> None:
        from .._util import check

        check(0.0 <= self.batch_fraction <= 1.0,
              "batch_fraction must be in [0, 1]")

    @property
    def enabled(self) -> bool:
        return (self.admission is not None
                or self.retry_budget is not None
                or self.hedge is not None)


class OverloadContext:
    """Live overload machinery shared across one server or cluster.

    Binds an :class:`OverloadConfig` to concrete controller instances
    plus the ``overload.hedge.*`` counters, all on one obs handle —
    replicas keep their private registries, so cluster-wide overload
    state must live in exactly one place, and this is it.
    """

    def __init__(self, config: OverloadConfig | None = None, *,
                 obs=None) -> None:
        from ..obs import Obs

        self.config = config if config is not None else OverloadConfig()
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self.admission = (AdmissionController(self.config.admission, obs=obs)
                          if self.config.admission is not None else None)
        self.retry_budget = (RetryBudget(self.config.retry_budget, obs=obs)
                             if self.config.retry_budget is not None else None)
        hedge = self.config.hedge
        self.hedge = hedge
        self.latency = (LatencyTracker(hedge.ewma_alpha)
                        if hedge is not None else None)
        self.hedges_issued = obs.counter("overload.hedge.issued_total")
        self.hedges_won = obs.counter("overload.hedge.won_total")
        self.hedges_wasted = obs.counter("overload.hedge.wasted_total")
