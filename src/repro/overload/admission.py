"""Token-bucket admission control with two priority classes.

The admission controller sits at the very front door of a server or
router — *before* batching, queueing, or planning sees the request —
and answers one question: given the recent arrival rate, should this
request be taken on at all?  Under overload the answer becomes "no"
for **batch** traffic first: the bucket keeps a reserve of tokens that
only **interactive** requests may draw from, so shedding starts with
the work whose latency nobody is waiting on.

Rejection is a *typed, immediate* failure
(:class:`AdmissionRejectedError`), deliberately distinct from
queue-full backpressure (:class:`~repro.serve.scheduler.QueueFullError`):
backpressure means "the system is momentarily behind", admission
rejection means "the system is refusing new load to protect what it
already accepted".  Callers that want to retry the former should back
off a long time before retrying the latter.

Time is always passed in by the caller, so the same controller runs
under the real-threaded server (wall clock) and the virtual-time
drivers (simulated clock) — the convention every clocked component of
this package follows.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .._util import check
from ..resilience.errors import ResilienceError

#: The two admission classes, in shed order (batch is shed first).
PRIORITIES = ("interactive", "batch")


class AdmissionRejectedError(ResilienceError):
    """The admission controller refused the request (overload shed).

    Distinct from queue-full backpressure: the request was never
    queued, batched, or planned — it was turned away at the door.
    """


@dataclass(frozen=True)
class AdmissionConfig:
    """Token-bucket shape of the admission controller.

    Attributes
    ----------
    rate_rps:
        Sustained admission rate (tokens refilled per second).
        ``None`` disables rate limiting entirely — the controller
        admits everything (the inert default, which keeps existing
        behaviour bit-identical).
    burst:
        Bucket capacity: how many requests above the sustained rate a
        short burst may land before shedding starts.
    batch_reserve:
        Fraction of ``burst`` reserved for interactive traffic.  A
        batch-priority request is admitted only while the bucket would
        stay above this floor; interactive requests may drain the
        bucket to zero.  ``0.0`` makes the classes equivalent.
    """

    rate_rps: float | None = None
    burst: float = 32.0
    batch_reserve: float = 0.25

    def __post_init__(self) -> None:
        if self.rate_rps is not None:
            check(self.rate_rps > 0.0, "rate_rps must be > 0")
        check(self.burst >= 1.0, "burst must be >= 1")
        check(0.0 <= self.batch_reserve < 1.0,
              "batch_reserve must be in [0, 1)")


class TokenBucket:
    """A minimal caller-clocked token bucket (not thread-safe itself)."""

    __slots__ = ("rate", "burst", "tokens", "_t")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._t: float | None = None

    def refill(self, now: float) -> None:
        if self._t is None:
            self._t = now
        elif now > self._t:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._t) * self.rate)
            self._t = now

    def try_take(self, now: float, *, floor: float = 0.0) -> bool:
        """Take one token if the bucket stays at or above *floor*."""
        self.refill(now)
        if self.tokens - 1.0 >= floor - 1e-12:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Priority-aware front-door admission (see module docstring).

    ``obs`` backs the ``overload.admission.{admitted,rejected}_total``
    counter families (labelled by priority); defaults to a fresh
    private handle per the per-run-object convention.  Thread-safe:
    the server calls :meth:`admit` from arbitrary submitter threads.
    """

    def __init__(self, config: AdmissionConfig | None = None, *,
                 obs=None) -> None:
        from ..obs import Obs

        self.config = config if config is not None else AdmissionConfig()
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self._bucket = (TokenBucket(self.config.rate_rps, self.config.burst)
                        if self.config.rate_rps is not None else None)
        self._lock = threading.Lock()
        self._admitted = {
            p: obs.counter("overload.admission.admitted_total",
                           {"priority": p}) for p in PRIORITIES}
        self._rejected = {
            p: obs.counter("overload.admission.rejected_total",
                           {"priority": p}) for p in PRIORITIES}

    # ------------------------------------------------------------------
    def try_admit(self, priority: str, now: float) -> bool:
        """Admit or shed one request; counts either way."""
        check(priority in PRIORITIES,
              f"unknown priority {priority!r} (use one of {PRIORITIES})")
        if self._bucket is None:
            self._admitted[priority].inc()
            return True
        floor = (self.config.batch_reserve * self.config.burst
                 if priority == "batch" else 0.0)
        with self._lock:
            ok = self._bucket.try_take(now, floor=floor)
        (self._admitted if ok else self._rejected)[priority].inc()
        return ok

    def admit(self, priority: str, now: float) -> None:
        """:meth:`try_admit` that raises :class:`AdmissionRejectedError`."""
        if not self.try_admit(priority, now):
            raise AdmissionRejectedError(
                f"{priority} request shed by admission control "
                f"(sustained rate {self.config.rate_rps:g} req/s)")

    # ------------------------------------------------------------------
    @property
    def tokens(self) -> float:
        """Current bucket level (burst when rate limiting is off)."""
        if self._bucket is None:
            return self.config.burst
        with self._lock:
            return self._bucket.tokens

    def rejected_total(self) -> int:
        return int(sum(c.value for c in self._rejected.values()))
