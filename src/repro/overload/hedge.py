"""Hedged requests and per-replica latency tracking.

A *hedge* is a second copy of a request issued to a different replica
when the first is taking suspiciously long — the classic
tail-tolerance move: the client pays a little extra work to cut the
latency tail that one slow replica would otherwise impose on every
request hashed to it.  First result wins; the loser is cancelled (or
discarded on completion) and counted as wasted work.

Two cooperating pieces live here:

:class:`LatencyTracker`
    Per-key exponential moving average of observed latencies.  The
    router feeds it per-replica request latencies; the cluster driver
    feeds it modeled completion latencies.  Its EWMA is both the hedge
    trigger ("this replica is slower than its peers") and the new
    ``latency_ewma_s`` health signal that demotes stragglers in the
    preference walk.

:class:`HedgePair`
    The tiny shared-state object linking a primary request to its
    hedge copy: whichever side resolves first wins the pair; the other
    side is told to stand down.  Works for wall-clock futures and for
    virtual-time :class:`~repro.serve.batcher.SpMVRequest` shadows
    alike because it only tracks resolution, not results.

Counters follow the ``overload.hedge.{issued,won,wasted}_total``
family: *issued* counts hedge copies sent, *won* counts pairs where
the hedge (not the primary) produced the first result, *wasted*
counts hedge copies whose work was discarded.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .._util import check


@dataclass(frozen=True)
class HedgeConfig:
    """When to hedge, and how the latency signal is smoothed.

    Attributes
    ----------
    factor:
        Straggler threshold: hedge (or demote) a replica whose latency
        EWMA exceeds ``factor`` times the median of its peers'.
    delay_factor:
        Wall-clock hedge timer, as a multiple of the target replica's
        latency EWMA: the router re-issues after
        ``max(min_delay_s, delay_factor * ewma)`` with no result.
    min_delay_s:
        Floor for the hedge timer so cold EWMAs don't hedge instantly.
    ewma_alpha:
        Smoothing weight of the newest sample in the EWMA.
    """

    factor: float = 3.0
    delay_factor: float = 2.0
    min_delay_s: float = 1e-3
    ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        check(self.factor > 1.0, "factor must be > 1")
        check(self.delay_factor > 0.0, "delay_factor must be > 0")
        check(self.min_delay_s >= 0.0, "min_delay_s must be >= 0")
        check(0.0 < self.ewma_alpha <= 1.0, "ewma_alpha must be in (0, 1]")


class LatencyTracker:
    """Thread-safe per-key latency EWMA (keys are replica ids)."""

    def __init__(self, alpha: float = 0.2) -> None:
        check(0.0 < alpha <= 1.0, "alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self._ewma: dict[object, float] = {}
        self._lock = threading.Lock()

    def observe(self, key, latency_s: float) -> None:
        with self._lock:
            prev = self._ewma.get(key)
            if prev is None:
                self._ewma[key] = float(latency_s)
            else:
                self._ewma[key] = (self.alpha * float(latency_s)
                                   + (1.0 - self.alpha) * prev)

    def ewma(self, key) -> float:
        """Current EWMA for *key*; 0.0 before any observation."""
        with self._lock:
            return self._ewma.get(key, 0.0)

    def forget(self, key) -> None:
        with self._lock:
            self._ewma.pop(key, None)

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._ewma)

    def is_straggler(self, key, *, factor: float) -> bool:
        """True when *key*'s EWMA exceeds ``factor`` x peer median.

        Needs at least two positive peer EWMAs besides cold zeros —
        with fewer there is no population to be an outlier of.
        """
        with self._lock:
            mine = self._ewma.get(key, 0.0)
            peers = sorted(v for k, v in self._ewma.items()
                           if k != key and v > 0.0)
        if mine <= 0.0 or len(peers) < 2:
            return False
        mid = len(peers) // 2
        median = (peers[mid] if len(peers) % 2
                  else 0.5 * (peers[mid - 1] + peers[mid]))
        return mine > factor * median


class HedgePair:
    """First-wins resolution state shared by a primary and its hedge.

    ``resolve(side)`` returns True for exactly one caller — the
    winner; every later call returns False and should discard its
    result.  ``cancelled(side)`` lets a pending copy check whether the
    other side already won so it can skip its work entirely.
    """

    __slots__ = ("_lock", "winner", "primary_rid", "hedge_rid", "_failed",
                 "_fail_counted")

    def __init__(self, primary_rid=None, hedge_rid=None) -> None:
        self._lock = threading.Lock()
        self.winner: str | None = None
        self.primary_rid = primary_rid
        self.hedge_rid = hedge_rid
        self._failed: set[str] = set()
        self._fail_counted = False

    def resolve(self, side: str) -> bool:
        check(side in ("primary", "hedge"), "side must be primary|hedge")
        with self._lock:
            if self.winner is None:
                self.winner = side
                return True
            return False

    def mark_failed(self, side: str) -> bool:
        """Record one copy's terminal failure (expiry, fault).

        Returns True exactly when this failure makes the *logical*
        request fail — both copies are now dead and neither won — so
        the caller counts the outcome (deadline miss, failure) once
        per pair, never twice and never alongside a success.
        """
        check(side in ("primary", "hedge"), "side must be primary|hedge")
        with self._lock:
            if self.winner is not None or self._fail_counted:
                return False
            self._failed.add(side)
            if len(self._failed) == 2:
                self._fail_counted = True
                return True
            return False

    @property
    def resolved(self) -> bool:
        with self._lock:
            return self.winner is not None

    def cancelled(self, side: str) -> bool:
        """True when the *other* side already resolved the pair."""
        with self._lock:
            return self.winner is not None and self.winner != side
