"""Global retry budget: a shared cap on cluster-wide retry volume.

Per-request retry policies are locally sensible and globally
dangerous: if every request is allowed ``max_retries`` attempts, a
cluster-wide transient fault multiplies offered load by up to
``1 + max_retries`` exactly when the system can least afford it.  The
retry *budget* bounds the aggregate: every accepted request deposits a
small fraction of a token (``ratio``), every retry anywhere in the
process spends a whole one.  In steady state retries may consume at
most ``ratio`` of recent traffic; during a retry storm the pool runs
dry and callers skip straight to their degraded path (merge-CSR
fallback) instead of hammering the device again.

The pool is a plain token count, not a sliding window: deposits are
capped at ``cap`` so quiet hours cannot bank an unbounded burst of
retries.  Over any run, ``retries_granted <= initial + ratio *
requests`` — the invariant the overload benchmark gates on.

One budget instance is meant to be *shared*: across all shards of one
server, or across every replica of a cluster.  It is thread-safe and
caller-clocked-free (no clock at all — the bound is volume-based, so
it holds under wall and virtual time alike).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .._util import check


@dataclass(frozen=True)
class RetryBudgetConfig:
    """Shape of the shared retry-token pool.

    Attributes
    ----------
    ratio:
        Tokens deposited per accepted request — the steady-state
        retry fraction (0.2 = retries may be at most 20% of traffic).
    initial:
        Tokens pre-funded at startup, so the first few requests can
        still retry before deposits accumulate.
    cap:
        Maximum pool size; bounds how large a retry burst an idle
        period can bank.
    """

    ratio: float = 0.2
    initial: float = 10.0
    cap: float = 100.0

    def __post_init__(self) -> None:
        check(0.0 <= self.ratio <= 1.0, "ratio must be in [0, 1]")
        check(self.initial >= 0.0, "initial must be >= 0")
        check(self.cap >= self.initial, "cap must be >= initial")


class RetryBudget:
    """Thread-safe shared token pool (see module docstring).

    Counters: ``overload.retry_budget.{granted,denied}_total``; gauge
    ``overload.retry_budget.tokens`` tracks the pool level.
    """

    def __init__(self, config: RetryBudgetConfig | None = None, *,
                 obs=None) -> None:
        from ..obs import Obs

        self.config = config if config is not None else RetryBudgetConfig()
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self._tokens = float(self.config.initial)
        self._lock = threading.Lock()
        self._granted = obs.counter("overload.retry_budget.granted_total")
        self._denied = obs.counter("overload.retry_budget.denied_total")
        self._gauge = obs.gauge("overload.retry_budget.tokens")
        self._gauge.set(self._tokens)

    def on_request(self, n: int = 1) -> None:
        """Deposit tokens for *n* newly accepted requests."""
        check(n >= 0, "n must be >= 0")
        with self._lock:
            self._tokens = min(self.config.cap,
                               self._tokens + self.config.ratio * n)
            self._gauge.set(self._tokens)

    def try_spend(self) -> bool:
        """Spend one token for a retry attempt; deny when dry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self._gauge.set(self._tokens)
                granted = True
            else:
                granted = False
        (self._granted if granted else self._denied).inc()
        return granted

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    @property
    def granted_total(self) -> int:
        return int(self._granted.value)

    @property
    def denied_total(self) -> int:
        return int(self._denied.value)
