"""Error taxonomy of the resilience subsystem.

Every failure the serving layer can surface to a caller gets its own
class here so that tests and clients can distinguish the *reason* a
future failed: the request outlived its deadline, the server was shut
down, the matrix's plan cannot fit the cache, its circuit breaker is
open, or a fault-injection rule fired.

Errors carry a class-level ``transient`` flag: transient failures are
worth retrying (a flaky kernel launch), permanent ones go straight to
the degraded merge-CSR path or to the caller.
"""

from __future__ import annotations

from .._util import ReproError


class ResilienceError(ReproError):
    """Base class for failures raised by :mod:`repro.resilience`."""

    #: Whether a bounded retry is worth attempting.
    transient = False


class DeadlineExceededError(ResilienceError):
    """A request (or a preprocessing pass) outlived its deadline."""


class ServerClosedError(ResilienceError):
    """The server shut down with this request still unserved."""


class PlanTooLargeError(ResilienceError):
    """A single DASP plan exceeds the whole plan-cache byte budget."""


class CircuitOpenError(ResilienceError):
    """The matrix's circuit breaker is open (quarantined fingerprint)."""


class NumericFault(ResilienceError):
    """A kernel produced non-finite output (NaN/Inf detected)."""

    transient = True


class InjectedFault(ResilienceError):
    """Base class for failures raised by the fault injector."""


class PreprocessFault(InjectedFault):
    """Injected failure of the CSR -> DASP preprocessing pass."""


class KernelFault(InjectedFault):
    """Injected failure of an SpMV/SpMM kernel invocation."""

    transient = True
