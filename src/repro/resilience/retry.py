"""Bounded retry with exponential backoff and seeded jitter.

The serving layer retries *transient* batch failures (see
``transient`` on the error classes) a bounded number of times before
degrading to the merge-CSR fallback.  Backoff grows exponentially and
is jittered downward ("full jitter" capped at the nominal delay) so
retries of concurrently-failed batches decorrelate; with a seeded RNG
the schedule is deterministic, which the virtual-time driver relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import check, default_rng


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff shape.

    Attributes
    ----------
    max_retries:
        Retries after the first attempt (0 disables retrying).
    base_delay_s / multiplier / max_delay_s:
        Nominal backoff before retry ``r`` (1-based) is
        ``min(base_delay_s * multiplier**(r - 1), max_delay_s)``.
    jitter:
        Fraction of the nominal delay that is jittered away uniformly
        (0 = deterministic backoff, 1 = full jitter down to zero).
    """

    max_retries: int = 2
    base_delay_s: float = 100e-6
    multiplier: float = 2.0
    max_delay_s: float = 10e-3
    jitter: float = 0.5

    def __post_init__(self) -> None:
        check(self.max_retries >= 0, "max_retries must be >= 0")
        check(self.base_delay_s >= 0.0, "base_delay_s must be >= 0")
        check(self.multiplier >= 1.0, "multiplier must be >= 1")
        check(0.0 <= self.jitter <= 1.0, "jitter must be in [0, 1]")

    def backoff_s(self, retry: int, rng=None) -> float:
        """Backoff (seconds) before 1-based retry number *retry*."""
        check(retry >= 1, "retry is 1-based")
        delay = min(self.base_delay_s * self.multiplier ** (retry - 1),
                    self.max_delay_s)
        if self.jitter and delay > 0.0:
            rng = default_rng(rng)
            delay *= 1.0 - self.jitter * float(rng.random())
        return delay


#: Retrying disabled (used by tests and the no-resilience baseline).
NO_RETRY = RetryPolicy(max_retries=0)
