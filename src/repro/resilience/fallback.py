"""Graceful degradation: the merge-CSR always-works serving path.

When the DASP path is unavailable — preprocessing failed or blew its
deadline, the plan cannot fit the cache, the circuit breaker is open,
or retries were exhausted — the server still answers from the raw CSR
via the merge-path kernel (:class:`repro.baselines.merge_csr.
MergeCSRMethod`).  It needs no DASP plan, only a cheap partition pass,
and its modeled cost is charged honestly: a k-request batch pays **k**
merge-CSR SpMV invocations (the fallback kernel has no SpMM fusion —
degradation costs real throughput, which is the point of reporting it).
"""

from __future__ import annotations

import threading

import numpy as np

from ..baselines.merge_csr import MergeCSRMethod
from ..gpu.cost_model import estimate_preprocess_time, estimate_time
from ..gpu.device import get_device


class FallbackExecutor:
    """Runs and costs degraded batches against cached merge plans.

    Thread-safe; one instance per server/driver.  Merge plans (the
    partition arrays) are cached per fingerprint — they are orders of
    magnitude cheaper than DASP preprocessing and never evicted.
    """

    def __init__(self, device) -> None:
        self.device = get_device(device)
        self.method = MergeCSRMethod()
        self._lock = threading.Lock()
        # fingerprint -> (plan, single-SpMV modeled seconds)
        self._plans: dict[str, tuple[object, float]] = {}
        # fingerprints whose one-time partition cost was already charged
        self._charged: set[str] = set()

    # ------------------------------------------------------------------
    def _plan_for(self, fingerprint: str, csr):
        with self._lock:
            got = self._plans.get(fingerprint)
        if got is not None:
            return got
        plan = self.method.prepare(csr)
        ev = self.method.events(plan, self.device)
        bits = csr.data.dtype.itemsize * 8
        single_s = estimate_time(ev, self.device, dtype_bits=bits).total
        with self._lock:
            self._plans.setdefault(fingerprint, (plan, single_s))
            return self._plans[fingerprint]

    # ------------------------------------------------------------------
    def run(self, fingerprint: str, csr, X: np.ndarray) -> np.ndarray:
        """Compute ``Y = A @ X`` column by column via merge-CSR."""
        plan, _ = self._plan_for(fingerprint, csr)
        cols = [self.method.run(plan, X[:, j]) for j in range(X.shape[1])]
        return np.stack(cols, axis=1)

    def modeled_cost(self, fingerprint: str, csr, k: int) -> tuple[float, float]:
        """``(device seconds, one-time preprocess seconds)`` for a
        k-request degraded batch.  The partition pass is charged only
        the first time a fingerprint degrades."""
        plan, single_s = self._plan_for(fingerprint, csr)
        pre_s = 0.0
        with self._lock:
            if fingerprint not in self._charged:
                self._charged.add(fingerprint)
                pre_s = estimate_preprocess_time(
                    self.method.preprocess_events(plan), self.device)
        return single_s * k, pre_s
