"""Per-key circuit breaker (closed -> open -> half-open -> closed).

One :class:`CircuitBreaker` tracks every registered matrix fingerprint
independently: ``failure_threshold`` *consecutive* failures open the
key's circuit, an open circuit quarantines the fingerprint (the server
answers from the merge-CSR fallback without touching the DASP path),
and after ``recovery_s`` the next request is admitted as a half-open
probe — ``half_open_probes`` consecutive probe successes re-close the
circuit, any probe failure re-opens it.

Time is always passed in by the caller (the codebase-wide convention),
so the same breaker runs under the wall-clocked server and the
virtual-time workload driver.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .._util import check

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds of the per-matrix circuit breaker."""

    failure_threshold: int = 3
    recovery_s: float = 0.05
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        check(self.failure_threshold >= 1, "failure_threshold must be >= 1")
        check(self.recovery_s >= 0.0, "recovery_s must be >= 0")
        check(self.half_open_probes >= 1, "half_open_probes must be >= 1")


class _Entry:
    __slots__ = ("state", "failures", "successes", "opened_at")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0    # consecutive failures while closed
        self.successes = 0   # consecutive probe successes while half-open
        self.opened_at = 0.0


class CircuitBreaker:
    """Thread-safe per-key breaker state machine (see module docstring).

    ``obs`` (a :class:`repro.obs.Obs` handle) backs the ``transitions``
    counter as ``resilience.breaker_transitions_total`` and counts
    per-direction transitions under
    ``resilience.breaker_transition_total{to=...}``; it defaults to a
    fresh private handle, and the server passes its run-wide one so
    ``ServerStats.breaker_transitions`` reads the same instrument.
    """

    def __init__(self, config: BreakerConfig | None = None, *,
                 obs=None) -> None:
        from ..obs import Obs

        self.config = config if config is not None else BreakerConfig()
        self._entries: dict[str, _Entry] = {}
        self._lock = threading.Lock()
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self._transitions = obs.counter("resilience.breaker_transitions_total")

    @property
    def transitions(self) -> int:
        """Total state transitions (closed->open, open->half_open, ...)."""
        return int(self._transitions.value)

    # ------------------------------------------------------------------
    def _entry(self, key: str) -> _Entry:
        e = self._entries.get(key)
        if e is None:
            e = self._entries[key] = _Entry()
        return e

    def _move(self, e: _Entry, state: str) -> None:
        if e.state != state:
            e.state = state
            self._transitions.inc()
            self.obs.counter("resilience.breaker_transition_total",
                             {"to": state}).inc()

    # ------------------------------------------------------------------
    def allow(self, key: str, now: float) -> bool:
        """May work for *key* touch the primary path right now?"""
        with self._lock:
            e = self._entry(key)
            if e.state == OPEN:
                if now - e.opened_at >= self.config.recovery_s:
                    self._move(e, HALF_OPEN)
                    e.successes = 0
                    return True
                return False
            return True

    def record_success(self, key: str, now: float) -> None:
        with self._lock:
            e = self._entry(key)
            if e.state == HALF_OPEN:
                e.successes += 1
                if e.successes >= self.config.half_open_probes:
                    self._move(e, CLOSED)
                    e.failures = 0
            elif e.state == CLOSED:
                e.failures = 0

    def record_failure(self, key: str, now: float) -> None:
        with self._lock:
            e = self._entry(key)
            if e.state == HALF_OPEN:
                self._move(e, OPEN)
                e.opened_at = now
            elif e.state == CLOSED:
                e.failures += 1
                if e.failures >= self.config.failure_threshold:
                    self._move(e, OPEN)
                    e.opened_at = now

    # ------------------------------------------------------------------
    def state(self, key: str) -> str:
        with self._lock:
            e = self._entries.get(key)
            return e.state if e is not None else CLOSED

    def snapshot(self) -> dict[str, str]:
        """fingerprint -> state, for folding into ``ServerStats``."""
        with self._lock:
            return {k: e.state for k, e in self._entries.items()}

    def open_count(self) -> int:
        """Keys whose circuit is currently not closed (open or
        half-open) — the signal replica health monitoring consumes."""
        with self._lock:
            return sum(1 for e in self._entries.values()
                       if e.state != CLOSED)
