"""`repro.resilience` — fault injection, retries, breakers, fallback.

The serving layer's partial-failure story (threaded through
:mod:`repro.serve`):

* :class:`FaultPlan` / :class:`FaultInjector` — deterministic, seeded
  failure rules (preprocess raises, kernel raises, NaN output, extra
  latency, cache-budget pressure) installable into the plan registry,
  the server's batch executor and ``dasp_preprocess``;
* :class:`RetryPolicy` — bounded retry with exponential backoff and
  seeded jitter for transiently-failed batches;
* :class:`CircuitBreaker` / :class:`BreakerConfig` — per-matrix
  closed -> open -> half-open quarantine of poisoned fingerprints;
* :class:`FallbackExecutor` — the merge-CSR degraded path that needs
  no DASP plan and charges its modeled cost honestly;
* the error taxonomy (:class:`DeadlineExceededError`,
  :class:`ServerClosedError`, :class:`PlanTooLargeError`,
  :class:`CircuitOpenError`, the injected-fault classes) with a
  ``transient`` flag driving retry decisions.

This package deliberately does not import :mod:`repro.serve` — the
serving layer depends on it, never the reverse.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerConfig, CircuitBreaker
from .errors import (
    CircuitOpenError,
    DeadlineExceededError,
    InjectedFault,
    KernelFault,
    NumericFault,
    PlanTooLargeError,
    PreprocessFault,
    ResilienceError,
    ServerClosedError,
)
from .fallback import FallbackExecutor
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    KernelDecision,
)
from .retry import NO_RETRY, RetryPolicy

__all__ = [
    "BreakerConfig",
    "CLOSED",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "FAULT_KINDS",
    "FallbackExecutor",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "HALF_OPEN",
    "InjectedFault",
    "KernelDecision",
    "KernelFault",
    "NO_RETRY",
    "NumericFault",
    "OPEN",
    "PlanTooLargeError",
    "PreprocessFault",
    "ResilienceError",
    "RetryPolicy",
    "ServerClosedError",
]
