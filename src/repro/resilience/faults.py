"""Deterministic fault injection for the serving layer.

A :class:`FaultPlan` is a seeded list of :class:`FaultRule` entries; the
:class:`FaultInjector` draws from one RNG stream (under a lock, so the
threaded server stays well-defined and the single-threaded virtual-time
driver stays bit-reproducible) and decides, per preprocessing pass or
kernel invocation, whether to raise, corrupt the output, add latency,
or shrink the effective plan-cache budget.

Rule kinds
----------
``preprocess_error``
    :func:`repro.core.preprocess.dasp_preprocess` raises
    :class:`~repro.resilience.errors.PreprocessFault`.
``kernel_error``
    The kernel invocation raises
    :class:`~repro.resilience.errors.KernelFault` (transient — the
    server retries it with backoff).
``kernel_nan``
    The kernel "succeeds" but its output is poisoned with NaN at a
    seeded position; output validation must catch it.
``latency``
    Extra seconds are charged to the stage named by ``stage``
    (modeled time — neither the server nor the driver sleeps for it).
``cache_pressure``
    The plan registry's effective byte budget is multiplied by
    ``budget_factor`` while the rule fires, forcing evictions or
    :class:`~repro.resilience.errors.PlanTooLargeError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .._util import check, default_rng
from .errors import KernelFault, PreprocessFault

#: Recognized rule kinds (see module docstring).
FAULT_KINDS = (
    "preprocess_error",
    "kernel_error",
    "kernel_nan",
    "latency",
    "cache_pressure",
)


def _fp_matches(rule_fp: str, fingerprint: str | None) -> bool:
    """Pinned-rule matching: exact key, or any shard-scoped key of it
    (``abcd`` matches ``abcd`` and ``abcd#s3`` but not ``abcdef``)."""
    return fingerprint is not None and (
        fingerprint == rule_fp or fingerprint.startswith(rule_fp + "#"))


@dataclass(frozen=True)
class FaultRule:
    """One seeded failure rule.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Firing probability per eligible call in ``[0, 1]``.
    fingerprint:
        Restrict the rule to one matrix (``None`` = every matrix).
        Sharded execution checks faults under ``{fingerprint}#s{i}``
        scoped keys: a rule pinned to the base fingerprint matches
        every shard of that matrix, while a rule pinned to a scoped
        key targets that single shard.
    stage:
        For ``latency`` rules: ``"kernel"`` or ``"preprocess"``.
    latency_s:
        Extra modeled seconds charged when a ``latency`` rule fires.
    budget_factor:
        Effective-budget multiplier while a ``cache_pressure`` rule
        fires (``0.5`` halves the plan-cache budget).
    max_count:
        Stop firing after this many hits (``None`` = unlimited) —
        lets tests inject exactly-one transient failure.
    """

    kind: str
    rate: float = 1.0
    fingerprint: str | None = None
    stage: str = "kernel"
    latency_s: float = 0.0
    budget_factor: float = 1.0
    max_count: int | None = None

    def __post_init__(self) -> None:
        check(self.kind in FAULT_KINDS, f"unknown fault kind {self.kind!r}")
        check(0.0 <= self.rate <= 1.0, "rate must be in [0, 1]")
        check(self.stage in ("kernel", "preprocess"),
              f"unknown fault stage {self.stage!r}")


@dataclass
class FaultPlan:
    """A seeded set of fault rules (the unit chaos configs produce)."""

    rules: list[FaultRule] = field(default_factory=list)
    seed: int = 0

    @classmethod
    def chaos_mix(cls, rate: float, *, seed: int = 0,
                  latency_s: float = 300e-6,
                  kinds=("preprocess_error", "kernel_error",
                         "kernel_nan", "latency")) -> "FaultPlan":
        """Split a total fault *rate* evenly over *kinds*."""
        check(rate >= 0.0, "rate must be >= 0")
        per = rate / max(len(kinds), 1)
        rules = [FaultRule(kind=k, rate=per, latency_s=latency_s)
                 for k in kinds]
        return cls(rules=rules, seed=seed)


@dataclass
class KernelDecision:
    """What the injector decided for one kernel invocation."""

    latency_s: float = 0.0
    corrupt: bool = False


class FaultInjector:
    """Applies a :class:`FaultPlan` deterministically (thread-safe).

    One RNG stream drives every probability draw; per-rule hit counts
    enforce ``max_count`` and feed the :meth:`snapshot` report.
    """

    def __init__(self, plan: FaultPlan, *, obs=None) -> None:
        self.plan = plan
        self._rng = default_rng(plan.seed)
        self._lock = threading.Lock()
        self._hits: dict[int, int] = {}
        self.counts: dict[str, int] = {}
        self._obs = None
        if obs is not None:
            self.bind(obs)

    def bind(self, obs) -> "FaultInjector":
        """Attach a :class:`repro.obs.Obs` handle: every subsequent rule
        firing also increments ``resilience.faults_total{kind=...}`` in
        its registry (the family ``ServerStats.faults_injected`` sums).
        The server/driver bind their run-wide handle at startup; the
        local ``counts`` dict stays authoritative for :meth:`snapshot`.
        """
        self._obs = obs if (obs is not None and obs.enabled) else None
        return self

    # ------------------------------------------------------------------
    def _fire(self, i: int, rule: FaultRule) -> bool:
        # caller holds the lock
        hits = self._hits.get(i, 0)
        if rule.max_count is not None and hits >= rule.max_count:
            return False
        if rule.rate < 1.0 and float(self._rng.random()) >= rule.rate:
            return False
        self._hits[i] = hits + 1
        self.counts[rule.kind] = self.counts.get(rule.kind, 0) + 1
        if self._obs is not None:
            self._obs.counter("resilience.faults_total",
                              {"kind": rule.kind}).inc()
        return True

    def _rules(self, kinds, fingerprint: str | None, stage: str | None = None):
        for i, rule in enumerate(self.plan.rules):
            if rule.kind not in kinds:
                continue
            if rule.fingerprint is not None and not _fp_matches(
                    rule.fingerprint, fingerprint):
                continue
            if stage is not None and rule.kind == "latency" and rule.stage != stage:
                continue
            yield i, rule

    # ------------------------------------------------------------------
    def check_preprocess(self, fingerprint: str | None = None) -> float:
        """Decide the fate of one preprocessing pass.

        Raises :class:`PreprocessFault` if an error rule fires; returns
        the extra modeled latency (seconds) from latency rules.
        """
        latency = 0.0
        with self._lock:
            for _i, rule in self._rules(("preprocess_error", "latency"),
                                        fingerprint, stage="preprocess"):
                if not self._fire(_i, rule):
                    continue
                if rule.kind == "preprocess_error":
                    raise PreprocessFault(
                        f"injected preprocess failure ({fingerprint!r})")
                latency += rule.latency_s
        return latency

    def check_kernel(self, fingerprint: str | None = None) -> KernelDecision:
        """Decide the fate of one kernel invocation.

        Raises :class:`KernelFault` (transient) if an error rule fires;
        returns a :class:`KernelDecision` carrying extra latency and
        whether the output must be poisoned.
        """
        decision = KernelDecision()
        with self._lock:
            for _i, rule in self._rules(("kernel_error", "kernel_nan",
                                         "latency"), fingerprint,
                                        stage="kernel"):
                if not self._fire(_i, rule):
                    continue
                if rule.kind == "kernel_error":
                    raise KernelFault(
                        f"injected kernel failure ({fingerprint!r})")
                if rule.kind == "kernel_nan":
                    decision.corrupt = True
                else:
                    decision.latency_s += rule.latency_s
        return decision

    def corrupt_output(self, Y):
        """Poison one seeded entry of *Y* with NaN (in place)."""
        if Y.size:
            with self._lock:
                flat = int(self._rng.integers(Y.size))
            Y.reshape(-1)[flat] = float("nan")
        return Y

    def effective_budget(self, budget_bytes: int) -> int:
        """Plan-cache budget after any firing ``cache_pressure`` rules."""
        factor = 1.0
        with self._lock:
            for i, rule in self._rules(("cache_pressure",), None):
                if self._fire(i, rule):
                    factor *= rule.budget_factor
        return int(budget_bytes * factor)

    # ------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self.counts)
