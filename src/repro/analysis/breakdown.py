"""Execution-time breakdown of the standard CSR SpMV (paper Figure 2).

The paper instruments a plain CSR kernel and attributes time to RANDOM
ACCESS (gathering x), COMPUTE (the inner products) and MISCELLANEOUS
(row pointer / y traffic and fixed overheads), reporting averages of
25.1% / 21.1% / 53.8% over all 2893 SuiteSparse matrices.  Here the same
three shares fall out of the cost model's :class:`TimeParts`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.csr_scalar import CSRScalarMethod
from ..gpu.cost_model import estimate_time
from ..gpu.device import get_device

#: The averages the paper reports in Section 2.1.
PAPER_AVERAGES = {"random_access": 0.251, "compute": 0.211, "misc": 0.538}


@dataclass(frozen=True)
class BreakdownRow:
    """One matrix's breakdown shares."""

    matrix: str
    nnz: int
    random_access: float
    compute: float
    misc: float


def csr_breakdown(csr, device, *, matrix_name: str = "?") -> BreakdownRow:
    """Figure 2 shares for one matrix under the standard CSR kernel."""
    device = get_device(device)
    method = CSRScalarMethod()
    ev = method.events(method.prepare(csr), device)
    dtype_bits = np.dtype(csr.data.dtype).itemsize * 8
    parts = estimate_time(ev, device, dtype_bits=dtype_bits).fractions()
    return BreakdownRow(matrix_name, csr.nnz, parts["random_access"],
                        parts["compute"], parts["misc"])


def breakdown_averages(rows: list[BreakdownRow]) -> dict[str, float]:
    """Collection-wide average shares (the paper's headline numbers)."""
    if not rows:
        return {"random_access": 0.0, "compute": 0.0, "misc": 0.0}
    return {
        "random_access": float(np.mean([r.random_access for r in rows])),
        "compute": float(np.mean([r.compute for r in rows])),
        "misc": float(np.mean([r.misc for r in rows])),
    }
