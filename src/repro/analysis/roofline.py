"""Simple roofline helper: where does SpMV sit on a device's roofline?

Not a paper figure, but a useful sanity tool: SpMV's arithmetic
intensity (~2 flops per 12-20 bytes) pins it deep in the memory-bound
region, which is why the paper frames Figure 1 in bandwidth terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import get_device


@dataclass(frozen=True)
class RooflinePoint:
    """Achievable performance for a kernel of the given intensity."""

    intensity: float       # flops per DRAM byte
    attainable_gflops: float
    bound: str             # "memory" or "compute"


def roofline(device, intensity: float, *, dtype_bits: int = 64,
             use_tensor: bool = False) -> RooflinePoint:
    """Attainable GFlops for an arithmetic intensity on *device*."""
    device = get_device(device)
    peak = (device.tensor_flops(dtype_bits) if use_tensor
            else device.cuda_flops(dtype_bits)) / 1e9
    mem = device.measured_bw / 1e9 * intensity
    if mem < peak:
        return RooflinePoint(intensity, mem, "memory")
    return RooflinePoint(intensity, peak, "compute")


def spmv_intensity(csr, *, cached_x: bool = True) -> float:
    """Arithmetic intensity of CSR SpMV on a matrix (flops per byte).

    With ``cached_x`` the x vector is charged once (perfect reuse);
    without, every gather goes to DRAM — the two ends of Figure 1's
    achievable range.
    """
    vb = csr.data.dtype.itemsize
    m, n = csr.shape
    flops = 2.0 * csr.nnz
    bytes_moved = csr.nnz * (vb + 4) + (m + 1) * 8 + m * vb
    bytes_moved += n * vb if cached_x else csr.nnz * vb
    return flops / bytes_moved
