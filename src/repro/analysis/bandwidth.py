"""Bandwidth-throughput analysis (paper Figure 1).

Figure 1 plots, for the largest SuiteSparse matrices, the effective
bandwidth (useful CSR bytes / SpMV time) of CSR5, cuSPARSE and DASP
against the theoretical (1555 GB/s) and measured-Triad peaks of the
A100.  The paper's point: baselines sit well below Triad peak because
COMPUTE/bookkeeping time is exposed; DASP closes most of the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.cost_model import effective_bandwidth_gbs
from ..gpu.device import get_device


@dataclass(frozen=True)
class BandwidthPoint:
    """One (matrix, method) point of the Figure 1 scatter."""

    matrix: str
    method: str
    nnz: int
    gbs: float


def bandwidth_points(times: dict[str, dict[str, float]], matrices: dict,
                     *, methods=("CSR5", "cuSPARSE-CSR", "DASP")) -> list[BandwidthPoint]:
    """Build Figure 1's scatter points.

    ``times`` maps method -> {matrix name -> seconds}; ``matrices`` maps
    matrix name -> CSR matrix.
    """
    points = []
    for method in methods:
        per_matrix = times.get(method, {})
        for name, secs in per_matrix.items():
            csr = matrices[name]
            points.append(BandwidthPoint(
                matrix=name, method=method, nnz=csr.nnz,
                gbs=effective_bandwidth_gbs(csr, secs)))
    return points


def peak_lines(device) -> dict[str, float]:
    """The two dashed reference lines of Figure 1 (GB/s)."""
    device = get_device(device)
    return {
        "theoretical": device.mem_bw_gbs,
        "triad": device.mem_bw_gbs * device.triad_efficiency,
    }
