"""Rule-based SpMV method advisor.

The paper's related-work section surveys machine-learned format
selection (SMAT, WISE, AlphaSparse, ...).  This module implements the
transparent rule-based end of that spectrum: predict a good method from
cheap structural statistics, without running anything.  The benchmark
``benchmarks/test_advisor.py`` scores the advisor against exhaustive
cost-model sweeps.

The rules mirror the intuitions the paper itself uses in Section 4.3:

* strongly blocked + medium rows  -> BSR is competitive, DASP safe;
* extreme skew / scattered        -> balanced methods (DASP, merge CSR);
* everything FP16                 -> only DASP / cuSPARSE-CSR exist;
* tiny matrices                   -> fewest-launch method wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..matrices.stats import blockiness, category_ratios, row_length_stats


@dataclass(frozen=True)
class Recommendation:
    """Advisor output: a ranked method list plus the features used."""

    ranking: tuple[str, ...]
    features: dict

    @property
    def best(self) -> str:
        return self.ranking[0]


def matrix_features(csr) -> dict:
    """Cheap structural features driving the recommendation."""
    stats = row_length_stats(csr)
    cats = category_ratios(csr)
    return {
        "nnz": stats.nnz,
        "rows": stats.rows,
        "mean_len": stats.mean_len,
        "gini": stats.gini,
        # 4x4 tiles at 50% occupancy: catches FEM-style 3x3 dof blocks
        # regardless of alignment with the 8x4 MMA grid
        "blockiness": blockiness(csr, block_rows=4, block_cols=4,
                                 threshold=0.5),
        "row_short": cats.row_short,
        "row_medium": cats.row_medium,
        "nnz_long": cats.nnz_long,
    }


def recommend(csr, *, dtype=None) -> Recommendation:
    """Rank the six methods for a matrix by structural rules."""
    dtype = np.dtype(dtype or csr.data.dtype)
    f = matrix_features(csr)

    if dtype == np.float16:
        # Table 1: only two methods support half precision.
        return Recommendation(("DASP", "cuSPARSE-CSR"), f)

    scores = {
        "DASP": 1.0,          # the generalist: start ahead
        "CSR5": 0.6,
        "cuSPARSE-CSR": 0.6,
        "cuSPARSE-BSR": 0.0,
        "TileSpMV": 0.1,
        "LSRB-CSR": -0.5,
    }
    # Blocked FEM-style structure rewards block formats.
    if f["blockiness"] > 0.5 and f["row_medium"] > 0.8:
        scores["cuSPARSE-BSR"] += 0.9
        scores["TileSpMV"] += 0.5
    elif f["blockiness"] < 0.1:
        scores["cuSPARSE-BSR"] -= 1.0
        scores["TileSpMV"] -= 0.4
    # Skew punishes anything without explicit balancing.
    if f["gini"] > 0.6 or f["nnz_long"] > 0.2:
        scores["cuSPARSE-BSR"] -= 0.3
        scores["TileSpMV"] -= 0.3
        scores["DASP"] += 0.2      # the long-rows category absorbs skew
    # Short-row-dominated matrices: DASP's piecing is the point.
    if f["row_short"] > 0.8:
        scores["DASP"] += 0.3
        scores["CSR5"] -= 0.1
    # Tiny problems: launch overhead dominates; merge CSR launches least.
    if f["nnz"] < 5_000:
        scores["cuSPARSE-CSR"] += 0.4
        scores["CSR5"] -= 0.1
    ranking = tuple(sorted(scores, key=scores.get, reverse=True))
    return Recommendation(ranking, f)


def advisor_accuracy(results, *, top_k: int = 2) -> float:
    """Score the advisor against a finished sweep.

    ``results`` is a :class:`~repro.bench.runner.ComparisonResult` with
    ``keep_matrices=True``.  Returns the fraction of matrices whose
    model-fastest method appears in the advisor's top ``k``.
    """
    hits = 0
    total = 0
    for name, csr in results.matrices.items():
        best = min(results.times, key=lambda m: results.times[m][name])
        rec = recommend(csr)
        total += 1
        if best in rec.ranking[:top_k]:
            hits += 1
    return hits / total if total else float("nan")
