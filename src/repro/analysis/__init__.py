"""Analysis utilities: breakdown (Fig 2), bandwidth (Fig 1), metrics,
roofline, and cross-method numerical accuracy."""

from .accuracy import (
    AccuracyRow,
    compare_method_accuracy,
    exact_spmv,
    summation_error_bound,
)
from .advisor import Recommendation, advisor_accuracy, matrix_features, recommend
from .bandwidth import BandwidthPoint, bandwidth_points, peak_lines
from .breakdown import (
    PAPER_AVERAGES,
    BreakdownRow,
    breakdown_averages,
    csr_breakdown,
)
from .metrics import SpeedupSummary, gflops_table, speedup_summary
from .roofline import RooflinePoint, roofline, spmv_intensity

__all__ = [
    "AccuracyRow",
    "BandwidthPoint",
    "BreakdownRow",
    "PAPER_AVERAGES",
    "Recommendation",
    "RooflinePoint",
    "SpeedupSummary",
    "advisor_accuracy",
    "bandwidth_points",
    "breakdown_averages",
    "compare_method_accuracy",
    "csr_breakdown",
    "exact_spmv",
    "gflops_table",
    "matrix_features",
    "peak_lines",
    "recommend",
    "roofline",
    "speedup_summary",
    "spmv_intensity",
    "summation_error_bound",
]
