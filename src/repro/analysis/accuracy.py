"""Cross-method numerical-accuracy analysis.

Different SpMV methods sum each row's products in different orders (CSR
sequentially, CSR5 per tile, DASP per MMA block then across blocks), so
their floating-point results differ at the rounding level.  This module
quantifies those differences against a high-precision reference — useful
both as a correctness diagnostic and to document that DASP's blocked
summation is no less accurate than sequential CSR (pairwise-style block
sums typically carry *smaller* error constants).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.registry import paper_methods
from ..precision import relative_l2_error


@dataclass(frozen=True)
class AccuracyRow:
    """Error of one method against the extended-precision reference."""

    method: str
    rel_l2: float
    max_abs: float


def exact_spmv(csr, x: np.ndarray) -> np.ndarray:
    """Reference product in extended precision (float128 where available,
    else Kahan-compensated float64)."""
    longdouble = np.longdouble
    vals = csr.data.astype(longdouble)
    xs = np.asarray(x, dtype=np.float64).astype(longdouble)
    products = vals * xs[csr.indices.astype(np.int64)]
    y = np.zeros(csr.shape[0], dtype=longdouble)
    lens = csr.row_lengths()
    rows = np.repeat(np.arange(csr.shape[0], dtype=np.int64), lens)
    np.add.at(y, rows, products)
    return y.astype(np.float64)


def compare_method_accuracy(csr, x: np.ndarray, *, methods=None) -> list[AccuracyRow]:
    """Run every (dtype-compatible) method and report rounding error."""
    reference = exact_spmv(csr, x)
    rows = []
    for method in (methods or paper_methods()):
        if not method.supports(csr.data.dtype):
            continue
        y = np.asarray(method.run(method.prepare(csr), x), dtype=np.float64)
        rows.append(AccuracyRow(
            method=method.name,
            rel_l2=relative_l2_error(y, reference),
            max_abs=float(np.max(np.abs(y - reference))) if y.size else 0.0,
        ))
    return rows


def summation_error_bound(row_length: int, *, eps: float = 2 ** -53) -> float:
    """First-order worst-case relative error of sequentially summing
    ``row_length`` products: ``(n + 1) * eps`` (Higham).  Blockwise sums
    replace ``n`` with roughly ``n / b + b`` for block size ``b``."""
    return (row_length + 1) * eps
