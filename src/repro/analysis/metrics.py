"""Speedup / win-count / geomean metrics used throughout the evaluation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import geomean


@dataclass(frozen=True)
class SpeedupSummary:
    """DASP-vs-baseline summary over a matrix set (Section 4.2's numbers).

    ``geomean``/``maximum`` are speedups of the reference method over the
    baseline; ``wins`` counts matrices where the reference is faster;
    ``total`` is the number of matrices compared.
    """

    baseline: str
    geomean: float
    maximum: float
    minimum: float
    wins: int
    total: int

    @property
    def win_rate(self) -> float:
        return self.wins / self.total if self.total else float("nan")

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"vs {self.baseline}: geomean {self.geomean:.2f}x "
                f"(max {self.maximum:.2f}x), faster on {self.wins}/{self.total}")


def speedup_summary(reference_times: dict, baseline_times: dict,
                    baseline_name: str) -> SpeedupSummary:
    """Summarize speedups of a reference method over one baseline.

    Both arguments map matrix name -> seconds; only matrices present in
    both (with positive, finite times) are compared.
    """
    speedups = []
    for name, t_ref in reference_times.items():
        t_base = baseline_times.get(name)
        if t_base is None or not np.isfinite(t_base) or not np.isfinite(t_ref):
            continue
        if t_ref <= 0 or t_base <= 0:
            continue
        speedups.append(t_base / t_ref)
    if not speedups:
        return SpeedupSummary(baseline_name, float("nan"), float("nan"),
                              float("nan"), 0, 0)
    arr = np.asarray(speedups)
    return SpeedupSummary(
        baseline=baseline_name,
        geomean=geomean(arr),
        maximum=float(arr.max()),
        minimum=float(arr.min()),
        wins=int(np.count_nonzero(arr > 1.0)),
        total=int(arr.size),
    )


def gflops_table(times: dict[str, dict[str, float]], nnz: dict[str, int]):
    """Convert {method: {matrix: seconds}} into {method: {matrix: gflops}}."""
    return {
        method: {
            name: (2.0 * nnz[name] / t / 1e9 if t > 0 else float("nan"))
            for name, t in per_matrix.items()
        }
        for method, per_matrix in times.items()
    }
