"""Short-rows planner and kernels — Section 3.3.3 / Algorithms 4-5.

Rows with at most 4 nonzeros are *pieced* into packed length-4 rows so
MMA blocks stay dense:

* **1&3**: a length-1 row takes slot 0 and a length-3 row takes slots
  1-3 of a packed row.  One warp computes two 8x4 blocks with *four* MMA
  calls — each block loads A once and x twice (first the slot-0 columns,
  then slots 1-3), yielding 32 consecutive y values per warp.
* **2&2**: two length-2 rows share a packed row (x loaded for slots 0-1,
  then 2-3).
* **len-4**: native length-4 rows, leftover length-3 rows padded with one
  zero, and an odd leftover length-2 row padded with two zeros; one MMA
  per block.
* **singles**: leftover length-1 rows use one CUDA thread per row
  (Algorithm 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import WARP_SIZE
from ..gpu.events import KernelEvents
from ..gpu.mma import MmaShape, MmaUnit
from ._pack import gather_rows_padded


@dataclass
class ShortRowsPlan:
    """Packed data for the short-rows category.

    Each ``val``/``cid`` pair is a flat zero-padded array of
    ``n_packed_rows_padded * 4`` slots (block padding included); the
    ``rows_*`` arrays map packed outputs back to original rows.
    """

    shape: MmaShape
    # 1&3 pieced rows: rows13_one are the length-1 rows (slot 0), rows13_three
    # the length-3 rows (slots 1-3); one packed row yields two y values.
    val13: np.ndarray
    cid13: np.ndarray
    rows13_one: np.ndarray
    rows13_three: np.ndarray
    # 2&2 pieced rows.
    val22: np.ndarray
    cid22: np.ndarray
    rows22_a: np.ndarray
    rows22_b: np.ndarray
    # length-4 rows (native + padded leftovers).
    val4: np.ndarray
    cid4: np.ndarray
    rows4: np.ndarray
    # leftover length-1 singles.
    val1: np.ndarray
    cid1: np.ndarray
    rows1: np.ndarray
    orig_nnz: int

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Original short rows covered by this plan."""
        return int(self.rows13_one.size + self.rows13_three.size
                   + self.rows22_a.size + self.rows22_b.size
                   + self.rows4.size + self.rows1.size)

    @property
    def padded_nnz(self) -> int:
        """Stored slots including all padding (``nnz_short_new``)."""
        return int(self.val13.size + self.val22.size + self.val4.size + self.val1.size)

    @property
    def padding_ratio(self) -> float:
        return self.padded_nnz / self.orig_nnz if self.orig_nnz else 1.0

    @property
    def blocks13(self) -> int:
        return self.val13.size // (self.shape.a_elements)

    @property
    def blocks22(self) -> int:
        return self.val22.size // (self.shape.a_elements)

    @property
    def blocks4(self) -> int:
        return self.val4.size // (self.shape.a_elements)


#: Payload slabs holding matrix *values* — patched in place by
#: ``repro.core.delta.apply_value_update``.
VALUE_SLAB_FIELDS = ("val13", "val22", "val4", "val1")


def _pad_to_blocks(arr2d: np.ndarray, rows_per_block: int) -> np.ndarray:
    """Zero-pad a (rows, 4) table so rows divide ``rows_per_block``."""
    pad = (-arr2d.shape[0]) % rows_per_block
    if pad:
        arr2d = np.vstack([arr2d, np.zeros((pad, arr2d.shape[1]), dtype=arr2d.dtype)])
    return arr2d


def build_short_rows(csr, short: dict[int, np.ndarray], shape: MmaShape) -> ShortRowsPlan:
    """Pack the classified short rows into a :class:`ShortRowsPlan`."""
    M, K = shape.m, shape.k
    r1, r2, r3, r4 = (np.asarray(short.get(k, np.zeros(0, np.int64)), dtype=np.int64)
                      for k in (1, 2, 3, 4))
    indptr, data, indices = csr.indptr, csr.data, csr.indices
    dtype = data.dtype

    # --- 1&3 piecing -------------------------------------------------
    p13 = min(r1.size, r3.size)
    ones13, threes13 = r1[:p13], r3[:p13]
    V13 = np.zeros((p13, K), dtype=dtype)
    C13 = np.zeros((p13, K), dtype=np.int32)
    if p13:
        s1 = indptr[ones13]
        V13[:, 0] = data[s1]
        C13[:, 0] = indices[s1]
        s3 = indptr[threes13]
        for j in range(3):
            V13[:, 1 + j] = data[s3 + j]
            C13[:, 1 + j] = indices[s3 + j]
    V13 = _pad_to_blocks(V13, M)
    C13 = _pad_to_blocks(C13, M)

    # --- 2&2 piecing -------------------------------------------------
    p22 = r2.size // 2
    a22, b22 = r2[0:2 * p22:2], r2[1:2 * p22:2]
    V22 = np.zeros((p22, K), dtype=dtype)
    C22 = np.zeros((p22, K), dtype=np.int32)
    if p22:
        sa, sb = indptr[a22], indptr[b22]
        for j in range(2):
            V22[:, j] = data[sa + j]
            C22[:, j] = indices[sa + j]
            V22[:, 2 + j] = data[sb + j]
            C22[:, 2 + j] = indices[sb + j]
    V22 = _pad_to_blocks(V22, M)
    C22 = _pad_to_blocks(C22, M)

    # --- length-4 rows (native + padded leftovers) --------------------
    leftover3 = r3[p13:]
    leftover2 = r2[2 * p22:]
    rows4_all = np.concatenate([r4, leftover3, leftover2])
    val4_flat, cid4_flat, _ = gather_rows_padded(
        csr, rows4_all, np.full(rows4_all.size, K, dtype=np.int64))
    V4 = _pad_to_blocks(val4_flat.reshape(-1, K), M)
    C4 = _pad_to_blocks(cid4_flat.reshape(-1, K).astype(np.int32), M)

    # --- leftover singles ---------------------------------------------
    singles = r1[p13:]
    s = indptr[singles] if singles.size else np.zeros(0, dtype=np.int64)
    val1 = data[s] if singles.size else np.zeros(0, dtype=dtype)
    cid1 = indices[s].astype(np.int32) if singles.size else np.zeros(0, dtype=np.int32)

    orig_nnz = int(r1.size * 1 + r2.size * 2 + r3.size * 3 + r4.size * 4)
    return ShortRowsPlan(
        shape=shape,
        val13=V13.reshape(-1), cid13=C13.reshape(-1),
        rows13_one=ones13, rows13_three=threes13,
        val22=V22.reshape(-1), cid22=C22.reshape(-1),
        rows22_a=a22, rows22_b=b22,
        val4=V4.reshape(-1), cid4=C4.reshape(-1), rows4=rows4_all,
        val1=val1, cid1=cid1, rows1=singles,
        orig_nnz=orig_nnz,
    )


def _masked_block_dots(unit: MmaUnit, val: np.ndarray, cid: np.ndarray,
                       x: np.ndarray, cols: slice) -> np.ndarray:
    """Row sums of one MMA pass with x loaded only for ``cols`` slots.

    Models the paper's double x-load trick: A is loaded once, the
    fragment holding x is populated only for the selected columns (the
    rest stay zero), so each MMA pass yields the partial products of one
    pieced sub-row.  Returns per-packed-row values, flattened.
    """
    s = unit.shape
    if val.size == 0:
        return np.zeros(0, dtype=s.acc_dtype)
    a_blocks = val.reshape(-1, s.m, s.k)
    xg = np.zeros_like(a_blocks, dtype=np.asarray(x).dtype)
    gathered = np.asarray(x)[cid.astype(np.int64)].reshape(-1, s.m, s.k)
    xg[:, :, cols] = gathered[:, :, cols]
    return unit.block_row_dots(a_blocks, xg).reshape(-1)


def run_short_rows(plan: ShortRowsPlan, x: np.ndarray, *,
                   unit: MmaUnit | None = None):
    """Vectorized short-rows kernels.

    Returns ``(row_indices, values)`` covering every short row exactly
    once, in subcategory order.
    """
    unit = unit or MmaUnit(plan.shape)
    s = unit.shape
    x = np.asarray(x)

    out_rows: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []

    # 1&3: pass one loads x for slot 0, pass two for slots 1-3.
    if plan.rows13_one.size:
        y_one = _masked_block_dots(unit, plan.val13, plan.cid13, x, slice(0, 1))
        y_three = _masked_block_dots(unit, plan.val13, plan.cid13, x, slice(1, 4))
        n = plan.rows13_one.size
        out_rows += [plan.rows13_one, plan.rows13_three]
        out_vals += [y_one[:n], y_three[:n]]

    # 2&2: slots 0-1 then 2-3.
    if plan.rows22_a.size:
        y_a = _masked_block_dots(unit, plan.val22, plan.cid22, x, slice(0, 2))
        y_b = _masked_block_dots(unit, plan.val22, plan.cid22, x, slice(2, 4))
        n = plan.rows22_a.size
        out_rows += [plan.rows22_a, plan.rows22_b]
        out_vals += [y_a[:n], y_b[:n]]

    # len-4: one full-x MMA per block.
    if plan.rows4.size:
        y4 = _masked_block_dots(unit, plan.val4, plan.cid4, x, slice(0, 4))
        out_rows.append(plan.rows4)
        out_vals.append(y4[:plan.rows4.size])

    # singles: plain CUDA-core products (Algorithm 5).
    if plan.rows1.size:
        prod = (plan.val1.astype(s.in_dtype, copy=False).astype(s.acc_dtype)
                * x[plan.cid1.astype(np.int64)].astype(s.in_dtype, copy=False).astype(s.acc_dtype))
        out_rows.append(plan.rows1)
        out_vals.append(prod)

    if not out_rows:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=s.acc_dtype)
    return (np.concatenate(out_rows),
            np.concatenate([v.astype(s.acc_dtype, copy=False) for v in out_vals]))


def short_rows_events(plan: ShortRowsPlan, device, *, x_bytes: float) -> KernelEvents:
    """Device events for the short-rows kernels."""
    if plan.n_rows == 0:
        return KernelEvents(kernel_launches=0)
    s = plan.shape
    vb = s.in_dtype.itemsize
    ab = s.acc_dtype.itemsize
    mma = 2 * plan.blocks13 + 2 * plan.blocks22 + plan.blocks4
    # The four subcategory kernels are launched on concurrent CUDA
    # streams; their fixed overhead overlaps, so one launch is charged.
    launches = 1
    outputs = (2 * plan.rows13_one.size + 2 * plan.rows22_a.size
               + plan.rows4.size + plan.rows1.size)
    threads = ((plan.blocks13 // 2 + plan.blocks22 // 2 + plan.blocks4 // 4 + 1)
               * WARP_SIZE + plan.rows1.size)
    return KernelEvents(
        bytes_val=plan.padded_nnz * vb,
        bytes_idx=plan.padded_nnz * 4,
        bytes_ptr=64,  # fixed-size per-category offsets only (paper: no offset arrays)
        bytes_x=x_bytes,
        bytes_y=outputs * ab + outputs * 8,
        flops_mma=mma * s.flops,
        flops_cuda=2.0 * plan.rows1.size,
        mma_count=mma,
        shfl_count=mma * 2,
        extra_instr=threads,
        imbalance=1.0,  # fixed-size blocks: perfectly uniform work
        serial_iters=4.0,
        kernel_launches=launches,
        threads=threads,
    )
