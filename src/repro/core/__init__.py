"""DASP core — the paper's contribution.

Public entry points:

* :class:`DASPMatrix` / :meth:`DASPMatrix.from_csr` — the MMA-friendly
  data structure (Section 3.2).
* :func:`dasp_spmv` — the SpMV kernels (Section 3.3), with a vectorized
  engine and a lane-accurate ``engine="warp"`` validation engine.
* :class:`DASPMethod` — the method wrapped for benchmarking against the
  baselines.
"""

from .autotune import (
    MAX_LEN_CANDIDATES,
    THRESHOLD_CANDIDATES,
    TuneResult,
    choose_shards,
    tune_max_len,
    tune_threshold,
)
from .classify import (
    DEFAULT_MAX_LEN,
    SHORT_LEN,
    RowClassification,
    categorize_lengths,
    classify_rows,
)
from .delta import (
    DEFAULT_COMPACT_THRESHOLD,
    DeltaError,
    PatchInfo,
    StructuralUpdate,
    ValueUpdate,
    apply_delta_to_csr,
    apply_structural_to_csr,
    apply_structural_update,
    apply_update,
    apply_value_update,
    build_value_scatter,
    clone_for_patch,
    compact_plan,
    consolidate_plan,
    delta_from_arrays,
    delta_to_arrays,
    random_delta,
    rebuild_debt,
    rebuild_events,
)
from .format import DASPMatrix
from .long_rows import LongRowsPlan, build_long_rows, run_long_rows
from .medium_rows import (
    DEFAULT_THRESHOLD,
    MediumRowsPlan,
    build_medium_rows,
    loop_num_for,
    run_medium_rows,
)
from .method import DASPMethod
from .preprocess import (
    dasp_preprocess,
    dasp_preprocess_events,
    timed_preprocess,
)
from .short_rows import ShortRowsPlan, build_short_rows, run_short_rows
from .spmm import (
    dasp_spmm,
    dasp_spmm_on_plan,
    mma_utilization,
    spmm_events,
)
from .spmm_block import (
    BlockPlan,
    DEFAULT_TILE_K,
    ReorderResult,
    SpmmStrategy,
    TILE_K_CANDIDATES,
    build_block_plan,
    choose_spmm_strategy,
    dasp_spmm_large,
    dasp_spmm_tiled,
    overlap_schedule,
    reorder_from_perm,
    reorder_rows,
    spmm_block_events,
    spmm_looped_cost,
    spmm_tiled_overlap_cost,
)
from .spmv import dasp_spmv

__all__ = [
    "BlockPlan",
    "DASPMatrix",
    "DASPMethod",
    "DEFAULT_COMPACT_THRESHOLD",
    "DEFAULT_MAX_LEN",
    "DEFAULT_THRESHOLD",
    "DEFAULT_TILE_K",
    "DeltaError",
    "LongRowsPlan",
    "MAX_LEN_CANDIDATES",
    "MediumRowsPlan",
    "PatchInfo",
    "ReorderResult",
    "RowClassification",
    "SHORT_LEN",
    "ShortRowsPlan",
    "SpmmStrategy",
    "StructuralUpdate",
    "THRESHOLD_CANDIDATES",
    "TILE_K_CANDIDATES",
    "TuneResult",
    "ValueUpdate",
    "apply_delta_to_csr",
    "apply_structural_to_csr",
    "apply_structural_update",
    "apply_update",
    "apply_value_update",
    "build_block_plan",
    "build_long_rows",
    "build_medium_rows",
    "build_short_rows",
    "build_value_scatter",
    "categorize_lengths",
    "choose_shards",
    "choose_spmm_strategy",
    "classify_rows",
    "clone_for_patch",
    "compact_plan",
    "consolidate_plan",
    "delta_from_arrays",
    "delta_to_arrays",
    "dasp_preprocess",
    "dasp_preprocess_events",
    "dasp_spmm",
    "dasp_spmm_large",
    "dasp_spmm_on_plan",
    "dasp_spmm_tiled",
    "dasp_spmv",
    "loop_num_for",
    "mma_utilization",
    "overlap_schedule",
    "random_delta",
    "rebuild_debt",
    "rebuild_events",
    "reorder_from_perm",
    "reorder_rows",
    "run_long_rows",
    "run_medium_rows",
    "run_short_rows",
    "spmm_block_events",
    "spmm_events",
    "spmm_looped_cost",
    "spmm_tiled_overlap_cost",
    "timed_preprocess",
    "tune_max_len",
    "tune_threshold",
]
