"""Row classification — Section 3.2 of the paper.

Rows are grouped by nonzero count ``Row_len`` into:

* **long**:   ``Row_len > MAX_LEN`` (default 256)
* **medium**: ``4 < Row_len <= MAX_LEN``
* **short**:  ``1 <= Row_len <= 4``
* **empty**:  ``Row_len == 0`` — tracked separately and skipped entirely
  (the paper notes cop20k_A's 21349 empty rows in Section 4.3).

Medium rows are returned *stably sorted by descending length*, which is
the order the medium-row planner packs them in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check

#: The paper's default boundary between medium and long rows; "just right
#: for the workload of a thread block" (4 warps x 2 blocks x 32 elements).
DEFAULT_MAX_LEN = 256

#: Short/medium boundary: one MMA_K-wide slice.
SHORT_LEN = 4


@dataclass(frozen=True)
class RowClassification:
    """Outcome of the row-length analysis.

    All arrays hold *original* row indices.  ``short[k]`` (k in 1..4)
    lists rows with exactly ``k`` nonzeros, in ascending row order;
    ``medium`` is stably sorted by descending row length.
    """

    max_len: int
    long: np.ndarray
    medium: np.ndarray
    short: dict[int, np.ndarray]
    empty: np.ndarray

    @property
    def n_long(self) -> int:
        return int(self.long.size)

    @property
    def n_medium(self) -> int:
        return int(self.medium.size)

    @property
    def n_short(self) -> int:
        return int(sum(v.size for v in self.short.values()))

    @property
    def n_empty(self) -> int:
        return int(self.empty.size)

    def counts(self) -> dict[str, int]:
        """Row counts per category (Figure 12a's numerator)."""
        return {
            "long": self.n_long,
            "medium": self.n_medium,
            "short": self.n_short,
            "empty": self.n_empty,
        }


#: Per-row category codes returned by :func:`categorize_lengths` — used
#: by ``repro.core.delta`` to detect category migrations without paying
#: for a full :func:`classify_rows` pass on every structural patch.
CAT_EMPTY, CAT_SHORT, CAT_MEDIUM, CAT_LONG = 0, 1, 2, 3


def categorize_lengths(lens: np.ndarray,
                       *, max_len: int = DEFAULT_MAX_LEN) -> np.ndarray:
    """Vectorized per-row category codes for an array of row lengths."""
    lens = np.asarray(lens)
    cat = np.full(lens.shape, CAT_SHORT, dtype=np.int8)
    cat[lens == 0] = CAT_EMPTY
    cat[lens > SHORT_LEN] = CAT_MEDIUM
    cat[lens > max_len] = CAT_LONG
    return cat


def classify_rows(csr, *, max_len: int = DEFAULT_MAX_LEN) -> RowClassification:
    """Classify every row of *csr* per the paper's three categories."""
    check(max_len > SHORT_LEN, "max_len must exceed the short-row bound (4)")
    lens = csr.row_lengths()
    idx = np.arange(lens.size, dtype=np.int64)

    long_rows = idx[lens > max_len]
    empty_rows = idx[lens == 0]

    med_mask = (lens > SHORT_LEN) & (lens <= max_len)
    med_idx = idx[med_mask]
    # Stable descending sort by length (paper Section 3.2): stable sort on
    # the negated lengths keeps original order among equal lengths.
    order = np.argsort(-lens[med_idx], kind="stable")
    medium_rows = med_idx[order]

    short = {k: idx[lens == k] for k in (1, 2, 3, 4)}
    return RowClassification(
        max_len=int(max_len),
        long=long_rows,
        medium=medium_rows,
        short=short,
        empty=empty_rows,
    )
