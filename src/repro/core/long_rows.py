"""Long-rows planner and kernel — Section 3.3.1 / Algorithm 2.

Each long row (``Row_len > MAX_LEN``) is cut into *groups* of
``2 * MMA_M * MMA_K`` elements (64 for m8n8k4), zero-padded at the end of
the row.  One warp consumes one group as two MMA fragments, reduces the
eight diagonal partial sums with shuffles (offsets 9 / 18 / 4 — see
:mod:`repro.gpu.mma` for why those offsets are correct) and writes a
per-group partial into ``warpVal``; a second kernel sums each row's
partials into ``y``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ceil_div
from ..gpu.device import WARP_SIZE
from ..gpu.events import KernelEvents
from ..gpu.mma import MmaShape, MmaUnit
from ._pack import exclusive_cumsum, gather_rows_padded

#: Blocks consumed by one warp per group (Algorithm 2's inner loop runs
#: twice) — fixed by the paper.
BLOCKS_PER_GROUP = 2


@dataclass
class LongRowsPlan:
    """Packed data for the long-rows category.

    Attributes
    ----------
    row_idx:
        Original row index of each long row.
    group_ptr:
        Group offsets per row (``groupPtr`` in the paper): row ``i`` owns
        groups ``group_ptr[i]:group_ptr[i+1]``.
    val / cid:
        ``longVal`` / ``longCid``: zero-padded values and column indices,
        ``n_groups * group_elems`` entries.
    shape:
        MMA instruction geometry used for packing.
    orig_nnz:
        Real nonzeros before padding.
    """

    row_idx: np.ndarray
    group_ptr: np.ndarray
    val: np.ndarray
    cid: np.ndarray
    shape: MmaShape
    orig_nnz: int

    @property
    def group_elems(self) -> int:
        """Elements per group (= 2 * MMA_M * MMA_K)."""
        return BLOCKS_PER_GROUP * self.shape.a_elements

    @property
    def n_rows(self) -> int:
        return int(self.row_idx.size)

    @property
    def n_groups(self) -> int:
        return int(self.group_ptr[-1]) if self.group_ptr.size else 0

    @property
    def padded_nnz(self) -> int:
        return int(self.val.size)

    @property
    def padding_ratio(self) -> float:
        """Stored / real elements (>= 1)."""
        return self.padded_nnz / self.orig_nnz if self.orig_nnz else 1.0


#: Payload slabs holding matrix *values* — patched in place by
#: ``repro.core.delta.apply_value_update``.
VALUE_SLAB_FIELDS = ("val",)


def build_long_rows(csr, rows: np.ndarray, shape: MmaShape) -> LongRowsPlan:
    """Pack the given long rows of *csr* into a :class:`LongRowsPlan`."""
    rows = np.asarray(rows, dtype=np.int64)
    group_elems = BLOCKS_PER_GROUP * shape.a_elements
    lens = csr.row_lengths()[rows] if rows.size else np.zeros(0, dtype=np.int64)
    groups = -(-lens // group_elems)  # ceil per row
    padded = groups * group_elems
    val, cid, _ = gather_rows_padded(csr, rows, padded)
    return LongRowsPlan(
        row_idx=rows,
        group_ptr=exclusive_cumsum(groups),
        val=val,
        cid=cid,
        shape=shape,
        orig_nnz=int(lens.sum()),
    )


def run_long_rows(plan: LongRowsPlan, x: np.ndarray, *,
                  unit: MmaUnit | None = None) -> np.ndarray:
    """Vectorized long-rows kernel: per-row sums in original row order.

    Reproduces the MMA arithmetic exactly: per-block row dot products in
    the unit's accumulator dtype, fragment accumulation across the two
    blocks of a group, shuffle-tree summation of the eight diagonal
    values, then the second-pass per-row reduction over group partials.
    """
    unit = unit or MmaUnit(plan.shape)
    s = unit.shape
    if plan.n_rows == 0:
        return np.zeros(0, dtype=s.acc_dtype)
    a_blocks = plan.val.reshape(-1, s.m, s.k)
    safe_cid = plan.cid.astype(np.int64)
    x_blocks = np.asarray(x)[safe_cid].reshape(-1, s.m, s.k)
    diag = unit.block_row_dots(a_blocks, x_blocks)      # (nblocks, m)
    # fragY accumulates over the BLOCKS_PER_GROUP blocks of a group, then
    # the shuffle tree sums the m diagonal lanes.
    per_group = diag.reshape(-1, BLOCKS_PER_GROUP * s.m).sum(axis=1, dtype=s.acc_dtype)
    # Second kernel: warp-per-row reduction of warpVal.  No trailing pad
    # element: reduceat's vectorized inner loop associates by segment
    # *length*, so appending a zero to the final segment would give the
    # plan's last row a different rounding than the same row computed
    # mid-plan — breaking shard/unsharded bit-equality.
    if per_group.size == 0:
        return np.zeros(plan.n_rows, dtype=s.acc_dtype)
    starts = np.minimum(plan.group_ptr[:-1], per_group.size - 1)
    y = np.add.reduceat(per_group, starts).astype(s.acc_dtype, copy=False)
    y[np.diff(plan.group_ptr) == 0] = 0
    return y


def long_rows_events(plan: LongRowsPlan, device, *, x_bytes: float) -> KernelEvents:
    """Device events for the two long-rows kernels."""
    if plan.n_rows == 0:
        return KernelEvents(kernel_launches=0)
    s = plan.shape
    vb = s.in_dtype.itemsize
    ab = s.acc_dtype.itemsize
    n_groups = plan.n_groups
    n_blocks = n_groups * BLOCKS_PER_GROUP
    # Kernel 1: stream val/cid, gather x, mma, 5 shuffles, write warpVal.
    # Kernel 2: warp per row reads that row's warpVal entries, butterfly
    # reduction (5 shuffles), writes y.
    shfl = n_groups * 5 + plan.n_rows * 5
    # Kernel 1 gives every warp exactly one group (perfect balance);
    # kernel 2's critical path is the row with the most group partials.
    groups_per_row = np.diff(plan.group_ptr)
    serial = (BLOCKS_PER_GROUP
              + float(groups_per_row.max()) / WARP_SIZE if plan.n_rows else 0.0)
    return KernelEvents(
        bytes_val=plan.padded_nnz * vb,
        bytes_idx=plan.padded_nnz * 4,
        bytes_ptr=(plan.n_rows + 1) * 8,
        bytes_x=x_bytes,
        bytes_y=n_groups * ab * 2 + plan.n_rows * ab + plan.n_rows * 8,
        flops_mma=n_blocks * s.flops,
        mma_count=n_blocks,
        shfl_count=shfl,
        extra_instr=n_groups * WARP_SIZE * 2,
        imbalance=1.0,
        serial_iters=serial,
        kernel_launches=2,
        threads=(n_groups + plan.n_rows) * WARP_SIZE,
    )
