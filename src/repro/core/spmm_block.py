"""Large-k SpMM tier over DASP plans — ``repro.spmm_block``.

DASP's MMA layout saturates at ``k = MMA_N = 8`` right-hand sides;
GNN feature propagation and block Krylov solvers want ``k = 32..512``.
Today's serving layer handles that by looping ``ceil(k / 8)`` batches
through :func:`repro.core.dasp_spmm` — paying the full matrix stream
and kernel launches once *per batch*.  This module adds a true large-k
tier with three strategies and a per-``(matrix, k)`` tuner:

``looped``
    The baseline: ``ceil(k / MMA_N)`` independent column batches, each
    re-streaming the matrix (what the batcher-fed server does today).

``tiled``
    Column-tiled execution: a double loop over column tiles × row
    blocks, so the plan's packed arrays stream **once** and stay
    resident while every column tile consumes them.  Tile widths are
    multiples of ``MMA_N``; RHS gather traffic follows the
    distinct-column tile unions of :func:`repro.gpu.mma_tile_stats`.

``reordered``
    Row reordering + column tiling: rows are permuted so consecutive
    rows share column support, densifying the ``MMA_M``-row tiles the
    SpMM tier consumes (Acc-SpMM, arXiv 2501.09251).  The DASP plan's
    own padding is permutation-invariant, so the *measured objective*
    is the order-sensitive tile occupancy/padding counters of
    :mod:`repro.gpu.tiles`; the modeled win is the smaller gather
    unions.  The inverse permutation is applied on output, keeping
    results bitwise-identical to the unpermuted path (every DASP
    category kernel computes row values row-locally).

All three strategies execute the same validation numerics
(:func:`repro.core.dasp_spmm_on_plan` column tiles), so their results
are bitwise-identical to the column-wise ``dasp_spmv`` reference — the
strategies differ only in the modeled schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .._util import check
from ..gpu.cost_model import estimate_time
from ..gpu.events import KernelEvents
from ..gpu.tiles import TileStats, mma_tile_stats
from .format import DASPMatrix
from .spmm import dasp_spmm_on_plan, spmm_events

__all__ = [
    "DEFAULT_TILE_K",
    "TILE_K_CANDIDATES",
    "BlockPlan",
    "ReorderResult",
    "SpmmStrategy",
    "build_block_plan",
    "choose_spmm_strategy",
    "dasp_spmm_large",
    "dasp_spmm_tiled",
    "overlap_schedule",
    "reorder_from_perm",
    "reorder_rows",
    "spmm_block_events",
    "spmm_looped_cost",
    "spmm_tiled_overlap_cost",
]

#: Default column-tile width (4 MMA passes per tile).
DEFAULT_TILE_K = 32

#: Tile widths the tuner tries — multiples of ``MMA_N = 8`` so every
#: tile maps to whole MMA passes.
TILE_K_CANDIDATES = (8, 16, 32, 64)


# ----------------------------------------------------------------------
# Row reordering
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReorderResult:
    """Outcome of the row-reordering pass.

    ``perm`` maps permuted position -> source row (``perm[i]`` is the
    source row sitting at position ``i``); ``inv`` undoes it on the
    output (``Y = Y_perm[inv]``).  ``candidate`` names the winning
    heuristic; ``stats`` / ``natural_stats`` are the tile counters in
    permuted / natural order.
    """

    perm: np.ndarray
    inv: np.ndarray
    candidate: str
    stats: TileStats
    natural_stats: TileStats

    @property
    def is_identity(self) -> bool:
        return self.candidate == "natural"

    @property
    def padding_reduction(self) -> float:
        """Fraction of natural-order padding slots eliminated."""
        nat = self.natural_stats.padding_slots
        if nat == 0:
            return 0.0
        return 1.0 - self.stats.padding_slots / nat


def _candidate_orders(csr) -> dict[str, np.ndarray]:
    """Deterministic reorder candidates, all O(nnz log m) to evaluate.

    ``degree`` groups rows of similar length (hub rows of power-law /
    circuit matrices end up in the same tiles, where their overlapping
    supports amortize each fetched column); ``locality`` groups rows by
    leading column so banded/grid structure lands same-support rows in
    the same tile.  Stable sorts keep the pass deterministic.
    """
    m = csr.shape[0]
    lens = csr.row_lengths()
    first = np.full(m, csr.shape[1], dtype=np.int64)
    nonempty = lens > 0
    first[nonempty] = csr.indices[csr.indptr[:-1][nonempty]]
    return {
        "natural": np.arange(m, dtype=np.int64),
        "degree": np.argsort(-lens, kind="stable").astype(np.int64),
        "locality": np.lexsort((-lens, first)).astype(np.int64),
    }


def reorder_rows(csr, *, mma_shape=None) -> ReorderResult:
    """Pick the row order that minimizes MMA tile padding for *csr*.

    Evaluates a small deterministic candidate set with the
    order-sensitive counters of :func:`repro.gpu.mma_tile_stats` and
    keeps the order with the fewest padding slots (gather-column union
    size breaks ties; ``natural`` wins all remaining ties, so the pass
    never does worse than not reordering).
    """
    candidates = _candidate_orders(csr)
    natural_stats = mma_tile_stats(csr, mma_shape=mma_shape)
    best = ("natural", candidates["natural"], natural_stats)
    for name, perm in candidates.items():
        if name == "natural":
            continue
        stats = mma_tile_stats(csr, mma_shape=mma_shape, perm=perm)
        key = (stats.padding_slots, stats.gather_cols)
        if key < (best[2].padding_slots, best[2].gather_cols):
            best = (name, perm, stats)
    name, perm, stats = best
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return ReorderResult(perm=perm, inv=inv, candidate=name,
                         stats=stats, natural_stats=natural_stats)


def reorder_from_perm(csr, perm: np.ndarray, *,
                      mma_shape=None) -> ReorderResult:
    """Rebuild a :class:`ReorderResult` from a *stored* permutation.

    The ``spmm`` CLI persists the winning permutation as a ``.daspz``
    ``aux.`` record (``spmm.reorder_perm``); a server warm-starting
    from that artifact should not re-run the candidate sweep of
    :func:`reorder_rows` just to recover a decision already made.  The
    tile counters are recomputed for *perm* (they are derived data, not
    part of the stored decision), so the result prices and executes
    exactly like the originally derived one.  An identity permutation
    maps back to the ``natural`` candidate, keeping
    :attr:`ReorderResult.is_identity` faithful.
    """
    perm = np.ascontiguousarray(np.asarray(perm, dtype=np.int64))
    m = csr.shape[0]
    check(perm.shape == (m,), f"perm must have shape ({m},)")
    natural_stats = mma_tile_stats(csr, mma_shape=mma_shape)
    if np.array_equal(perm, np.arange(m, dtype=np.int64)):
        return ReorderResult(perm=perm, inv=perm.copy(),
                             candidate="natural", stats=natural_stats,
                             natural_stats=natural_stats)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(m, dtype=np.int64)
    stats = mma_tile_stats(csr, mma_shape=mma_shape, perm=perm)
    return ReorderResult(perm=perm, inv=inv, candidate="stored",
                         stats=stats, natural_stats=natural_stats)


@dataclass(frozen=True)
class BlockPlan:
    """A DASP plan prepared for reordered large-k execution.

    ``plan`` is built from the row-permuted matrix; applying ``inv`` to
    its output restores the original row order bitwise (row values are
    row-local in every DASP category kernel).
    """

    plan: DASPMatrix
    reorder: ReorderResult

    @property
    def perm(self) -> np.ndarray:
        return self.reorder.perm

    @property
    def inv(self) -> np.ndarray:
        return self.reorder.inv

    @property
    def stats(self) -> TileStats:
        return self.reorder.stats


def build_block_plan(plan: DASPMatrix, *,
                     reorder: ReorderResult | None = None) -> BlockPlan:
    """Build the row-permuted plan for the ``reordered`` strategy.

    The permuted plan reuses *plan*'s classification parameters
    (``max_len`` / ``threshold`` / MMA shape), so it packs the same
    rows into the same categories — only the order changes.
    """
    if reorder is None:
        reorder = reorder_rows(plan.csr, mma_shape=plan.mma_shape)
    if reorder.is_identity:
        return BlockPlan(plan=plan, reorder=reorder)
    permuted = DASPMatrix.from_csr(
        plan.csr.permute_rows(reorder.perm),
        max_len=plan.max_len, threshold=plan.threshold,
        mma_shape=plan.mma_shape)
    return BlockPlan(plan=permuted, reorder=reorder)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def dasp_spmm_tiled(plan: DASPMatrix, X: np.ndarray, *,
                    tile_k: int = DEFAULT_TILE_K,
                    double_buffer: bool = False, obs=None) -> np.ndarray:
    """Column-tiled large-k SpMM on a DASP plan.

    Splits ``X`` into column tiles of width ``tile_k`` (a multiple of
    ``MMA_N``) and runs the plan kernels per tile — the validation-
    engine analogue of the double loop over column tiles × row blocks.
    Output columns are independent folds, so the result is bitwise the
    untiled ``dasp_spmm`` (and hence the column-wise ``dasp_spmv``).

    ``double_buffer`` marks the tiles as double-buffered for
    accounting: the modeled clock (:func:`spmm_tiled_overlap_cost`)
    overlaps the next tile's RHS gather with the current tile's
    compute.  Results are bitwise-identical either way — the flag only
    feeds the ``core.pipeline.*`` counters.
    """
    X = np.asarray(X)
    check(X.ndim == 2 and X.shape[0] == plan.shape[1],
          f"X must be ({plan.shape[1]}, k)")
    k = X.shape[1]
    check(k >= 1, "X must have at least one column")
    check(tile_k >= 1 and tile_k % plan.mma_shape.n == 0,
          f"tile_k must be a positive multiple of MMA_N={plan.mma_shape.n}")
    if double_buffer:
        from ..obs import get_obs

        (obs if obs is not None else get_obs()).counter(
            "core.pipeline.double_buffered_tiles_total").inc(-(-k // tile_k))
    Y = np.empty((plan.shape[0], k), dtype=plan.mma_shape.acc_dtype)
    for j0 in range(0, k, tile_k):
        j1 = min(j0 + tile_k, k)
        Y[:, j0:j1] = dasp_spmm_on_plan(plan, X[:, j0:j1])
    return Y


def dasp_spmm_large(plan: DASPMatrix, X: np.ndarray,
                    strategy: "SpmmStrategy") -> np.ndarray:
    """Execute a tuner-chosen strategy; bitwise-identical across all."""
    X = np.asarray(X)
    if strategy.name == "reordered":
        bp = strategy.block_plan
        check(bp is not None, "reordered strategy carries no block plan")
        Yp = dasp_spmm_tiled(bp.plan, X, tile_k=strategy.tile_k)
        return Yp[bp.inv]
    if strategy.name == "tiled":
        return dasp_spmm_tiled(plan, X, tile_k=strategy.tile_k)
    # looped: ceil(k / MMA_N) independent column batches.
    n = plan.mma_shape.n
    k = X.shape[1]
    Y = np.empty((plan.shape[0], k), dtype=plan.mma_shape.acc_dtype)
    for j0 in range(0, k, n):
        j1 = min(j0 + n, k)
        Y[:, j0:j1] = dasp_spmm_on_plan(plan, X[:, j0:j1])
    return Y


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------


def spmm_looped_cost(plan: DASPMatrix, device, k: int) -> float:
    """Modeled seconds for looping ``ceil(k / MMA_N)`` column batches.

    Each batch pays the full matrix stream, launches, and shuffle work
    again — the serving layer's behavior before this tier existed.
    """
    check(k >= 1, "k must be positive")
    n = plan.mma_shape.n
    bits = plan.dtype.itemsize * 8
    total = 0.0
    for j0 in range(0, k, n):
        ev = spmm_events(plan, device, min(n, k - j0))
        total += estimate_time(ev, device, dtype_bits=bits).total
    return total


def spmm_block_events(plan: DASPMatrix, device, k: int, *,
                      tile_k: int = DEFAULT_TILE_K,
                      stats: TileStats | None = None) -> KernelEvents:
    """Device events for one column-tiled large-k sweep.

    The matrix stream, launches, and shuffle work are paid **once**
    (plan arrays stay resident across column tiles); MMA issues, y
    writes, and CUDA-core flops scale with ``k`` exactly as
    :meth:`KernelEvents.scale_rhs`; the RHS gather uses the same
    coalesced row-major-block model as the looped baseline, discounted
    by the tile-union deduplication ratio
    (:attr:`repro.gpu.TileStats.union_ratio`): a column shared by
    several rows of a tile is fetched once per tile, not once per row —
    the traffic channel through which row reordering shows up.  The
    per-warp serial loop runs once per column tile.
    """
    check(k >= 1, "k must be positive")
    check(tile_k >= 1 and tile_k % plan.mma_shape.n == 0,
          f"tile_k must be a positive multiple of MMA_N={plan.mma_shape.n}")
    from ..gpu.memory import rhs_block_traffic_factor
    from .method import DASPMethod

    if stats is None:
        stats = mma_tile_stats(plan.csr, mma_shape=plan.mma_shape)
    base = DASPMethod().events(plan, device)
    s = plan.mma_shape
    x_factor = (rhs_block_traffic_factor(plan.csr, plan.dtype.itemsize, k)
                * stats.union_ratio)
    ev = base.scale_rhs(k, mma_n=s.n, mma_flops=s.flops, x_factor=x_factor)
    col_tiles = -(-k // tile_k)
    return replace(ev, serial_iters=ev.serial_iters * col_tiles)


def overlap_schedule(loads, computes) -> float:
    """Makespan of a two-stage double-buffered pipeline.

    ``loads[i]`` is the transfer time of segment ``i`` (an RHS column
    tile, a shard band's packed arrays), ``computes[i]`` its kernel
    time.  With two buffers the transfer of segment ``i+1`` overlaps
    the compute of segment ``i``, so the schedule is::

        loads[0] + sum(max(computes[i], loads[i+1])) + computes[-1]

    which degenerates to the serial sum for a single segment and never
    exceeds it.
    """
    check(len(loads) == len(computes) and len(loads) >= 1,
          "loads and computes must be equal-length and non-empty")
    t = float(loads[0])
    for i in range(len(computes) - 1):
        t += max(float(computes[i]), float(loads[i + 1]))
    return t + float(computes[-1])


def spmm_tiled_overlap_cost(plan: DASPMatrix, device, k: int, *,
                            tile_k: int = DEFAULT_TILE_K,
                            stats: TileStats | None = None,
                            dtype_bits: int | None = None,
                            ) -> tuple[float, float]:
    """``(serial_s, overlapped_s)`` for one column-tiled large-k sweep.

    Splits the modeled sweep into its RHS-gather component (the
    per-tile ``X`` traffic — the part a second buffer can stage while
    the previous tile computes) and everything else, smears both evenly
    over the ``ceil(k / tile_k)`` column tiles, and prices the
    double-buffered schedule with :func:`overlap_schedule`.  The
    numerics of :func:`dasp_spmm_tiled` are untouched — only the
    modeled clock changes when the pipeline runs with double buffering
    on.
    """
    check(k >= 1, "k must be positive")
    if dtype_bits is None:
        dtype_bits = plan.dtype.itemsize * 8
    ev = spmm_block_events(plan, device, k, tile_k=tile_k, stats=stats)
    serial = estimate_time(ev, device, dtype_bits=dtype_bits).total
    compute = estimate_time(replace(ev, bytes_x=0.0), device,
                            dtype_bits=dtype_bits).total
    load = max(serial - compute, 0.0)
    tiles = -(-k // tile_k)
    loads = [load / tiles] * tiles
    computes = [compute / tiles] * tiles
    return serial, overlap_schedule(loads, computes)


@dataclass(frozen=True)
class SpmmStrategy:
    """A tuner decision for one ``(matrix, k)`` pair.

    ``modeled_s`` is the chosen strategy's modeled device seconds for
    the whole k-block; ``looped_s`` the baseline's, so ``speedup`` is
    the modeled gain over today's batched serving.
    """

    name: str
    k: int
    tile_k: int
    modeled_s: float
    looped_s: float
    stats: TileStats | None = None
    block_plan: BlockPlan | None = None

    @property
    def speedup(self) -> float:
        return self.looped_s / self.modeled_s if self.modeled_s > 0 else 1.0

    @property
    def modeled_gflops(self) -> float:
        """Modeled useful throughput (2 * nnz * k flops)."""
        if self.modeled_s <= 0 or self.stats is None:
            return 0.0
        return 2.0 * self.stats.nnz * self.k / self.modeled_s / 1e9


def choose_spmm_strategy(plan: DASPMatrix, k: int, device="A100", *,
                         tile_ks=TILE_K_CANDIDATES,
                         reorder: bool = True,
                         reorder_hint: ReorderResult | None = None,
                         ) -> SpmmStrategy:
    """Pick the cheapest modeled strategy for ``k`` right-hand sides.

    ``k <= MMA_N`` is a single batch — the looped baseline *is* the
    plan kernel, nothing to tune.  Beyond that the tuner compares the
    looped baseline against column tiling over ``tile_ks`` and, when
    ``reorder`` is set and the reorder pass finds a better-than-natural
    order, the reordered+tiled variant (charging the permuted tile
    unions).  Building the permuted plan is the expensive part, so it
    happens only if a non-natural order won the counters.

    ``reorder_hint`` supplies a previously derived
    :class:`ReorderResult` (typically rebuilt from a persisted ``aux.``
    permutation via :func:`reorder_from_perm`) and skips the candidate
    sweep of :func:`reorder_rows`; the pricing and execution are
    otherwise identical, so a hinted choice is bitwise the derived one.
    """
    check(k >= 1, "k must be positive")
    bits = plan.dtype.itemsize * 8
    looped_s = spmm_looped_cost(plan, device, k)
    natural = mma_tile_stats(plan.csr, mma_shape=plan.mma_shape)
    best = SpmmStrategy(name="looped", k=k, tile_k=plan.mma_shape.n,
                        modeled_s=looped_s, looped_s=looped_s,
                        stats=natural)
    if k <= plan.mma_shape.n:
        return best

    def tiled_cost(stats: TileStats):
        out = None
        # Widest-first: on modeled-cost ties, fewer column passes win.
        for tk in sorted(tile_ks, reverse=True):
            if tk % plan.mma_shape.n or tk > max(k, plan.mma_shape.n):
                continue
            ev = spmm_block_events(plan, device, k, tile_k=tk, stats=stats)
            cost = estimate_time(ev, device, dtype_bits=bits).total
            if out is None or cost < out[1]:
                out = (tk, cost)
        return out

    choice = tiled_cost(natural)
    if choice is not None and choice[1] < best.modeled_s:
        best = SpmmStrategy(name="tiled", k=k, tile_k=choice[0],
                            modeled_s=choice[1], looped_s=looped_s,
                            stats=natural)
    if reorder:
        ro = (reorder_hint if reorder_hint is not None
              else reorder_rows(plan.csr, mma_shape=plan.mma_shape))
        if not ro.is_identity:
            choice = tiled_cost(ro.stats)
            if choice is not None and choice[1] < best.modeled_s:
                bp = build_block_plan(plan, reorder=ro)
                best = SpmmStrategy(name="reordered", k=k, tile_k=choice[0],
                                    modeled_s=choice[1], looped_s=looped_s,
                                    stats=ro.stats, block_plan=bp)
    return best
