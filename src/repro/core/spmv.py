"""DASP SpMV orchestration — runs the three category kernels and scatters
results into ``y`` (empty rows stay zero).
"""

from __future__ import annotations

import numpy as np

from .._util import check
from ..gpu.mma import MmaUnit
from .format import DASPMatrix
from .long_rows import run_long_rows
from .medium_rows import run_medium_rows
from .short_rows import run_short_rows


def dasp_spmv(matrix, x: np.ndarray, *, engine: str = "vectorized",
              cast_output: bool = False, obs=None) -> np.ndarray:
    """Compute ``y = A @ x`` with the DASP algorithm.

    Parameters
    ----------
    matrix:
        A :class:`DASPMatrix` (or a CSR matrix, converted on the fly).
    x:
        Dense input vector of length ``A.shape[1]``.
    engine:
        ``"vectorized"`` (default; NumPy batch kernels) or ``"warp"``
        (lane-accurate emulation of the paper's Algorithms 2-5 on the
        8x4 fragment layout, FP64 and FP16; intended for small matrices
        and validation).
    cast_output:
        When true, cast ``y`` back to the matrix dtype (FP16 in the half
        precision path); by default ``y`` stays in the MMA accumulator
        dtype (FP64 for FP64, FP32 for FP16) as the hardware produces it.
    obs:
        :class:`repro.obs.Obs` handle; defaults to the process-wide
        one.  Counts invocations and, when tracing, opens an ``spmv``
        span.
    """
    from ..obs import get_obs

    if obs is None:
        obs = get_obs()
    dasp = matrix if isinstance(matrix, DASPMatrix) else DASPMatrix.from_csr(matrix)
    x = np.asarray(x)
    check(x.shape == (dasp.shape[1],), "x has wrong length")
    obs.counter("core.spmv_calls_total", {"engine": engine}).inc()

    with obs.span("spmv", attrs={"engine": engine} if obs.tracing else None):
        if engine == "warp":
            from .warp_kernels import dasp_spmv_warp

            y = dasp_spmv_warp(dasp, x)
        elif engine == "vectorized":
            y = _dasp_spmv_vectorized(dasp, x)
        else:
            raise ValueError(f"unknown engine {engine!r}")

        if dasp.delta is not None and dasp.delta.overlay is not None:
            # Patched plan: dirty rows were computed from stale slabs —
            # overwrite them from the delta overlay (repro.core.delta).
            from .delta import apply_overlay_spmv

            y = apply_overlay_spmv(dasp, x, y)

    if cast_output:
        return y.astype(dasp.dtype)
    return y


def _dasp_spmv_vectorized(dasp: DASPMatrix, x: np.ndarray) -> np.ndarray:
    acc_dtype = dasp.mma_shape.acc_dtype
    y = np.zeros(dasp.shape[0], dtype=acc_dtype)
    unit = MmaUnit(dasp.mma_shape)

    lp = dasp.long_plan
    if lp.n_rows:
        y[lp.row_idx] = run_long_rows(lp, x, unit=unit)

    mp = dasp.medium_plan
    if mp.n_rows:
        y[mp.row_idx] = run_medium_rows(mp, x, unit=unit)

    sp = dasp.short_plan
    if sp.n_rows:
        rows, vals = run_short_rows(sp, x, unit=unit)
        y[rows] = vals

    return y
