"""Lane-accurate DASP kernels — literal transcriptions of Algorithms 2-5.

These run the paper's warp-level pseudocode on the :class:`~repro.gpu.
warp.Warp` emulator with the true ``mma.m8n8k4`` FP64 fragment layout,
including the shuffle reductions with offsets 9/18/4 and the
``target = ((laneid - i*8) >> 1) * 9`` extraction.  They exist to
*validate* the fast vectorized kernels (property tests assert both
engines agree) and as executable documentation of the algorithms.

Both precisions are supported: FP64 runs the paper's exact ``m8n8k4``
contract; FP16 runs the same fragment layout with binary16 inputs and
FP32 accumulation (our FP16 modeling choice, see DESIGN.md).  One Python
iteration per warp, so use small matrices.
"""

from __future__ import annotations

import numpy as np

from .._util import check
from ..gpu.device import WARP_SIZE
from ..gpu.mma import mma_m8n8k4
from ..gpu.warp import FULL_MASK, Warp
from .format import DASPMatrix
from .long_rows import BLOCKS_PER_GROUP, LongRowsPlan
from .medium_rows import MediumRowsPlan
from .short_rows import ShortRowsPlan

_LANE = np.arange(WARP_SIZE)
#: The paper's per-lane A-fragment address: ``(3 & laneid) + (laneid >> 2) * MMA_K``.
_FRAG_IDX = (3 & _LANE) + (_LANE >> 2) * 4


def dasp_spmv_warp(dasp: DASPMatrix, x: np.ndarray) -> np.ndarray:
    """Run all category kernels lane-accurately and assemble ``y``."""
    shape = dasp.mma_shape
    check(shape.m == 8 and shape.k == 4,
          "the lane-accurate engine implements the 8x4 fragment layout")
    x = np.asarray(x, dtype=shape.acc_dtype)
    y = np.zeros(dasp.shape[0], dtype=shape.acc_dtype)
    _long_rows_warp(dasp.long_plan, x, y)
    _medium_rows_warp(dasp.medium_plan, x, y)
    _short_rows_warp(dasp.short_plan, x, y)
    return y


# ----------------------------------------------------------------------
# Algorithm 2: long rows
# ----------------------------------------------------------------------


def _long_rows_warp(plan: LongRowsPlan, x: np.ndarray, y: np.ndarray) -> None:
    if plan.n_rows == 0:
        return
    w = Warp()
    group_elems = plan.group_elems
    n_groups = plan.n_groups
    warp_val = np.zeros(n_groups, dtype=np.float64)

    # Kernel 1: one warp per group.
    for g in range(n_groups):
        offset_a = g * group_elems
        frag_y = np.zeros((WARP_SIZE, 2), dtype=plan.shape.acc_dtype)
        idx = _FRAG_IDX.copy()
        for _i in range(BLOCKS_PER_GROUP):
            frag_a = plan.val[offset_a + idx]
            frag_x = x[plan.cid[offset_a + idx]]
            frag_y = mma_m8n8k4(w, frag_y, frag_a, frag_x, shape=plan.shape)
            idx = idx + plan.shape.a_elements
        f0, f1 = frag_y[:, 0], frag_y[:, 1]
        f0 = f0 + w.shfl_down_sync(FULL_MASK, f0, 9)
        f0 = f0 + w.shfl_down_sync(FULL_MASK, f0, 18)
        f1 = f1 + w.shfl_down_sync(FULL_MASK, f1, 9)
        f1 = f1 + w.shfl_down_sync(FULL_MASK, f1, 18)
        f0 = f0 + w.shfl_sync(FULL_MASK, f1, 4)
        warp_val[g] = f0[0]  # laneid == 0 writes

    # Kernel 2: one warp per row reduces its group partials.
    for r in range(plan.n_rows):
        start, end = int(plan.group_ptr[r]), int(plan.group_ptr[r + 1])
        row_warp_len = end - start
        thread_val = w.zeros()
        for base in range(0, row_warp_len, WARP_SIZE):
            take = _LANE + base
            valid = take < row_warp_len
            gathered = np.where(valid, warp_val[start + np.minimum(take, row_warp_len - 1)], 0.0)
            thread_val = thread_val + gathered
        thread_val = w.reduce_sum(thread_val)
        y[plan.row_idx[r]] = thread_val[0]


# ----------------------------------------------------------------------
# Algorithm 3: medium rows
# ----------------------------------------------------------------------


def _medium_rows_warp(plan: MediumRowsPlan, x: np.ndarray, y: np.ndarray) -> None:
    n_med = plan.n_rows
    if n_med == 0:
        return
    w = Warp()
    M, K = plan.shape.m, plan.shape.k
    block_elems = M * K
    nb = plan.n_rowblocks
    loop_num = plan.loop_num
    n_warps = -(-nb // loop_num)

    for wid in range(n_warps):
        res = w.zeros(dtype=plan.shape.acc_dtype)
        for i in range(loop_num):
            bid = wid * loop_num + i
            if bid >= nb:
                break
            start = int(plan.rowblock_ptr[bid])
            length = int(plan.rowblock_ptr[bid + 1]) - start
            frag_y = np.zeros((WARP_SIZE, 2), dtype=plan.shape.acc_dtype)
            idx = _FRAG_IDX.copy()
            for _j in range(length // block_elems):
                frag_a = plan.reg_val[start + idx]
                frag_x = x[plan.reg_cid[start + idx]]
                frag_y = mma_m8n8k4(w, frag_y, frag_a, frag_x, shape=plan.shape)
                idx = idx + block_elems
            target = ((_LANE - i * 8) >> 1) * 9
            f0 = w.shfl_sync(FULL_MASK, frag_y[:, 0], target)
            f1 = w.shfl_sync(FULL_MASK, frag_y[:, 1], target + 4)
            sel = (_LANE >> 3) == i
            res = np.where(sel, np.where((_LANE & 1) == 0, f0, f1), res)
        # Irregular tails + writeback: lanes 0 .. 8*loop_num-1 own rows.
        active = (_LANE >> 3) < loop_num
        cur_row = wid * loop_num * M + _LANE
        for lane in np.nonzero(active)[0]:
            row = int(cur_row[lane])
            if row >= n_med:
                continue
            acc = res[lane]
            acc_t = plan.shape.acc_dtype.type
            for p in range(int(plan.irreg_ptr[row]), int(plan.irreg_ptr[row + 1])):
                acc += acc_t(plan.irreg_val[p]) * acc_t(x[plan.irreg_cid[p]])
            y[plan.row_idx[row]] = acc


# ----------------------------------------------------------------------
# Algorithms 4-5: short rows
# ----------------------------------------------------------------------


def _pieced_warp(w: Warp, val: np.ndarray, cid: np.ndarray, x: np.ndarray,
                 first_slots: int, shape) -> np.ndarray:
    """One warp of Algorithm 4 over two blocks (64 slots).

    ``first_slots`` is the split point of the piecing: 1 for 1&3 rows,
    2 for 2&2 rows.  Returns the 32 per-lane results: lanes ``8i..8i+7``
    hold pass ``i``'s eight row values.
    """
    res = w.zeros(dtype=shape.acc_dtype)
    idx = _FRAG_IDX.copy()
    frag_a = w.zeros(dtype=val.dtype)
    for i in range(4):
        frag_y = np.zeros((WARP_SIZE, 2), dtype=shape.acc_dtype)
        cid_a = cid[idx]
        if i & 1 == 0:
            frag_a = val[idx]
            frag_x = np.where((_LANE & 3) < first_slots, x[cid_a], 0.0)
        else:
            frag_x = np.where((_LANE & 3) < first_slots, 0.0, x[cid_a])
            idx = idx + WARP_SIZE
        frag_y = mma_m8n8k4(w, frag_y, frag_a, frag_x, shape=shape)
        target = ((_LANE - i * 8) >> 1) * 9
        f0 = w.shfl_sync(FULL_MASK, frag_y[:, 0], target)
        f1 = w.shfl_sync(FULL_MASK, frag_y[:, 1], target + 4)
        sel = (_LANE >> 3) == i
        res = np.where(sel, np.where((_LANE & 1) == 0, f0, f1), res)
    return res


def _run_pieced(w, val, cid, x, n_pairs, rows_first, rows_second, y,
                first_slots, shape):
    """Drive `_pieced_warp` over all blocks of a pieced subcategory."""
    if n_pairs == 0:
        return
    n_blocks = val.size // WARP_SIZE
    for wid in range(-(-n_blocks // 2)):
        base = wid * 2 * WARP_SIZE
        chunk_v = np.zeros(2 * WARP_SIZE, dtype=val.dtype)
        chunk_c = np.zeros(2 * WARP_SIZE, dtype=np.int64)
        avail = min(2 * WARP_SIZE, val.size - base)
        chunk_v[:avail] = val[base:base + avail]
        chunk_c[:avail] = cid[base:base + avail]
        res = _pieced_warp(w, chunk_v, chunk_c, x, first_slots, shape)
        # lanes 0-7: block0 pass0, 8-15: block0 pass1, 16-23: block1 pass0,
        # 24-31: block1 pass1.  Packed row p of block b is row wid*16+b*8+p.
        for b in range(2):
            for p in range(8):
                packed = wid * 16 + b * 8 + p
                if packed >= n_pairs:
                    continue
                y[rows_first[packed]] = res[16 * b + p]
                y[rows_second[packed]] = res[16 * b + 8 + p]


def _short_rows_warp(plan: ShortRowsPlan, x: np.ndarray, y: np.ndarray) -> None:
    w = Warp()
    _run_pieced(w, plan.val13, plan.cid13, x, plan.rows13_one.size,
                plan.rows13_one, plan.rows13_three, y, first_slots=1,
                shape=plan.shape)
    _run_pieced(w, plan.val22, plan.cid22, x, plan.rows22_a.size,
                plan.rows22_a, plan.rows22_b, y, first_slots=2,
                shape=plan.shape)

    # len-4 rows: one full-x MMA per block, results to 8 consecutive lanes.
    n4 = plan.rows4.size
    if n4:
        n_blocks = plan.val4.size // WARP_SIZE
        for blk in range(n_blocks):
            base = blk * WARP_SIZE
            frag_y = np.zeros((WARP_SIZE, 2), dtype=plan.shape.acc_dtype)
            frag_a = plan.val4[base + _FRAG_IDX]
            frag_x = x[plan.cid4[base + _FRAG_IDX]]
            frag_y = mma_m8n8k4(w, frag_y, frag_a, frag_x, shape=plan.shape)
            i = blk % 4
            target = ((_LANE - i * 8) >> 1) * 9
            f0 = w.shfl_sync(FULL_MASK, frag_y[:, 0], target)
            f1 = w.shfl_sync(FULL_MASK, frag_y[:, 1], target + 4)
            res = np.where((_LANE & 1) == 0, f0, f1)
            sel = (_LANE >> 3) == i
            for p in range(8):
                packed = blk * 8 + p
                if packed < n4:
                    y[plan.rows4[packed]] = res[np.nonzero(sel)[0][p]]

    # Algorithm 5: one thread per leftover length-1 row.
    acc_t = plan.shape.acc_dtype.type
    for t in range(plan.rows1.size):
        y[plan.rows1[t]] = acc_t(plan.val1[t]) * acc_t(x[plan.cid1[t]])
