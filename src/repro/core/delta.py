"""repro.delta — incremental plan maintenance for evolving sparsity.

Every layer built so far assumed an immutable matrix: one fingerprint,
one DASP plan, forever.  This module makes plans *mutable* without
giving up the bitwise contract:

``ValueUpdate``
    Same sparsity pattern, new values.  :func:`apply_value_update`
    patches the packed payload slabs (long ``val``, medium
    ``reg_val``/``irreg_val``, the four short slabs) **in place** — no
    reclassification, no repacking — and the patched plan is
    bitwise-identical to a fresh ``dasp_preprocess`` of the updated
    CSR.  The slab slot of every nonzero is recovered with a
    *position matrix*: the three builders are re-run once over the same
    structure with ``data = arange(1, nnz + 1)`` (float64 — exact up to
    2**53), so every filled slot ends up holding ``source_index + 1``
    and inverting that gives an O(1) nnz → (slab, offset) scatter map.

``StructuralUpdate``
    Insert/delete entries as COO triples.  :func:`apply_structural_update`
    splices the CSR and reclassifies **only touched rows**: untouched
    rows keep their packed slots (the base slabs are left alone — the
    per-row floating-point association of the category kernels makes
    their results independent of co-packed rows, the same invariance
    ``repro.shard`` relies on for arbitrary band splits), while dirty
    rows are staged into a patchable *overlay* — a mini DASP plan over
    just those rows whose results overwrite the stale base values at
    execution time (see the hooks in ``spmv.dasp_spmv`` /
    ``spmm.dasp_spmm_on_plan``).

``rebuild_debt``
    The overlay grows with every structural patch; once its stored
    elements exceed ``compact_threshold`` × the base plan's, the cost
    model says patching has gotten slower than rebuilding and
    :func:`apply_update` compacts — a full ``from_csr`` rebuild for a
    single plan, or *per-band* rebuilds for a :class:`~repro.shard.plan.
    ShardedPlan` (only bands over threshold are rebuilt).

All patch paths report modeled work as :class:`~repro.gpu.events.
PreprocessEvents`, so patch-vs-rebuild time flows through the same
``estimate_preprocess_time`` cost model the serving layer charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .._util import check
from ..gpu.events import PreprocessEvents
from .classify import categorize_lengths
from .format import DASPMatrix
from .long_rows import build_long_rows
from .medium_rows import build_medium_rows
from .short_rows import build_short_rows

__all__ = [
    "DEFAULT_COMPACT_THRESHOLD",
    "DeltaError",
    "DeltaOverlay",
    "DeltaState",
    "PatchInfo",
    "StructuralUpdate",
    "ValueScatter",
    "ValueUpdate",
    "apply_overlay_spmm",
    "apply_overlay_spmv",
    "apply_structural_to_csr",
    "apply_structural_update",
    "apply_update",
    "apply_value_update",
    "build_value_scatter",
    "clone_for_patch",
    "compact_plan",
    "consolidate_plan",
    "delta_from_arrays",
    "delta_to_arrays",
    "random_delta",
    "rebuild_debt",
    "rebuild_events",
]

#: Compact when the overlay holds more than this fraction of the base
#: plan's stored elements: past that point every SpMV pays >25% extra
#: kernel work re-computing dirty rows, and the accumulated mini-plan
#: rebuild cost of the *next* patch rivals a from-scratch build.
DEFAULT_COMPACT_THRESHOLD = 0.25


class DeltaError(ValueError):
    """A delta referenced an entry that does not exist (value update or
    delete of an absent position), or was otherwise malformed."""


# ----------------------------------------------------------------------
# Typed delta API
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ValueUpdate:
    """New values for entries that already exist in the pattern.

    Duplicate ``(row, col)`` triples are allowed; the last one wins.
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "rows", np.asarray(self.rows, dtype=np.int64))
        object.__setattr__(self, "cols", np.asarray(self.cols, dtype=np.int64))
        object.__setattr__(self, "vals", np.asarray(self.vals))
        check(self.rows.shape == self.cols.shape == self.vals.shape,
              "ValueUpdate triples must be parallel 1-D arrays")

    @property
    def n_entries(self) -> int:
        return int(self.rows.size)

    def touched_rows(self) -> np.ndarray:
        return np.unique(self.rows)


@dataclass(frozen=True)
class StructuralUpdate:
    """Insert/delete entries as COO triples.

    Deletes are applied first, then inserts — so delete+insert of the
    same position is a re-insert.  An insert at an existing position is
    an upsert (the entry keeps its slot, the value changes).  Deltas
    never change the matrix *shape*.
    """

    insert_rows: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    insert_cols: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    insert_vals: np.ndarray = field(default_factory=lambda: np.zeros(0, np.float64))
    delete_rows: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    delete_cols: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))

    def __post_init__(self):
        for name in ("insert_rows", "insert_cols", "delete_rows", "delete_cols"):
            object.__setattr__(self, name, np.asarray(getattr(self, name),
                                                      dtype=np.int64))
        object.__setattr__(self, "insert_vals", np.asarray(self.insert_vals))
        check(self.insert_rows.shape == self.insert_cols.shape
              == self.insert_vals.shape,
              "insert triples must be parallel 1-D arrays")
        check(self.delete_rows.shape == self.delete_cols.shape,
              "delete pairs must be parallel 1-D arrays")

    @property
    def n_entries(self) -> int:
        return int(self.insert_rows.size + self.delete_rows.size)

    def touched_rows(self) -> np.ndarray:
        return np.unique(np.concatenate([self.insert_rows, self.delete_rows]))


# ----------------------------------------------------------------------
# Patch bookkeeping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PatchInfo:
    """What one patch did, plus its modeled cost (for the obs layer and
    the patch-vs-rebuild benchmark gate)."""

    kind: str                      # "value" | "structural" | "compaction"
    touched_rows: int
    nnz_touched: int
    migrations: int                # touched rows whose category changed
    compacted: bool
    events: PreprocessEvents

    def seconds(self, device) -> float:
        from ..gpu.cost_model import estimate_preprocess_time

        return estimate_preprocess_time(self.events, device)


def _zero_events() -> PreprocessEvents:
    return PreprocessEvents()


def _sum_events(*evs: PreprocessEvents) -> PreprocessEvents:
    return PreprocessEvents(
        device_bytes=sum(e.device_bytes for e in evs),
        host_bytes=sum(e.host_bytes for e in evs),
        sort_keys=sum(e.sort_keys for e in evs),
        kernel_launches=sum(e.kernel_launches for e in evs),
        allocations=sum(e.allocations for e in evs),
    )


def rebuild_events(plan) -> PreprocessEvents:
    """Modeled cost of a from-scratch rebuild of *plan* (the baseline
    the ≥3× patch-advantage gate compares against)."""
    from .preprocess import dasp_preprocess_events

    if hasattr(plan, "shards"):           # ShardedPlan duck-type
        return _sum_events(*[dasp_preprocess_events(s.dasp)
                             for s in plan.shards])
    return dasp_preprocess_events(plan)


# ----------------------------------------------------------------------
# Position-matrix value scatter
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ValueScatter:
    """O(1) map from a CSR nonzero index to its packed slab slot.

    ``slab_of[i]`` indexes :meth:`DASPMatrix.value_slabs` order;
    ``pos_of[i]`` is the flat offset inside that slab.
    """

    slab_of: np.ndarray            # int8 (nnz,)
    pos_of: np.ndarray             # int64 (nnz,)


def build_value_scatter(plan: DASPMatrix, base_csr=None) -> ValueScatter:
    """Invert the slab layout of *plan* into a nonzero → slot map.

    Re-runs the three builders over the plan's (base) structure with
    ``data = arange(1, nnz + 1)`` as float64: layout depends only on
    structure, so every filled slot of the fake slabs holds its source
    index + 1 and padding holds 0.
    """
    from ..formats.csr import CSRMatrix

    csr = base_csr if base_csr is not None else plan.csr
    nnz = int(csr.indptr[-1])
    fake = CSRMatrix(csr.shape, csr.indptr, csr.indices,
                     np.arange(1, nnz + 1, dtype=np.float64))
    cls = plan.classification
    shape = plan.mma_shape
    fakes = DASPMatrix(
        shape=csr.shape, dtype=np.dtype(np.float64), csr=fake,
        mma_shape=shape, max_len=plan.max_len, threshold=plan.threshold,
        classification=cls,
        long_plan=build_long_rows(fake, cls.long, shape),
        medium_plan=build_medium_rows(fake, cls.medium, shape,
                                      threshold=plan.threshold),
        short_plan=build_short_rows(fake, cls.short, shape),
    )
    slab_of = np.full(nnz, -1, dtype=np.int8)
    pos_of = np.zeros(nnz, dtype=np.int64)
    for sid, (_, arr) in enumerate(fakes.value_slabs()):
        flat = _flat(arr)
        filled = np.flatnonzero(flat)
        src = flat[filled].astype(np.int64) - 1
        slab_of[src] = sid
        pos_of[src] = filled
    check(bool(np.all(slab_of >= 0)),
          "value scatter failed to place every nonzero")
    return ValueScatter(slab_of=slab_of, pos_of=pos_of)


def _flat(arr: np.ndarray) -> np.ndarray:
    check(arr.flags["C_CONTIGUOUS"], "slab must be C-contiguous")
    return arr.reshape(-1)


def _csr_keys(csr) -> np.ndarray:
    """Row-major ``row * ncols + col`` keys; strictly increasing for a
    duplicate-free CSR with sorted column indices."""
    lens = csr.row_lengths()
    rows = np.repeat(np.arange(csr.shape[0], dtype=np.int64), lens)
    return rows * np.int64(csr.shape[1]) + csr.indices.astype(np.int64)


def _lookup(keys: np.ndarray, wanted: np.ndarray, what: str) -> np.ndarray:
    if keys.size == 0:
        if wanted.size:
            raise DeltaError(f"{what}: entry not present in sparsity pattern")
        return np.zeros(0, dtype=np.int64)
    pos = np.searchsorted(keys, wanted)
    bad = pos >= keys.size
    bad |= keys[np.minimum(pos, keys.size - 1)] != wanted
    if np.any(bad):
        raise DeltaError(f"{what}: entry not present in sparsity pattern")
    return pos


# ----------------------------------------------------------------------
# Delta state attached to a plan
# ----------------------------------------------------------------------
@dataclass
class DeltaOverlay:
    """Mini DASP plan over the dirty rows; its results overwrite the
    base plan's stale values at execution time."""

    rows: np.ndarray               # dirty rows with >= 1 nonzero, ascending
    empty_rows: np.ndarray         # dirty rows that are now empty
    mini: DASPMatrix


@dataclass
class DeltaState:
    """Mutable patch bookkeeping attached to ``DASPMatrix.delta``.

    ``base_csr`` is the structure the slabs were packed from (identical
    to ``plan.csr`` until the first structural patch, then frozen until
    compaction); ``dirty`` rows have stale slab slots and are served
    from ``overlay`` instead.
    """

    base_csr: object
    dirty: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    overlay: DeltaOverlay | None = None
    patches: int = 0
    _scatter: ValueScatter | None = None
    _base_key: np.ndarray | None = None
    _cur_key: np.ndarray | None = None

    def base_key(self) -> np.ndarray:
        if self._base_key is None:
            self._base_key = _csr_keys(self.base_csr)
        return self._base_key

    def cur_key(self, csr) -> np.ndarray:
        if self._cur_key is None:
            self._cur_key = (self.base_key() if csr is self.base_csr
                             else _csr_keys(csr))
        return self._cur_key

    def scatter(self, plan) -> ValueScatter:
        if self._scatter is None:
            self._scatter = build_value_scatter(plan, self.base_csr)
        return self._scatter


def ensure_state(plan: DASPMatrix) -> DeltaState:
    if plan.delta is None:
        plan.delta = DeltaState(base_csr=plan.csr)
    return plan.delta


def clone_for_patch(plan):
    """Shallow-copy *plan* so in-place value patches cannot corrupt the
    original: value slabs and ``csr.data`` are copied, structure arrays
    and the scatter map are shared.  The registry uses this so in-flight
    requests drain against the pre-update version."""
    from ..formats.csr import CSRMatrix

    if hasattr(plan, "shards"):            # ShardedPlan duck-type
        shards = [replace(s, dasp=clone_for_patch(s.dasp))
                  for s in plan.shards]
        csr = CSRMatrix(plan.csr.shape, plan.csr.indptr, plan.csr.indices,
                        plan.csr.data.copy())
        return replace(plan, csr=csr, shards=shards)
    csr = CSRMatrix(plan.csr.shape, plan.csr.indptr, plan.csr.indices,
                    plan.csr.data.copy())
    st = plan.delta
    new_st = None
    if st is not None:
        new_st = DeltaState(base_csr=st.base_csr, dirty=st.dirty,
                            overlay=st.overlay, patches=st.patches,
                            _scatter=st._scatter, _base_key=st._base_key,
                            _cur_key=st._cur_key)
    return replace(
        plan, csr=csr, delta=new_st,
        long_plan=replace(plan.long_plan, val=plan.long_plan.val.copy()),
        medium_plan=replace(plan.medium_plan,
                            reg_val=plan.medium_plan.reg_val.copy(),
                            irreg_val=plan.medium_plan.irreg_val.copy()),
        short_plan=replace(plan.short_plan,
                           val13=plan.short_plan.val13.copy(),
                           val22=plan.short_plan.val22.copy(),
                           val4=plan.short_plan.val4.copy(),
                           val1=plan.short_plan.val1.copy()),
    )


# ----------------------------------------------------------------------
# Value updates — in-place slab patch
# ----------------------------------------------------------------------
def _dedupe_last(k: np.ndarray) -> np.ndarray:
    """Indices selecting the *last* occurrence of each key, key-sorted."""
    order = np.argsort(k, kind="stable")
    ks = k[order]
    last = np.ones(ks.size, dtype=bool)
    if ks.size > 1:
        last[:-1] = ks[:-1] != ks[1:]
    return order[last]


def apply_value_update(plan: DASPMatrix, delta: ValueUpdate) -> PatchInfo:
    """Patch new values into *plan* in place; bitwise-identical to a
    fresh build of the updated CSR.

    The canonical value of an entry is ``csr.data``'s — the new values
    are cast to the matrix dtype once and the *cast* result is written
    to both ``csr.data`` and the slab slot, exactly what a fresh
    ``from_csr`` would store.
    """
    if delta.n_entries == 0:
        return PatchInfo("value", 0, 0, 0, False, _zero_events())
    m, n = plan.shape
    check(bool(np.all((delta.rows >= 0) & (delta.rows < m))), "row out of range")
    check(bool(np.all((delta.cols >= 0) & (delta.cols < n))), "col out of range")
    state = ensure_state(plan)
    k = delta.rows * np.int64(n) + delta.cols
    sel = _dedupe_last(k)
    rows, k = delta.rows[sel], k[sel]
    vals = delta.vals[sel]

    cur = state.cur_key(plan.csr)
    pos_cur = _lookup(cur, k, "value update")
    plan.csr.data[pos_cur] = np.asarray(vals).astype(plan.csr.data.dtype)
    cast = plan.csr.data[pos_cur]

    if state.dirty.size:
        j = np.searchsorted(state.dirty, rows)
        j = np.minimum(j, state.dirty.size - 1)
        is_dirty = state.dirty[j] == rows
    else:
        is_dirty = np.zeros(rows.size, dtype=bool)

    clean = ~is_dirty
    if clean.any():
        sc = state.scatter(plan)
        # Clean rows have identical (row, col) membership in the base
        # structure, so their slab slots are found via the base keys.
        pos_base = _lookup(state.base_key(), k[clean], "value update (base)")
        sid, off, cv = sc.slab_of[pos_base], sc.pos_of[pos_base], cast[clean]
        slabs = [arr for _, arr in plan.value_slabs()]
        for s in np.unique(sid):
            msk = sid == s
            _flat(slabs[s])[off[msk]] = cv[msk]
    if is_dirty.any() and state.overlay is not None:
        # Dirty rows are served from the overlay, which holds value
        # copies — rebuild it from the (already patched) current CSR.
        state.overlay = _build_overlay(plan, state.dirty)

    vb = plan.csr.data.dtype.itemsize
    ev = PreprocessEvents(host_bytes=float(k.size) * (2 * vb + 16))
    if is_dirty.any() and state.overlay is not None:
        from .preprocess import dasp_preprocess_events

        ev = _sum_events(ev, dasp_preprocess_events(state.overlay.mini))
    state.patches += 1
    return PatchInfo("value", int(np.unique(rows).size), int(k.size),
                     0, False, ev)


# ----------------------------------------------------------------------
# Structural updates — CSR splice + dirty-row overlay
# ----------------------------------------------------------------------
def apply_structural_to_csr(csr, delta: StructuralUpdate):
    """Apply *delta* to a CSR matrix; returns ``(new_csr, touched_rows)``.

    Pure array splice — the result keeps sorted, duplicate-free column
    indices.  Raises :class:`DeltaError` on a delete of an absent entry
    or an out-of-range coordinate.
    """
    from ..formats.csr import CSRMatrix

    m, n = csr.shape
    for r, c in ((delta.insert_rows, delta.insert_cols),
                 (delta.delete_rows, delta.delete_cols)):
        check(bool(np.all((r >= 0) & (r < m))), "row out of range")
        check(bool(np.all((c >= 0) & (c < n))), "col out of range")
    keys = _csr_keys(csr)
    data = csr.data.copy()
    keep = np.ones(keys.size, dtype=bool)

    if delta.delete_rows.size:
        dk = np.unique(delta.delete_rows * np.int64(n) + delta.delete_cols)
        pos = _lookup(keys, dk, "delete")
        keep[pos] = False

    ins_k = delta.insert_rows * np.int64(n) + delta.insert_cols
    if ins_k.size:
        sel = _dedupe_last(ins_k)
        ins_k = ins_k[sel]
        ins_v = np.asarray(delta.insert_vals)[sel].astype(data.dtype)
        pos = np.searchsorted(keys, ins_k)
        safe = np.minimum(pos, keys.size - 1)
        exists = (pos < keys.size) & (keys[safe] == ins_k) & keep[safe] \
            if keys.size else np.zeros(ins_k.size, dtype=bool)
        data[safe[exists]] = ins_v[exists]       # upsert in place
        new_k, new_v = ins_k[~exists], ins_v[~exists]
    else:
        new_k = np.zeros(0, dtype=np.int64)
        new_v = np.zeros(0, dtype=data.dtype)

    merged_k = np.concatenate([keys[keep], new_k])
    merged_v = np.concatenate([data[keep], new_v])
    order = np.argsort(merged_k, kind="stable")
    merged_k, merged_v = merged_k[order], merged_v[order]

    rows_of = merged_k // np.int64(n)
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows_of, minlength=m), out=indptr[1:])
    out = CSRMatrix((m, n), indptr,
                    (merged_k % np.int64(n)).astype(np.int32), merged_v)
    return out, delta.touched_rows()


def _build_overlay(plan: DASPMatrix, dirty: np.ndarray) -> DeltaOverlay | None:
    if dirty.size == 0:
        return None
    lens = plan.csr.row_lengths()[dirty]
    rows = dirty[lens > 0]
    empty = dirty[lens == 0]
    mini = None
    if rows.size:
        mini = DASPMatrix.from_csr(plan.csr.row_slice(rows),
                                   max_len=plan.max_len,
                                   threshold=plan.threshold,
                                   mma_shape=plan.mma_shape)
    return DeltaOverlay(rows=rows, empty_rows=empty, mini=mini)


def _count_migrations(plan: DASPMatrix, state: DeltaState,
                      touched: np.ndarray) -> int:
    base_cat = categorize_lengths(state.base_csr.row_lengths()[touched],
                                  max_len=plan.max_len)
    new_cat = categorize_lengths(plan.csr.row_lengths()[touched],
                                 max_len=plan.max_len)
    return int(np.count_nonzero(base_cat != new_cat))


def apply_structural_update(plan: DASPMatrix, delta: StructuralUpdate, *,
                            auto_compact: bool = True,
                            compact_threshold: float = DEFAULT_COMPACT_THRESHOLD,
                            ):
    """Insert/delete entries; returns ``(new_plan, PatchInfo)``.

    The returned plan *shares* the packed slabs with the input (only the
    CSR and delta state are new) — callers that must keep serving the
    old version (the registry) clone before any later value patch via
    :func:`clone_for_patch`.
    """
    if delta.n_entries == 0:
        return plan, PatchInfo("structural", 0, 0, 0, False, _zero_events())
    state = ensure_state(plan)
    new_csr, touched = apply_structural_to_csr(plan.csr, delta)
    dirty = np.union1d(state.dirty, touched)
    new_state = DeltaState(base_csr=state.base_csr, dirty=dirty,
                           patches=state.patches + 1,
                           _scatter=state._scatter,
                           _base_key=state._base_key)
    new_plan = replace(plan, csr=new_csr, delta=new_state)
    new_state.overlay = _build_overlay(new_plan, dirty)

    migrations = _count_migrations(new_plan, new_state, touched)
    vb = new_csr.data.dtype.itemsize
    ev = PreprocessEvents(host_bytes=float(delta.n_entries) * (vb + 12) * 2)
    if new_state.overlay is not None and new_state.overlay.mini is not None:
        from .preprocess import dasp_preprocess_events

        ev = _sum_events(ev, dasp_preprocess_events(new_state.overlay.mini))

    compacted = False
    if auto_compact and rebuild_debt(new_plan) > compact_threshold:
        new_plan, cinfo = compact_plan(new_plan)
        ev = _sum_events(ev, cinfo.events)
        compacted = True
    return new_plan, PatchInfo("structural", int(touched.size),
                               int(delta.n_entries), migrations,
                               compacted, ev)


def rebuild_debt(plan) -> float:
    """Fraction of the base plan's stored elements duplicated in the
    overlay — the extra kernel work every SpMV pays for dirty rows.
    Sharded plans report the worst band."""
    if hasattr(plan, "shards"):
        return max((rebuild_debt(s.dasp) for s in plan.shards), default=0.0)
    state = getattr(plan, "delta", None)
    if state is None or state.overlay is None or state.overlay.mini is None:
        return 0.0
    return state.overlay.mini.stored_elements / max(1, plan.stored_elements)


def compact_plan(plan: DASPMatrix):
    """Full rebuild from the current CSR; resets all delta state."""
    from .preprocess import dasp_preprocess_events

    fresh = DASPMatrix.from_csr(plan.csr, max_len=plan.max_len,
                                threshold=plan.threshold,
                                mma_shape=plan.mma_shape)
    ev = dasp_preprocess_events(fresh)
    return fresh, PatchInfo("compaction", plan.shape[0], plan.nnz,
                            0, True, ev)


def consolidate_plan(plan):
    """Return a self-contained plan safe to serialize.

    The artifact format stores only the packed slabs and the CSR — an
    overlay would be silently dropped, leaving stale slab values for
    dirty rows on reload.  Any plan (or band of a sharded plan) with an
    overlay is therefore compacted first; overlay-free plans are
    returned unchanged."""
    if hasattr(plan, "shards"):
        shards = list(plan.shards)
        changed = False
        for i, s in enumerate(shards):
            fresh = consolidate_plan(s.dasp)
            if fresh is not s.dasp:
                shards[i] = replace(s, dasp=fresh)
                changed = True
        return replace(plan, shards=shards) if changed else plan
    state = getattr(plan, "delta", None)
    if state is not None and state.overlay is not None:
        return compact_plan(plan)[0]
    return plan


# ----------------------------------------------------------------------
# Unified entry — plain or sharded plans, either delta type
# ----------------------------------------------------------------------
def apply_update(plan, delta, *, auto_compact: bool = True,
                 compact_threshold: float = DEFAULT_COMPACT_THRESHOLD):
    """Apply *delta* (value or structural) to a plain or sharded plan.

    Returns ``(new_plan, PatchInfo)``.  Value updates mutate in place
    (the returned plan is the input); structural updates return a new
    top-level object.  Sharded plans are patched band-by-band —
    compaction happens per band, so the blast radius of a hot band's
    churn never exceeds that band's rebuild.
    """
    if hasattr(plan, "shards"):
        return _apply_sharded(plan, delta, auto_compact=auto_compact,
                              compact_threshold=compact_threshold)
    if isinstance(delta, ValueUpdate):
        return plan, apply_value_update(plan, delta)
    if isinstance(delta, StructuralUpdate):
        return apply_structural_update(plan, delta, auto_compact=auto_compact,
                                       compact_threshold=compact_threshold)
    raise TypeError(f"unknown delta type {type(delta).__name__}")


def apply_delta_to_csr(csr, delta):
    """Apply *delta* to a bare CSR matrix (no plan); returns a new CSR.

    The plan-free mirror of :func:`apply_update` — drivers running with
    the plan cache disabled evolve their reference matrix through this,
    so update streams stay meaningful on the rebuild-per-request
    baseline too.
    """
    if isinstance(delta, StructuralUpdate):
        return apply_structural_to_csr(csr, delta)[0]
    if isinstance(delta, ValueUpdate):
        if delta.n_entries == 0:
            return csr
        from ..formats.csr import CSRMatrix

        out = CSRMatrix(csr.shape, csr.indptr, csr.indices, csr.data.copy())
        k = delta.rows * np.int64(csr.shape[1]) + delta.cols
        sel = _dedupe_last(k)
        _patch_csr_values(out, k[sel], delta.vals[sel])
        return out
    raise TypeError(f"unknown delta type {type(delta).__name__}")


def _band_split(row_starts: np.ndarray, rows: np.ndarray) -> np.ndarray:
    return np.searchsorted(row_starts, rows, side="right").astype(np.int64) - 1


def _patch_csr_values(csr, k: np.ndarray, vals: np.ndarray) -> None:
    pos = _lookup(_csr_keys(csr), k, "value update (top-level)")
    csr.data[pos] = np.asarray(vals).astype(csr.data.dtype)


def _apply_sharded(sp, delta, *, auto_compact: bool,
                   compact_threshold: float):
    row_starts = np.asarray(sp.row_starts, dtype=np.int64)
    infos: list[PatchInfo] = []
    if isinstance(delta, ValueUpdate):
        if delta.n_entries == 0:
            return sp, PatchInfo("value", 0, 0, 0, False, _zero_events())
        band = _band_split(row_starts, delta.rows)
        for b in np.unique(band):
            msk = band == b
            sub = ValueUpdate(rows=delta.rows[msk] - row_starts[b],
                              cols=delta.cols[msk], vals=delta.vals[msk])
            infos.append(apply_value_update(sp.shards[b].dasp, sub))
        # Keep the top-level CSR (fingerprints, fallback path) in sync.
        k = delta.rows * np.int64(sp.shape[1]) + delta.cols
        sel = _dedupe_last(k)
        _patch_csr_values(sp.csr, k[sel], delta.vals[sel])
        return sp, _merge_infos("value", infos, compacted=False)

    if isinstance(delta, StructuralUpdate):
        if delta.n_entries == 0:
            return sp, PatchInfo("structural", 0, 0, 0, False, _zero_events())
        ib = _band_split(row_starts, delta.insert_rows)
        db = _band_split(row_starts, delta.delete_rows)
        shards = list(sp.shards)
        compacted = False
        for b in np.unique(np.concatenate([ib, db])):
            im, dm = ib == b, db == b
            sub = StructuralUpdate(
                insert_rows=delta.insert_rows[im] - row_starts[b],
                insert_cols=delta.insert_cols[im],
                insert_vals=delta.insert_vals[im],
                delete_rows=delta.delete_rows[dm] - row_starts[b],
                delete_cols=delta.delete_cols[dm])
            new_dasp, info = apply_structural_update(
                shards[b].dasp, sub, auto_compact=auto_compact,
                compact_threshold=compact_threshold)
            shards[b] = replace(shards[b], dasp=new_dasp)
            compacted = compacted or info.compacted
            infos.append(info)
        new_top, _ = apply_structural_to_csr(sp.csr, delta)
        new_sp = replace(sp, csr=new_top, shards=shards)
        return new_sp, _merge_infos("structural", infos, compacted=compacted)

    raise TypeError(f"unknown delta type {type(delta).__name__}")


def _merge_infos(kind: str, infos: list, *, compacted: bool) -> PatchInfo:
    return PatchInfo(
        kind=kind,
        touched_rows=sum(i.touched_rows for i in infos),
        nnz_touched=sum(i.nnz_touched for i in infos),
        migrations=sum(i.migrations for i in infos),
        compacted=compacted,
        events=_sum_events(*[i.events for i in infos]) if infos
        else _zero_events(),
    )


# ----------------------------------------------------------------------
# Execution hooks — overlay application
# ----------------------------------------------------------------------
def apply_overlay_spmv(plan, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Overwrite dirty rows of *y* with the overlay mini-plan's results
    (called by ``dasp_spmv`` after the base kernels ran)."""
    from .spmv import _dasp_spmv_vectorized

    ov = plan.delta.overlay
    if ov.empty_rows.size:
        y[ov.empty_rows] = 0
    if ov.mini is not None:
        y[ov.rows] = _dasp_spmv_vectorized(ov.mini, x)
    return y


def apply_overlay_spmm(plan, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """2-D form of :func:`apply_overlay_spmv` (called by
    ``dasp_spmm_on_plan``)."""
    from .spmm import dasp_spmm_on_plan

    ov = plan.delta.overlay
    if ov.empty_rows.size:
        Y[ov.empty_rows] = 0
    if ov.mini is not None:
        Y[ov.rows] = dasp_spmm_on_plan(ov.mini, X)
    return Y


def has_overlay(plan) -> bool:
    state = getattr(plan, "delta", None)
    return state is not None and state.overlay is not None


# ----------------------------------------------------------------------
# Seeded delta generator (driver update streams, property tests)
# ----------------------------------------------------------------------
def random_delta(csr, rng: np.random.Generator, *, structural: bool = False,
                 n_entries: int = 8, insert_frac: float = 0.5,
                 scale: float = 1.0):
    """Draw a seeded delta against *csr*'s current pattern.

    Value deltas pick existing entries; structural deltas mix deletes of
    existing entries with inserts at random coordinates (an insert may
    collide with an existing entry — that is a legal upsert).  Values
    are drawn away from zero so sign-of-zero artifacts never enter the
    bitwise gates.
    """
    m, n = csr.shape
    nnz = int(csr.indptr[-1])

    def _vals(size):
        v = rng.standard_normal(size) * scale
        return np.where(v == 0.0, scale, v)

    def _existing(size):
        if nnz == 0 or size == 0:
            e = np.zeros(0, dtype=np.int64)
        else:
            e = rng.choice(nnz, size=min(size, nnz), replace=False)
        rows = np.searchsorted(csr.indptr, e, side="right").astype(np.int64) - 1
        cols = csr.indices[e].astype(np.int64)
        return rows, cols

    if not structural:
        rows, cols = _existing(n_entries)
        return ValueUpdate(rows=rows, cols=cols, vals=_vals(rows.size))

    n_ins = int(round(n_entries * insert_frac))
    n_del = max(0, n_entries - n_ins)
    drows, dcols = _existing(n_del)
    irows = rng.integers(0, m, size=n_ins).astype(np.int64)
    icols = rng.integers(0, n, size=n_ins).astype(np.int64)
    return StructuralUpdate(insert_rows=irows, insert_cols=icols,
                            insert_vals=_vals(n_ins),
                            delete_rows=drows, delete_cols=dcols)


# ----------------------------------------------------------------------
# Serialization — CRC-checked aux records in the plan store
# ----------------------------------------------------------------------
_KIND_VALUE, _KIND_STRUCTURAL = 0, 1


def delta_to_arrays(delta) -> dict:
    """Flatten a delta into named arrays (the store prefixes these as
    ``aux.delta.{version}.*`` records inside the ``.daspz`` artifact)."""
    if isinstance(delta, ValueUpdate):
        return {"kind": np.array([_KIND_VALUE], dtype=np.int64),
                "rows": delta.rows, "cols": delta.cols, "vals": delta.vals}
    if isinstance(delta, StructuralUpdate):
        return {"kind": np.array([_KIND_STRUCTURAL], dtype=np.int64),
                "ins_rows": delta.insert_rows, "ins_cols": delta.insert_cols,
                "ins_vals": delta.insert_vals,
                "del_rows": delta.delete_rows, "del_cols": delta.delete_cols}
    raise TypeError(f"unknown delta type {type(delta).__name__}")


def delta_from_arrays(arrays: dict):
    """Inverse of :func:`delta_to_arrays`."""
    kind = int(np.asarray(arrays["kind"])[0])
    if kind == _KIND_VALUE:
        return ValueUpdate(rows=arrays["rows"], cols=arrays["cols"],
                           vals=np.asarray(arrays["vals"]))
    if kind == _KIND_STRUCTURAL:
        return StructuralUpdate(
            insert_rows=arrays["ins_rows"], insert_cols=arrays["ins_cols"],
            insert_vals=np.asarray(arrays["ins_vals"]),
            delete_rows=arrays["del_rows"], delete_cols=arrays["del_cols"])
    raise DeltaError(f"unknown delta kind {kind}")
