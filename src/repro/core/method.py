"""`DASPMethod` — DASP wrapped in the common :class:`SpMVMethod` interface
so it can be measured alongside the five baselines.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DeviceSpec
from ..gpu.events import KernelEvents, PreprocessEvents
from ..gpu.kernel import SpMVMethod
from ..gpu.memory import x_traffic_bytes
from .format import DASPMatrix
from .long_rows import long_rows_events
from .medium_rows import medium_rows_events
from .preprocess import dasp_preprocess_events
from .short_rows import short_rows_events
from .spmv import dasp_spmv


class DASPMethod(SpMVMethod):
    """The paper's algorithm as a pluggable SpMV method.

    Parameters mirror :meth:`DASPMatrix.from_csr`; the defaults are the
    paper's (MAX_LEN = 256, threshold = 0.75).
    """

    name = "DASP"
    supported_dtypes = (np.float64, np.float32, np.float16)

    def __init__(self, *, max_len: int = 256, threshold: float = 0.75) -> None:
        self.max_len = max_len
        self.threshold = threshold

    def prepare(self, csr) -> DASPMatrix:
        return DASPMatrix.from_csr(csr, max_len=self.max_len,
                                   threshold=self.threshold)

    def run(self, plan: DASPMatrix, x: np.ndarray) -> np.ndarray:
        return dasp_spmv(plan, x)

    def events(self, plan: DASPMatrix, device: DeviceSpec) -> KernelEvents:
        vb = plan.dtype.itemsize
        # DASP's kernels bypass the L1/L2 for the streamed matrix data
        # (Section 3.3's "bypass cache method"), reserving cache for x.
        total_x = x_traffic_bytes(plan.csr, vb, device, bypass_l1=True)
        nnz = max(plan.nnz, 1)
        shares = {
            "long": plan.long_plan.orig_nnz / nnz,
            "medium": plan.medium_plan.orig_nnz / nnz,
            "short": plan.short_plan.orig_nnz / nnz,
        }
        ev = long_rows_events(plan.long_plan, device,
                              x_bytes=total_x * shares["long"])
        ev = ev.combine(medium_rows_events(plan.medium_plan, device,
                                           x_bytes=total_x * shares["medium"]))
        ev = ev.combine(short_rows_events(plan.short_plan, device,
                                          x_bytes=total_x * shares["short"]))
        # Category kernels are independent and issued on concurrent CUDA
        # streams: the critical path is the deepest dependent chain (two
        # kernels for long rows — the reduction waits on the partials),
        # while each extra concurrent kernel still costs a fraction of a
        # launch in CPU-side issue time.
        sp = plan.short_plan
        n_short_kernels = sum(1 for n in (sp.rows13_one.size, sp.rows22_a.size,
                                          sp.rows4.size, sp.rows1.size) if n)
        total_kernels = (2 if plan.long_plan.n_rows else 0) \
            + (1 if plan.medium_plan.n_rows else 0) + n_short_kernels
        chain = 2 if plan.long_plan.n_rows else (1 if total_kernels else 0)
        ev.kernel_launches = chain + 0.35 * max(total_kernels - chain, 0)
        return ev

    def preprocess_events(self, plan: DASPMatrix) -> PreprocessEvents:
        return dasp_preprocess_events(plan)
