"""`DASPMatrix` — the paper's MMA-friendly sparse matrix container.

Bundles the three category plans (long / medium / short), the empty-row
bookkeeping and the packing parameters.  Built from CSR via
:meth:`DASPMatrix.from_csr` (the paper's preprocessing step, Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from .._util import check
from ..gpu.mma import MmaShape, shape_for_dtype
from .classify import DEFAULT_MAX_LEN, RowClassification, classify_rows
from .long_rows import LongRowsPlan, build_long_rows
from .medium_rows import DEFAULT_THRESHOLD, MediumRowsPlan, build_medium_rows
from .short_rows import ShortRowsPlan, build_short_rows


@dataclass
class DASPMatrix:
    """A sparse matrix converted to the DASP blocked layout.

    Attributes
    ----------
    shape / dtype:
        Logical matrix shape and value dtype.
    csr:
        The source CSR matrix (kept for reference SpMV and the memory
        model's x-traffic analysis).
    mma_shape:
        MMA instruction geometry (m8n8k4 FP64 by default).
    classification:
        Row category assignment.
    long_plan / medium_plan / short_plan:
        Packed per-category data structures.
    """

    shape: tuple[int, int]
    dtype: np.dtype
    csr: object
    mma_shape: MmaShape
    max_len: int
    threshold: float
    classification: RowClassification
    long_plan: LongRowsPlan
    medium_plan: MediumRowsPlan
    short_plan: ShortRowsPlan
    #: ``repro.core.delta.DeltaState`` once the plan has been patched —
    #: never serialized (``array_inventory`` walks only the three
    #: category plans) and ``None`` for a freshly built plan.
    delta: object = None

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr, *, max_len: int = DEFAULT_MAX_LEN,
                 threshold: float = DEFAULT_THRESHOLD,
                 mma_shape: MmaShape | None = None) -> "DASPMatrix":
        """Convert a CSR matrix into the DASP layout (Section 3.2)."""
        shape = mma_shape or shape_for_dtype(csr.data.dtype)
        check(np.dtype(csr.data.dtype) == shape.in_dtype,
              f"matrix dtype {csr.data.dtype} != MMA input dtype {shape.in_dtype}")
        cls_result = classify_rows(csr, max_len=max_len)
        return cls(
            shape=csr.shape,
            dtype=np.dtype(csr.data.dtype),
            csr=csr,
            mma_shape=shape,
            max_len=int(max_len),
            threshold=float(threshold),
            classification=cls_result,
            long_plan=build_long_rows(csr, cls_result.long, shape),
            medium_plan=build_medium_rows(csr, cls_result.medium, shape,
                                          threshold=threshold),
            short_plan=build_short_rows(csr, cls_result.short, shape),
        )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Real nonzeros (excludes padding)."""
        return (self.long_plan.orig_nnz + self.medium_plan.orig_nnz
                + self.short_plan.orig_nnz)

    @property
    def stored_elements(self) -> int:
        """Stored slots including every padded zero."""
        return (self.long_plan.padded_nnz + self.medium_plan.reg_nnz
                + self.medium_plan.irreg_nnz + self.short_plan.padded_nnz)

    @property
    def padding_ratio(self) -> float:
        """Overall stored/real ratio — the zero-fill rate the paper quotes
        (e.g. 0.85% fill for 'rel19' means ratio 1.0085)."""
        return self.stored_elements / self.nnz if self.nnz else 1.0

    def category_nnz(self) -> dict[str, int]:
        """Real nonzeros per category (Figure 12b's numerator)."""
        return {
            "long": self.long_plan.orig_nnz,
            "medium": self.medium_plan.orig_nnz,
            "short": self.short_plan.orig_nnz,
        }

    def value_slabs(self) -> list:
        """Ordered ``(name, array)`` list of every payload slab holding
        matrix *values* (as opposed to column ids / pointers) — the
        arrays a :class:`~repro.core.delta.ValueUpdate` patches in
        place.  Order is load-bearing: ``repro.core.delta`` indexes it
        from the scatter map's slab ids."""
        from .long_rows import VALUE_SLAB_FIELDS as _LONG
        from .medium_rows import VALUE_SLAB_FIELDS as _MEDIUM
        from .short_rows import VALUE_SLAB_FIELDS as _SHORT

        out = []
        for prefix, plan, names in (("long.", self.long_plan, _LONG),
                                    ("medium.", self.medium_plan, _MEDIUM),
                                    ("short.", self.short_plan, _SHORT)):
            out.extend((prefix + n, getattr(plan, n)) for n in names)
        return out

    # ------------------------------------------------------------------
    # serialization inventory (repro.store)
    # ------------------------------------------------------------------
    def array_inventory(self, *, include_csr: bool = False) -> dict:
        """Ordered ``name -> ndarray`` inventory of this plan's payloads.

        With ``include_csr=False`` (default) the inventory covers exactly
        the packed per-category arrays a server keeps device-resident —
        the same set :func:`repro.serve.plan_nbytes` charges against the
        cache budget.  ``include_csr=True`` adds the source CSR arrays
        (``csr.indptr`` / ``csr.indices`` / ``csr.data``), which the
        on-disk artifact must carry: the memory model's x-traffic
        analysis and the merge-CSR fallback both read ``plan.csr``.
        """
        inv: dict = {}
        if include_csr:
            inv["csr.indptr"] = np.asarray(self.csr.indptr)
            inv["csr.indices"] = np.asarray(self.csr.indices)
            inv["csr.data"] = np.asarray(self.csr.data)
        for prefix, plan in (("long", self.long_plan),
                             ("medium", self.medium_plan),
                             ("short", self.short_plan)):
            for f in fields(plan):
                v = getattr(plan, f.name)
                if isinstance(v, np.ndarray):
                    inv[f"{prefix}.{f.name}"] = v
        return inv

    def to_arrays(self) -> tuple[dict, dict]:
        """``(meta, arrays)`` pair fully describing this plan.

        ``meta`` is a JSON-serializable dict (shape, dtype, MMA
        geometry, packing parameters and the scalar plan fields);
        ``arrays`` is the full :meth:`array_inventory` including the
        source CSR.  :meth:`from_arrays` inverts the pair exactly — the
        classification arrays are *not* stored because they are
        recoverable bit-for-bit from the plans and the CSR row lengths.
        """
        meta = {
            "kind": "dasp",
            "shape": [int(self.shape[0]), int(self.shape[1])],
            "dtype": np.dtype(self.dtype).name,
            "mma": {
                "m": int(self.mma_shape.m),
                "n": int(self.mma_shape.n),
                "k": int(self.mma_shape.k),
                "in_dtype": np.dtype(self.mma_shape.in_dtype).name,
                "acc_dtype": np.dtype(self.mma_shape.acc_dtype).name,
                "name": str(self.mma_shape.name),
            },
            "max_len": int(self.max_len),
            "threshold": float(self.threshold),
            "plans": {
                "long": {"orig_nnz": int(self.long_plan.orig_nnz)},
                "medium": {
                    "orig_nnz": int(self.medium_plan.orig_nnz),
                    "threshold": float(self.medium_plan.threshold),
                    "loop_num": int(self.medium_plan.loop_num),
                },
                "short": {"orig_nnz": int(self.short_plan.orig_nnz)},
            },
        }
        return meta, self.array_inventory(include_csr=True)

    @classmethod
    def from_arrays(cls, meta: dict, arrays: dict) -> "DASPMatrix":
        """Rebuild a plan from a :meth:`to_arrays` pair.

        The arrays may be read-only views (e.g. ``np.memmap`` slices of
        an artifact file); nothing here writes into them.  The row
        classification is re-derived in O(m) from the CSR row lengths
        and the plans' own row indices — no sort, and bit-identical to
        what :func:`~repro.core.classify.classify_rows` produced at
        build time.
        """
        from ..formats.csr import CSRMatrix

        shape = (int(meta["shape"][0]), int(meta["shape"][1]))
        mm = meta["mma"]
        mma = MmaShape(m=int(mm["m"]), n=int(mm["n"]), k=int(mm["k"]),
                       in_dtype=np.dtype(mm["in_dtype"]),
                       acc_dtype=np.dtype(mm["acc_dtype"]),
                       name=str(mm["name"]))
        csr = CSRMatrix(shape, arrays["csr.indptr"], arrays["csr.indices"],
                        arrays["csr.data"])
        pm = meta["plans"]
        long_plan = LongRowsPlan(
            row_idx=arrays["long.row_idx"],
            group_ptr=arrays["long.group_ptr"],
            val=arrays["long.val"],
            cid=arrays["long.cid"],
            shape=mma,
            orig_nnz=int(pm["long"]["orig_nnz"]),
        )
        medium_plan = MediumRowsPlan(
            row_idx=arrays["medium.row_idx"],
            rowblock_ptr=arrays["medium.rowblock_ptr"],
            reg_val=arrays["medium.reg_val"],
            reg_cid=arrays["medium.reg_cid"],
            irreg_ptr=arrays["medium.irreg_ptr"],
            irreg_val=arrays["medium.irreg_val"],
            irreg_cid=arrays["medium.irreg_cid"],
            shape=mma,
            threshold=float(pm["medium"]["threshold"]),
            loop_num=int(pm["medium"]["loop_num"]),
            orig_nnz=int(pm["medium"]["orig_nnz"]),
        )
        short_plan = ShortRowsPlan(
            shape=mma,
            val13=arrays["short.val13"], cid13=arrays["short.cid13"],
            rows13_one=arrays["short.rows13_one"],
            rows13_three=arrays["short.rows13_three"],
            val22=arrays["short.val22"], cid22=arrays["short.cid22"],
            rows22_a=arrays["short.rows22_a"],
            rows22_b=arrays["short.rows22_b"],
            val4=arrays["short.val4"], cid4=arrays["short.cid4"],
            rows4=arrays["short.rows4"],
            val1=arrays["short.val1"], cid1=arrays["short.cid1"],
            rows1=arrays["short.rows1"],
            orig_nnz=int(pm["short"]["orig_nnz"]),
        )
        lens = csr.row_lengths()
        idx = np.arange(lens.size, dtype=np.int64)
        classification = RowClassification(
            max_len=int(meta["max_len"]),
            long=np.asarray(long_plan.row_idx),
            medium=np.asarray(medium_plan.row_idx),
            short={k: idx[lens == k] for k in (1, 2, 3, 4)},
            empty=idx[lens == 0],
        )
        return cls(
            shape=shape,
            dtype=np.dtype(meta["dtype"]),
            csr=csr,
            mma_shape=mma,
            max_len=int(meta["max_len"]),
            threshold=float(meta["threshold"]),
            classification=classification,
            long_plan=long_plan,
            medium_plan=medium_plan,
            short_plan=short_plan,
        )

    def summary(self) -> str:
        """One-line human-readable structure summary."""
        c = self.classification
        return (
            f"DASP {self.shape[0]}x{self.shape[1]} nnz={self.nnz} "
            f"[long: {c.n_long} rows / {self.long_plan.n_groups} groups, "
            f"medium: {c.n_medium} rows / {self.medium_plan.n_blocks} blocks "
            f"(+{self.medium_plan.irreg_nnz} irregular), "
            f"short: {c.n_short} rows, empty: {c.n_empty}] "
            f"padding x{self.padding_ratio:.4f}"
        )
