"""`DASPMatrix` — the paper's MMA-friendly sparse matrix container.

Bundles the three category plans (long / medium / short), the empty-row
bookkeeping and the packing parameters.  Built from CSR via
:meth:`DASPMatrix.from_csr` (the paper's preprocessing step, Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check
from ..gpu.mma import MmaShape, shape_for_dtype
from .classify import DEFAULT_MAX_LEN, RowClassification, classify_rows
from .long_rows import LongRowsPlan, build_long_rows
from .medium_rows import DEFAULT_THRESHOLD, MediumRowsPlan, build_medium_rows
from .short_rows import ShortRowsPlan, build_short_rows


@dataclass
class DASPMatrix:
    """A sparse matrix converted to the DASP blocked layout.

    Attributes
    ----------
    shape / dtype:
        Logical matrix shape and value dtype.
    csr:
        The source CSR matrix (kept for reference SpMV and the memory
        model's x-traffic analysis).
    mma_shape:
        MMA instruction geometry (m8n8k4 FP64 by default).
    classification:
        Row category assignment.
    long_plan / medium_plan / short_plan:
        Packed per-category data structures.
    """

    shape: tuple[int, int]
    dtype: np.dtype
    csr: object
    mma_shape: MmaShape
    max_len: int
    threshold: float
    classification: RowClassification
    long_plan: LongRowsPlan
    medium_plan: MediumRowsPlan
    short_plan: ShortRowsPlan

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr, *, max_len: int = DEFAULT_MAX_LEN,
                 threshold: float = DEFAULT_THRESHOLD,
                 mma_shape: MmaShape | None = None) -> "DASPMatrix":
        """Convert a CSR matrix into the DASP layout (Section 3.2)."""
        shape = mma_shape or shape_for_dtype(csr.data.dtype)
        check(np.dtype(csr.data.dtype) == shape.in_dtype,
              f"matrix dtype {csr.data.dtype} != MMA input dtype {shape.in_dtype}")
        cls_result = classify_rows(csr, max_len=max_len)
        return cls(
            shape=csr.shape,
            dtype=np.dtype(csr.data.dtype),
            csr=csr,
            mma_shape=shape,
            max_len=int(max_len),
            threshold=float(threshold),
            classification=cls_result,
            long_plan=build_long_rows(csr, cls_result.long, shape),
            medium_plan=build_medium_rows(csr, cls_result.medium, shape,
                                          threshold=threshold),
            short_plan=build_short_rows(csr, cls_result.short, shape),
        )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Real nonzeros (excludes padding)."""
        return (self.long_plan.orig_nnz + self.medium_plan.orig_nnz
                + self.short_plan.orig_nnz)

    @property
    def stored_elements(self) -> int:
        """Stored slots including every padded zero."""
        return (self.long_plan.padded_nnz + self.medium_plan.reg_nnz
                + self.medium_plan.irreg_nnz + self.short_plan.padded_nnz)

    @property
    def padding_ratio(self) -> float:
        """Overall stored/real ratio — the zero-fill rate the paper quotes
        (e.g. 0.85% fill for 'rel19' means ratio 1.0085)."""
        return self.stored_elements / self.nnz if self.nnz else 1.0

    def category_nnz(self) -> dict[str, int]:
        """Real nonzeros per category (Figure 12b's numerator)."""
        return {
            "long": self.long_plan.orig_nnz,
            "medium": self.medium_plan.orig_nnz,
            "short": self.short_plan.orig_nnz,
        }

    def summary(self) -> str:
        """One-line human-readable structure summary."""
        c = self.classification
        return (
            f"DASP {self.shape[0]}x{self.shape[1]} nnz={self.nnz} "
            f"[long: {c.n_long} rows / {self.long_plan.n_groups} groups, "
            f"medium: {c.n_medium} rows / {self.medium_plan.n_blocks} blocks "
            f"(+{self.medium_plan.irreg_nnz} irregular), "
            f"short: {c.n_short} rows, empty: {c.n_empty}] "
            f"padding x{self.padding_ratio:.4f}"
        )
