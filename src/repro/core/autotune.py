"""Parameter tuning helpers for DASP's knobs.

The paper fixes ``MAX_LEN = 256`` and ``threshold = 0.75`` and derives
``LOOP_NUM`` from the medium-row count.  These helpers sweep the knobs
against the cost model so the ablation benchmarks can show *why* the
paper's defaults are sensible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import get_device
from .method import DASPMethod

#: Candidate MAX_LEN values (must exceed the short bound of 4 and stay a
#: multiple of one warp-group's 64 elements to keep the long path aligned).
MAX_LEN_CANDIDATES = (64, 128, 256, 512, 1024)

#: Candidate regular-block occupancy thresholds.
THRESHOLD_CANDIDATES = (0.25, 0.5, 0.75, 0.9, 1.0)


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one parameter sweep."""

    parameter: str
    best_value: float
    times: dict  # value -> modeled seconds

    @property
    def best_time(self) -> float:
        return self.times[self.best_value]


def tune_max_len(csr, device, *, candidates=MAX_LEN_CANDIDATES,
                 threshold: float = 0.75) -> TuneResult:
    """Sweep MAX_LEN and return modeled SpMV times per candidate."""
    device = get_device(device)
    times = {}
    for max_len in candidates:
        method = DASPMethod(max_len=max_len, threshold=threshold)
        times[max_len] = method.measure(csr, device).time_s
    best = min(times, key=times.get)
    return TuneResult("max_len", best, times)


def tune_threshold(csr, device, *, candidates=THRESHOLD_CANDIDATES,
                   max_len: int = 256) -> TuneResult:
    """Sweep the regular-block threshold and return modeled times."""
    device = get_device(device)
    times = {}
    for threshold in candidates:
        method = DASPMethod(max_len=max_len, threshold=threshold)
        times[threshold] = method.measure(csr, device).time_s
    best = min(times, key=times.get)
    return TuneResult("threshold", best, times)


def choose_shards(matrix, workers: int, *, device: str = "A100", k: int = 1,
                  candidates=None) -> TuneResult:
    """Sweep row-shard counts for a ``workers``-lane pool against the
    sharded makespan model and return the best ``S``.

    Thin forwarder to :func:`repro.shard.choose_shards` (imported
    lazily — :mod:`repro.shard` builds on this module's
    :class:`TuneResult`, so a top-level import would be circular).
    """
    from ..shard import choose_shards as _choose_shards

    return _choose_shards(matrix, workers, device=device, k=k,
                          candidates=candidates)
