"""DASP preprocessing cost accounting (Figure 13) and timing helpers.

The paper's preprocessing (CSR -> DASP layout) runs on the host: row
classification, the stable sort of medium rows, and the packing passes,
followed by one upload of the packed arrays.  ``dasp_preprocess_events``
reports that work so the cost model can place DASP on Figure 13's
preprocessing-vs-nnz plot; ``timed_preprocess`` also measures the real
wall-clock of *this* implementation for the pytest benchmarks.
"""

from __future__ import annotations

import time

from ..gpu.events import PreprocessEvents
from .format import DASPMatrix


def dasp_preprocess_events(dasp: DASPMatrix) -> PreprocessEvents:
    """Host/device work performed by :meth:`DASPMatrix.from_csr`."""
    vb = dasp.dtype.itemsize
    m = dasp.shape[0]
    nnz = dasp.nnz
    stored = dasp.stored_elements
    entry_bytes = vb + 4  # value + column index
    host = 0.0
    host += (m + 1) * 8 * 2          # read RowPtr, write classification
    host += nnz * entry_bytes        # read the CSR payload once
    host += stored * entry_bytes     # write the packed arrays
    host += stored * entry_bytes     # upload (pinned copy to device)
    return PreprocessEvents(
        device_bytes=0.0,
        host_bytes=host,
        sort_keys=float(dasp.classification.n_medium),
        kernel_launches=0,
        allocations=4,
    )


def timed_preprocess(csr, **from_csr_kwargs) -> tuple[DASPMatrix, float]:
    """Build a :class:`DASPMatrix` and return it with wall-clock seconds."""
    t0 = time.perf_counter()
    dasp = DASPMatrix.from_csr(csr, **from_csr_kwargs)
    return dasp, time.perf_counter() - t0


def dasp_preprocess(csr, *, injector=None, fingerprint: str | None = None,
                    obs=None, **from_csr_kwargs) -> tuple[DASPMatrix, float]:
    """Fault-injectable plan builder used by the serving layer.

    Returns ``(plan, injected_latency_s)``.  When a
    :class:`repro.resilience.FaultInjector` is installed, a firing
    ``preprocess_error`` rule raises
    :class:`~repro.resilience.errors.PreprocessFault` *before* the
    build (the investment is lost, exactly the failure mode a server
    must absorb), and preprocess-stage ``latency`` rules contribute
    extra modeled seconds the caller charges on top of the event-model
    estimate.  ``obs`` defaults to the process-wide
    :class:`repro.obs.Obs` handle and counts build attempts/failures.
    """
    from ..obs import get_obs

    if obs is None:
        obs = get_obs()
    obs.counter("core.preprocess_calls_total").inc()
    latency_s = 0.0
    if injector is not None:
        try:
            latency_s = injector.check_preprocess(fingerprint)
        except Exception:
            obs.counter("core.preprocess_failures_total").inc()
            raise
    return DASPMatrix.from_csr(csr, **from_csr_kwargs), latency_s


def preprocess_phase_shares(dasp: DASPMatrix) -> tuple[float, float]:
    """``(classify, pack)`` shares of the modeled preprocessing time.

    Splits by the host bytes each pass touches (the same accounting as
    :func:`dasp_preprocess_events`): classification reads the row
    pointers and streams the CSR payload once; packing writes and
    uploads the packed arrays (plus the medium-row sort, folded into
    the pack share).  Deterministic and summing to exactly 1, so span
    attribution never loses time.
    """
    vb = dasp.dtype.itemsize
    entry_bytes = vb + 4
    classify = (dasp.shape[0] + 1) * 8 * 2 + dasp.nnz * entry_bytes
    pack = 2 * dasp.stored_elements * entry_bytes
    total = classify + pack
    if total <= 0:
        return 1.0, 0.0
    return classify / total, pack / total


def traced_preprocess(csr, device, *, obs, injector=None,
                      fingerprint: str | None = None,
                      **from_csr_kwargs) -> tuple[DASPMatrix, float]:
    """Build a plan inside a ``preprocess`` span and return it with its
    total modeled cost (event-model estimate plus injected latency).

    The span carries the full modeled preprocessing seconds as its
    device time and two synthetic children, ``classify`` and ``pack``,
    splitting that time by :func:`preprocess_phase_shares` — the
    ``preprocess -> classify/pack`` shape of the serving trace.
    """
    from ..gpu.cost_model import estimate_preprocess_time

    attrs = None
    if obs.tracing and fingerprint is not None:
        attrs = {"matrix": fingerprint[:8]}
    with obs.span("preprocess", attrs=attrs) as sp:
        plan, latency_s = dasp_preprocess(
            csr, injector=injector, fingerprint=fingerprint, obs=obs,
            **from_csr_kwargs)
        pre_s = estimate_preprocess_time(
            dasp_preprocess_events(plan), device) + latency_s
        sp.set_device_time(pre_s)
        if obs.tracing:
            classify, pack = preprocess_phase_shares(plan)
            sp.child("classify", device_s=pre_s * classify,
                     attrs={"share": classify})
            sp.child("pack", device_s=pre_s * pack, attrs={"share": pack})
    return plan, pre_s
