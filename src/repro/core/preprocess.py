"""DASP preprocessing cost accounting (Figure 13) and timing helpers.

The paper's preprocessing (CSR -> DASP layout) runs on the host: row
classification, the stable sort of medium rows, and the packing passes,
followed by one upload of the packed arrays.  ``dasp_preprocess_events``
reports that work so the cost model can place DASP on Figure 13's
preprocessing-vs-nnz plot; ``timed_preprocess`` also measures the real
wall-clock of *this* implementation for the pytest benchmarks.
"""

from __future__ import annotations

import time

from ..gpu.events import PreprocessEvents
from .format import DASPMatrix


def dasp_preprocess_events(dasp: DASPMatrix) -> PreprocessEvents:
    """Host/device work performed by :meth:`DASPMatrix.from_csr`."""
    vb = dasp.dtype.itemsize
    m = dasp.shape[0]
    nnz = dasp.nnz
    stored = dasp.stored_elements
    entry_bytes = vb + 4  # value + column index
    host = 0.0
    host += (m + 1) * 8 * 2          # read RowPtr, write classification
    host += nnz * entry_bytes        # read the CSR payload once
    host += stored * entry_bytes     # write the packed arrays
    host += stored * entry_bytes     # upload (pinned copy to device)
    return PreprocessEvents(
        device_bytes=0.0,
        host_bytes=host,
        sort_keys=float(dasp.classification.n_medium),
        kernel_launches=0,
        allocations=4,
    )


def timed_preprocess(csr, **from_csr_kwargs) -> tuple[DASPMatrix, float]:
    """Build a :class:`DASPMatrix` and return it with wall-clock seconds."""
    t0 = time.perf_counter()
    dasp = DASPMatrix.from_csr(csr, **from_csr_kwargs)
    return dasp, time.perf_counter() - t0


def dasp_preprocess(csr, *, injector=None, fingerprint: str | None = None,
                    **from_csr_kwargs) -> tuple[DASPMatrix, float]:
    """Fault-injectable plan builder used by the serving layer.

    Returns ``(plan, injected_latency_s)``.  When a
    :class:`repro.resilience.FaultInjector` is installed, a firing
    ``preprocess_error`` rule raises
    :class:`~repro.resilience.errors.PreprocessFault` *before* the
    build (the investment is lost, exactly the failure mode a server
    must absorb), and preprocess-stage ``latency`` rules contribute
    extra modeled seconds the caller charges on top of the event-model
    estimate.
    """
    latency_s = 0.0
    if injector is not None:
        latency_s = injector.check_preprocess(fingerprint)
    return DASPMatrix.from_csr(csr, **from_csr_kwargs), latency_s
