"""Medium-rows planner and kernel — Section 3.3.2 / Algorithm 3.

Medium rows (``4 < Row_len <= MAX_LEN``) are stably sorted by descending
length, grouped into *row-blocks* of ``MMA_M`` consecutive sorted rows,
and each row-block's leading ``MMA_M x MMA_K`` chunks become zero-padded
**regular** MMA blocks while chunk occupancy exceeds ``threshold`` (0.75
in the paper).  The per-row tails past the last regular chunk form the
**irregular** part, processed one thread per row on CUDA cores.

``LOOP_NUM`` (row-blocks per warp) follows the paper's rule exactly:
1 below 59990 medium rows, 2 below 400000, else 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check
from ..gpu.device import WARP_SIZE
from ..gpu.events import KernelEvents
from ..gpu.mma import MmaShape, MmaUnit
from ._pack import exclusive_cumsum

#: The paper's chunk-occupancy threshold for forming a regular block.
DEFAULT_THRESHOLD = 0.75


def loop_num_for(row_medium: int) -> int:
    """The paper's LOOP_NUM rule (Section 3.3.2)."""
    if row_medium < 59990:
        return 1
    if row_medium < 400000:
        return 2
    return 4


@dataclass
class MediumRowsPlan:
    """Packed data for the medium-rows category.

    Attributes
    ----------
    row_idx:
        Original row indices in packed (descending-length) order.
    rowblock_ptr:
        ``rowblockPtr``: element offset of each row-block's regular part
        (multiples of ``MMA_M * MMA_K``).
    reg_val / reg_cid:
        Regular part, intra-block row-major, zero padded.
    irreg_ptr / irreg_val / irreg_cid:
        Irregular per-row tails in CSR-like layout over packed rows.
    loop_num:
        Row-blocks per warp.
    """

    row_idx: np.ndarray
    rowblock_ptr: np.ndarray
    reg_val: np.ndarray
    reg_cid: np.ndarray
    irreg_ptr: np.ndarray
    irreg_val: np.ndarray
    irreg_cid: np.ndarray
    shape: MmaShape
    threshold: float
    loop_num: int
    orig_nnz: int

    @property
    def n_rows(self) -> int:
        return int(self.row_idx.size)

    @property
    def n_rowblocks(self) -> int:
        return int(self.rowblock_ptr.size - 1)

    @property
    def n_blocks(self) -> int:
        """Total regular MMA blocks."""
        return int(self.rowblock_ptr[-1]) // self.shape.a_elements

    @property
    def reg_nnz(self) -> int:
        """Stored regular elements, padding included."""
        return int(self.reg_val.size)

    @property
    def irreg_nnz(self) -> int:
        return int(self.irreg_val.size)

    @property
    def padding_ratio(self) -> float:
        stored = self.reg_nnz + self.irreg_nnz
        return stored / self.orig_nnz if self.orig_nnz else 1.0


#: Payload slabs holding matrix *values* — patched in place by
#: ``repro.core.delta.apply_value_update``.
VALUE_SLAB_FIELDS = ("reg_val", "irreg_val")


def build_medium_rows(csr, rows_sorted: np.ndarray, shape: MmaShape, *,
                      threshold: float = DEFAULT_THRESHOLD) -> MediumRowsPlan:
    """Pack medium rows (already sorted by descending length)."""
    check(0 < threshold <= 1, "threshold must be in (0, 1]")
    rows_sorted = np.asarray(rows_sorted, dtype=np.int64)
    M, K = shape.m, shape.k
    n_med = rows_sorted.size
    lens_all = csr.row_lengths()
    lens = lens_all[rows_sorted] if n_med else np.zeros(0, dtype=np.int64)
    nb = -(-n_med // M) if n_med else 0

    # Pad row-length table to (nb, M); padded virtual rows have length 0.
    L = np.zeros((nb, M), dtype=np.int64)
    if n_med:
        L.reshape(-1)[:n_med] = lens

    # Number of regular chunks per row-block: chunk k is regular while its
    # occupancy exceeds threshold * M * K.  Occupancy is non-increasing in
    # k (rows sorted descending), so the regular chunks form a prefix.
    occ_needed = threshold * M * K
    max_chunks = int(-(-L.max() // K)) if nb else 0
    K_b = np.zeros(nb, dtype=np.int64)
    alive = np.ones(nb, dtype=bool)
    for k in range(max_chunks):
        occ = np.clip(L - K * k, 0, K).sum(axis=1)
        alive &= occ > occ_needed
        if not alive.any():
            break
        K_b += alive

    reg_elems = K_b * M * K
    rowblock_ptr = exclusive_cumsum(reg_elems)
    total_reg = int(rowblock_ptr[-1])

    reg_val = np.zeros(total_reg, dtype=csr.data.dtype)
    reg_cid = np.zeros(total_reg, dtype=np.int32)
    if total_reg:
        owner_b = np.repeat(np.arange(nb, dtype=np.int64), reg_elems)
        t = np.arange(total_reg, dtype=np.int64) - rowblock_ptr[owner_b]
        chunk = t // (M * K)
        r_in_b = (t % (M * K)) // K
        j = t % K
        packed_row = owner_b * M + r_in_b
        pos = chunk * K + j
        valid = (packed_row < n_med)
        row_len = np.where(valid, L.reshape(-1)[np.minimum(packed_row, nb * M - 1)], 0)
        valid &= pos < row_len
        src_row = rows_sorted[np.minimum(packed_row, max(n_med - 1, 0))]
        src = csr.indptr[src_row] + pos
        src_safe = np.minimum(src, max(csr.nnz - 1, 0))
        reg_val[valid] = csr.data[src_safe[valid]]
        reg_cid[valid] = csr.indices[src_safe[valid]]

    # Irregular tails: elements past chunk K_b of each packed row.
    reg_cols = (K_b * K)  # per row-block, regular columns covered per row
    per_row_reg = np.repeat(reg_cols, M)[:n_med] if n_med else np.zeros(0, dtype=np.int64)
    tail = np.maximum(lens - per_row_reg, 0)
    irreg_ptr = exclusive_cumsum(tail)
    total_irr = int(irreg_ptr[-1])
    irreg_val = np.zeros(total_irr, dtype=csr.data.dtype)
    irreg_cid = np.zeros(total_irr, dtype=np.int32)
    if total_irr:
        owner = np.repeat(np.arange(n_med, dtype=np.int64), tail)
        slot = np.arange(total_irr, dtype=np.int64) - irreg_ptr[owner]
        src = csr.indptr[rows_sorted[owner]] + per_row_reg[owner] + slot
        irreg_val[:] = csr.data[src]
        irreg_cid[:] = csr.indices[src]

    return MediumRowsPlan(
        row_idx=rows_sorted,
        rowblock_ptr=rowblock_ptr,
        reg_val=reg_val,
        reg_cid=reg_cid,
        irreg_ptr=irreg_ptr,
        irreg_val=irreg_val,
        irreg_cid=irreg_cid,
        shape=shape,
        threshold=threshold,
        loop_num=loop_num_for(n_med),
        orig_nnz=int(lens.sum()),
    )


def run_medium_rows(plan: MediumRowsPlan, x: np.ndarray, *,
                    unit: MmaUnit | None = None) -> np.ndarray:
    """Vectorized medium-rows kernel: per-row sums in packed order."""
    unit = unit or MmaUnit(plan.shape)
    s = unit.shape
    n_med = plan.n_rows
    if n_med == 0:
        return np.zeros(0, dtype=s.acc_dtype)
    M, K = s.m, s.k
    nb = plan.n_rowblocks
    x = np.asarray(x)

    acc = np.zeros((nb, M), dtype=s.acc_dtype)
    if plan.reg_nnz:
        a_blocks = plan.reg_val.reshape(-1, M, K)
        x_blocks = x[plan.reg_cid.astype(np.int64)].reshape(-1, M, K)
        diag = unit.block_row_dots(a_blocks, x_blocks)  # (n_blocks, M)
        blocks_per_rb = np.diff(plan.rowblock_ptr) // (M * K)
        owner = np.repeat(np.arange(nb, dtype=np.int64), blocks_per_rb)
        np.add.at(acc, owner, diag)

    res = acc.reshape(-1)[:n_med].copy()

    if plan.irreg_nnz:
        # Chunk-invariant tail: the regular/irregular boundary of a row
        # always falls on a multiple of K, so summing the tail in
        # zero-padded K-element chunks — with the same cast chain and
        # sequential-sum association as ``block_row_dots`` — makes each
        # row's value a fold over identical chunk sums no matter how
        # many of its chunks were regular.  Row values are therefore
        # independent of row-block composition (and of sharding).
        prod = (
            plan.irreg_val.astype(s.in_dtype, copy=False).astype(s.acc_dtype)
            * x[plan.irreg_cid.astype(np.int64)].astype(s.in_dtype, copy=False).astype(s.acc_dtype)
        )
        tails = np.diff(plan.irreg_ptr)
        nchunks = -(-tails // K)
        chunk_ptr = exclusive_cumsum(nchunks)
        owner = np.repeat(np.arange(n_med, dtype=np.int64), tails)
        slot = np.arange(prod.size, dtype=np.int64) - plan.irreg_ptr[owner]
        padded = np.zeros((int(chunk_ptr[-1]), K), dtype=s.acc_dtype)
        padded[chunk_ptr[owner] + slot // K, slot % K] = prod
        chunk_sums = padded.sum(axis=1, dtype=s.acc_dtype)
        chunk_owner = np.repeat(np.arange(n_med, dtype=np.int64), nchunks)
        np.add.at(res, chunk_owner, chunk_sums)
    return res


def medium_rows_events(plan: MediumRowsPlan, device, *, x_bytes: float) -> KernelEvents:
    """Device events for the medium-rows kernel."""
    if plan.n_rows == 0:
        return KernelEvents(kernel_launches=0)
    s = plan.shape
    vb = s.in_dtype.itemsize
    ab = s.acc_dtype.itemsize
    nb = plan.n_rowblocks
    n_blocks = plan.n_blocks

    # Sorting makes warps of similar cost; the critical path is the
    # heaviest warp: its regular block iterations plus the longest
    # irregular tail any of its lanes walks serially.
    tails = np.diff(plan.irreg_ptr)
    lanes = plan.loop_num * s.m
    n_warps = -(-nb // plan.loop_num)
    reg_per_rb = np.diff(plan.rowblock_ptr).astype(np.float64)
    pad_rb = (-nb) % plan.loop_num
    reg_warp = np.concatenate([reg_per_rb, np.zeros(pad_rb)]).reshape(n_warps, plan.loop_num).sum(axis=1)
    pad_rows = n_warps * lanes - plan.n_rows
    tails_pad = np.concatenate([tails, np.zeros(pad_rows, dtype=tails.dtype)])
    tail_warp = tails_pad.reshape(n_warps, lanes).max(axis=1)
    serial = float((reg_warp / WARP_SIZE + tail_warp).max()) if n_warps else 0.0

    return KernelEvents(
        bytes_val=plan.reg_nnz * vb + plan.irreg_nnz * vb,
        bytes_idx=plan.reg_nnz * 4 + plan.irreg_nnz * 4,
        bytes_ptr=(nb + 1) * 8 + (plan.n_rows + 1) * 8,
        bytes_x=x_bytes,
        bytes_y=plan.n_rows * ab + plan.n_rows * 8,
        flops_mma=n_blocks * s.flops,
        flops_cuda=2.0 * plan.irreg_nnz,
        mma_count=n_blocks,
        shfl_count=nb * 2,
        extra_instr=n_warps * WARP_SIZE * 3,
        imbalance=1.0,
        serial_iters=serial,
        kernel_launches=1,
        threads=n_warps * WARP_SIZE,
    )
