"""Shared gather/packing helpers for the DASP planners."""

from __future__ import annotations

import numpy as np

from .._util import PTR_DTYPE, check


def exclusive_cumsum(counts: np.ndarray) -> np.ndarray:
    """``[0, c0, c0+c1, ...]`` of length ``len(counts) + 1``."""
    out = np.zeros(counts.size + 1, dtype=PTR_DTYPE)
    np.cumsum(counts, out=out[1:])
    return out


def gather_rows_padded(csr, rows: np.ndarray, padded_lens: np.ndarray):
    """Gather selected rows into a flat zero-padded layout.

    Row ``rows[i]`` contributes exactly ``padded_lens[i]`` consecutive
    slots: its nonzeros first (CSR order), then explicit zeros with column
    index 0 — the paper's padding convention (``longCid`` sets padded
    columns to 0, whose x value is multiplied by a zero value).

    Returns ``(val, cid, valid)`` flat arrays of length
    ``padded_lens.sum()``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    padded_lens = np.asarray(padded_lens, dtype=np.int64)
    check(rows.size == padded_lens.size, "rows/padded_lens length mismatch")
    lens = csr.row_lengths()[rows] if rows.size else np.zeros(0, dtype=np.int64)
    check(bool(np.all(padded_lens >= lens)), "padded length below row length")
    total = int(padded_lens.sum())
    val = np.zeros(total, dtype=csr.data.dtype)
    cid = np.zeros(total, dtype=np.int32)
    valid = np.zeros(total, dtype=bool)
    if total == 0:
        return val, cid, valid
    owner = np.repeat(np.arange(rows.size, dtype=np.int64), padded_lens)
    starts = exclusive_cumsum(padded_lens)
    slot = np.arange(total, dtype=np.int64) - starts[owner]
    valid = slot < lens[owner]
    src = csr.indptr[rows][owner] + slot
    src_safe = np.minimum(src, max(csr.nnz - 1, 0))
    val[valid] = csr.data[src_safe[valid]]
    cid[valid] = csr.indices[src_safe[valid]]
    return val, cid, valid
