"""DASP SpMM — multiplying by several vectors at once (extension).

The paper notes that in SpMV only the *diagonal* of each ``A @ B``
product is meaningful: 1/8 of the MMA unit's output is used.  With a
block of ``k`` right-hand sides (SpMM, ``Y = A @ X``), the same DASP
layout fills the B operand with one x-vector per column, so one
``m8n8k4`` instruction produces 8 meaningful results per row slice —
at ``k = MMA_N = 8`` the MMA units run at full utilization while the
matrix is streamed **once** for all right-hand sides.

This module generalizes the three category kernels to 2-D ``X`` and
provides the matching event model; ``benchmarks/test_spmm_extension.py``
quantifies the utilization gain.
"""

from __future__ import annotations

import numpy as np

from .._util import check
from ..gpu.events import KernelEvents
from ..gpu.memory import rhs_block_traffic_factor
from ..gpu.mma import MmaUnit
from ._pack import exclusive_cumsum
from .format import DASPMatrix


def dasp_spmm(matrix, X: np.ndarray, *, engine: str = "vectorized",
              cast_output: bool = False, obs=None) -> np.ndarray:
    """Compute ``Y = A @ X`` for a dense block of right-hand sides.

    Parameters
    ----------
    matrix:
        A :class:`DASPMatrix` (or CSR, converted on the fly).
    X:
        Dense ``(n, k)`` input block, ``k >= 1`` (``k = 1`` is the
        column-vector form of a plain SpMV).
    engine:
        ``"vectorized"`` (default; NumPy batch kernels) or ``"warp"``
        (the lane-accurate SpMV engine applied column by column —
        validation only, as the hardware would fuse the columns).
    cast_output:
        Cast ``Y`` back to the matrix dtype (otherwise the accumulator
        dtype, FP32 for FP16 inputs).
    obs:
        :class:`repro.obs.Obs` handle; defaults to the process-wide
        one.  Counts invocations and, when tracing, opens an ``spmm``
        span.
    """
    from ..obs import get_obs

    if obs is None:
        obs = get_obs()
    dasp = matrix if isinstance(matrix, DASPMatrix) else DASPMatrix.from_csr(matrix)
    X = np.asarray(X)
    check(X.ndim == 2 and X.shape[0] == dasp.shape[1],
          f"X must be ({dasp.shape[1]}, k)")
    check(X.shape[1] >= 1, "X must have at least one column")
    obs.counter("core.spmm_calls_total", {"engine": engine}).inc()
    with obs.span("spmm", attrs={"engine": engine, "k": X.shape[1]}
                  if obs.tracing else None):
        return dasp_spmm_on_plan(dasp, X, engine=engine, cast_output=cast_output)


def dasp_spmm_on_plan(dasp: DASPMatrix, X: np.ndarray, *,
                      engine: str = "vectorized",
                      cast_output: bool = False) -> np.ndarray:
    """SpMM on an already-built :class:`DASPMatrix` plan.

    The plan-typed entry point: no CSR re-dispatch, no observability
    span — callers that already hold a plan (the serving layer, shard
    execution, the large-k engine) use this directly.  Column ``j`` of
    the result is bitwise-identical to ``dasp_spmv(dasp, X[:, j])``:
    every reduction below folds in exactly the same order as the 1-D
    category kernels.
    """
    if engine == "warp":
        from .spmv import dasp_spmv

        cols = [dasp_spmv(dasp, X[:, j], engine="warp")
                for j in range(X.shape[1])]
        Y = np.stack(cols, axis=1)
        return Y.astype(dasp.dtype) if cast_output else Y
    if engine != "vectorized":
        raise ValueError(f"unknown engine {engine!r}")
    s = dasp.mma_shape
    k = X.shape[1]
    Y = np.zeros((dasp.shape[0], k), dtype=s.acc_dtype)
    unit = MmaUnit(s)

    lp = dasp.long_plan
    if lp.n_rows:
        Y[lp.row_idx] = _long_spmm(lp, X, unit)
    mp = dasp.medium_plan
    if mp.n_rows:
        Y[mp.row_idx] = _medium_spmm(mp, X, unit)
    sp = dasp.short_plan
    if sp.n_rows:
        rows, vals = _short_spmm(sp, X, unit)
        Y[rows] = vals
    if dasp.delta is not None and dasp.delta.overlay is not None:
        # Patched plan: overwrite dirty rows from the delta overlay
        # (repro.core.delta) — the warp branch above already applied it
        # per column inside dasp_spmv.
        from .delta import apply_overlay_spmm

        Y = apply_overlay_spmm(dasp, X, Y)
    if cast_output:
        return Y.astype(dasp.dtype)
    return Y


#: Kept for one release: ``dasp_spmm_on_plan`` is the public name.
_dasp_spmm = dasp_spmm_on_plan

#: RHS columns processed per chunk inside the 2-D helpers — bounds the
#: transient ``(nblocks, m, K, chunk)`` product at large k.  Chunking is
#: invisible in the results: every output column is an independent fold.
_COL_CHUNK = 16


def _block_dots_2d(unit: MmaUnit, val: np.ndarray, cid: np.ndarray,
                   X: np.ndarray, cols=slice(None)) -> np.ndarray:
    """Per-(block, row, rhs) dot products with MMA precision semantics.

    Returns ``(nblocks, MMA_M, k)``.  One MMA instruction per block per
    ceil(k / MMA_N) — the unit's issue counter tracks that.  Each output
    column uses the same product, cast chain, and sequential K-fold as
    :meth:`MmaUnit.block_row_dots`, so column ``j`` is bitwise what the
    SpMV kernel computes for ``X[:, j]``.
    """
    s = unit.shape
    k = X.shape[1]
    if val.size == 0:
        return np.zeros((0, s.m, k), dtype=s.acc_dtype)
    nb = val.size // s.a_elements
    a = (val.reshape(nb, s.m, s.k)
         .astype(s.in_dtype, copy=False).astype(s.acc_dtype))
    unit.issue_count += nb * (-(-k // s.n))
    safe_cid = cid.astype(np.int64)
    out = np.empty((nb, s.m, k), dtype=s.acc_dtype)
    for j0 in range(0, k, _COL_CHUNK):
        xg = (X[:, j0:j0 + _COL_CHUNK][safe_cid]
              .reshape(nb, s.m, s.k, -1)
              .astype(s.in_dtype, copy=False).astype(s.acc_dtype))
        if cols != slice(None):
            masked = np.zeros_like(xg)
            masked[:, :, cols, :] = xg[:, :, cols, :]
            xg = masked
        out[:, :, j0:j0 + _COL_CHUNK] = (a[:, :, :, None] * xg).sum(
            axis=2, dtype=s.acc_dtype)
    return out


def _long_spmm(plan, X, unit) -> np.ndarray:
    from .long_rows import BLOCKS_PER_GROUP

    s = unit.shape
    k = X.shape[1]
    d = _block_dots_2d(unit, plan.val, plan.cid, X)          # (nb, m, k)
    # fragY accumulation across the group's blocks + shuffle tree: the
    # 1-D kernel reduces a contiguous last axis of 2m values, whose
    # basecase association differs from a strided middle-axis sum —
    # transpose so each column reduces the same contiguous 2m run.
    g = np.ascontiguousarray(
        d.reshape(-1, BLOCKS_PER_GROUP * s.m, k).transpose(0, 2, 1))
    per_group = g.sum(axis=2, dtype=s.acc_dtype)             # (ng, k)
    out = np.zeros((plan.n_rows, k), dtype=s.acc_dtype)
    if per_group.size == 0:
        return out
    # Second kernel, column by column, exactly as run_long_rows: reduceat
    # over that column's contiguous group partials (see the no-trailing-
    # pad note there).
    starts = np.minimum(plan.group_ptr[:-1], per_group.shape[0] - 1)
    empty = np.diff(plan.group_ptr) == 0
    for j in range(k):
        col = np.ascontiguousarray(per_group[:, j])
        yj = np.add.reduceat(col, starts).astype(s.acc_dtype, copy=False)
        yj[empty] = 0
        out[:, j] = yj
    return out


def _medium_spmm(plan, X, unit) -> np.ndarray:
    s = unit.shape
    k = X.shape[1]
    nb = plan.n_rowblocks
    acc = np.zeros((nb, s.m, k), dtype=s.acc_dtype)
    if plan.reg_nnz:
        d = _block_dots_2d(unit, plan.reg_val, plan.reg_cid, X)
        blocks_per_rb = np.diff(plan.rowblock_ptr) // s.a_elements
        owner = np.repeat(np.arange(nb, dtype=np.int64), blocks_per_rb)
        np.add.at(acc, owner, d)
    out = acc.reshape(-1, k)[:plan.n_rows].copy()
    if plan.irreg_nnz:
        # Chunk-invariant tail (see run_medium_rows): per column, the
        # flat products are scattered into zero-padded K-element chunks
        # and summed with the same sequential K-fold as the 1-D kernel,
        # accumulated per row in chunk order — row values do not depend
        # on where the regular/irregular boundary fell for this
        # row-block, and column ``j`` is bitwise the SpMV tail.
        K = s.k
        tails = np.diff(plan.irreg_ptr)
        nchunks = -(-tails // K)
        chunk_ptr = exclusive_cumsum(nchunks)
        owner = np.repeat(np.arange(plan.n_rows, dtype=np.int64), tails)
        slot = np.arange(plan.irreg_nnz, dtype=np.int64) - plan.irreg_ptr[owner]
        gchunk = chunk_ptr[owner] + slot // K
        lane = slot % K
        nchunks_total = int(chunk_ptr[-1])
        val_cast = (plan.irreg_val.astype(s.in_dtype, copy=False)
                    .astype(s.acc_dtype))
        safe_cid = plan.irreg_cid.astype(np.int64)
        chunk_sums = np.empty((nchunks_total, k), dtype=s.acc_dtype)
        for j0 in range(0, k, _COL_CHUNK):
            xg = (X[:, j0:j0 + _COL_CHUNK][safe_cid]
                  .astype(s.in_dtype, copy=False).astype(s.acc_dtype))
            prod = val_cast[:, None] * xg
            padded = np.zeros((nchunks_total, K, prod.shape[1]),
                              dtype=s.acc_dtype)
            padded[gchunk, lane, :] = prod
            chunk_sums[:, j0:j0 + _COL_CHUNK] = padded.sum(
                axis=1, dtype=s.acc_dtype)
        chunk_owner = np.repeat(np.arange(plan.n_rows, dtype=np.int64),
                                nchunks)
        np.add.at(out, chunk_owner, chunk_sums)
    return out


def _short_spmm(plan, X, unit):
    s = unit.shape
    k = X.shape[1]
    out_rows, out_vals = [], []
    if plan.rows13_one.size:
        y1 = _block_dots_2d(unit, plan.val13, plan.cid13, X,
                            cols=slice(0, 1)).reshape(-1, k)
        y3 = _block_dots_2d(unit, plan.val13, plan.cid13, X,
                            cols=slice(1, 4)).reshape(-1, k)
        n = plan.rows13_one.size
        out_rows += [plan.rows13_one, plan.rows13_three]
        out_vals += [y1[:n], y3[:n]]
    if plan.rows22_a.size:
        ya = _block_dots_2d(unit, plan.val22, plan.cid22, X,
                            cols=slice(0, 2)).reshape(-1, k)
        yb = _block_dots_2d(unit, plan.val22, plan.cid22, X,
                            cols=slice(2, 4)).reshape(-1, k)
        n = plan.rows22_a.size
        out_rows += [plan.rows22_a, plan.rows22_b]
        out_vals += [ya[:n], yb[:n]]
    if plan.rows4.size:
        y4 = _block_dots_2d(unit, plan.val4, plan.cid4, X).reshape(-1, k)
        out_rows.append(plan.rows4)
        out_vals.append(y4[:plan.rows4.size])
    if plan.rows1.size:
        prod = (plan.val1.astype(s.in_dtype, copy=False).astype(s.acc_dtype)[:, None]
                * X[plan.cid1.astype(np.int64)]
                .astype(s.in_dtype, copy=False).astype(s.acc_dtype))
        out_rows.append(plan.rows1)
        out_vals.append(prod)
    if not out_rows:
        return np.zeros(0, np.int64), np.zeros((0, k), dtype=s.acc_dtype)
    return np.concatenate(out_rows), np.vstack(out_vals)


# ----------------------------------------------------------------------
# Event model / utilization analysis
# ----------------------------------------------------------------------


def spmm_events(dasp: DASPMatrix, device, k: int) -> KernelEvents:
    """Device events for ``Y = A @ X`` with ``k`` right-hand sides.

    The matrix stream is paid **once**; y writes and CUDA-core flops
    scale with ``k``; each MMA block needs ``ceil(k / MMA_N)``
    instructions; and the x gather scales by the row-major-block
    coalescing factor (one column index fetches ``k`` contiguous
    values), not by the naive ``k`` — see
    :func:`repro.gpu.memory.rhs_block_traffic_factor`.
    """
    check(k >= 1, "k must be positive")
    from .method import DASPMethod

    base = DASPMethod().events(dasp, device)
    s = dasp.mma_shape
    x_factor = rhs_block_traffic_factor(dasp.csr, dasp.dtype.itemsize, k)
    return base.scale_rhs(k, mma_n=s.n, mma_flops=s.flops, x_factor=x_factor)


def mma_utilization(dasp: DASPMatrix, k: int) -> float:
    """Useful flops / issued MMA flops for a k-RHS product.

    SpMV (k=1) uses only the diagonal of each 8x8 MMA output -> 1/8 of
    the block work is useful (less padding); k = MMA_N saturates the
    unit.
    """
    s = dasp.mma_shape
    from .method import DASPMethod

    ev = DASPMethod().events(dasp, "A100")
    if ev.mma_count == 0:
        return 0.0
    mma_blocks = ev.mma_count * (-(-k // s.n))
    issued = mma_blocks * s.flops
    # useful flops: 2 per (real nonzero consumed by MMA) per rhs
    mma_nnz = dasp.nnz - dasp.medium_plan.irreg_nnz - dasp.short_plan.rows1.size
    useful = 2.0 * mma_nnz * k
    return float(useful / issued)


def mma_phase_fraction(dasp: DASPMatrix) -> float:
    """Share of a DASP kernel's modeled time on the *regular* (MMA) path.

    DASP splits every matrix into work the MMA units consume (packed
    long/medium/short fragments) and an irregular remainder handled by
    CUDA cores (medium-row irregular tails and 1-nnz short rows).  The
    serving tracer uses this nnz-share split to attribute each batch's
    modeled device time to the ``regular_mma`` vs ``irregular_csr``
    phases — deterministic, cheap, and summing to exactly 1.
    """
    nnz = dasp.nnz
    if nnz <= 0:
        return 1.0
    irregular = dasp.medium_plan.irreg_nnz + dasp.short_plan.rows1.size
    return float(1.0 - irregular / nnz)
