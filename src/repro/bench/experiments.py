"""Programmatic experiment builders — one function per paper artifact.

The ``benchmarks/`` pytest files are thin wrappers around these: each
function runs (or consumes) a sweep and returns a structured result a
user can inspect, plot, or re-aggregate.  Keeping them in the library
means a downstream user can regenerate any figure from a notebook:

    from repro.bench import experiments as ex
    fig10 = ex.figure10()
    print(fig10.summaries["CSR5"].geomean)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis import (
    SpeedupSummary,
    BandwidthPoint,
    bandwidth_points,
    breakdown_averages,
    csr_breakdown,
    peak_lines,
    speedup_summary,
)
from ..core import DASPMatrix, mma_utilization, spmm_events
from ..gpu import estimate_time, get_device
from ..matrices import (
    category_ratios,
    fem_blocked,
    grid2d,
    highlight_suite,
    power_law,
    quantum_chem,
    representative_suite,
    synthetic_collection,
)
from ..matrices.collection import CollectionEntry
from .runner import ComparisonResult, run_comparison

#: The §4.2 headline numbers (FP64, A100) for side-by-side reporting.
PAPER_FP64_GEOMEANS = {
    "CSR5": 1.46,
    "TileSpMV": 2.09,
    "LSRB-CSR": 3.29,
    "cuSPARSE-BSR": 2.08,
    "cuSPARSE-CSR": 1.52,
}

#: The Figure 9 headline numbers.
PAPER_FP16_GEOMEANS = {"A100": 1.70, "H800": 1.75}


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------


@dataclass
class Figure1Result:
    points: list  # BandwidthPoint
    peaks: dict[str, float]
    result: ComparisonResult

    def mean_gbs(self, method: str) -> float:
        vals = [p.gbs for p in self.points if p.method == method]
        return float(np.mean(vals)) if vals else float("nan")


def _large_entries():
    return [
        CollectionEntry("large_fem_1", "fem",
                        lambda: fem_blocked(45000, 55, seed=1)),
        CollectionEntry("large_fem_2", "fem",
                        lambda: fem_blocked(30000, 90, seed=2)),
        CollectionEntry("large_qchem", "quantum",
                        lambda: quantum_chem(24000, 85, seed=3)),
        CollectionEntry("large_grid", "grid",
                        lambda: grid2d(700, 700, seed=4)),
        CollectionEntry("large_power", "power_law",
                        lambda: power_law(300000, 8, alpha=1.7, seed=5)),
        CollectionEntry("large_fem_3", "fem",
                        lambda: fem_blocked(60000, 40, seed=6)),
    ]


def figure1(*, device="A100",
            methods=("CSR5", "cuSPARSE-CSR", "DASP")) -> Figure1Result:
    """Bandwidth of CSR5 / cuSPARSE / DASP on large matrices vs peaks."""
    res = run_comparison(_large_entries(), device=device, methods=methods,
                         keep_matrices=True)
    points = bandwidth_points(res.times, res.matrices, methods=methods)
    return Figure1Result(points=points, peaks=peak_lines(device), result=res)


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------


@dataclass
class Figure2Result:
    rows: list  # BreakdownRow
    averages: dict[str, float]


def figure2(*, device="A100", collection=None,
            collection_size: int = 120) -> Figure2Result:
    """CSR SpMV time breakdown over a collection."""
    if collection is None:
        res = run_comparison(synthetic_collection(collection_size),
                             device=device, methods=("CSR-scalar",),
                             keep_matrices=True)
        collection = res.matrices
    rows = [csr_breakdown(m, device, matrix_name=n)
            for n, m in collection.items()]
    return Figure2Result(rows=rows, averages=breakdown_averages(rows))


# ----------------------------------------------------------------------
# Figures 9 / 10 (speedup sweeps)
# ----------------------------------------------------------------------


@dataclass
class SpeedupResult:
    result: ComparisonResult
    summaries: dict[str, SpeedupSummary]

    def speedups(self, base: str) -> dict[str, float]:
        dasp = self.result.times["DASP"]
        return {n: self.result.times[base][n] / dasp[n] for n in dasp}


def figure10(*, device="A100", collection_size: int = 120,
             entries=None) -> SpeedupResult:
    """FP64 six-method comparison; returns per-baseline summaries."""
    entries = entries if entries is not None else synthetic_collection(collection_size)
    res = run_comparison(entries, device=device, dtype=np.float64,
                         keep_matrices=True)
    summaries = {
        base: speedup_summary(res.times["DASP"], res.times[base], base)
        for base in res.times if base != "DASP"
    }
    return SpeedupResult(result=res, summaries=summaries)


def figure9(*, device="A100", entries=None) -> SpeedupResult:
    """FP16 DASP-vs-cuSPARSE comparison on one device."""
    entries = entries if entries is not None else (
        representative_suite() + highlight_suite())
    res = run_comparison(entries, device=device, dtype=np.float16,
                         methods=("cuSPARSE-CSR", "DASP"))
    summaries = {"cuSPARSE-CSR": speedup_summary(
        res.times["DASP"], res.times["cuSPARSE-CSR"], "cuSPARSE-CSR")}
    return SpeedupResult(result=res, summaries=summaries)


# ----------------------------------------------------------------------
# Figure 12
# ----------------------------------------------------------------------


def figure12(entries=None) -> dict[str, object]:
    """Category ratios for the representative matrices."""
    entries = entries if entries is not None else representative_suite()
    return {e.name: category_ratios(e.matrix()) for e in entries}


# ----------------------------------------------------------------------
# Figure 13
# ----------------------------------------------------------------------


@dataclass
class Figure13Result:
    result: ComparisonResult
    sizes: list[int]
    methods: tuple

    def series(self, method: str) -> list[float]:
        names = sorted(self.result.nnz, key=self.result.nnz.get)
        return [self.result.preprocess[method][n] for n in names]


def figure13(*, device="A100",
             sizes=(2_000, 6_000, 20_000, 60_000, 200_000, 600_000),
             methods=("CSR5", "TileSpMV", "cuSPARSE-BSR", "DASP")) -> Figure13Result:
    """Preprocessing cost sweep over matrix sizes."""
    entries = []
    for i, nnz in enumerate(sizes):
        m = max(64, nnz // 30)
        entries.append(CollectionEntry(
            f"fem_{nnz}", "fem", (lambda mm=m, s=i: fem_blocked(mm, 30, seed=s))))
    res = run_comparison(entries, device=device, methods=methods)
    return Figure13Result(result=res, sizes=[res.nnz[n] for n in
                                             sorted(res.nnz, key=res.nnz.get)],
                          methods=methods)


# ----------------------------------------------------------------------
# SpMM extension
# ----------------------------------------------------------------------


@dataclass
class SpMMResult:
    ks: list[int]
    utilization: dict[int, float]
    modeled_s: dict[int, float]


def spmm_scaling(csr, *, device="A100", ks=(1, 2, 4, 8, 16)) -> SpMMResult:
    """MMA utilization and modeled time vs number of right-hand sides."""
    device = get_device(device)
    dasp = DASPMatrix.from_csr(csr)
    util, times = {}, {}
    for k in ks:
        util[k] = mma_utilization(dasp, k)
        times[k] = estimate_time(spmm_events(dasp, device, k), device).total
    return SpMMResult(ks=list(ks), utilization=util, modeled_s=times)
