"""Perf-trajectory artifacts: append-only ``results/BENCH_<name>.json``.

Each gate run of a benchmark suite appends one small JSON record
(modeled throughput, latency percentiles, wall-clock, whatever the
suite considers its headline numbers) to a per-suite file, so the
history of a branch's performance is a single diffable artifact that CI
can upload.  The file is a JSON array; :func:`record_bench` reads it,
appends, and rewrites atomically (tmp + ``os.replace``), tolerating a
missing or corrupt file by starting a fresh trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from .report import results_path

#: Records kept per trajectory file (oldest dropped beyond this).
DEFAULT_LIMIT = 500


def bench_path(name: str, results_dir=None) -> Path:
    """``results/BENCH_<name>.json`` (or under *results_dir*)."""
    filename = f"BENCH_{name}.json"
    if results_dir is not None:
        d = Path(results_dir)
        d.mkdir(parents=True, exist_ok=True)
        return d / filename
    return results_path(filename)


def load_trajectory(name: str, results_dir=None) -> list[dict]:
    """The existing records, oldest first ([] when absent/corrupt)."""
    path = bench_path(name, results_dir)
    try:
        records = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    return records if isinstance(records, list) else []


def record_bench(name: str, record: dict, *, results_dir=None,
                 limit: int = DEFAULT_LIMIT) -> Path:
    """Append *record* to the ``BENCH_<name>.json`` trajectory.

    A ``recorded_unix`` wall-clock timestamp is stamped onto the record
    (callers measuring a run's own wall time pass it explicitly, e.g.
    ``wall_s``).  Returns the artifact path.
    """
    path = bench_path(name, results_dir)
    records = load_trajectory(name, results_dir)
    records.append({"recorded_unix": round(time.time(), 3), **record})
    if limit is not None and len(records) > limit:
        records = records[-limit:]
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    tmp.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path
