"""Benchmark harness: sweep runner, reporting helpers, and
programmatic per-figure experiment builders."""

from . import experiments
from .report import (
    RESULTS_DIR,
    markdown_table,
    paper_vs_measured,
    results_path,
    save_csv,
)
from .runner import ComparisonResult, run_comparison
from .trajectory import bench_path, load_trajectory, record_bench

__all__ = [
    "ComparisonResult",
    "bench_path",
    "experiments",
    "load_trajectory",
    "record_bench",
    "RESULTS_DIR",
    "markdown_table",
    "paper_vs_measured",
    "results_path",
    "run_comparison",
    "save_csv",
]
