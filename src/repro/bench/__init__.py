"""Benchmark harness: sweep runner, reporting helpers, and
programmatic per-figure experiment builders."""

from . import experiments
from .report import (
    RESULTS_DIR,
    markdown_table,
    paper_vs_measured,
    results_path,
    save_csv,
)
from .runner import ComparisonResult, run_comparison

__all__ = [
    "ComparisonResult",
    "experiments",
    "RESULTS_DIR",
    "markdown_table",
    "paper_vs_measured",
    "results_path",
    "run_comparison",
    "save_csv",
]
