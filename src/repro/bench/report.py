"""Result formatting: markdown tables, CSV dumps, paper-vs-measured rows."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def save_csv(path, headers: Sequence[str], rows: Iterable[Sequence]) -> Path:
    """Write rows to CSV, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def paper_vs_measured(rows: Iterable[tuple[str, str, str, str]]) -> str:
    """Format (quantity, paper value, measured value, verdict) rows —
    the EXPERIMENTS.md record format."""
    return markdown_table(("quantity", "paper", "measured (model)", "shape holds?"),
                          rows)


#: Directory benchmark outputs are written to (repo-root relative).
RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"


def results_path(name: str) -> Path:
    """Path under the shared results directory."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR / name
