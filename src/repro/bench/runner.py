"""Experiment runner: sweep (matrices x methods x device x precision).

Every figure/table benchmark drives this runner; it measures modeled
device time for each method on each matrix (optionally also verifying
functional correctness against the CSR reference) and returns a
:class:`ComparisonResult` the reporting helpers can turn into the
paper's tables and series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .._util import check, default_rng
from ..baselines.registry import PAPER_METHODS, make_method
from ..gpu.cost_model import estimate_preprocess_time
from ..gpu.device import get_device


@dataclass
class ComparisonResult:
    """Outcome of one sweep.

    Attributes
    ----------
    device / dtype:
        Where and at which precision the sweep ran.
    times:
        method -> {matrix -> modeled seconds}.
    preprocess:
        method -> {matrix -> modeled preprocessing seconds}.
    wall_prepare:
        method -> {matrix -> wall-clock seconds of this implementation's
        ``prepare`` call} (real measurements, used by pytest-benchmark
        style reporting).
    nnz / shape:
        matrix -> size metadata.
    matrices:
        matrix -> CSR object (only when ``keep_matrices=True``).
    errors:
        matrix -> max |y - y_ref| over methods (when correctness checked).
    """

    device: str
    dtype: str
    times: dict = field(default_factory=dict)
    preprocess: dict = field(default_factory=dict)
    wall_prepare: dict = field(default_factory=dict)
    nnz: dict = field(default_factory=dict)
    shape: dict = field(default_factory=dict)
    matrices: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)

    def gflops(self, method: str) -> dict[str, float]:
        """Per-matrix GFlops for one method."""
        return {name: 2.0 * self.nnz[name] / t / 1e9
                for name, t in self.times.get(method, {}).items() if t > 0}

    def methods(self) -> list[str]:
        return list(self.times)


def run_comparison(entries, *, device="A100", dtype=np.float64,
                   methods=PAPER_METHODS, check_correctness: bool = False,
                   keep_matrices: bool = False, seed: int = 7,
                   rtol: float = 1e-6) -> ComparisonResult:
    """Sweep the given suite/collection entries across methods.

    ``entries`` is an iterable of objects with ``.name`` and ``.matrix()``
    (both :class:`~repro.matrices.suite.SuiteEntry` and
    :class:`~repro.matrices.collection.CollectionEntry` qualify).
    Methods that do not support ``dtype`` are skipped (mirroring the
    paper: only cuSPARSE-CSR and DASP run FP16).
    """
    device = get_device(device)
    dtype = np.dtype(dtype)
    rng = default_rng(seed)
    result = ComparisonResult(device=device.name, dtype=str(dtype))

    method_objs = [make_method(name) for name in methods]
    method_objs = [m for m in method_objs if m.supports(dtype)]
    for m in method_objs:
        result.times[m.name] = {}
        result.preprocess[m.name] = {}
        result.wall_prepare[m.name] = {}

    for entry in entries:
        csr = entry.matrix().astype(dtype)
        name = entry.name
        result.nnz[name] = csr.nnz
        result.shape[name] = csr.shape
        if keep_matrices:
            result.matrices[name] = csr
        x = rng.uniform(-1.0, 1.0, size=csr.shape[1]).astype(dtype)
        y_ref = csr.matvec(x) if check_correctness else None
        worst = 0.0
        for method in method_objs:
            t0 = time.perf_counter()
            plan = method.prepare(csr)
            wall = time.perf_counter() - t0
            ev = method.events(plan, device)
            from ..gpu.cost_model import estimate_time

            parts = estimate_time(ev, device, dtype_bits=dtype.itemsize * 8)
            result.times[method.name][name] = parts.total
            result.preprocess[method.name][name] = estimate_preprocess_time(
                method.preprocess_events(plan), device)
            result.wall_prepare[method.name][name] = wall
            if check_correctness:
                y = method.run(plan, x)
                scale = np.max(np.abs(y_ref)) or 1.0
                err = float(np.max(np.abs(
                    np.asarray(y, dtype=np.float64)
                    - np.asarray(y_ref, dtype=np.float64)))) / scale
                check(err <= rtol,
                      f"{method.name} wrong on {name}: rel err {err:.2e}")
                worst = max(worst, err)
        if check_correctness:
            result.errors[name] = worst
    return result
