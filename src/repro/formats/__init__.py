"""Sparse matrix format substrate: COO, CSR, BSR, ELL + MatrixMarket I/O.

CSR (:class:`CSRMatrix`) is the base format the paper's pipeline starts
from; everything else converts to and from it.
"""

from .bsr import BSRMatrix
from .convert import to_coo, to_csr
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix
from .dia import DIAMatrix
from .ell import ELLMatrix
from .hyb import HYBMatrix
from .mmio import MatrixMarketError, read_matrix_market, write_matrix_market

__all__ = [
    "BSRMatrix",
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "DIAMatrix",
    "ELLMatrix",
    "HYBMatrix",
    "MatrixMarketError",
    "read_matrix_market",
    "to_coo",
    "to_csr",
    "write_matrix_market",
]
