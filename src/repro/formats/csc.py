"""Compressed Sparse Column (CSC) format.

CSC is CSR of the transpose; it makes transpose products (``A^T @ x``)
and column slicing cheap.  Useful downstream of DASP in solvers that
need both ``A v`` and ``A^T v`` (e.g. BiCG, least squares).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import (
    as_index_array,
    as_ptr_array,
    as_value_array,
    check,
    validate_shape,
)


@dataclass
class CSCMatrix:
    """A sparse matrix in CSC form.

    Attributes
    ----------
    shape:
        ``(rows, cols)``.
    indptr:
        Column pointer, length ``cols + 1``.
    indices:
        Row index of each stored entry, grouped by column.
    data:
        Value of each stored entry.
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.shape = validate_shape(self.shape)
        self.indptr = as_ptr_array(self.indptr)
        self.indices = as_index_array(self.indices)
        self.data = as_value_array(self.data)
        m, n = self.shape
        check(self.indptr.size == n + 1, "indptr must have cols+1 entries")
        check(int(self.indptr[0]) == 0, "indptr must start at 0")
        check(bool(np.all(np.diff(self.indptr) >= 0)), "indptr must be monotone")
        check(int(self.indptr[-1]) == self.indices.size == self.data.size,
              "indptr[-1] must equal nnz")
        if self.indices.size:
            check(int(self.indices.min()) >= 0, "negative row index")
            check(int(self.indices.max()) < m, "row index out of bounds")

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def col_lengths(self) -> np.ndarray:
        """Per-column stored-entry counts."""
        return np.diff(self.indptr)

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr) -> "CSCMatrix":
        """Column-major re-sort of a CSR matrix."""
        m, n = csr.shape
        rows = np.repeat(np.arange(m, dtype=np.int64), csr.row_lengths())
        order = np.lexsort((rows, csr.indices))
        counts = np.bincount(csr.indices, minlength=n) if csr.nnz else \
            np.zeros(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(csr.shape, indptr, rows[order], csr.data[order])

    def to_csr(self):
        """Row-major re-sort back to CSR."""
        from .coo import COOMatrix

        m, n = self.shape
        cols = np.repeat(np.arange(n, dtype=np.int64), self.col_lengths())
        return COOMatrix(self.shape, self.indices, cols,
                         self.data).to_csr(sum_duplicates=False)

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` via column scaling + scatter."""
        x = np.asarray(x)
        m, n = self.shape
        check(x.shape == (n,), "x has wrong length")
        acc = np.result_type(self.data, x, np.float32)
        y = np.zeros(m, dtype=acc)
        if self.nnz:
            cols = np.repeat(np.arange(n, dtype=np.int64), self.col_lengths())
            np.add.at(y, self.indices.astype(np.int64),
                      self.data.astype(acc) * x[cols].astype(acc))
        return y

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``x = A^T @ y`` — cheap in CSC (row-segment reduction)."""
        y = np.asarray(y)
        m, n = self.shape
        check(y.shape == (m,), "y has wrong length")
        acc = np.result_type(self.data, y, np.float32)
        if self.nnz == 0:
            return np.zeros(n, dtype=acc)
        products = self.data.astype(acc) * y[self.indices.astype(np.int64)].astype(acc)
        padded = np.concatenate([products, np.zeros(1, dtype=acc)])
        starts = np.minimum(self.indptr[:-1], products.size)
        out = np.add.reduceat(padded, starts).astype(acc, copy=False)
        out[self.col_lengths() == 0] = 0
        return out
