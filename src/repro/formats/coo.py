"""Coordinate (COO) sparse matrix format.

COO is the interchange format of the package: every generator first emits
COO triplets, and the MatrixMarket reader produces COO.  Conversion to CSR
(the base format of the paper's pipeline) lives in
:func:`COOMatrix.to_csr`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import (
    INDEX_DTYPE,
    as_index_array,
    as_value_array,
    check,
    validate_shape,
)


@dataclass
class COOMatrix:
    """A sparse matrix in coordinate (triplet) form.

    Attributes
    ----------
    shape:
        ``(rows, cols)`` of the represented matrix.
    row, col:
        Row/column index of every stored entry (``int32``).
    val:
        Value of every stored entry (floating dtype).
    """

    shape: tuple[int, int]
    row: np.ndarray
    col: np.ndarray
    val: np.ndarray

    def __post_init__(self) -> None:
        self.shape = validate_shape(self.shape)
        self.row = as_index_array(self.row, name="row")
        self.col = as_index_array(self.col, name="col")
        self.val = as_value_array(self.val)
        check(
            self.row.size == self.col.size == self.val.size,
            "row/col/val must have equal lengths",
        )
        self.validate()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted individually)."""
        return int(self.val.size)

    @property
    def dtype(self) -> np.dtype:
        return self.val.dtype

    def validate(self) -> None:
        """Check that all indices are inside the matrix bounds."""
        m, n = self.shape
        if self.nnz:
            check(int(self.row.min()) >= 0, "negative row index")
            check(int(self.col.min()) >= 0, "negative col index")
            check(int(self.row.max()) < m, "row index out of bounds")
            check(int(self.col.max()) < n, "col index out of bounds")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense) -> "COOMatrix":
        """Build a COO matrix from a dense 2-D array, dropping zeros."""
        dense = np.asarray(dense)
        check(dense.ndim == 2, "from_dense expects a 2-D array")
        row, col = np.nonzero(dense)
        return cls(dense.shape, row, col, dense[row, col])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def sum_duplicates(self) -> "COOMatrix":
        """Return a copy with duplicate ``(row, col)`` entries summed."""
        if self.nnz == 0:
            return COOMatrix(self.shape, self.row, self.col, self.val)
        m, n = self.shape
        keys = self.row.astype(np.int64) * n + self.col.astype(np.int64)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = self.val[order]
        uniq_mask = np.empty(keys.size, dtype=bool)
        uniq_mask[0] = True
        np.not_equal(keys[1:], keys[:-1], out=uniq_mask[1:])
        seg_ids = np.cumsum(uniq_mask) - 1
        summed = np.zeros(int(seg_ids[-1]) + 1, dtype=np.float64)
        np.add.at(summed, seg_ids, vals.astype(np.float64))
        uk = keys[uniq_mask]
        return COOMatrix(
            self.shape,
            (uk // n).astype(INDEX_DTYPE),
            (uk % n).astype(INDEX_DTYPE),
            summed.astype(self.val.dtype),
        )

    def eliminate_zeros(self) -> "COOMatrix":
        """Return a copy without explicitly stored zero values."""
        keep = self.val != 0
        return COOMatrix(self.shape, self.row[keep], self.col[keep], self.val[keep])

    def transpose(self) -> "COOMatrix":
        """Return the transpose (swaps row and col arrays)."""
        m, n = self.shape
        return COOMatrix((n, m), self.col, self.row, self.val)

    def astype(self, dtype) -> "COOMatrix":
        """Return a copy with values cast to *dtype*."""
        return COOMatrix(self.shape, self.row, self.col, self.val.astype(dtype))

    # ------------------------------------------------------------------
    # Conversion / computation
    # ------------------------------------------------------------------
    def to_csr(self, *, sum_duplicates: bool = True):
        """Convert to :class:`repro.formats.csr.CSRMatrix`.

        Duplicates are summed by default (MatrixMarket symmetric files can
        produce duplicated diagonals otherwise).
        """
        from .csr import CSRMatrix

        coo = self.sum_duplicates() if sum_duplicates else self
        m, _ = coo.shape
        order = np.argsort(
            coo.row.astype(np.int64) * (coo.shape[1] + 1) + coo.col,
            kind="stable",
        )
        rows = coo.row[order]
        counts = np.bincount(rows, minlength=m)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(coo.shape, indptr, coo.col[order], coo.val[order])

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D float array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.row, self.col), self.val.astype(np.float64))
        return out.astype(self.val.dtype)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference ``y = A @ x`` via scatter-add (duplicates summed)."""
        x = np.asarray(x)
        check(x.shape == (self.shape[1],), "x has wrong length")
        y = np.zeros(self.shape[0], dtype=np.result_type(self.val, x, np.float64))
        np.add.at(y, self.row, self.val * x[self.col])
        return y
