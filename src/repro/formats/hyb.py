"""HYB (hybrid ELL + COO) format.

The classic cuSPARSE hybrid: the regular part of each row (up to a
width chosen from the row-length distribution) goes into ELL for
lockstep access, the overflow into COO.  HYB was the pre-merge-path
answer to the imbalance problem DASP's categories solve; it is included
as a substrate format and a point of comparison for the short/medium
split idea.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check
from .coo import COOMatrix
from .ell import ELLMatrix


@dataclass
class HYBMatrix:
    """ELL head + COO overflow.

    Attributes
    ----------
    ell:
        The regular part (first ``width`` entries of each row).
    coo:
        The overflow entries of rows longer than ``width``.
    """

    ell: ELLMatrix
    coo: COOMatrix

    def __post_init__(self) -> None:
        check(self.ell.shape == self.coo.shape, "ELL/COO shape mismatch")

    @property
    def shape(self) -> tuple[int, int]:
        return self.ell.shape

    @property
    def nnz(self) -> int:
        return self.ell.nnz + self.coo.nnz

    @property
    def width(self) -> int:
        return self.ell.width

    @property
    def overflow_fraction(self) -> float:
        """Share of nonzeros living in the COO overflow."""
        return self.coo.nnz / self.nnz if self.nnz else 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr, *, width: int | None = None,
                 quantile: float = 0.9) -> "HYBMatrix":
        """Split CSR into ELL(width) + COO overflow.

        ``width`` defaults to the ``quantile`` of nonzero-row lengths —
        cuSPARSE's heuristic of covering "most" rows in the ELL part.
        """
        lens = csr.row_lengths()
        if width is None:
            nonzero_lens = lens[lens > 0]
            width = int(np.quantile(nonzero_lens, quantile)) if \
                nonzero_lens.size else 0
        width = max(int(width), 0)
        m, n = csr.shape

        head_lens = np.minimum(lens, width)
        cols = np.full((m, width), -1, dtype=np.int32) if width else \
            np.zeros((m, 0), dtype=np.int32)
        vals = np.zeros((m, width), dtype=csr.data.dtype)
        overflow_rows, overflow_cols, overflow_vals = [], [], []
        if csr.nnz:
            rows = np.repeat(np.arange(m, dtype=np.int64), lens)
            offsets = np.arange(csr.nnz, dtype=np.int64) - csr.indptr[rows]
            in_head = offsets < width
            if width:
                cols[rows[in_head], offsets[in_head]] = csr.indices[in_head]
                vals[rows[in_head], offsets[in_head]] = csr.data[in_head]
            overflow_rows = rows[~in_head]
            overflow_cols = csr.indices[~in_head]
            overflow_vals = csr.data[~in_head]
        return cls(
            ell=ELLMatrix(csr.shape, cols, vals),
            coo=COOMatrix(csr.shape, np.asarray(overflow_rows, dtype=np.int64),
                          np.asarray(overflow_cols, dtype=np.int64),
                          np.asarray(overflow_vals, dtype=csr.data.dtype)),
        )

    def to_csr(self):
        """Merge the two parts back into CSR."""
        from .convert import to_coo

        ell_coo = to_coo(self.ell.to_csr())
        rows = np.concatenate([ell_coo.row, self.coo.row])
        cols = np.concatenate([ell_coo.col, self.coo.col])
        vals = np.concatenate([ell_coo.val, self.coo.val])
        return COOMatrix(self.shape, rows, cols, vals).to_csr(
            sum_duplicates=False)

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x``: lockstep ELL pass + scatter COO pass."""
        y = self.ell.matvec(x)
        if self.coo.nnz:
            y = y + self.coo.matvec(np.asarray(x)).astype(y.dtype, copy=False)
        return y
