"""Compressed Sparse Row (CSR) format — the base format of the pipeline.

The paper's preprocessing converts CSR into the DASP layout, and every
baseline either consumes CSR directly or converts from it, so this class
is the hub of the package.  It deliberately mirrors the three-array layout
described in the paper (Section 2.1): ``RowPtr`` / ``ColIdx`` / ``Val``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import (
    as_index_array,
    as_ptr_array,
    as_value_array,
    check,
    validate_shape,
)


@dataclass
class CSRMatrix:
    """A sparse matrix in CSR form.

    Attributes
    ----------
    shape:
        ``(rows, cols)``.
    indptr:
        ``int64`` array of length ``rows + 1``; ``indptr[i+1] - indptr[i]``
        is the number of stored entries in row ``i``.
    indices:
        ``int32`` column index of each stored entry, grouped by row.
    data:
        Value of each stored entry.
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.shape = validate_shape(self.shape)
        self.indptr = as_ptr_array(self.indptr)
        self.indices = as_index_array(self.indices)
        self.data = as_value_array(self.data)
        self.validate()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        """Total bytes of the three CSR arrays (device-transfer size)."""
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    def row_lengths(self) -> np.ndarray:
        """Per-row stored-entry counts (the paper's ``Row_len``)."""
        return np.diff(self.indptr)

    def validate(self) -> None:
        """Internal consistency checks (monotone indptr, index bounds)."""
        m, n = self.shape
        check(self.indptr.size == m + 1, "indptr must have rows+1 entries")
        check(int(self.indptr[0]) == 0, "indptr must start at 0")
        check(bool(np.all(np.diff(self.indptr) >= 0)), "indptr must be monotone")
        check(
            int(self.indptr[-1]) == self.indices.size == self.data.size,
            "indptr[-1] must equal nnz",
        )
        if self.indices.size:
            check(int(self.indices.min()) >= 0, "negative column index")
            check(int(self.indices.max()) < n, "column index out of bounds")

    def has_sorted_indices(self) -> bool:
        """True when column indices are ascending within every row."""
        if self.nnz <= 1:
            return True
        diffs = np.diff(self.indices.astype(np.int64))
        # positions where a new row starts are allowed to decrease
        boundary = np.zeros(self.indices.size - 1, dtype=bool)
        row_starts = self.indptr[1:-1]
        valid_starts = row_starts[(row_starts > 0) & (row_starts < self.indices.size)]
        boundary[valid_starts - 1] = True
        return bool(np.all((diffs >= 0) | boundary))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense) -> "CSRMatrix":
        """Build from a dense 2-D array, dropping zeros."""
        from .coo import COOMatrix

        return COOMatrix.from_dense(dense).to_csr()

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Build from any scipy.sparse matrix (test/interop helper)."""
        m = mat.tocsr()
        return cls(m.shape, m.indptr, m.indices, m.data)

    @classmethod
    def empty(cls, shape, dtype=np.float64) -> "CSRMatrix":
        """An all-zero matrix of the given shape."""
        m, _ = validate_shape(shape)
        return cls(
            shape,
            np.zeros(m + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int32),
            np.zeros(0, dtype=dtype),
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def sort_indices(self) -> "CSRMatrix":
        """Return a copy with ascending column indices in every row."""
        if self.has_sorted_indices():
            return CSRMatrix(self.shape, self.indptr, self.indices, self.data)
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), self.row_lengths()
        )
        order = np.lexsort((self.indices, rows))
        return CSRMatrix(self.shape, self.indptr, self.indices[order], self.data[order])

    def astype(self, dtype) -> "CSRMatrix":
        """Return a copy with values cast to *dtype*."""
        return CSRMatrix(self.shape, self.indptr, self.indices, self.data.astype(dtype))

    def permute_rows(self, perm: np.ndarray) -> "CSRMatrix":
        """Return the matrix with rows reordered so row ``i`` of the result
        is row ``perm[i]`` of the original."""
        perm = np.asarray(perm, dtype=np.int64)
        check(perm.size == self.shape[0], "permutation has wrong length")
        lens = self.row_lengths()[perm]
        new_ptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(lens, out=new_ptr[1:])
        gather = _gather_index(self.indptr, perm, lens)
        return CSRMatrix(self.shape, new_ptr, self.indices[gather], self.data[gather])

    def row_slice(self, rows: np.ndarray) -> "CSRMatrix":
        """Extract the submatrix formed by the given rows (keeps width)."""
        rows = np.asarray(rows, dtype=np.int64)
        lens = self.row_lengths()[rows]
        new_ptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(lens, out=new_ptr[1:])
        gather = _gather_index(self.indptr, rows, lens)
        return CSRMatrix(
            (rows.size, self.shape[1]),
            new_ptr,
            self.indices[gather],
            self.data[gather],
        )

    # ------------------------------------------------------------------
    # Conversion / computation
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRMatrix":
        """Return ``A^T`` as CSR (one column-major re-sort)."""
        m, n = self.shape
        rows = np.repeat(np.arange(m, dtype=np.int64), self.row_lengths())
        order = np.lexsort((rows, self.indices))
        counts = (np.bincount(self.indices, minlength=n) if self.nnz
                  else np.zeros(n, dtype=np.int64))
        new_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=new_ptr[1:])
        return CSRMatrix((n, m), new_ptr, rows[order], self.data[order])

    def to_coo(self):
        """Convert to :class:`repro.formats.coo.COOMatrix`."""
        from .coo import COOMatrix

        rows = np.repeat(np.arange(self.shape[0], dtype=np.int64), self.row_lengths())
        return COOMatrix(self.shape, rows, self.indices, self.data)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D array."""
        out = np.zeros(self.shape, dtype=self.data.dtype)
        rows = np.repeat(np.arange(self.shape[0], dtype=np.int64), self.row_lengths())
        out[rows, self.indices] = self.data
        return out

    def matvec(self, x: np.ndarray, *, accum_dtype=None) -> np.ndarray:
        """Reference ``y = A @ x`` using row-segment reduction.

        ``accum_dtype`` selects the accumulator precision (used by the
        FP16 path which accumulates in FP32 like tensor cores do).
        """
        x = np.asarray(x)
        check(x.shape == (self.shape[1],), "x has wrong length")
        if accum_dtype is None:
            accum_dtype = np.result_type(self.data, x, np.float32)
        products = self.data.astype(accum_dtype) * x[self.indices].astype(accum_dtype)
        y = np.add.reduceat(
            np.concatenate([products, np.zeros(1, dtype=accum_dtype)]),
            np.minimum(self.indptr[:-1], products.size),
        )
        y[self.row_lengths() == 0] = 0
        return y.astype(accum_dtype)

    def __matmul__(self, x):
        return self.matvec(x)


def _gather_index(indptr: np.ndarray, rows: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Flat indices into data/indices arrays for the given rows."""
    total = int(lens.sum())
    gather = np.empty(total, dtype=np.int64)
    pos = 0
    starts = indptr[rows]
    for s, l in zip(starts, lens):
        gather[pos : pos + l] = np.arange(s, s + l)
        pos += l
    return gather
