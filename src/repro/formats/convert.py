"""Format-conversion helpers and the ``to_csr`` normalization funnel."""

from __future__ import annotations

import numpy as np

from .._util import ReproError
from .bsr import BSRMatrix
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix
from .dia import DIAMatrix
from .ell import ELLMatrix
from .hyb import HYBMatrix


def to_csr(matrix) -> CSRMatrix:
    """Normalize any supported matrix representation to CSR.

    Accepts :class:`CSRMatrix`, :class:`COOMatrix`, :class:`BSRMatrix`,
    :class:`ELLMatrix`, dense ndarrays, and scipy.sparse matrices.
    """
    if isinstance(matrix, CSRMatrix):
        return matrix
    if isinstance(matrix, (COOMatrix, BSRMatrix, ELLMatrix, CSCMatrix,
                           DIAMatrix, HYBMatrix)):
        return matrix.to_csr()
    if isinstance(matrix, np.ndarray):
        return CSRMatrix.from_dense(matrix)
    # Duck-typed scipy.sparse support without importing scipy here.
    if hasattr(matrix, "tocsr"):
        return CSRMatrix.from_scipy(matrix)
    raise ReproError(f"cannot convert {type(matrix).__name__} to CSR")


def to_coo(matrix) -> COOMatrix:
    """Normalize any supported matrix representation to COO."""
    if isinstance(matrix, COOMatrix):
        return matrix
    return to_csr(matrix).to_coo()
