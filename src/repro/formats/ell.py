"""ELLPACK (ELL) format.

ELL pads every row to the same width so a GPU can walk rows in lockstep.
It is used here as one of the per-tile storage choices of the TileSpMV
baseline and as a general substrate format.  Padding cost explodes when
row lengths are skewed — which is part of why formats like CSR5 and DASP
exist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check, validate_shape


@dataclass
class ELLMatrix:
    """A sparse matrix padded to uniform row width.

    Attributes
    ----------
    shape:
        ``(rows, cols)``.
    cols:
        ``(rows, width)`` int32 column indices; unused slots hold ``-1``.
    vals:
        ``(rows, width)`` values; unused slots hold ``0``.
    """

    shape: tuple[int, int]
    cols: np.ndarray
    vals: np.ndarray

    def __post_init__(self) -> None:
        self.shape = validate_shape(self.shape)
        self.cols = np.ascontiguousarray(self.cols, dtype=np.int32)
        self.vals = np.ascontiguousarray(self.vals)
        check(self.cols.ndim == 2 and self.vals.ndim == 2, "cols/vals must be 2-D")
        check(self.cols.shape == self.vals.shape, "cols/vals shape mismatch")
        check(self.cols.shape[0] == self.shape[0], "row count mismatch")

    @property
    def width(self) -> int:
        """Uniform padded row width."""
        return int(self.cols.shape[1])

    @property
    def nnz(self) -> int:
        """Number of real (non-padding) entries."""
        return int(np.count_nonzero(self.cols >= 0))

    @property
    def stored_values(self) -> int:
        """Stored slots including padding."""
        return int(self.cols.size)

    @property
    def padding_ratio(self) -> float:
        """Stored slots / real entries (>= 1; inf for an empty matrix)."""
        nnz = self.nnz
        return float("inf") if nnz == 0 else self.stored_values / nnz

    @property
    def nbytes(self) -> int:
        return self.cols.nbytes + self.vals.nbytes

    @classmethod
    def from_csr(cls, csr, width: int | None = None) -> "ELLMatrix":
        """Convert CSR to ELL.

        ``width`` defaults to the longest row; passing a smaller width
        raises, because silently dropping entries would corrupt results.
        """
        lens = csr.row_lengths()
        max_len = int(lens.max()) if lens.size else 0
        if width is None:
            width = max_len
        check(width >= max_len, "ELL width smaller than the longest row")
        m = csr.shape[0]
        cols = np.full((m, width), -1, dtype=np.int32)
        vals = np.zeros((m, width), dtype=csr.data.dtype)
        if csr.nnz:
            rows = np.repeat(np.arange(m, dtype=np.int64), lens)
            offsets = np.arange(csr.nnz, dtype=np.int64) - csr.indptr[rows]
            cols[rows, offsets] = csr.indices
            vals[rows, offsets] = csr.data
        return cls(csr.shape, cols, vals)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` with lockstep row traversal."""
        x = np.asarray(x)
        check(x.shape == (self.shape[1],), "x has wrong length")
        acc_dtype = np.result_type(self.vals, x, np.float32)
        safe_cols = np.where(self.cols >= 0, self.cols, 0)
        gathered = x[safe_cols].astype(acc_dtype)
        gathered[self.cols < 0] = 0
        return (self.vals.astype(acc_dtype) * gathered).sum(axis=1)

    def to_csr(self):
        """Convert back to CSR (drops padding)."""
        from .coo import COOMatrix

        r, k = np.nonzero(self.cols >= 0)
        return COOMatrix(
            self.shape, r, self.cols[r, k], self.vals[r, k]
        ).to_csr(sum_duplicates=False)
