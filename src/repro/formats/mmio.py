"""MatrixMarket coordinate-format I/O.

The paper's artifact downloads ``.mtx`` files from the SuiteSparse Matrix
Collection; our synthetic collection can be persisted/loaded in the same
format so downstream users can drop in real SuiteSparse files where they
have them.  Supports ``real`` / ``integer`` / ``pattern`` fields and
``general`` / ``symmetric`` / ``skew-symmetric`` symmetries.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .._util import ReproError, check
from .coo import COOMatrix


class MatrixMarketError(ReproError):
    """Malformed MatrixMarket content."""


_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


def read_matrix_market(source) -> COOMatrix:
    """Parse a MatrixMarket coordinate file into a :class:`COOMatrix`.

    ``source`` may be a path, a string of file content, or a file-like
    object.  Symmetric storage is expanded to general storage (diagonal
    entries are not duplicated).
    """
    text = _read_text(source)
    lines = iter(text.splitlines())
    header = next(lines, "")
    parts = header.strip().split()
    if len(parts) != 5 or parts[0] != "%%MatrixMarket":
        raise MatrixMarketError(f"bad header line: {header!r}")
    _, obj, fmt, field, symmetry = (p.lower() for p in parts)
    if obj != "matrix" or fmt != "coordinate":
        raise MatrixMarketError("only 'matrix coordinate' files are supported")
    if field not in _SUPPORTED_FIELDS:
        raise MatrixMarketError(f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRIES:
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

    # Skip comments, read the size line.
    size_line = None
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        size_line = stripped
        break
    if size_line is None:
        raise MatrixMarketError("missing size line")
    dims = size_line.split()
    if len(dims) != 3:
        raise MatrixMarketError(f"bad size line: {size_line!r}")
    m, n, nnz = (int(d) for d in dims)

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.ones(nnz, dtype=np.float64)
    count = 0
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        if count >= nnz:
            raise MatrixMarketError("more entries than declared")
        toks = stripped.split()
        if field == "pattern":
            if len(toks) < 2:
                raise MatrixMarketError(f"bad entry line: {stripped!r}")
            rows[count] = int(toks[0]) - 1
            cols[count] = int(toks[1]) - 1
        else:
            if len(toks) < 3:
                raise MatrixMarketError(f"bad entry line: {stripped!r}")
            rows[count] = int(toks[0]) - 1
            cols[count] = int(toks[1]) - 1
            vals[count] = float(toks[2])
        count += 1
    if count != nnz:
        raise MatrixMarketError(f"declared {nnz} entries, found {count}")

    if symmetry in ("symmetric", "skew-symmetric"):
        off_diag = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirror_rows = cols[off_diag]
        mirror_cols = rows[off_diag]
        mirror_vals = sign * vals[off_diag]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, mirror_vals])
    return COOMatrix((m, n), rows, cols, vals)


def write_matrix_market(matrix, target, *, comment: str | None = None) -> None:
    """Write a COO/CSR matrix as a general real coordinate ``.mtx`` file."""
    coo = matrix if isinstance(matrix, COOMatrix) else matrix.to_coo()
    buf = io.StringIO()
    buf.write("%%MatrixMarket matrix coordinate real general\n")
    if comment:
        for line in comment.splitlines():
            buf.write(f"%{line}\n")
    m, n = coo.shape
    buf.write(f"{m} {n} {coo.nnz}\n")
    for r, c, v in zip(coo.row, coo.col, coo.val):
        buf.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")
    content = buf.getvalue()
    if hasattr(target, "write"):
        target.write(content)
    else:
        Path(target).write_text(content)


def _read_text(source) -> str:
    if hasattr(source, "read"):
        return source.read()
    source = str(source)
    if "\n" in source or source.lstrip().startswith("%%MatrixMarket"):
        return source
    path = Path(source)
    check(path.exists(), f"no such MatrixMarket file: {source}")
    return path.read_text()
