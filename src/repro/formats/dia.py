"""DIA (diagonal) format.

Stores the matrix as a set of dense diagonals — the natural format for
banded PDE matrices (our ``banded`` / ``grid2d`` generators).  Included
as a substrate format: DIA is what classic HYB implementations fall back
to for the structured part of a matrix, and it gives the test suite a
format whose conversion cost explodes on unstructured inputs (mirroring
BSR's fill-in pathology from a different angle).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check, validate_shape


@dataclass
class DIAMatrix:
    """A sparse matrix stored as dense diagonals.

    Attributes
    ----------
    shape:
        ``(rows, cols)``.
    offsets:
        Sorted diagonal offsets (``0`` = main, positive = super).
    diagonals:
        ``(len(offsets), rows)`` values; ``diagonals[d, i]`` holds
        ``A[i, i + offsets[d]]`` (slots outside the matrix are zero).
    """

    shape: tuple[int, int]
    offsets: np.ndarray
    diagonals: np.ndarray

    def __post_init__(self) -> None:
        self.shape = validate_shape(self.shape)
        self.offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        self.diagonals = np.ascontiguousarray(self.diagonals)
        check(self.diagonals.ndim == 2, "diagonals must be 2-D")
        check(self.diagonals.shape == (self.offsets.size, self.shape[0]),
              "diagonals must be (n_offsets, rows)")
        check(bool(np.all(np.diff(self.offsets) > 0)),
              "offsets must be strictly increasing")

    @property
    def n_diagonals(self) -> int:
        return int(self.offsets.size)

    @property
    def nnz(self) -> int:
        """Stored nonzero values (explicit zeros in diagonals excluded)."""
        return int(np.count_nonzero(self.diagonals))

    @property
    def stored_values(self) -> int:
        """All stored slots including padding zeros."""
        return int(self.diagonals.size)

    @property
    def fill_ratio(self) -> float:
        nnz = self.nnz
        return self.stored_values / nnz if nnz else 1.0

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr, *, max_diagonals: int | None = None) -> "DIAMatrix":
        """Convert CSR to DIA.

        Raises when the matrix needs more than ``max_diagonals``
        distinct diagonals (conversion would explode) — pass ``None`` to
        allow any count.
        """
        m, n = csr.shape
        rows = np.repeat(np.arange(m, dtype=np.int64), csr.row_lengths())
        offs = csr.indices.astype(np.int64) - rows
        uniq = np.unique(offs) if csr.nnz else np.zeros(0, dtype=np.int64)
        if max_diagonals is not None:
            check(uniq.size <= max_diagonals,
                  f"matrix needs {uniq.size} diagonals (> {max_diagonals})")
        diags = np.zeros((uniq.size, m), dtype=csr.data.dtype)
        if csr.nnz:
            d_idx = np.searchsorted(uniq, offs)
            diags[d_idx, rows] = csr.data
        return cls(csr.shape, uniq, diags)

    def to_csr(self):
        """Convert back to CSR (drops stored zeros)."""
        from .coo import COOMatrix

        d, i = np.nonzero(self.diagonals)
        rows = i
        cols = i + self.offsets[d]
        inside = (cols >= 0) & (cols < self.shape[1])
        return COOMatrix(self.shape, rows[inside], cols[inside],
                         self.diagonals[d, i][inside]).to_csr(
            sum_duplicates=False)

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` by shifted diagonal products (no indices read)."""
        x = np.asarray(x)
        m, n = self.shape
        check(x.shape == (n,), "x has wrong length")
        acc = np.result_type(self.diagonals, x, np.float32)
        y = np.zeros(m, dtype=acc)
        rows = np.arange(m, dtype=np.int64)
        for d, off in enumerate(self.offsets):
            cols = rows + off
            ok = (cols >= 0) & (cols < n)
            y[ok] += (self.diagonals[d, ok].astype(acc)
                      * x[cols[ok]].astype(acc))
        return y
