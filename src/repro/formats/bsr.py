"""Block Sparse Row (BSR) format.

This is the substrate for the cuSPARSE ``?bsrmv`` baseline the paper
compares against (Table 1, "cuSPARSE-BSR").  A BSR matrix stores dense
``r x c`` blocks; converting a matrix without block structure to BSR
introduces *fill-in* (explicit zeros), which is exactly why the paper
observes up to 283.92x slowdowns for cuSPARSE-BSR on matrices such as
'lp_osa_60' — the fill-in multiplies both memory traffic and flops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import (
    as_index_array,
    as_ptr_array,
    ceil_div,
    check,
    validate_shape,
)


@dataclass
class BSRMatrix:
    """A sparse matrix stored as dense ``r x c`` blocks.

    Attributes
    ----------
    shape:
        Logical ``(rows, cols)`` of the matrix (need not be multiples of
        the block size; edge blocks are zero-padded).
    blocksize:
        ``(r, c)`` dimensions of each stored block.
    indptr:
        Block-row pointer, length ``ceil(rows / r) + 1``.
    indices:
        Block-column index of each stored block.
    data:
        ``(nblocks, r, c)`` dense block values.
    """

    shape: tuple[int, int]
    blocksize: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.shape = validate_shape(self.shape)
        r, c = self.blocksize
        check(r > 0 and c > 0, "block size must be positive")
        self.blocksize = (int(r), int(c))
        self.indptr = as_ptr_array(self.indptr)
        self.indices = as_index_array(self.indices)
        self.data = np.ascontiguousarray(self.data)
        check(self.data.ndim == 3, "data must be (nblocks, r, c)")
        check(self.data.shape[1:] == self.blocksize, "block dims mismatch")
        mb = ceil_div(self.shape[0], r)
        check(self.indptr.size == mb + 1, "indptr has wrong length")
        check(int(self.indptr[-1]) == self.indices.size == self.data.shape[0],
              "indptr[-1] must equal number of blocks")

    # ------------------------------------------------------------------
    @property
    def nblocks(self) -> int:
        """Number of stored dense blocks."""
        return int(self.data.shape[0])

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def stored_values(self) -> int:
        """Stored scalar values including fill-in zeros."""
        r, c = self.blocksize
        return self.nblocks * r * c

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    def fill_ratio(self, nnz: int) -> float:
        """Stored values / original nonzeros — the fill-in blow-up factor."""
        if nnz == 0:
            return 1.0
        return self.stored_values / nnz

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr, blocksize: tuple[int, int]) -> "BSRMatrix":
        """Convert a CSR matrix to BSR with the given block size.

        Every ``r x c`` aligned tile containing at least one nonzero
        becomes a stored block (zero-filled where the matrix is empty),
        mirroring what ``cusparseXcsr2bsr`` produces.
        """
        r, c = int(blocksize[0]), int(blocksize[1])
        check(r > 0 and c > 0, "block size must be positive")
        m, n = csr.shape
        mb = ceil_div(m, r) if m else 0
        rows = np.repeat(np.arange(m, dtype=np.int64), csr.row_lengths())
        brow = rows // r
        bcol = csr.indices.astype(np.int64) // c
        # Identify unique (brow, bcol) blocks in row-major block order.
        nb_cols = ceil_div(n, c) if n else 1
        keys = brow * nb_cols + bcol
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        uniq_mask = np.empty(keys_sorted.size, dtype=bool)
        if keys_sorted.size:
            uniq_mask[0] = True
            np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=uniq_mask[1:])
        block_of_entry = np.cumsum(uniq_mask) - 1 if keys_sorted.size else keys_sorted
        uniq_keys = keys_sorted[uniq_mask] if keys_sorted.size else keys_sorted
        nblocks = int(uniq_keys.size)
        data = np.zeros((nblocks, r, c), dtype=csr.data.dtype)
        if keys_sorted.size:
            local_r = (rows[order] % r).astype(np.int64)
            local_c = (csr.indices[order].astype(np.int64) % c)
            data[block_of_entry, local_r, local_c] = csr.data[order]
        ub_row = (uniq_keys // nb_cols).astype(np.int64)
        ub_col = (uniq_keys % nb_cols).astype(np.int32)
        indptr = np.zeros(mb + 1, dtype=np.int64)
        if nblocks:
            np.cumsum(np.bincount(ub_row, minlength=mb), out=indptr[1:])
        return cls(csr.shape, (r, c), indptr, ub_col, data)

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` computed block-wise (the BSR SpMV reference)."""
        x = np.asarray(x)
        m, n = self.shape
        check(x.shape == (n,), "x has wrong length")
        r, c = self.blocksize
        acc_dtype = np.result_type(self.data, x, np.float32)
        # Pad x so edge blocks can gather a full c-slice.
        xp = np.zeros(ceil_div(n, c) * c if n else c, dtype=acc_dtype)
        xp[:n] = x
        y = np.zeros(ceil_div(m, r) * r if m else 0, dtype=acc_dtype)
        if self.nblocks:
            # Gather x slices per block: (nblocks, c)
            starts = self.indices.astype(np.int64) * c
            xg = xp[starts[:, None] + np.arange(c)]
            partial = np.einsum(
                "brc,bc->br", self.data.astype(acc_dtype), xg
            )  # (nblocks, r)
            block_rows = np.repeat(
                np.arange(self.indptr.size - 1, dtype=np.int64),
                np.diff(self.indptr),
            )
            np.add.at(
                y.reshape(-1, r), block_rows, partial
            )
        return y[:m]

    def to_csr(self):
        """Expand back to CSR, keeping fill-in zeros out of the result."""
        from .coo import COOMatrix

        r, c = self.blocksize
        if self.nblocks == 0:
            from .csr import CSRMatrix

            return CSRMatrix.empty(self.shape, dtype=self.dtype)
        block_rows = np.repeat(
            np.arange(self.indptr.size - 1, dtype=np.int64), np.diff(self.indptr)
        )
        b, i, j = np.nonzero(self.data)
        rows = block_rows[b] * r + i
        cols = self.indices[b].astype(np.int64) * c + j
        vals = self.data[b, i, j]
        inside = (rows < self.shape[0]) & (cols < self.shape[1])
        return COOMatrix(self.shape, rows[inside], cols[inside], vals[inside]).to_csr()
