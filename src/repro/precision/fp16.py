"""FP16 (binary16) precision substrate.

Tensor-core FP16 MMA reads half-precision operands and accumulates in
FP32; the helpers here make that contract explicit and provide the
casting / safety utilities the FP16 SpMV path uses.
"""

from __future__ import annotations

import numpy as np

from .._util import check

#: Largest finite binary16 value.
FP16_MAX = float(np.finfo(np.float16).max)
#: Smallest positive normal binary16 value.
FP16_MIN_NORMAL = float(np.finfo(np.float16).tiny)
#: Unit roundoff of binary16 (2^-11).
FP16_EPS = float(np.finfo(np.float16).eps) / 2


def to_fp16(values, *, strict: bool = False) -> np.ndarray:
    """Cast to binary16.

    With ``strict=True``, raise if any finite input overflows to inf or
    any nonzero input flushes to zero — the checks a careful mixed-
    precision solver performs before demoting its matrix.
    """
    arr = np.asarray(values)
    out = arr.astype(np.float16)
    if strict:
        finite_in = np.isfinite(arr)
        check(bool(np.all(np.isfinite(out[finite_in]))),
              "FP16 overflow: values exceed 65504")
        nonzero = arr != 0
        check(bool(np.all(out[nonzero] != 0)),
              "FP16 underflow: nonzero values flushed to zero")
    return out


def fp16_mma_dot(a, b) -> np.ndarray:
    """Dot product with tensor-core semantics: fp16 inputs, fp32 products
    and accumulation (``mma.sync`` f16 with f32 accumulator)."""
    a16 = np.asarray(a, dtype=np.float16).astype(np.float32)
    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    return np.sum(a16 * b16, dtype=np.float32)


def cast_matrix_fp16(csr, *, strict: bool = False):
    """Return the CSR matrix with binary16 values (FP32 accumulate path)."""
    from ..formats import CSRMatrix

    return CSRMatrix(csr.shape, csr.indptr, csr.indices,
                     to_fp16(csr.data, strict=strict))


def representable_fraction(values) -> float:
    """Fraction of values that binary16 represents without over/underflow
    (diagnostic for whether a matrix is FP16-safe at all)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 1.0
    ok = (np.abs(arr) <= FP16_MAX) & ((arr == 0) | (np.abs(arr) >= FP16_MIN_NORMAL))
    return float(np.mean(ok))
