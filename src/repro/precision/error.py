"""Numerical-error metrics for mixed-precision SpMV results."""

from __future__ import annotations

import numpy as np


def relative_l2_error(y, y_ref) -> float:
    """||y - y_ref||_2 / ||y_ref||_2 (0 when the reference is zero)."""
    y = np.asarray(y, dtype=np.float64)
    y_ref = np.asarray(y_ref, dtype=np.float64)
    denom = np.linalg.norm(y_ref)
    if denom == 0:
        return float(np.linalg.norm(y))
    return float(np.linalg.norm(y - y_ref) / denom)


def max_relative_error(y, y_ref, *, floor: float = 1e-30) -> float:
    """Max per-component relative error with a denominator floor."""
    y = np.asarray(y, dtype=np.float64)
    y_ref = np.asarray(y_ref, dtype=np.float64)
    denom = np.maximum(np.abs(y_ref), floor)
    return float(np.max(np.abs(y - y_ref) / denom)) if y.size else 0.0


def ulps_fp16(y, y_ref) -> np.ndarray:
    """Distance in binary16 ULPs between two result vectors.

    Uses the monotone mapping from float16 bit patterns to integers, so
    adjacent representable values differ by exactly 1.
    """
    def to_ordered(v):
        bits = np.asarray(v, dtype=np.float16).view(np.uint16).astype(np.int32)
        return np.where(bits & 0x8000, -(bits & 0x7FFF), bits)

    return np.abs(to_ordered(y) - to_ordered(y_ref))
