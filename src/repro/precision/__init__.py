"""Precision substrate: binary16 storage with FP32 accumulation (tensor-
core semantics) plus error metrics."""

from .error import max_relative_error, relative_l2_error, ulps_fp16
from .fp16 import (
    FP16_EPS,
    FP16_MAX,
    FP16_MIN_NORMAL,
    cast_matrix_fp16,
    fp16_mma_dot,
    representable_fraction,
    to_fp16,
)

__all__ = [
    "FP16_EPS",
    "FP16_MAX",
    "FP16_MIN_NORMAL",
    "cast_matrix_fp16",
    "fp16_mma_dot",
    "max_relative_error",
    "relative_l2_error",
    "representable_fraction",
    "to_fp16",
    "ulps_fp16",
]
