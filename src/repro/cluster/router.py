"""`Router` — consistent-hash request placement over SpMV replicas.

Fronts N :class:`~repro.serve.server.SpMVServer` replicas with the
placement policy the cluster driver simulates at scale:

* **cache affinity** — a fingerprint's requests all land on its ring
  home (:class:`~repro.cluster.ring.HashRing`), so each replica's plan
  cache and store tier only ever hold the fingerprints assigned to it;
* **health-aware failover** — the preference list is walked past
  replicas the :class:`~repro.cluster.health.ReplicaHealth` monitor has
  marked down (and past ones answering with queue-full backpressure),
  so requests reroute instead of failing while a replica is sick;
* **straggler demotion** — healthy replicas whose router-observed
  latency EWMA makes them stragglers are moved behind their healthy
  peers in every preference walk (soft drain) without being downed;
* **overload control** — with an :class:`~repro.overload.OverloadConfig`
  installed, ``submit`` admission-checks each request first (shedding
  batch-priority traffic with a typed
  :class:`~repro.overload.AdmissionRejectedError` before any replica
  sees it) and **hedges** slow requests: a wall-clock timer scaled by
  the serving replica's latency EWMA re-issues the request to the next
  replica on the preference walk, first result wins, the loser is
  discarded and counted under ``overload.hedge.wasted_total``;
* **ring-scoped warm-up** — :meth:`warm` preloads each replica's
  assigned fingerprints from the shared
  :class:`~repro.store.PlanStore`, concurrently across replicas (the
  store's advisory read lock makes the shared directory safe).

Matrices are registered on *every* replica (the CSR is cheap to hold;
plans are built lazily), so any failover target can serve any
fingerprint — at worst it rebuilds the plan its cache never saw.

After :meth:`close`, ``submit``/``warm`` raise
:class:`RouterClosedError` — callers get a typed signal instead of
whichever replica error the close race happened to surface, and no
future is ever handed out that nobody will complete.
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import Future

import numpy as np

from .._util import ReproError, check
from ..obs import Obs
from ..overload import HedgePair, OverloadConfig, OverloadContext
from ..resilience.errors import ServerClosedError
from ..serve.plan_cache import matrix_fingerprint
from ..serve.request import SpMMRequest, SpMVRequest
from ..serve.scheduler import QueueFullError
from .health import HealthConfig, ReplicaHealth, ReplicaSignals
from .ring import DEFAULT_VNODES, HashRing


class NoHealthyReplicaError(ReproError):
    """Every preference-list replica refused the request."""


class RouterClosedError(ReproError):
    """``submit``/``warm`` called on a router after ``close()``."""


class Router:
    """Place requests onto replicas by fingerprint (see module docstring).

    Parameters
    ----------
    servers:
        ``{replica_id: SpMVServer}``, or a sequence of servers that get
        ids ``r0, r1, …`` in order.
    vnodes / seed:
        Ring construction knobs (:class:`HashRing`).
    health:
        :class:`HealthConfig` thresholds for the probe-driven monitor
        (pass ``None`` for defaults).
    overload:
        :class:`~repro.overload.OverloadConfig` enabling admission
        control and/or hedged requests at the router; ``None`` (the
        default) keeps the pre-overload behaviour exactly.
    obs:
        Shared handle for the ``cluster.router.*`` counters and the
        health monitor's instruments; fresh private one by default.
    """

    def __init__(self, servers, *, vnodes: int = DEFAULT_VNODES,
                 seed: int = 0, health: HealthConfig | None = None,
                 overload: OverloadConfig | None = None,
                 obs: Obs | None = None) -> None:
        if not isinstance(servers, dict):
            servers = {f"r{i}": s for i, s in enumerate(servers)}
        check(bool(servers), "need at least one replica")
        self.servers: dict[str, object] = dict(servers)
        self.ring = HashRing(self.servers, vnodes=vnodes, seed=seed)
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self.health = ReplicaHealth(health, obs=obs)
        self.overload = (OverloadContext(overload, obs=obs)
                         if overload is not None else None)
        self._routed = obs.counter("cluster.router.routed_total")
        self._failover = obs.counter("cluster.router.failover_total")
        self._no_replica = obs.counter("cluster.router.unroutable_total")
        self._lock = threading.Lock()
        self._closed = False
        self._timers: set[threading.Timer] = set()
        # previous (deadline_exceeded, requests) per replica, for
        # miss-rate deltas between probes
        self._prev: dict[str, tuple[int, int]] = {
            rid: (0, 0) for rid in self.servers}

    # ------------------------------------------------------------------
    def register(self, csr) -> str:
        """Register *csr* on every replica; returns its fingerprint.

        All replicas can serve all matrices (failover capability); only
        the ring home gets the fingerprint's traffic while healthy.
        """
        fp = None
        for server in self.servers.values():
            fp = server.register(csr)
        return fp

    def home(self, fingerprint: str) -> str:
        """The fingerprint's ring placement, health ignored."""
        return self.ring.lookup(fingerprint)

    def select(self, fingerprint: str) -> list[str]:
        """Preference order: healthy, then stragglers, then sick.

        Healthy-but-straggling replicas (latency EWMA far above their
        peers') are demoted behind the fast healthy ones — a soft
        drain that moves affinity traffic off a slow replica without
        the down/up cliff.  Unhealthy replicas are kept (at the end,
        in ring order) as a last resort: when *every* replica is down,
        routing to the home beats dropping the request.
        """
        prefs = self.ring.preference(fingerprint)
        healthy = [r for r in prefs if self.health.is_healthy(r)]
        sick = [r for r in prefs if not self.health.is_healthy(r)]
        if self.health.config.straggler_factor is not None:
            fast = [r for r in healthy if not self.health.is_straggler(r)]
            slow = [r for r in healthy if self.health.is_straggler(r)]
            healthy = fast + slow
        return healthy + sick

    # ------------------------------------------------------------------
    def _try_submit(self, candidates, request):
        """Walk *candidates*; return ``(rid, future)`` from the first
        replica that accepts *request*.  Skips queue-full and
        individually closed replicas; raises
        :class:`RouterClosedError` when the race was the router's own
        close, or :class:`NoHealthyReplicaError` when everyone
        refused.  Replicas never mutate the submitted object, so the
        hedging path re-issues the same request safely."""
        last: Exception | None = None
        for rid in candidates:
            try:
                future = self.servers[rid].submit(request)
            except QueueFullError as exc:
                last = exc
                continue
            except ServerClosedError as exc:
                if self._closed:
                    raise RouterClosedError("router is closed") from exc
                last = exc
                continue
            return rid, future
        self._no_replica.inc()
        raise NoHealthyReplicaError(
            f"no replica accepted matrix {request.fingerprint[:8]}… "
            f"(tried {len(candidates)})") from last

    def _watch_latency(self, rid: str, future) -> None:
        """Feed the per-replica latency EWMA when *future* settles."""
        ctx = self.overload
        if ctx is None or ctx.latency is None:
            return
        start = time.monotonic()
        future.add_done_callback(
            lambda _f: ctx.latency.observe(rid, time.monotonic() - start))

    def submit(self, request, x=None, deadline_s: float | None = None,
               priority: str = "interactive"):
        """Route one typed request; returns a Future for its result.

        Takes the same :class:`~repro.serve.SpMVRequest` /
        :class:`~repro.serve.SpMMRequest` objects as
        :meth:`repro.serve.SpMVServer.submit` — one request vocabulary
        across the stack, with ``deadline_us`` / ``priority`` /
        ``shards`` keyword-only on the request.  The old positional
        ``submit(fingerprint, x, deadline_s=...)`` form routes
        identically for one release behind a ``DeprecationWarning``.

        Walks :meth:`select`, skipping replicas that refuse with
        queue-full backpressure; counts a failover whenever the serving
        replica is not the ring home.  Raises
        :class:`NoHealthyReplicaError` when every replica refused,
        :class:`~repro.overload.AdmissionRejectedError` when admission
        control sheds the request, and :class:`RouterClosedError`
        after :meth:`close`.

        With hedging enabled the returned Future is a router-owned
        wrapper resolved by whichever replica answers first.
        """
        if not isinstance(request, (SpMVRequest, SpMMRequest)):
            warnings.warn(
                "Router.submit(fingerprint, x, ...) is deprecated; pass "
                "a repro.serve.SpMVRequest (or SpMMRequest) instead — "
                "the positional form will be removed next release",
                DeprecationWarning, stacklevel=2)
            deadline_us = None if deadline_s is None else deadline_s * 1e6
            request = SpMVRequest(request, np.asarray(x),
                                  deadline_us=deadline_us,
                                  priority=priority)
        else:
            check(x is None and deadline_s is None
                  and priority == "interactive",
                  "pass deadline/priority on the request object, not "
                  "as submit() arguments")
        if self._closed:
            raise RouterClosedError("router is closed")
        ctx = self.overload
        if ctx is not None and ctx.admission is not None:
            ctx.admission.admit(request.priority, time.monotonic())
        prefs = self.select(request.fingerprint)
        home = self.ring.lookup(request.fingerprint)
        rid, future = self._try_submit(prefs, request)
        self._routed.inc()
        self.obs.counter("cluster.router.replica_routed_total",
                         {"replica": rid}).inc()
        if rid != home:
            self._failover.inc()
        self._watch_latency(rid, future)
        if ctx is None or ctx.hedge is None or len(prefs) < 2:
            return future
        return self._hedge(ctx, rid, future, prefs, request)

    # ------------------------------------------------------------------
    def _hedge(self, ctx: OverloadContext, primary_rid: str, primary,
               prefs, request):
        """Wrap *primary* in a first-wins Future with a hedge timer.

        The timer fires after ``max(min_delay_s, delay_factor x EWMA)``
        without a primary result and re-issues the request to the next
        replica on the preference walk; whichever side completes first
        resolves the wrapper, the loser is counted as wasted.  A
        primary *failure* before the timer fires issues the hedge
        immediately (failover); the wrapper fails only when both
        avenues are exhausted.
        """
        cfg = ctx.hedge
        outer: Future = Future()
        outer.set_running_or_notify_cancel()
        pair = HedgePair(primary_rid=primary_rid)
        state = {"hedge_issued": False, "hedge_unroutable": False,
                 "primary_error": None, "hedge_error": None,
                 "failed": False}
        lock = threading.Lock()
        ewma = ctx.latency.ewma(primary_rid)
        delay = max(cfg.min_delay_s, cfg.delay_factor * ewma)
        timer = threading.Timer(delay, lambda: issue_hedge())
        timer.daemon = True

        def maybe_fail_locked(err) -> bool:
            # caller holds `lock`; True when this call must fail outer
            exhausted = (state["primary_error"] is not None
                         and (state["hedge_error"] is not None
                              or state["hedge_unroutable"]))
            if exhausted and not state["failed"]:
                state["failed"] = True
                return True
            return False

        def issue_hedge() -> None:
            self._timers.discard(timer)
            with lock:
                if state["hedge_issued"] or pair.resolved:
                    return
                state["hedge_issued"] = True
            rest = [r for r in prefs if r != primary_rid]
            try:
                if self._closed:
                    raise RouterClosedError("router is closed")
                hrid, hfut = self._try_submit(rest, request)
            except (NoHealthyReplicaError, RouterClosedError) as exc:
                with lock:
                    state["hedge_unroutable"] = True
                    fail = maybe_fail_locked(exc)
                if fail:
                    outer.set_exception(state["primary_error"])
                return
            pair.hedge_rid = hrid
            ctx.hedges_issued.inc()
            self._watch_latency(hrid, hfut)
            hfut.add_done_callback(lambda f: on_done("hedge", f))

        def on_done(side: str, fut) -> None:
            err = fut.exception()
            if err is None:
                if pair.resolve(side):
                    if side == "primary":
                        timer.cancel()
                        self._timers.discard(timer)
                    else:
                        ctx.hedges_won.inc()
                    outer.set_result(fut.result())
                else:
                    ctx.hedges_wasted.inc()
                return
            with lock:
                state[f"{side}_error"] = err
                spawn = (side == "primary" and not state["hedge_issued"])
                fail = False if spawn else maybe_fail_locked(err)
            if spawn:
                timer.cancel()
                issue_hedge()
                # the hedge may have been unroutable -> re-check
                with lock:
                    fail = maybe_fail_locked(err)
            if fail:
                outer.set_exception(err)

        primary.add_done_callback(lambda f: on_done("primary", f))
        if not pair.resolved:
            self._timers.add(timer)
            timer.start()
        return outer

    # ------------------------------------------------------------------
    def probe(self) -> dict[str, bool]:
        """Sample every replica's signals into the health monitor.

        Returns ``{replica_id: healthy}`` after hysteresis.  Call
        periodically (the real deployment's probe loop); the monitor
        itself is clock-free.  With overload enabled, the router's
        latency EWMA rides along as the straggler signal.
        """
        ctx = self.overload
        out: dict[str, bool] = {}
        with self._lock:
            for rid, server in self.servers.items():
                raw = server.signals()
                prev_miss, prev_req = self._prev[rid]
                d_req = raw["requests"] - prev_req
                d_miss = raw["deadline_exceeded"] - prev_miss
                miss_rate = (d_miss / d_req) if d_req > 0 else 0.0
                self._prev[rid] = (raw["deadline_exceeded"], raw["requests"])
                ewma = (ctx.latency.ewma(rid)
                        if ctx is not None and ctx.latency is not None
                        else 0.0)
                out[rid] = self.health.observe(rid, ReplicaSignals(
                    queue_depth=raw["queue_depth"],
                    open_circuits=raw["open_circuits"],
                    miss_rate=miss_rate,
                    latency_ewma_s=ewma))
        return out

    # ------------------------------------------------------------------
    def assignments(self, fingerprints) -> dict[str, list[str]]:
        """replica id -> assigned fingerprints (ring homes)."""
        return self.ring.assignments(fingerprints)

    def warm(self, fingerprints) -> dict[str, int]:
        """Concurrently preload each replica's assigned fingerprints.

        Every replica warms only its ring-assigned subset from its
        registry's store tier, on its own thread — the cold-start path
        of a whole cluster restarting against one shared store
        directory.  Returns ``{replica_id: plans_warmed}``.
        """
        if self._closed:
            raise RouterClosedError("router is closed")
        assigned = self.assignments(fingerprints)
        warmed: dict[str, int] = {rid: 0 for rid in self.servers}

        def work(rid: str) -> None:
            server = self.servers[rid]
            if server.registry.store is None:
                return
            count = 0
            for fp in assigned[rid]:
                load_s = server.registry.warm(fp)
                if load_s is not None:
                    server.stats.observe_preprocess(load_s)
                    count += 1
            warmed[rid] = count

        threads = [threading.Thread(target=work, args=(rid,),
                                    name=f"cluster-warm-{rid}")
                   for rid in self.servers]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(warmed.values())
        if total:
            self.obs.counter("cluster.router.warmed_total").inc(total)
        return warmed

    # ------------------------------------------------------------------
    def close(self, timeout: float | None = None) -> None:
        """Close every replica (drains by default; never leaks futures).

        Subsequent ``submit``/``warm`` raise :class:`RouterClosedError`;
        pending hedge timers are cancelled (their wrapper futures are
        resolved by the replicas' own close-time future fail-out).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            timers = list(self._timers)
            self._timers.clear()
        for t in timers:
            t.cancel()
        for server in self.servers.values():
            server.close(timeout)

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
