"""`Router` — consistent-hash request placement over SpMV replicas.

Fronts N :class:`~repro.serve.server.SpMVServer` replicas with the
placement policy the cluster driver simulates at scale:

* **cache affinity** — a fingerprint's requests all land on its ring
  home (:class:`~repro.cluster.ring.HashRing`), so each replica's plan
  cache and store tier only ever hold the fingerprints assigned to it;
* **health-aware failover** — the preference list is walked past
  replicas the :class:`~repro.cluster.health.ReplicaHealth` monitor has
  marked down (and past ones answering with queue-full backpressure),
  so requests reroute instead of failing while a replica is sick;
* **ring-scoped warm-up** — :meth:`warm` preloads each replica's
  assigned fingerprints from the shared
  :class:`~repro.store.PlanStore`, concurrently across replicas (the
  store's advisory read lock makes the shared directory safe).

Matrices are registered on *every* replica (the CSR is cheap to hold;
plans are built lazily), so any failover target can serve any
fingerprint — at worst it rebuilds the plan its cache never saw.
"""

from __future__ import annotations

import threading

from .._util import ReproError, check
from ..obs import Obs
from ..serve.plan_cache import matrix_fingerprint
from ..serve.scheduler import QueueFullError
from .health import HealthConfig, ReplicaHealth, ReplicaSignals
from .ring import DEFAULT_VNODES, HashRing


class NoHealthyReplicaError(ReproError):
    """Every preference-list replica refused the request."""


class Router:
    """Place requests onto replicas by fingerprint (see module docstring).

    Parameters
    ----------
    servers:
        ``{replica_id: SpMVServer}``, or a sequence of servers that get
        ids ``r0, r1, …`` in order.
    vnodes / seed:
        Ring construction knobs (:class:`HashRing`).
    health:
        :class:`HealthConfig` thresholds for the probe-driven monitor
        (pass ``None`` for defaults).
    obs:
        Shared handle for the ``cluster.router.*`` counters and the
        health monitor's instruments; fresh private one by default.
    """

    def __init__(self, servers, *, vnodes: int = DEFAULT_VNODES,
                 seed: int = 0, health: HealthConfig | None = None,
                 obs: Obs | None = None) -> None:
        if not isinstance(servers, dict):
            servers = {f"r{i}": s for i, s in enumerate(servers)}
        check(bool(servers), "need at least one replica")
        self.servers: dict[str, object] = dict(servers)
        self.ring = HashRing(self.servers, vnodes=vnodes, seed=seed)
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self.health = ReplicaHealth(health, obs=obs)
        self._routed = obs.counter("cluster.router.routed_total")
        self._failover = obs.counter("cluster.router.failover_total")
        self._no_replica = obs.counter("cluster.router.unroutable_total")
        self._lock = threading.Lock()
        # previous (deadline_exceeded, requests) per replica, for
        # miss-rate deltas between probes
        self._prev: dict[str, tuple[int, int]] = {
            rid: (0, 0) for rid in self.servers}

    # ------------------------------------------------------------------
    def register(self, csr) -> str:
        """Register *csr* on every replica; returns its fingerprint.

        All replicas can serve all matrices (failover capability); only
        the ring home gets the fingerprint's traffic while healthy.
        """
        fp = None
        for server in self.servers.values():
            fp = server.register(csr)
        return fp

    def home(self, fingerprint: str) -> str:
        """The fingerprint's ring placement, health ignored."""
        return self.ring.lookup(fingerprint)

    def select(self, fingerprint: str) -> list[str]:
        """Preference order with unhealthy replicas moved to the back.

        Unhealthy replicas are kept (at the end, in ring order) as a
        last resort: when *every* replica is down, routing to the home
        beats dropping the request.
        """
        prefs = self.ring.preference(fingerprint)
        healthy = [r for r in prefs if self.health.is_healthy(r)]
        sick = [r for r in prefs if not self.health.is_healthy(r)]
        return healthy + sick

    def submit(self, fingerprint: str, x, deadline_s: float | None = None):
        """Route one request; returns the serving replica's Future.

        Walks :meth:`select`, skipping replicas that refuse with
        queue-full backpressure; counts a failover whenever the serving
        replica is not the ring home.  Raises
        :class:`NoHealthyReplicaError` when every replica refused.
        """
        prefs = self.select(fingerprint)
        home = self.ring.lookup(fingerprint)
        last: Exception | None = None
        for rid in prefs:
            try:
                future = self.servers[rid].submit(fingerprint, x,
                                                  deadline_s=deadline_s)
            except QueueFullError as exc:
                last = exc
                continue
            self._routed.inc()
            self.obs.counter("cluster.router.replica_routed_total",
                             {"replica": rid}).inc()
            if rid != home:
                self._failover.inc()
            return future
        self._no_replica.inc()
        raise NoHealthyReplicaError(
            f"no replica accepted matrix {fingerprint[:8]}… "
            f"(tried {len(prefs)})") from last

    # ------------------------------------------------------------------
    def probe(self) -> dict[str, bool]:
        """Sample every replica's signals into the health monitor.

        Returns ``{replica_id: healthy}`` after hysteresis.  Call
        periodically (the real deployment's probe loop); the monitor
        itself is clock-free.
        """
        out: dict[str, bool] = {}
        with self._lock:
            for rid, server in self.servers.items():
                raw = server.signals()
                prev_miss, prev_req = self._prev[rid]
                d_req = raw["requests"] - prev_req
                d_miss = raw["deadline_exceeded"] - prev_miss
                miss_rate = (d_miss / d_req) if d_req > 0 else 0.0
                self._prev[rid] = (raw["deadline_exceeded"], raw["requests"])
                out[rid] = self.health.observe(rid, ReplicaSignals(
                    queue_depth=raw["queue_depth"],
                    open_circuits=raw["open_circuits"],
                    miss_rate=miss_rate))
        return out

    # ------------------------------------------------------------------
    def assignments(self, fingerprints) -> dict[str, list[str]]:
        """replica id -> assigned fingerprints (ring homes)."""
        return self.ring.assignments(fingerprints)

    def warm(self, fingerprints) -> dict[str, int]:
        """Concurrently preload each replica's assigned fingerprints.

        Every replica warms only its ring-assigned subset from its
        registry's store tier, on its own thread — the cold-start path
        of a whole cluster restarting against one shared store
        directory.  Returns ``{replica_id: plans_warmed}``.
        """
        assigned = self.assignments(fingerprints)
        warmed: dict[str, int] = {rid: 0 for rid in self.servers}

        def work(rid: str) -> None:
            server = self.servers[rid]
            if server.registry.store is None:
                return
            count = 0
            for fp in assigned[rid]:
                load_s = server.registry.warm(fp)
                if load_s is not None:
                    server.stats.observe_preprocess(load_s)
                    count += 1
            warmed[rid] = count

        threads = [threading.Thread(target=work, args=(rid,),
                                    name=f"cluster-warm-{rid}")
                   for rid in self.servers]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(warmed.values())
        if total:
            self.obs.counter("cluster.router.warmed_total").inc(total)
        return warmed

    # ------------------------------------------------------------------
    def close(self, timeout: float | None = None) -> None:
        """Close every replica (drains by default; never leaks futures)."""
        for server in self.servers.values():
            server.close(timeout)

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
