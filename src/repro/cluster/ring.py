"""Consistent-hash ring — deterministic fingerprint -> replica placement.

The ring places matrix fingerprints onto replicas with the classic
virtual-node construction: each replica contributes ``vnodes`` points
on a 64-bit circle, a key routes to the first point at or after its own
hash (wrapping), and the *preference list* walks further points to give
distinct failover targets in a stable order.

Two properties the cluster relies on, both pinned by tests:

* **minimal disruption** — adding or removing one replica moves only
  the keys whose owning arc changed, ~``K/N`` of them, so a rebalance
  re-warms a small fingerprint set rather than every cache;
* **cross-process determinism** — hashing is seeded
  ``blake2b`` over the raw bytes (never Python's ``hash()``, which is
  randomized per process), so every router, driver and CI lane agrees
  on the same placement for a given ``(members, vnodes, seed)``.
"""

from __future__ import annotations

import bisect
import hashlib

from .._util import check

#: Default virtual nodes per replica — enough for ±15% load uniformity.
DEFAULT_VNODES = 128


def stable_hash(data: str | bytes, *, seed: int = 0) -> int:
    """Seeded 64-bit blake2b of *data* — stable across processes."""
    if isinstance(data, str):
        data = data.encode()
    h = hashlib.blake2b(data, digest_size=8,
                        key=seed.to_bytes(8, "little", signed=False))
    return int.from_bytes(h.digest(), "big")


class HashRing:
    """Consistent-hash ring over named replicas (see module docstring).

    Parameters
    ----------
    members:
        Initial replica ids (any iterable of strings).
    vnodes:
        Virtual nodes per replica; more vnodes = smoother key spread
        at the cost of a larger ring (lookups stay O(log N*vnodes)).
    seed:
        Hash seed; rings with different seeds give independent
        placements (useful for re-randomizing a pathological layout
        without touching the member set).
    """

    def __init__(self, members=(), *, vnodes: int = DEFAULT_VNODES,
                 seed: int = 0) -> None:
        check(vnodes >= 1, "vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        self._members: set[str] = set()
        self._points: list[int] = []      # sorted vnode hashes
        self._owners: list[str] = []      # owner of self._points[i]
        for m in members:
            self.add(m)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, replica_id: str) -> bool:
        return replica_id in self._members

    def members(self) -> list[str]:
        """Current replica ids, sorted."""
        return sorted(self._members)

    def _vnode_hashes(self, replica_id: str):
        for v in range(self.vnodes):
            yield stable_hash(f"{replica_id}#{v}", seed=self.seed)

    def add(self, replica_id: str) -> None:
        """Add a replica (idempotent)."""
        check(bool(replica_id), "replica_id must be non-empty")
        if replica_id in self._members:
            return
        self._members.add(replica_id)
        for h in self._vnode_hashes(replica_id):
            i = bisect.bisect(self._points, h)
            # ties broken by id so identical-hash vnodes stay ordered
            while (i < len(self._points) and self._points[i] == h
                   and self._owners[i] < replica_id):  # pragma: no cover
                i += 1
            self._points.insert(i, h)
            self._owners.insert(i, replica_id)

    def remove(self, replica_id: str) -> None:
        """Remove a replica (idempotent)."""
        if replica_id not in self._members:
            return
        self._members.discard(replica_id)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != replica_id]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> str:
        """Home replica of *key* (first vnode clockwise of its hash)."""
        check(bool(self._members), "ring has no members")
        h = stable_hash(key, seed=self.seed)
        i = bisect.bisect(self._points, h)
        if i == len(self._points):
            i = 0
        return self._owners[i]

    def preference(self, key: str, n: int | None = None) -> list[str]:
        """The first *n* distinct replicas clockwise of *key*'s hash.

        ``preference(key)[0] == lookup(key)``; later entries are the
        failover order the router walks when earlier ones are
        unhealthy.  ``n`` defaults to the full membership.
        """
        check(bool(self._members), "ring has no members")
        want = len(self._members) if n is None else min(int(n),
                                                       len(self._members))
        h = stable_hash(key, seed=self.seed)
        i = bisect.bisect(self._points, h)
        out: list[str] = []
        seen: set[str] = set()
        for step in range(len(self._points)):
            owner = self._owners[(i + step) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) >= want:
                    break
        return out

    def assignments(self, keys) -> dict[str, list[str]]:
        """replica id -> keys homed on it (every member listed)."""
        out: dict[str, list[str]] = {m: [] for m in self._members}
        for key in keys:
            out[self.lookup(key)].append(key)
        return out
