"""`repro.cluster` — multi-replica serving fabric.

The scale-out layer over :mod:`repro.serve`: a consistent-hash ring
(:class:`HashRing`) places matrix fingerprints onto replicas with
virtual nodes and a seeded stable hash, a :class:`Router` fronts real
:class:`~repro.serve.SpMVServer` replicas with cache-affine placement
and health-aware failover, :class:`ReplicaHealth` filters raw replica
signals (queue depth, open breakers, deadline-miss rate) through
hysteresis so routing doesn't flap, and
:func:`run_cluster_workload` replays the deterministic virtual-time
Poisson/Zipf workload over N simulated replicas — bit-identical to the
single-replica driver at N=1, linear modeled throughput as N grows,
and failover under injected replica failure.

See ``docs/DESIGN.md`` ("Cluster placement, health and failover") for
the design rationale.
"""

from .driver import (
    ClusterConfig,
    ClusterStats,
    ElasticConfig,
    run_cluster_workload,
)
from .health import HealthConfig, ReplicaHealth, ReplicaSignals
from .ring import DEFAULT_VNODES, HashRing, stable_hash
from .router import NoHealthyReplicaError, Router, RouterClosedError

__all__ = [
    "ClusterConfig",
    "ClusterStats",
    "DEFAULT_VNODES",
    "ElasticConfig",
    "HashRing",
    "HealthConfig",
    "NoHealthyReplicaError",
    "ReplicaHealth",
    "ReplicaSignals",
    "Router",
    "RouterClosedError",
    "run_cluster_workload",
    "stable_hash",
]
