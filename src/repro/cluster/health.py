"""Replica health — hysteresis over breaker/queue/deadline signals.

:class:`ReplicaHealth` turns the raw signals a replica already exposes
(the ``serve.scheduler.queue_depth`` gauge, open circuit-breaker
counts, the deadline-miss rate since the previous probe) into a binary
healthy/unhealthy routing decision with **hysteresis**: a replica is
marked down only after ``down_after`` consecutive bad probes and
marked up again only after ``up_after`` consecutive good ones, so a
single queue spike or one half-open breaker probe cannot flap routing.

Between "healthy" and "down" there is a third, softer state:
**straggler**.  A replica whose latency EWMA (fed by the router or the
cluster driver via :attr:`ReplicaSignals.latency_ewma_s`) exceeds
``straggler_factor`` times the median of its peers' is still alive and
still correct — it is just slow, which is exactly the replica that
dominates the cluster's tail latency.  Stragglers stay *routable* but
are demoted to the back of the healthy portion of every preference
walk (a soft drain): affinity traffic moves off them gradually without
the cliff of marking them down, and they rejoin automatically once
their EWMA recovers.  ``straggler_factor=None`` (the default) disables
the mechanism entirely.

The monitor never contacts replicas itself — callers sample signals
(:meth:`repro.serve.SpMVServer.signals` on the real server, replica
state directly in the virtual-time cluster driver) and feed them to
:meth:`ReplicaHealth.observe`.  That keeps it clock-free and equally
usable under wall time and virtual time.  All state mutation is
guarded by one lock: ``observe`` runs on probe threads while the
driver calls ``snapshot``/``forget`` concurrently.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .._util import check


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds and hysteresis of the replica health monitor.

    A probe is *bad* when any enabled threshold trips: queue depth at
    or above ``max_queue_depth``, more than ``max_open_circuits`` open
    (or half-open) breaker circuits, or a deadline-miss rate above
    ``max_miss_rate`` over the probe interval.  ``None`` disables a
    threshold.

    ``straggler_factor`` enables the soft-drain straggler state: a
    replica whose ``latency_ewma_s`` exceeds this multiple of the
    median of its peers' positive EWMAs is demoted (not downed) in the
    preference walk.  ``None`` (default) keeps pre-overload behaviour.
    """

    max_queue_depth: int | None = 64
    max_open_circuits: int | None = 0
    max_miss_rate: float | None = 0.5
    down_after: int = 2
    up_after: int = 3
    straggler_factor: float | None = None

    def __post_init__(self) -> None:
        check(self.down_after >= 1, "down_after must be >= 1")
        check(self.up_after >= 1, "up_after must be >= 1")
        if self.max_queue_depth is not None:
            check(self.max_queue_depth >= 1, "max_queue_depth must be >= 1")
        if self.max_open_circuits is not None:
            check(self.max_open_circuits >= 0,
                  "max_open_circuits must be >= 0")
        if self.max_miss_rate is not None:
            check(0.0 <= self.max_miss_rate <= 1.0,
                  "max_miss_rate must be in [0, 1]")
        if self.straggler_factor is not None:
            check(self.straggler_factor > 1.0,
                  "straggler_factor must be > 1")


@dataclass(frozen=True)
class ReplicaSignals:
    """One probe's worth of raw replica signals.

    ``queue_depth`` counts work waiting for the device (scheduler queue
    on the real server, flushed-batch backlog in the virtual driver);
    ``open_circuits`` counts fingerprints whose breaker is not closed;
    ``miss_rate`` is deadline misses / requests since the last probe
    (0.0 when idle); ``latency_ewma_s`` is the smoothed request
    latency observed *at the router* (0.0 = no data yet), the signal
    behind straggler demotion.
    """

    queue_depth: int = 0
    open_circuits: int = 0
    miss_rate: float = 0.0
    latency_ewma_s: float = 0.0


class _ReplicaState:
    __slots__ = ("healthy", "bad_streak", "good_streak", "last")

    def __init__(self) -> None:
        self.healthy = True
        self.bad_streak = 0
        self.good_streak = 0
        self.last = ReplicaSignals()


#: Signals fed for a probe that could not reach the replica at all
#: (partition): trips every enabled threshold at once.
UNREACHABLE_SIGNALS = ReplicaSignals(queue_depth=1 << 30,
                                     open_circuits=1 << 30, miss_rate=1.0)


class ReplicaHealth:
    """Hysteresis-filtered health state per replica id.

    ``obs`` backs ``cluster.health.probes_total``,
    ``cluster.health.transitions_total{to=up|down}`` and a
    ``cluster.health.unhealthy`` gauge; it defaults to a fresh private
    handle (per-run-object convention).

    Thread-safe: ``observe``/``observe_unreachable`` may run on probe
    threads while the router reads ``is_healthy``/``is_straggler`` and
    the driver calls ``snapshot``/``forget``.
    """

    def __init__(self, config: HealthConfig | None = None, *,
                 obs=None) -> None:
        from ..obs import Obs

        self.config = config if config is not None else HealthConfig()
        self._states: dict[str, _ReplicaState] = {}
        self._lock = threading.RLock()
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self._probes = obs.counter("cluster.health.probes_total")
        self._unhealthy_gauge = obs.gauge("cluster.health.unhealthy")

    # ------------------------------------------------------------------
    def _state(self, replica_id: str) -> _ReplicaState:
        # caller holds the lock
        s = self._states.get(replica_id)
        if s is None:
            s = self._states[replica_id] = _ReplicaState()
        return s

    def is_bad(self, signals: ReplicaSignals) -> bool:
        """Does one probe trip any enabled threshold?"""
        cfg = self.config
        if (cfg.max_queue_depth is not None
                and signals.queue_depth >= cfg.max_queue_depth):
            return True
        if (cfg.max_open_circuits is not None
                and signals.open_circuits > cfg.max_open_circuits):
            return True
        if (cfg.max_miss_rate is not None
                and signals.miss_rate > cfg.max_miss_rate):
            return True
        return False

    def observe(self, replica_id: str, signals: ReplicaSignals) -> bool:
        """Fold one probe in; returns the (possibly updated) health."""
        bad = self.is_bad(signals)
        with self._lock:
            s = self._state(replica_id)
            s.last = signals
            self._probes.inc()
            if bad:
                s.bad_streak += 1
                s.good_streak = 0
                if s.healthy and s.bad_streak >= self.config.down_after:
                    s.healthy = False
                    self._transition("down")
            else:
                s.good_streak += 1
                s.bad_streak = 0
                if not s.healthy and s.good_streak >= self.config.up_after:
                    s.healthy = True
                    self._transition("up")
            return s.healthy

    def observe_unreachable(self, replica_id: str) -> bool:
        """Fold in a probe that never got an answer (link partition)."""
        return self.observe(replica_id, UNREACHABLE_SIGNALS)

    def _transition(self, to: str) -> None:
        # caller holds the lock
        self.obs.counter("cluster.health.transitions_total",
                         {"to": to}).inc()
        self._unhealthy_gauge.set(self._unhealthy_count_locked())

    # ------------------------------------------------------------------
    def is_healthy(self, replica_id: str) -> bool:
        """Unknown replicas are healthy (no probe = no evidence)."""
        with self._lock:
            s = self._states.get(replica_id)
            return s.healthy if s is not None else True

    def is_straggler(self, replica_id: str) -> bool:
        """Healthy but slow relative to its peers (soft-drain state).

        Compares the replica's ``latency_ewma_s`` against
        ``straggler_factor`` x the median of the *other* replicas'
        positive EWMAs; needs at least two such peers (no population,
        no outlier).  Always False when the factor is disabled or the
        replica is already unhealthy (down dominates demoted).
        """
        factor = self.config.straggler_factor
        if factor is None:
            return False
        with self._lock:
            s = self._states.get(replica_id)
            if s is None or not s.healthy:
                return False
            mine = s.last.latency_ewma_s
            peers = sorted(t.last.latency_ewma_s
                           for rid, t in self._states.items()
                           if rid != replica_id and t.last.latency_ewma_s > 0.0)
        if mine <= 0.0 or len(peers) < 2:
            return False
        mid = len(peers) // 2
        median = (peers[mid] if len(peers) % 2
                  else 0.5 * (peers[mid - 1] + peers[mid]))
        return mine > factor * median

    def stragglers(self) -> list[str]:
        with self._lock:
            rids = list(self._states)
        return [rid for rid in rids if self.is_straggler(rid)]

    def _unhealthy_count_locked(self) -> int:
        return sum(1 for s in self._states.values() if not s.healthy)

    def unhealthy_count(self) -> int:
        with self._lock:
            return self._unhealthy_count_locked()

    def forget(self, replica_id: str) -> None:
        """Drop a drained replica's state (elastic scale-down)."""
        with self._lock:
            self._states.pop(replica_id, None)
            self._unhealthy_gauge.set(self._unhealthy_count_locked())

    def snapshot(self) -> dict[str, dict]:
        """replica id -> {healthy, streaks, last signals} for reports."""
        with self._lock:
            return {
                rid: {
                    "healthy": s.healthy,
                    "bad_streak": s.bad_streak,
                    "good_streak": s.good_streak,
                    "queue_depth": s.last.queue_depth,
                    "open_circuits": s.last.open_circuits,
                    "miss_rate": s.last.miss_rate,
                    "latency_ewma_s": s.last.latency_ewma_s,
                    "straggler": self.is_straggler(rid),
                }
                for rid, s in sorted(self._states.items())
            }
