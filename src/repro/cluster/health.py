"""Replica health — hysteresis over breaker/queue/deadline signals.

:class:`ReplicaHealth` turns the raw signals a replica already exposes
(the ``serve.scheduler.queue_depth`` gauge, open circuit-breaker
counts, the deadline-miss rate since the previous probe) into a binary
healthy/unhealthy routing decision with **hysteresis**: a replica is
marked down only after ``down_after`` consecutive bad probes and
marked up again only after ``up_after`` consecutive good ones, so a
single queue spike or one half-open breaker probe cannot flap routing.

The monitor never contacts replicas itself — callers sample signals
(:meth:`repro.serve.SpMVServer.signals` on the real server, replica
state directly in the virtual-time cluster driver) and feed them to
:meth:`ReplicaHealth.observe`.  That keeps it clock-free and equally
usable under wall time and virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import check


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds and hysteresis of the replica health monitor.

    A probe is *bad* when any enabled threshold trips: queue depth at
    or above ``max_queue_depth``, more than ``max_open_circuits`` open
    (or half-open) breaker circuits, or a deadline-miss rate above
    ``max_miss_rate`` over the probe interval.  ``None`` disables a
    threshold.
    """

    max_queue_depth: int | None = 64
    max_open_circuits: int | None = 0
    max_miss_rate: float | None = 0.5
    down_after: int = 2
    up_after: int = 3

    def __post_init__(self) -> None:
        check(self.down_after >= 1, "down_after must be >= 1")
        check(self.up_after >= 1, "up_after must be >= 1")
        if self.max_queue_depth is not None:
            check(self.max_queue_depth >= 1, "max_queue_depth must be >= 1")
        if self.max_open_circuits is not None:
            check(self.max_open_circuits >= 0,
                  "max_open_circuits must be >= 0")
        if self.max_miss_rate is not None:
            check(0.0 <= self.max_miss_rate <= 1.0,
                  "max_miss_rate must be in [0, 1]")


@dataclass(frozen=True)
class ReplicaSignals:
    """One probe's worth of raw replica signals.

    ``queue_depth`` counts work waiting for the device (scheduler queue
    on the real server, flushed-batch backlog in the virtual driver);
    ``open_circuits`` counts fingerprints whose breaker is not closed;
    ``miss_rate`` is deadline misses / requests since the last probe
    (0.0 when idle).
    """

    queue_depth: int = 0
    open_circuits: int = 0
    miss_rate: float = 0.0


class _ReplicaState:
    __slots__ = ("healthy", "bad_streak", "good_streak", "last")

    def __init__(self) -> None:
        self.healthy = True
        self.bad_streak = 0
        self.good_streak = 0
        self.last = ReplicaSignals()


class ReplicaHealth:
    """Hysteresis-filtered health state per replica id.

    ``obs`` backs ``cluster.health.probes_total``,
    ``cluster.health.transitions_total{to=up|down}`` and a
    ``cluster.health.unhealthy`` gauge; it defaults to a fresh private
    handle (per-run-object convention).
    """

    def __init__(self, config: HealthConfig | None = None, *,
                 obs=None) -> None:
        from ..obs import Obs

        self.config = config if config is not None else HealthConfig()
        self._states: dict[str, _ReplicaState] = {}
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self._probes = obs.counter("cluster.health.probes_total")
        self._unhealthy_gauge = obs.gauge("cluster.health.unhealthy")

    # ------------------------------------------------------------------
    def _state(self, replica_id: str) -> _ReplicaState:
        s = self._states.get(replica_id)
        if s is None:
            s = self._states[replica_id] = _ReplicaState()
        return s

    def is_bad(self, signals: ReplicaSignals) -> bool:
        """Does one probe trip any enabled threshold?"""
        cfg = self.config
        if (cfg.max_queue_depth is not None
                and signals.queue_depth >= cfg.max_queue_depth):
            return True
        if (cfg.max_open_circuits is not None
                and signals.open_circuits > cfg.max_open_circuits):
            return True
        if (cfg.max_miss_rate is not None
                and signals.miss_rate > cfg.max_miss_rate):
            return True
        return False

    def observe(self, replica_id: str, signals: ReplicaSignals) -> bool:
        """Fold one probe in; returns the (possibly updated) health."""
        s = self._state(replica_id)
        s.last = signals
        self._probes.inc()
        if self.is_bad(signals):
            s.bad_streak += 1
            s.good_streak = 0
            if s.healthy and s.bad_streak >= self.config.down_after:
                s.healthy = False
                self._transition("down")
        else:
            s.good_streak += 1
            s.bad_streak = 0
            if not s.healthy and s.good_streak >= self.config.up_after:
                s.healthy = True
                self._transition("up")
        return s.healthy

    def _transition(self, to: str) -> None:
        self.obs.counter("cluster.health.transitions_total",
                         {"to": to}).inc()
        self._unhealthy_gauge.set(self.unhealthy_count())

    # ------------------------------------------------------------------
    def is_healthy(self, replica_id: str) -> bool:
        """Unknown replicas are healthy (no probe = no evidence)."""
        s = self._states.get(replica_id)
        return s.healthy if s is not None else True

    def unhealthy_count(self) -> int:
        return sum(1 for s in self._states.values() if not s.healthy)

    def forget(self, replica_id: str) -> None:
        """Drop a drained replica's state (elastic scale-down)."""
        self._states.pop(replica_id, None)
        self._unhealthy_gauge.set(self.unhealthy_count())

    def snapshot(self) -> dict[str, dict]:
        """replica id -> {healthy, streaks, last signals} for reports."""
        return {
            rid: {
                "healthy": s.healthy,
                "bad_streak": s.bad_streak,
                "good_streak": s.good_streak,
                "queue_depth": s.last.queue_depth,
                "open_circuits": s.last.open_circuits,
                "miss_rate": s.last.miss_rate,
            }
            for rid, s in sorted(self._states.items())
        }
