"""Cluster driver — the virtual-time workload replayed over N replicas.

Extends the single-replica driver (:func:`repro.serve.run_workload`) to
a cluster-in-a-process: N :class:`~repro.serve.driver.ReplicaSim`
replicas behind a consistent-hash ring, a probe loop feeding the
hysteresis health monitor, health-aware failover, ring-scoped
warm-start from a shared :class:`~repro.store.PlanStore`, and
(optionally) elastic scaling from queue-depth signals.

Everything stays **bit-deterministic** for a given config: traffic is
pre-drawn from one seeded stream (the same draw order as the single
driver), replicas execute sequentially in virtual time, health probes
only *read* replica state, and all hashing is seeded blake2b.  Two
properties the tests pin:

* **N=1 exact parity** — with one replica, every stat the cluster
  reports (latencies included) is bit-identical to
  :func:`repro.serve.run_workload` on the same config, because both
  drive the same :class:`ReplicaSim` core with the same RNG streams
  and event ordering;
* **scale-out** — the default offered rate is per-replica
  (``N``x the single-replica saturating rate), so modeled aggregate
  throughput grows ~linearly with N on a Zipf workload, and stays
  ≥3x at N=4 even with one replica fault-injected unhealthy (its
  traffic reroutes via the ring preference walk).

The driver can replay millions of requests: replicas skip
materializing result vectors (``materialize_results=False`` — stats
and latencies are unaffected) and request objects are transient.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import check, default_rng
from ..core.delta import random_delta
from ..gpu.device import get_device
from ..obs import Obs
from ..overload import (
    PRIORITIES,
    HedgePair,
    LatencyTracker,
    OverloadConfig,
    OverloadContext,
)
from ..resilience import FaultInjector, FaultPlan, FaultRule
from ..serve.batcher import SpMVRequest
from ..serve.driver import (
    ReplicaSim,
    WorkloadConfig,
    _build_injector,
    _matrix_pool,
    _modeled_for,
    auto_rate,
    zipf_weights,
)
from ..serve.stats import ServerStats
from .health import HealthConfig, ReplicaHealth, ReplicaSignals
from .ring import DEFAULT_VNODES, HashRing


@dataclass(frozen=True)
class ElasticConfig:
    """Queue-depth-driven elastic scaling policy.

    Scale up (spawn a replica, rebalance the ring minimally, re-warm
    the moved fingerprints from the store) when the mean backlog across
    active replicas is at least ``scale_up_depth`` at a probe; scale
    down (drain the newest spawned replica back out) when it is at most
    ``scale_down_depth``.  ``cooldown_s`` virtual seconds must pass
    between actions so one burst cannot thrash the membership.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    scale_up_depth: float = 8.0
    scale_down_depth: float = 0.25
    cooldown_s: float = 0.005

    def __post_init__(self) -> None:
        check(self.min_replicas >= 1, "min_replicas must be >= 1")
        check(self.max_replicas >= self.min_replicas,
              "max_replicas must be >= min_replicas")
        check(self.scale_up_depth > self.scale_down_depth,
              "scale_up_depth must exceed scale_down_depth")
        check(self.cooldown_s >= 0.0, "cooldown_s must be >= 0")


@dataclass
class ClusterConfig(WorkloadConfig):
    """One cluster workload: the single-replica knobs plus placement.

    Attributes
    ----------
    n_replicas:
        Initial replica count.  ``rate_rps=None`` auto-scales the
        offered rate to ``n_replicas`` x the single-replica saturating
        default, so each N is loaded equally per replica.
    vnodes / ring_seed:
        Consistent-hash ring construction (:class:`HashRing`).
    health:
        :class:`HealthConfig` hysteresis thresholds for routing.
    probe_interval_s:
        Virtual seconds between health probes (``None`` derives ~200
        probes over the expected run).
    fail_replica / fail_rate:
        Fault-inject one replica (by index) with transient kernel
        errors at ``fail_rate`` — the unhealthy-failover gate: its
        breakers open, health marks it down, traffic reroutes.
    elastic:
        Optional :class:`ElasticConfig`; ``None`` keeps membership
        fixed.
    overload:
        Optional :class:`repro.overload.OverloadConfig` activating
        admission control (shed at the router before any replica sees
        the request, batch priority first), a cluster-wide retry
        budget shared by every replica, and hedged requests (a shadow
        copy to the next preference replica when the primary's latency
        EWMA marks it a straggler; first completion wins).  ``None``
        keeps the run bit-identical to a pre-overload driver.
    slow_replica / slow_factor:
        Chaos scenario: multiply replica ``slow_replica``'s modeled
        device time by ``slow_factor`` — a straggler that stays alive
        and correct while dominating the tail.
    partition_replica / partition_window:
        Chaos scenario: drop the router↔replica link to
        ``partition_replica`` for the virtual-time window given as
        fractions of the total arrival span — no new traffic reaches
        it and its probes come back unreachable (tripping every health
        threshold) until the window closes and recovery begins.
    """

    n_replicas: int = 4
    vnodes: int = DEFAULT_VNODES
    ring_seed: int = 0
    health: HealthConfig = field(default_factory=HealthConfig)
    probe_interval_s: float | None = None
    fail_replica: int | None = None
    fail_rate: float = 1.0
    elastic: ElasticConfig | None = None
    overload: OverloadConfig | None = None
    slow_replica: int | None = None
    slow_factor: float = 4.0
    partition_replica: int | None = None
    partition_window: tuple = (0.25, 0.75)


@dataclass
class ClusterStats:
    """Aggregated result of one cluster run.

    ``replicas`` maps replica id -> that replica's full
    :class:`ServerStats` (its private metrics registry); the aggregate
    properties fold them together the way a load balancer's dashboard
    would.  ``duration_s`` is the cluster makespan (latest completion
    on any replica), so ``throughput_rps`` reflects wall-parallel
    replicas, not summed busy time.
    """

    replicas: dict[str, ServerStats]
    routed: dict[str, int]
    n_failover: int = 0
    n_unroutable: int = 0
    n_probes: int = 0
    n_transitions_down: int = 0
    n_transitions_up: int = 0
    n_scale_up: int = 0
    n_scale_down: int = 0
    n_moved_fingerprints: int = 0
    health: dict = field(default_factory=dict)
    duration_s: float = 0.0
    #: Logical (per-request, hedge-shadow-free) accounting added with
    #: the overload layer.  ``n_offered`` is the request count the
    #: workload generated; ``n_shed`` were turned away by admission
    #: control, ``n_rejected_logical`` by primary-replica backpressure,
    #: ``n_link_failed`` by a full partition.  Zero-valued and unused
    #: on pre-overload runs.
    overload_enabled: bool = False
    n_offered: int = 0
    #: Arrival slots that carried a matrix delta instead of a read
    #: (broadcast to every replica; never part of ``n_offered``).
    n_updates: int = 0
    n_shed: int = 0
    n_rejected_logical: int = 0
    n_link_failed: int = 0
    n_hedges_issued: int = 0
    n_hedges_won: int = 0
    n_hedges_wasted: int = 0
    retry_budget_granted: int = 0
    retry_budget_denied: int = 0
    n_retries: int = 0
    #: priority -> {"offered", "shed", "completed"} (overload runs only)
    priorities: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def _sum(self, attr: str):
        return sum(getattr(s, attr) for s in self.replicas.values())

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def n_requests(self) -> int:
        return self._sum("n_requests")

    @property
    def n_completed(self) -> int:
        return self._sum("n_completed")

    @property
    def n_rejected(self) -> int:
        return self._sum("n_rejected")

    @property
    def n_failed(self) -> int:
        return self._sum("n_failed")

    @property
    def n_deadline_exceeded(self) -> int:
        return self._sum("n_deadline_exceeded")

    @property
    def degraded_requests(self) -> int:
        return self._sum("degraded_requests")

    @property
    def device_busy_s(self) -> float:
        return self._sum("device_busy_s")

    @property
    def throughput_rps(self) -> float:
        """Completed requests per virtual second of cluster makespan."""
        return (self.n_completed / self.duration_s
                if self.duration_s > 0 else 0.0)

    @property
    def in_deadline_fraction(self) -> float:
        """Offered requests answered in deadline (strict: rejected,
        expired and failed requests all count against it)."""
        offered = self.n_requests
        return (self.n_completed / offered) if offered > 0 else 1.0

    @property
    def lost_requests(self) -> int:
        """Logically offered requests with no terminal outcome.

        Every generated request must end exactly one way — completed,
        admission-shed, backpressure-rejected, expired, failed, or
        unroutable behind a partition; anything else is a lost future.
        Only meaningful (and gated to zero) on overload runs, where
        hedge shadows make the per-replica sums non-logical."""
        if not self.overload_enabled:
            return 0
        accounted = (self.n_shed + self.n_rejected_logical
                     + self.n_link_failed + self.n_completed
                     + self.n_deadline_exceeded + self.n_failed)
        return self.n_offered - accounted

    def in_deadline_by_priority(self, priority: str) -> float:
        """Completed / offered for one admission class (overload runs).

        Admission-shed requests are *excluded* from the denominator:
        shedding is the controller doing its job, and the question this
        metric answers is how the traffic the cluster accepted fared."""
        p = self.priorities.get(priority)
        if not p:
            return float("nan")
        accepted = p["offered"] - p["shed"]
        return (p["completed"] / accepted) if accepted > 0 else 1.0

    def latency_percentiles(self, qs=(50.0, 95.0, 99.0)) -> dict[float, float]:
        """Percentiles over every completed request, all replicas."""
        merged = [lat for s in self.replicas.values()
                  for lat in s.latencies_s]
        if not merged:
            return {q: float("nan") for q in qs}
        arr = np.asarray(merged)
        return {q: float(np.percentile(arr, q)) for q in qs}

    def summary_table(self) -> str:
        from ..bench import markdown_table

        pct = self.latency_percentiles()
        rows = [
            ("replicas", str(self.n_replicas)),
            ("requests offered", f"{self.n_requests:,}"),
            ("completed", f"{self.n_completed:,}"),
            ("rejected / expired / failed",
             f"{self.n_rejected:,} / {self.n_deadline_exceeded:,} / "
             f"{self.n_failed:,}"),
            ("degraded", f"{self.degraded_requests:,}"),
            ("in-deadline fraction", f"{self.in_deadline_fraction:.4f}"),
            ("throughput", f"{self.throughput_rps:,.0f} req/s"),
            ("p50 / p95 / p99 latency",
             f"{pct[50.0] * 1e6:,.1f} / {pct[95.0] * 1e6:,.1f} / "
             f"{pct[99.0] * 1e6:,.1f} us"),
            ("failovers", f"{self.n_failover:,}"),
            ("health probes / down / up",
             f"{self.n_probes:,} / {self.n_transitions_down} / "
             f"{self.n_transitions_up}"),
            ("scale up / down / moved fps",
             f"{self.n_scale_up} / {self.n_scale_down} / "
             f"{self.n_moved_fingerprints}"),
            ("makespan", f"{self.duration_s:.4f} s"),
        ]
        if self.n_updates:
            rows.append(("matrix updates (broadcast)", f"{self.n_updates:,}"))
        if self.overload_enabled:
            prio = " ".join(
                f"{p}:{self.in_deadline_by_priority(p):.4f}"
                for p in sorted(self.priorities))
            rows += [
                ("offered / shed / link-failed",
                 f"{self.n_offered:,} / {self.n_shed:,} / "
                 f"{self.n_link_failed:,}"),
                ("hedges issued / won / wasted",
                 f"{self.n_hedges_issued:,} / {self.n_hedges_won:,} / "
                 f"{self.n_hedges_wasted:,}"),
                ("retry budget granted / denied",
                 f"{self.retry_budget_granted:,} / "
                 f"{self.retry_budget_denied:,}"),
                ("in-deadline by priority", prio or "-"),
                ("lost requests", f"{self.lost_requests:,}"),
            ]
        return markdown_table(("cluster metric", "value"), rows)


def _replica_injector(cfg: ClusterConfig, pool, index: int):
    """The fault injector for replica *index* (chaos mix, plus the
    always-on kernel-error rule when this is the fail-injected one)."""
    injector = _build_injector(cfg, pool)
    if cfg.fail_replica is not None and index == cfg.fail_replica:
        rule = FaultRule(kind="kernel_error", rate=cfg.fail_rate)
        if injector is None:
            seed = cfg.chaos.seed if cfg.chaos is not None else cfg.seed
            injector = FaultInjector(FaultPlan(rules=[rule],
                                               seed=seed + 101))
        else:
            injector.plan.rules.append(rule)
    return injector


class _Cluster:
    """Mutable cluster state the arrival loop and probe loop share."""

    def __init__(self, cfg: ClusterConfig, *, device, dtype, pool,
                 modeled, retry_rng, obs: Obs) -> None:
        self.cfg = cfg
        self.device = device
        self.dtype = dtype
        self.pool = pool
        self.modeled = modeled
        self.retry_rng = retry_rng
        self.obs = obs
        self.ring = HashRing(vnodes=cfg.vnodes, seed=cfg.ring_seed)
        self.health = ReplicaHealth(cfg.health, obs=obs)
        self.overload = (OverloadContext(cfg.overload, obs=obs)
                         if cfg.overload is not None else None)
        self.partitioned: set[str] = set()
        self.replicas: dict[str, ReplicaSim] = {}
        self._spawned = 0
        self._routed = obs.counter("cluster.driver.routed_total")
        self._failover = obs.counter("cluster.driver.failover_total")
        self._unroutable = obs.counter("cluster.driver.unroutable_total")
        self._scale_up = obs.counter("cluster.driver.scale_up_total")
        self._scale_down = obs.counter("cluster.driver.scale_down_total")
        self._moved = obs.counter("cluster.driver.moved_fingerprints_total")
        self._rejected = obs.counter("cluster.overload.rejected_total")
        self._link_failed = obs.counter("cluster.overload.link_failed_total")
        # The latency EWMA doubles as hedge trigger and health signal;
        # only fold samples when something downstream reads them, so a
        # plain run does zero extra work per probe.
        self._track_latency = (
            (self.overload is not None and self.overload.hedge is not None)
            or cfg.health.straggler_factor is not None
            or cfg.slow_replica is not None)
        self.latency = (self.overload.latency
                        if (self.overload is not None
                            and self.overload.latency is not None)
                        else LatencyTracker())
        # deadline-miss deltas between probes, per replica; plus the
        # already-folded latency sample count for the EWMA feed
        self._prev: dict[str, tuple[int, int]] = {}
        self._lat_seen: dict[str, int] = {}
        for _ in range(cfg.n_replicas):
            self.spawn(warm=False)

    # ------------------------------------------------------------------
    def spawn(self, *, warm: bool = True) -> str:
        """Add one replica; with ``warm``, re-warm the fingerprints the
        rebalanced ring moved onto it from the shared store."""
        cfg = self.cfg
        index = self._spawned
        rid = f"r{index}"
        self._spawned += 1
        fps = [fp for _, fp, _ in self.pool]
        before = {fp: self.ring.lookup(fp) for fp in fps} \
            if (warm and len(self.ring)) else {}
        replica_obs = Obs(tracer=self.obs.tracer.bound(replica=rid)
                          if self.obs.tracing else None)
        time_scale = (cfg.slow_factor
                      if (cfg.slow_replica is not None
                          and index == cfg.slow_replica) else 1.0)
        replica = ReplicaSim(
            cfg, device=self.device, dtype=self.dtype, pool=self.pool,
            obs=replica_obs, injector=_replica_injector(cfg, self.pool, index),
            retry_rng=self.retry_rng, modeled=self.modeled, store=cfg.store,
            replica_id=rid, materialize_results=False,
            time_scale=time_scale, overload=self.overload)
        if self.replicas:
            # A replica spawned mid-run must see the *current* matrix
            # state, not the pristine pool: under an update stream the
            # deltas are drawn against the evolved CSRs, and replaying
            # e.g. a delete of a never-inserted entry would fault.
            src = next(iter(self.replicas.values()))
            replica.csr_by_fp = dict(src.csr_by_fp)
        self.replicas[rid] = replica
        self.ring.add(rid)
        self._prev[rid] = (0, 0)
        self._lat_seen[rid] = 0
        if before:
            moved = [fp for fp in fps if self.ring.lookup(fp) != before[fp]]
            self._moved.inc(len(moved))
            if moved and replica.registry.store is not None:
                replica.warm_many(moved)
        return rid

    def drain_replica(self, rid: str, now: float) -> None:
        """Remove *rid* from routing; it finishes its backlog in place.

        The replica object stays in :attr:`replicas` (it still advances
        with virtual time and its stats are reported); only the ring
        membership — hence new traffic — changes, and that rebalance
        moves exactly the keys the replica owned.
        """
        self.ring.remove(rid)
        self.health.forget(rid)
        # flush its half-formed batches so parked requests complete
        replica = self.replicas[rid]
        replica.enqueue(replica.batcher.flush_all(now))

    # ------------------------------------------------------------------
    def active(self) -> list[str]:
        """Routable replica ids, in spawn order (deterministic)."""
        return [rid for rid in self.replicas if rid in self.ring]

    def advance_all(self, now: float) -> None:
        for replica in self.replicas.values():
            replica.advance_to(now)

    def route(self, fp: str) -> str | None:
        """Healthy-first preference walk (ring order breaks ties).

        Partitioned replicas are unreachable and skipped outright;
        among the healthy, stragglers are demoted behind fast peers
        (soft drain) before any sick replica is considered.  Returns
        ``None`` only when every preference sits behind the partition.
        """
        prefs = self.ring.preference(fp)
        reachable = [rid for rid in prefs if rid not in self.partitioned]
        if not reachable:
            return None
        fast = []
        slow = []
        for rid in reachable:
            if self.health.is_healthy(rid):
                (slow if self.health.is_straggler(rid) else fast).append(rid)
        if fast:
            target = fast[0]
        elif slow:
            target = slow[0]
        else:
            target = reachable[0]  # every replica down: home beats dropping
            self._unroutable.inc()
        self._routed.inc()
        if target != prefs[0]:
            self._failover.inc()
        return target

    def offer(self, req: SpMVRequest, now: float, fp: str) -> bool:
        target = self.route(fp)
        return target is not None and self.replicas[target].offer(req, now)

    def apply_update(self, fp: str, delta, now: float) -> None:
        """Broadcast one matrix delta to every replica.

        Updates are control-plane traffic: they reach *all* replicas —
        including partitioned and draining ones, whose data-plane link
        is what the chaos window cuts — so every version chain stays in
        lockstep and a delta stream drawn against one shared CSR
        history is valid everywhere.  Only the matrix's *home* replica
        (first ring preference) persists the delta to the shared store:
        concurrent writers would trip the store's version-contiguity
        invariant.
        """
        prefs = self.ring.preference(fp)
        home = prefs[0] if prefs else None
        for rid, replica in self.replicas.items():
            replica.apply_update(fp, delta, now, persist=(rid == home))

    def _hedge_target(self, fp: str, primary: str) -> str | None:
        """Next reachable healthy replica after *primary*, or None."""
        for rid in self.ring.preference(fp):
            if rid == primary or rid in self.partitioned:
                continue
            if self.health.is_healthy(rid):
                return rid
        return None

    def submit(self, req: SpMVRequest, now: float, fp: str) -> str:
        """Offer one logical request; returns its immediate outcome.

        One of ``"shed"`` (admission control turned it away),
        ``"link_failed"`` (every preference replica is partitioned),
        ``"rejected"`` (primary replica backpressure), or ``"routed"``
        (accepted — possibly alongside a hedge shadow on a second
        replica when the primary's latency EWMA marks it a straggler).
        """
        ctx = self.overload
        if (ctx is not None and ctx.admission is not None
                and not ctx.admission.try_admit(req.priority, now)):
            return "shed"
        target = self.route(fp)
        if target is None:
            self._link_failed.inc()
            return "link_failed"
        hedge_rid = None
        if (ctx is not None and ctx.hedge is not None
                and self.latency.is_straggler(target,
                                              factor=ctx.hedge.factor)):
            hedge_rid = self._hedge_target(fp, target)
        if hedge_rid is None:
            if self.replicas[target].offer(req, now):
                return "routed"
            self._rejected.inc()
            return "rejected"
        pair = HedgePair(primary_rid=target, hedge_rid=hedge_rid)
        req.pair = pair
        if not self.replicas[target].offer(req, now):
            req.pair = None
            self._rejected.inc()
            return "rejected"
        shadow = SpMVRequest(
            req_id=req.req_id, fingerprint=req.fingerprint, x=req.x,
            arrival_s=req.arrival_s, deadline_s=req.deadline_s,
            priority=req.priority, pair=pair, shadow=True)
        if self.replicas[hedge_rid].offer(shadow, now):
            ctx.hedges_issued.inc()
        else:
            req.pair = None  # hedge rejected: back to a plain request
        return "routed"

    # ------------------------------------------------------------------
    def probe(self) -> None:
        """Read every active replica's signals into the health monitor.

        A partitioned replica's probe fails like its traffic does: the
        monitor sees worst-case unreachable signals until the window
        closes, so every threshold trips and recovery runs through the
        normal hysteresis.  For the rest, newly completed requests are
        folded into the per-replica latency EWMA (mean of the fresh
        slice per probe) that drives straggler demotion and hedging.
        """
        for rid in self.active():
            replica = self.replicas[rid]
            if rid in self.partitioned:
                self.health.observe_unreachable(rid)
                continue
            stats = replica.stats
            ewma = 0.0
            if self._track_latency:
                seen = self._lat_seen[rid]
                fresh = stats.latencies_s[seen:]
                if fresh:
                    self._lat_seen[rid] = seen + len(fresh)
                    self.latency.observe(rid, sum(fresh) / len(fresh))
                ewma = self.latency.ewma(rid)
            prev_miss, prev_req = self._prev[rid]
            d_req = stats.n_requests - prev_req
            d_miss = stats.n_deadline_exceeded - prev_miss
            self._prev[rid] = (stats.n_deadline_exceeded, stats.n_requests)
            self.health.observe(rid, ReplicaSignals(
                queue_depth=replica.backlog_depth,
                open_circuits=replica.open_circuits(),
                miss_rate=(d_miss / d_req) if d_req > 0 else 0.0,
                latency_ewma_s=ewma))

    def autoscale(self, now: float, last_action: float) -> float:
        """Apply the elastic policy at one probe; returns the new
        last-action time (unchanged when nothing happened)."""
        policy = self.cfg.elastic
        if policy is None or now - last_action < policy.cooldown_s:
            return last_action
        active = self.active()
        depths = [self.replicas[rid].backlog_depth for rid in active]
        mean_depth = sum(depths) / len(depths) if depths else 0.0
        if (mean_depth >= policy.scale_up_depth
                and len(active) < policy.max_replicas):
            self.spawn()
            self._scale_up.inc()
            return now
        if (mean_depth <= policy.scale_down_depth
                and len(active) > policy.min_replicas):
            self.drain_replica(active[-1], now)  # newest spawned first
            self._scale_down.inc()
            return now
        return last_action


def run_cluster_workload(cfg: ClusterConfig, *,
                         obs: Obs | None = None) -> ClusterStats:
    """Simulate *cfg* over N replicas; returns :class:`ClusterStats`.

    ``obs`` carries the cluster-level ``cluster.driver.*`` counters and
    (optionally) a shared :class:`~repro.obs.Tracer` — each replica
    then traces through ``tracer.bound(replica=rid)``, so one trace
    store holds every replica's trees with per-replica attribution
    (``tracer.device_time_by_attr("replica")``).  Per-replica *metrics*
    stay in private registries so gauges never collide.
    """
    check(cfg.n_requests >= 1, "n_requests must be >= 1")
    check(cfg.n_replicas >= 1, "n_replicas must be >= 1")
    if cfg.fail_replica is not None:
        check(0 <= cfg.fail_replica < cfg.n_replicas,
              "fail_replica outside the initial replica set")
    check(cfg.slow_factor > 0.0, "slow_factor must be > 0")
    if cfg.slow_replica is not None:
        check(0 <= cfg.slow_replica < cfg.n_replicas,
              "slow_replica outside the initial replica set")
    if cfg.partition_replica is not None:
        check(0 <= cfg.partition_replica < cfg.n_replicas,
              "partition_replica outside the initial replica set")
        p0, p1 = cfg.partition_window
        check(0.0 <= p0 < p1 <= 1.0,
              "partition_window must satisfy 0 <= start < end <= 1")
    if obs is None or not obs.enabled:
        obs = Obs()
    device = get_device(cfg.device)
    dtype = np.dtype(cfg.dtype)
    rng = default_rng(cfg.seed)
    pool = _matrix_pool(cfg)
    weights = zipf_weights(len(pool), cfg.zipf_s)
    modeled = _modeled_for(cfg, device, dtype)
    retry_rng = default_rng(cfg.seed + 1)  # shared jitter stream
    cluster = _Cluster(cfg, device=device, dtype=dtype, pool=pool,
                       modeled=modeled, retry_rng=retry_rng, obs=obs)

    if cfg.warm_start:
        # Ring-scoped warm-up: each replica preloads only its assigned
        # fingerprints from the shared store (off the virtual clock).
        # With the speculative warmer on, the ring-scoped warm-up rides
        # the warmer (load-vs-rebuild gate + persisted reorder perms).
        fps = [fp for _, fp, _ in pool]
        assigned = cluster.ring.assignments(fps)
        for rid in cluster.active():
            cluster.replicas[rid].warm_many(
                [fp for fp in fps if fp in set(assigned[rid])])

    rate = cfg.rate_rps
    if rate is None:
        rate = auto_rate(pool, modeled, replicas=cfg.n_replicas)

    # Traffic pre-draw: the exact stream (and order) of the
    # single-replica driver, which the N=1 parity gate depends on.
    gaps = rng.exponential(1.0 / rate, cfg.n_requests)
    arrivals = np.cumsum(gaps)
    choices = rng.choice(len(pool), size=cfg.n_requests, p=weights)
    xs = {fp: rng.uniform(-1, 1, csr.shape[1]).astype(dtype)
          for _, fp, csr in pool}

    # Priority tags come from a *dedicated* stream (seed+7) drawn only
    # when overload is on, so a disabled run consumes exactly the RNG
    # values of a pre-overload driver — the bit-parity gate.
    overload_on = cfg.overload is not None
    if overload_on:
        prio_rng = default_rng(cfg.seed + 7)
        batch_mask = (prio_rng.random(cfg.n_requests)
                      < cfg.overload.batch_fraction)

    # Delta traffic mirrors the single driver exactly: same dedicated
    # stream (seed+17), same draw order — update_mix=0 stays bit-exact.
    is_update = delta_rng = None
    if cfg.update_mix > 0.0:
        delta_rng = default_rng(cfg.seed + 17)
        is_update = delta_rng.random(cfg.n_requests) < cfg.update_mix

    span = float(arrivals[-1])
    p_rid = (f"r{cfg.partition_replica}"
             if cfg.partition_replica is not None else None)
    if p_rid is not None:
        p_start = cfg.partition_window[0] * span
        p_end = cfg.partition_window[1] * span

    def sync_partition(t: float) -> None:
        if p_rid is None:
            return
        if p_start <= t < p_end:
            cluster.partitioned.add(p_rid)
        else:
            cluster.partitioned.discard(p_rid)

    probe_interval = cfg.probe_interval_s
    if probe_interval is None:
        probe_interval = max(float(arrivals[-1]) / 200.0, 1e-6)

    deadline_for = (lambda now: now + cfg.deadline_s) \
        if cfg.deadline_s is not None else (lambda now: float("inf"))

    next_probe = probe_interval
    last_scale = float("-inf")  # cooldown gates between actions only
    outcomes = {"shed": 0, "rejected": 0, "link_failed": 0, "routed": 0,
                "update": 0}
    prio_offer = {p: 0 for p in PRIORITIES}
    prio_shed = {p: 0 for p in PRIORITIES}
    for i in range(cfg.n_requests):
        now = float(arrivals[i])
        while next_probe <= now:
            sync_partition(next_probe)
            cluster.advance_all(next_probe)
            cluster.probe()
            last_scale = cluster.autoscale(next_probe, last_scale)
            next_probe += probe_interval
        sync_partition(now)
        cluster.advance_all(now)
        _, fp, _csr = pool[choices[i]]
        if is_update is not None and is_update[i]:
            # this arrival slot carries a delta; any replica's CSR can
            # seed the draw — chains advance in lockstep
            structural = bool(delta_rng.random() < cfg.structural_frac)
            ref = next(iter(cluster.replicas.values()))
            d = random_delta(ref.csr_by_fp[fp], delta_rng,
                             structural=structural,
                             n_entries=cfg.update_entries)
            cluster.apply_update(fp, d, now)
            outcomes["update"] += 1
            continue
        priority = ("batch" if overload_on and batch_mask[i]
                    else "interactive")
        req = SpMVRequest(req_id=i, fingerprint=fp, x=xs[fp], arrival_s=now,
                          deadline_s=deadline_for(now), priority=priority)
        outcome = cluster.submit(req, now, fp)
        outcomes[outcome] += 1
        if overload_on:
            prio_offer[priority] += 1
            if outcome == "shed":
                prio_shed[priority] += 1

    end = float(arrivals[-1])
    for replica in cluster.replicas.values():
        replica.drain(end)

    priorities: dict[str, dict] = {}
    if overload_on:
        prio_completed = {p: 0 for p in PRIORITIES}
        for replica in cluster.replicas.values():
            for req in replica.completed:
                prio_completed[req.priority] += 1
        priorities = {p: {"offered": prio_offer[p], "shed": prio_shed[p],
                          "completed": prio_completed[p]}
                      for p in PRIORITIES}

    reg = obs.registry
    stats = ClusterStats(
        replicas={rid: r.stats for rid, r in cluster.replicas.items()},
        routed={rid: r.stats.n_requests
                for rid, r in cluster.replicas.items()},
        n_failover=int(reg.counter(
            "cluster.driver.failover_total").value),
        n_unroutable=int(reg.counter(
            "cluster.driver.unroutable_total").value),
        n_probes=int(reg.counter("cluster.health.probes_total").value),
        n_transitions_down=int(reg.counter(
            "cluster.health.transitions_total", {"to": "down"}).value),
        n_transitions_up=int(reg.counter(
            "cluster.health.transitions_total", {"to": "up"}).value),
        n_scale_up=int(reg.counter(
            "cluster.driver.scale_up_total").value),
        n_scale_down=int(reg.counter(
            "cluster.driver.scale_down_total").value),
        n_moved_fingerprints=int(reg.counter(
            "cluster.driver.moved_fingerprints_total").value),
        health=cluster.health.snapshot(),
        duration_s=max((r.stats.duration_s
                        for r in cluster.replicas.values()), default=end),
        # Logical accounting is meaningful whenever the submit path can
        # shed/hedge/drop — overload on, or a chaos scenario active.
        overload_enabled=(overload_on or cfg.slow_replica is not None
                          or p_rid is not None),
        n_offered=cfg.n_requests - outcomes["update"],
        n_updates=outcomes["update"],
        n_shed=outcomes["shed"],
        n_rejected_logical=outcomes["rejected"],
        n_link_failed=outcomes["link_failed"],
        n_hedges_issued=int(reg.counter(
            "overload.hedge.issued_total").value),
        n_hedges_won=int(reg.counter("overload.hedge.won_total").value),
        n_hedges_wasted=int(reg.counter(
            "overload.hedge.wasted_total").value),
        retry_budget_granted=int(reg.counter(
            "overload.retry_budget.granted_total").value),
        retry_budget_denied=int(reg.counter(
            "overload.retry_budget.denied_total").value),
        n_retries=sum(r.stats.retries for r in cluster.replicas.values()),
        priorities=priorities,
    )
    return stats
