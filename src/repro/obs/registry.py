"""Metrics primitives — counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` is the single source of truth for every
counter a run reports: the serving layer's :class:`~repro.serve.stats.
ServerStats` is a facade over it, the plan registry / scheduler /
breaker / fault injector increment the same instruments, and
:mod:`repro.obs.export` renders the whole registry as JSON or
Prometheus text.

Design rules (deliberate, testable):

* **deterministic** — instruments never read the wall clock or any RNG;
  values are exactly what the instrumented code observed;
* **thread-safe** — one lock per instrument, one registry lock for
  creation, so the threaded :class:`~repro.serve.server.SpMVServer`
  and the single-threaded virtual-time driver share the same types;
* **idempotent creation** — asking for an existing ``(name, labels)``
  returns the same instrument; asking with a conflicting kind or
  bucket layout raises.
"""

from __future__ import annotations

import threading

from .._util import ReproError

#: Default histogram bucket upper bounds (seconds) for latency-style
#: observations: roughly logarithmic from 1 us to 100 ms.
DEFAULT_TIME_BUCKETS = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
)


class MetricError(ReproError):
    """An instrument was (re)declared inconsistently."""


def _norm_labels(labels) -> tuple[tuple[str, str], ...]:
    """Normalize a labels mapping into a hashable sorted tuple."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in dict(labels).items()))


class _Instrument:
    """Shared bits: identity, lock, label handling."""

    kind = "?"

    def __init__(self, name: str, labels=()) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.name} {self.labels or ''} {self.value!r}>"


class Counter(_Instrument):
    """Monotonic accumulator (int or float increments).

    ``set`` exists for facade compatibility (legacy code assigned
    ``ServerStats`` fields directly) and for explicit resets; new code
    should only :meth:`inc`.
    """

    kind = "counter"

    def __init__(self, name: str, labels=()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += n

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """Point-in-time value (queue depth, cached bytes, makespan)."""

    kind = "gauge"

    def __init__(self, name: str, labels=()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    An observation ``v`` lands in the first bucket whose upper bound
    satisfies ``v <= le`` (an implicit ``+Inf`` bucket catches the
    rest).  Bucket edges are frozen at creation; re-declaring the same
    name with different edges raises :class:`MetricError`.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets=DEFAULT_TIME_BUCKETS,
                 labels=()) -> None:
        super().__init__(name, labels)
        edges = tuple(float(b) for b in buckets)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise MetricError(
                f"histogram {name} needs strictly increasing bucket edges")
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self._sum += v
            self._count += 1
            for i, edge in enumerate(self.buckets):
                if v <= edge:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def value(self) -> dict:
        """Snapshot: per-bucket counts (not cumulative), sum and count."""
        with self._lock:
            return {
                "buckets": list(zip(self.buckets, self._counts[:-1])),
                "inf": self._counts[-1],
                "sum": self._sum,
                "count": self._count,
            }

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs incl. +Inf."""
        with self._lock:
            out, running = [], 0
            for edge, c in zip(self.buckets, self._counts[:-1]):
                running += c
                out.append((edge, running))
            out.append((float("inf"), running + self._counts[-1]))
            return out


class MetricsRegistry:
    """Process- or run-scoped collection of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, tuple], _Instrument] = {}

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels, **kwargs) -> _Instrument:
        key = (name, _norm_labels(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, labels=key[1], **kwargs)
                self._instruments[key] = inst
                return inst
        if not isinstance(inst, cls):
            raise MetricError(
                f"{name} already registered as a {inst.kind}, not {cls.kind}")
        if isinstance(inst, Histogram) and "buckets" in kwargs:
            if inst.buckets != tuple(float(b) for b in kwargs["buckets"]):
                raise MetricError(
                    f"histogram {name} re-declared with different buckets")
        return inst

    def counter(self, name: str, labels=None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels=None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets=DEFAULT_TIME_BUCKETS,
                  labels=None) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # ------------------------------------------------------------------
    def collect(self) -> list[_Instrument]:
        """Every instrument, ordered by (name, labels) for stable output."""
        with self._lock:
            return [self._instruments[k] for k in sorted(self._instruments)]

    def family(self, name: str) -> list[_Instrument]:
        """All instruments sharing *name* (one per label set)."""
        with self._lock:
            return [inst for (n, _), inst in sorted(self._instruments.items())
                    if n == name]

    def family_total(self, name: str) -> float:
        """Sum of a counter/gauge family's values across label sets."""
        return float(sum(inst.value for inst in self.family(name)
                         if not isinstance(inst, Histogram)))

    def snapshot(self) -> dict:
        """``{name{labels}: value}`` view for assertions and debugging."""
        out = {}
        for inst in self.collect():
            key = inst.name
            if inst.labels:
                key += "{" + ",".join(f"{k}={v}" for k, v in
                                      sorted(inst.labels.items())) + "}"
            out[key] = inst.value
        return out
