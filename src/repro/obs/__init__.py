"""`repro.obs` — unified tracing / metrics / profiling behind one API.

Every instrumented component in this package takes an optional
``obs=`` handle — an :class:`Obs` bundling a
:class:`~repro.obs.registry.MetricsRegistry` (counters, gauges,
fixed-bucket histograms; deterministic, no wall-clock in values) and an
optional :class:`~repro.obs.trace.Tracer` (nested spans with wall-time
and modeled-device-time attribution).  Exposition lives in
:mod:`repro.obs.export` (JSON + Prometheus text) and behind the
``repro stats`` / ``repro serve-sim --trace`` CLI commands.

Scoping conventions:

* **stateless API functions** (``dasp_spmv``, ``dasp_spmm``,
  ``dasp_preprocess``) default to the process-wide handle returned by
  :func:`get_obs`, so library use accumulates into one global registry;
* **per-run objects** (``SpMVServer``, ``run_workload``,
  ``ServerStats``, ``PlanRegistry``) default to a *fresh* private
  :class:`Obs` so two runs never mix counters — pass one handle
  explicitly to share;
* :data:`NULL_OBS` disables everything: instruments become shared
  no-ops and spans the shared null span, with no behavioural or output
  change to the instrumented code (the no-op-overhead tests pin this).
"""

from __future__ import annotations

from . import export
from .registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from .trace import (
    DEVICE_PHASES,
    NULL_SPAN,
    BoundTracer,
    Span,
    Tracer,
    null_span,
)


class _NullInstrument:
    """Absorbs every instrument method; always reads zero."""

    name = "null"
    kind = "null"
    labels: dict = {}
    value = 0.0
    buckets: tuple = ()

    def inc(self, n=1) -> None:
        pass

    def dec(self, n=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def cumulative(self) -> list:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class Obs:
    """One observability handle: a registry plus an optional tracer.

    Parameters
    ----------
    registry:
        The metrics backend; a fresh :class:`MetricsRegistry` when
        omitted (and ``enabled``).
    tracer:
        Span factory; ``None`` (the default) makes :meth:`span` a
        no-op — metrics without tracing is the cheap everyday mode.
    enabled:
        ``False`` turns the whole handle into a no-op
        (:data:`NULL_OBS` is the canonical disabled instance).
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None, *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.registry = registry if registry is not None else (
            MetricsRegistry() if self.enabled else None)
        self.tracer = tracer if self.enabled else None

    # ------------------------------------------------------------------
    @property
    def tracing(self) -> bool:
        """True when spans are actually recorded (gate costly attrs)."""
        return self.tracer is not None

    def counter(self, name: str, labels=None):
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self.registry.counter(name, labels)

    def gauge(self, name: str, labels=None):
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self.registry.gauge(name, labels)

    def histogram(self, name: str, buckets=DEFAULT_TIME_BUCKETS, labels=None):
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self.registry.histogram(name, buckets, labels)

    def span(self, name: str, attrs=None):
        if self.tracer is None:
            return null_span()
        return self.tracer.span(name, attrs)


#: Shared disabled handle — instruments and spans are no-ops.
NULL_OBS = Obs(enabled=False)

_GLOBAL_OBS = Obs()


def get_obs() -> Obs:
    """The process-wide default handle (used by stateless API calls)."""
    return _GLOBAL_OBS


def set_obs(obs: Obs) -> Obs:
    """Install *obs* as the process-wide default; returns the previous."""
    global _GLOBAL_OBS
    previous = _GLOBAL_OBS
    _GLOBAL_OBS = obs if obs is not None else Obs()
    return previous


__all__ = [
    "BoundTracer",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "DEVICE_PHASES",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_SPAN",
    "Obs",
    "Span",
    "Tracer",
    "export",
    "get_obs",
    "null_span",
    "set_obs",
]
