"""Exposition — render an :class:`Obs` handle as JSON or Prometheus text.

The JSON document (``to_json_doc`` / ``render_json``) bundles the
metric values, the finished trace trees and the device-time phase
attribution; ``schemas/serve_trace.schema.json`` (checked into the
repo and validated in CI) pins its shape.  ``to_prometheus`` renders
the registry alone in the Prometheus text exposition format (0.0.4):
counters, gauges, and histograms with cumulative ``le`` buckets.
"""

from __future__ import annotations

import json

from .registry import Counter, Gauge, Histogram, MetricsRegistry

#: JSON document version — bump on breaking shape changes (the schema
#: pins this value).
JSON_VERSION = 1


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def metrics_list(registry: MetricsRegistry) -> list[dict]:
    """JSON-able list of every instrument in *registry*."""
    out = []
    for inst in registry.collect():
        entry = {"name": inst.name, "kind": inst.kind,
                 "labels": dict(inst.labels)}
        if isinstance(inst, Histogram):
            snap = inst.value
            entry["buckets"] = [{"le": le, "count": c}
                                for le, c in snap["buckets"]]
            entry["inf_count"] = snap["inf"]
            entry["sum"] = snap["sum"]
            entry["count"] = snap["count"]
        else:
            entry["value"] = inst.value
        out.append(entry)
    return out


def to_json_doc(obs, *, device_total_s: float | None = None) -> dict:
    """Full observability document for one run.

    ``device_total_s`` is the ground-truth modeled device time the
    attribution coverage is measured against (defaults to the
    attributed sum itself).
    """
    doc = {
        "version": JSON_VERSION,
        "metrics": metrics_list(obs.registry),
        "traces": [],
        "dropped_traces": 0,
        "attribution": None,
    }
    tracer = obs.tracer
    if tracer is not None:
        doc["traces"] = [sp.to_dict() for sp in tracer.traces()]
        doc["dropped_traces"] = tracer.dropped
        doc["attribution"] = tracer.attribution(device_total_s)
    return doc


def render_json(obs, *, device_total_s: float | None = None,
                indent: int = 2) -> str:
    return json.dumps(to_json_doc(obs, device_total_s=device_total_s),
                      indent=indent, sort_keys=False)


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    def esc(s: str) -> str:
        return str(s).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    inner = ",".join(f'{_prom_name(str(k))}="{esc(v)}"'
                     for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for inst in registry.collect():
        name = _prom_name(inst.name)
        if name not in typed:
            lines.append(f"# TYPE {name} {inst.kind}")
            typed.add(name)
        if isinstance(inst, (Counter, Gauge)):
            lines.append(f"{name}{_prom_labels(inst.labels)} "
                         f"{_prom_value(inst.value)}")
        elif isinstance(inst, Histogram):
            for le, c in inst.cumulative():
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(inst.labels, {'le': _prom_value(le)})} {c}")
            snap = inst.value
            lines.append(f"{name}_sum{_prom_labels(inst.labels)} "
                         f"{_prom_value(snap['sum'])}")
            lines.append(f"{name}_count{_prom_labels(inst.labels)} "
                         f"{snap['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Human-readable trace rendering (CLI)
# ----------------------------------------------------------------------
def format_span_tree(span, *, indent: int = 0) -> list[str]:
    """Indented one-line-per-span rendering of a trace tree."""
    pad = "  " * indent
    bits = [f"{pad}{span.name}"]
    if span.wall_s:
        bits.append(f"wall={span.wall_s * 1e6:.1f}us")
    if span.device_s:
        bits.append(f"device={span.device_s * 1e6:.1f}us")
    if span.status != "ok":
        bits.append(f"status={span.status}")
    for key in ("matrix", "k", "engine", "cause"):
        if key in span.attrs:
            bits.append(f"{key}={span.attrs[key]}")
    lines = ["  ".join(bits)]
    for child in span.children:
        lines.extend(format_span_tree(child, indent=indent + 1))
    return lines
