"""Tracing — nested spans with wall-time *and* modeled-device-time.

A :class:`Tracer` produces :class:`Span` trees describing where a
request's time went: the serving layer opens ``batch`` spans whose
children are ``preprocess`` (with ``classify``/``pack`` sub-spans),
``kernel`` (with ``regular_mma``/``irregular_csr`` sub-spans) and
``fallback``.  Each span records the wall time between enter and exit
*and* an explicitly attributed modeled device time (``device_s``) —
wall time says where this Python implementation spent its time, device
time says where the modeled A100/H800 would spend its.

Nesting is tracked per thread (the ``SpMVServer`` workers each build
their own trees), span ids are a deterministic counter, and finished
root spans land in a bounded deque so long serving runs cannot grow
memory without bound.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

#: The phase names the serving layer attributes modeled device time to.
DEVICE_PHASES = ("preprocess", "plan.load", "regular_mma", "irregular_csr",
                 "fallback")


@dataclass
class Span:
    """One node of a trace tree.

    ``device_s`` is whatever modeled device time the instrumented code
    explicitly attributed to this span; it is *not* rolled up from the
    children (phase aggregation sums spans by name, so a parent that
    also carried its children's time would double-count).
    """

    name: str
    span_id: int
    parent_id: int | None = None
    t0_s: float = 0.0
    t1_s: float = 0.0
    device_s: float = 0.0
    status: str = "ok"
    attrs: dict = field(default_factory=dict)
    children: list = field(default_factory=list)
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    @property
    def wall_s(self) -> float:
        return max(self.t1_s - self.t0_s, 0.0)

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def set_device_time(self, seconds: float) -> None:
        self.device_s = float(seconds)

    def add_device_time(self, seconds: float) -> None:
        self.device_s += float(seconds)

    def child(self, name: str, *, device_s: float = 0.0,
              attrs=None) -> "Span":
        """Attach an already-finished child span (synthetic attribution
        of a fraction of this span's work, e.g. classify/pack)."""
        tracer = self._tracer
        now = tracer.clock() if tracer is not None else self.t0_s
        sp = Span(name=name,
                  span_id=tracer.next_id() if tracer is not None else 0,
                  parent_id=self.span_id, t0_s=now, t1_s=now,
                  device_s=float(device_s), attrs=dict(attrs or {}),
                  _tracer=tracer)
        self.children.append(sp)
        return sp

    def walk(self):
        """Yield this span and every descendant (pre-order)."""
        yield self
        for c in self.children:
            yield from c.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t0_s": self.t0_s,
            "t1_s": self.t1_s,
            "wall_s": self.wall_s,
            "device_s": self.device_s,
            "status": self.status,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }


class Tracer:
    """Thread-safe span factory and bounded trace store."""

    def __init__(self, clock=time.perf_counter, max_traces: int = 4096) -> None:
        self.clock = clock
        self.max_traces = int(max_traces)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._traces: deque[Span] = deque(maxlen=self.max_traces)
        self.dropped = 0

    def next_id(self) -> int:
        return next(self._ids)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, attrs=None):
        """Open a span nested under the current thread's active span."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        sp = Span(name=name, span_id=self.next_id(),
                  parent_id=parent.span_id if parent is not None else None,
                  t0_s=self.clock(), attrs=dict(attrs or {}), _tracer=self)
        if parent is not None:
            parent.children.append(sp)
        stack.append(sp)
        try:
            yield sp
        except BaseException:
            sp.status = "error"
            raise
        finally:
            sp.t1_s = self.clock()
            stack.pop()
            if parent is None:
                with self._lock:
                    if len(self._traces) == self._traces.maxlen:
                        self.dropped += 1
                    self._traces.append(sp)

    def bound(self, **attrs) -> "BoundTracer":
        """A view of this tracer that stamps *attrs* onto root spans.

        The cluster layer hands each replica ``tracer.bound(replica=rid)``
        so every root span records which replica produced it while all
        trees land in one shared store;
        :meth:`device_time_by_attr` then splits device time by replica.
        Nested spans are untouched (the root's attrs identify the tree).
        """
        return BoundTracer(self, attrs)

    # ------------------------------------------------------------------
    def traces(self) -> list[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._traces)

    def walk(self):
        """Every finished span, all trees, pre-order."""
        for root in self.traces():
            yield from root.walk()

    def device_time_by_name(self) -> dict[str, float]:
        """Total attributed modeled device seconds grouped by span name."""
        out: dict[str, float] = {}
        for sp in self.walk():
            if sp.device_s:
                out[sp.name] = out.get(sp.name, 0.0) + sp.device_s
        return out

    def device_time_by_attr(self, key: str) -> dict:
        """Root-span attr value -> attributed device seconds of its tree.

        Groups each finished *tree* under its root span's ``key`` attr
        (``None`` for trees whose root never set it) — with roots
        stamped via :meth:`bound`, this is per-replica device-time
        attribution over one shared tracer.
        """
        out: dict = {}
        for root in self.traces():
            val = root.attrs.get(key)
            total = sum(sp.device_s for sp in root.walk())
            if total:
                out[val] = out.get(val, 0.0) + total
        return out

    def attribution(self, total_device_s: float | None = None,
                    phases=DEVICE_PHASES) -> dict:
        """Phase -> seconds attribution plus coverage of the total.

        ``total_device_s`` is the run's ground truth (e.g.
        ``stats.device_busy_s + stats.preprocess_s``); when omitted the
        attributed sum is its own denominator.
        """
        by_name = self.device_time_by_name()
        attributed = {p: by_name.get(p, 0.0) for p in phases}
        total_attr = sum(attributed.values())
        total = total_attr if total_device_s is None else float(total_device_s)
        coverage = (total_attr / total) if total > 0 else 1.0
        return {
            "phases": attributed,
            "attributed_s": total_attr,
            "device_total_s": total,
            "coverage": coverage,
        }


class BoundTracer:
    """A :class:`Tracer` view injecting fixed attrs on root spans.

    Satisfies the tracer interface :class:`repro.obs.Obs` consumes
    (``span`` plus read-side delegation), so a component holding
    ``Obs(tracer=tracer.bound(replica="r1"))`` traces into the shared
    store with every root span labeled.
    """

    def __init__(self, tracer: Tracer, attrs: dict) -> None:
        self._tracer = tracer
        self._attrs = dict(attrs)

    def span(self, name: str, attrs=None):
        if not self._tracer._stack():  # root for this thread
            merged = dict(self._attrs)
            if attrs:
                merged.update(attrs)
            attrs = merged
        return self._tracer.span(name, attrs)

    def bound(self, **attrs) -> "BoundTracer":
        return BoundTracer(self._tracer, {**self._attrs, **attrs})

    def __getattr__(self, name):
        return getattr(self._tracer, name)


class _NullSpan:
    """Do-nothing span for disabled tracing (shared singleton)."""

    name = "null"
    span_id = 0
    parent_id = None
    device_s = 0.0
    status = "ok"
    attrs: dict = {}
    children: list = []
    wall_s = 0.0

    def set_attr(self, key, value) -> None:
        pass

    def set_device_time(self, seconds) -> None:
        pass

    def add_device_time(self, seconds) -> None:
        pass

    def child(self, name, *, device_s=0.0, attrs=None) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


@contextmanager
def null_span():
    """Context manager yielding the shared no-op span."""
    yield NULL_SPAN
