"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the named matrices (Table 2 suite + highlight set).
``analyze MATRIX``
    Structure statistics, DASP category breakdown and a modeled
    all-methods comparison for a named matrix or a ``.mtx`` file.
``spmv MATRIX``
    Run a DASP SpMV (functionally) and report the modeled device time.
``spmm MATRIX``
    Sweep the large-k SpMM tuner (:mod:`repro.core.spmm_block`) over a
    list of right-hand-side widths, print the per-k strategy table
    (looped vs tiled vs reordered, modeled speedups, tile padding) and
    verify the chosen execution bitwise against column-wise SpMV;
    ``--store DIR`` publishes the plan with the winning reorder
    permutation as artifact aux records.
``bench``
    Sweep a small synthetic collection and print DASP-vs-baseline
    speedup summaries (a miniature Figure 10).
``convert``
    Convert between MatrixMarket ``.mtx`` and compressed ``.npz``
    matrix files (either direction, by extension).
``serve-sim``
    Simulate the batched, plan-cached SpMV serving layer
    (:mod:`repro.serve`) on synthetic open-loop traffic and print the
    ServerStats summary (``--trace`` adds the span-tree / attribution
    report, exportable as JSON and Prometheus text).
``cluster-sim``
    Simulate N serving replicas behind consistent-hash routing with
    health-aware failover and optional elastic scaling
    (:mod:`repro.cluster`); ``--bench-json`` appends a perf-trajectory
    record to ``results/BENCH_cluster.json``.
``stats``
    Run a small traced workload and print the :mod:`repro.obs` output
    in table, JSON or Prometheus form.
``plan build|inspect|verify|warm|gc``
    Manage the on-disk plan store (:mod:`repro.store`): build and
    publish ``.daspz`` artifacts for named matrices, inspect headers,
    CRC-verify, simulate a warm start, and garbage-collect down to a
    capacity.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from pathlib import Path

import numpy as np

from .analysis import speedup_summary
from .baselines import PAPER_METHODS, paper_methods
from .bench import markdown_table, run_comparison
from .core import DASPMatrix, DASPMethod, dasp_spmv
from .formats import read_matrix_market, write_matrix_market
from .matrices import (
    category_ratios,
    highlight_suite,
    load as load_matrix,
    representative_suite,
    row_length_stats,
    synthetic_collection,
)


def _load_matrix(spec: str):
    """Deprecated shim — use :func:`repro.matrices.load` instead."""
    warnings.warn(
        "repro.cli._load_matrix is deprecated; use repro.matrices.load",
        DeprecationWarning, stacklevel=2)
    return load_matrix(spec)


def cmd_list(_args) -> int:
    rows = [(e.name, e.family, f"{e.paper_shape[0]}x{e.paper_shape[1]}",
             f"{e.paper_nnz:,}", "Table 2")
            for e in representative_suite()]
    rows += [(e.name, e.family, f"{e.paper_shape[0]}x{e.paper_shape[1]}",
              f"{e.paper_nnz:,}", "highlight")
             for e in highlight_suite()]
    print(markdown_table(("name", "family", "paper size", "paper nnz",
                          "set"), rows))
    return 0


def cmd_analyze(args) -> int:
    csr = load_matrix(args.matrix).astype(np.dtype(args.dtype))
    stats = row_length_stats(csr)
    print(f"{args.matrix}: {csr.shape[0]}x{csr.shape[1]}, nnz={csr.nnz:,}")
    print(f"row lengths: min={stats.min_len} mean={stats.mean_len:.1f} "
          f"max={stats.max_len} gini={stats.gini:.2f} "
          f"empty={stats.empty_rows}")
    c = category_ratios(csr)
    print(markdown_table(
        ("category", "rows", "nnz"),
        [("long", f"{c.row_long:.1%}", f"{c.nnz_long:.1%}"),
         ("medium", f"{c.row_medium:.1%}", f"{c.nnz_medium:.1%}"),
         ("short", f"{c.row_short:.1%}", f"{c.nnz_short:.1%}"),
         ("empty", f"{c.row_empty:.1%}", "-")]))
    print(DASPMatrix.from_csr(csr).summary())
    rows = []
    for method in paper_methods():
        if not method.supports(csr.data.dtype):
            rows.append((method.name, "-", "unsupported dtype"))
            continue
        meas = method.measure(csr, args.device, matrix_name=args.matrix)
        rows.append((method.name, f"{meas.time_s * 1e6:.1f}",
                     f"{meas.gflops:.1f}"))
    print(markdown_table((f"method ({args.device})", "modeled us",
                          "GFlops"), rows))
    return 0


def cmd_spmv(args) -> int:
    csr = load_matrix(args.matrix).astype(np.dtype(args.dtype))
    rng = np.random.default_rng(args.seed)
    x = rng.uniform(-1, 1, csr.shape[1]).astype(csr.data.dtype)
    dasp = DASPMatrix.from_csr(csr)
    y = dasp_spmv(dasp, x)
    ref = csr.matvec(x)
    err = float(np.max(np.abs(np.asarray(y, np.float64)
                              - np.asarray(ref, np.float64))))
    meas = DASPMethod().measure(csr, args.device, matrix_name=args.matrix)
    print(f"y checksum: {float(np.sum(y)):.6e}   max abs err vs CSR: {err:.2e}")
    print(f"modeled {args.device} time: {meas.time_s * 1e6:.1f} us "
          f"({meas.gflops:.1f} GFlops)")
    return 0 if err < 1e-2 else 1


def cmd_spmm(args) -> int:
    """Large-k SpMM strategy table (and optional artifact publish)."""
    from .core import choose_spmm_strategy, dasp_spmm_large

    csr = load_matrix(args.matrix).astype(np.dtype(args.dtype))
    plan = DASPMatrix.from_csr(csr)
    rng = np.random.default_rng(args.seed)
    ks = sorted(set(args.k))
    reorder = not args.no_reorder
    print(f"{args.matrix}: {csr.shape[0]}x{csr.shape[1]}, nnz={csr.nnz:,}, "
          f"{args.dtype} on {args.device}")
    rows = []
    strategies = {}
    for k in ks:
        strat = choose_spmm_strategy(plan, k, args.device, reorder=reorder)
        strategies[k] = strat
        stats = strat.stats
        rows.append((k, strat.name, strat.tile_k,
                     f"{strat.modeled_s * 1e6:.1f}",
                     f"{strat.looped_s * 1e6:.1f}",
                     f"{strat.speedup:.2f}x",
                     f"{strat.modeled_gflops:.1f}",
                     f"{stats.padding_waste:.1%}" if stats else "-"))
    print(markdown_table(
        ("k", "strategy", "tile_k", "modeled us", "looped us",
         "speedup", "GFlops", "tile padding"), rows))
    reordered = [s for s in strategies.values() if s.name == "reordered"]
    if reordered:
        ro = reordered[0].block_plan.reorder
        print(f"row reorder ({ro.candidate}): tile padding "
              f"{ro.natural_stats.padding_waste:.1%} -> "
              f"{ro.stats.padding_waste:.1%} "
              f"({ro.padding_reduction:.1%} fewer padding slots)")
    # Numerical check at the smallest k: the chosen strategy must be
    # bitwise the column-wise dasp_spmv reference.
    k0 = ks[0]
    X = rng.uniform(-1, 1, (csr.shape[1], k0)).astype(csr.data.dtype)
    Y = dasp_spmm_large(plan, X, strategies[k0])
    ref = np.stack([dasp_spmv(plan, X[:, j]) for j in range(k0)], axis=1)
    exact = bool(np.array_equal(Y, ref))
    print(f"k={k0} output vs column-wise dasp_spmv: "
          f"{'bitwise identical' if exact else 'MISMATCH'}")
    if args.store:
        from .store import fingerprint_csr

        store = _open_store(args)
        fp = fingerprint_csr(csr)
        aux = {}
        if reordered:
            ro = reordered[0].block_plan.reorder
            aux["spmm.reorder_perm"] = ro.perm
            aux["spmm.reorder_inv"] = ro.inv
        path = store.put(fp, plan, aux=aux or None)
        note = " (+ reorder permutation)" if aux else ""
        print(f"published {fp[:16]}… -> {path}{note}")
    if args.bench_json:
        from .bench import record_bench

        record = {
            "matrix": args.matrix,
            "device": args.device,
            "dtype": args.dtype,
            "seed": args.seed,
            "reorder": reorder,
            "sweep": [{
                "k": k,
                "strategy": s.name,
                "tile_k": s.tile_k,
                "modeled_s": s.modeled_s,
                "looped_s": s.looped_s,
                "speedup": s.speedup,
                "modeled_gflops": s.modeled_gflops,
                "padding_waste": (s.stats.padding_waste
                                  if s.stats else None),
            } for k, s in strategies.items()],
        }
        path = record_bench("spmm", record, results_dir=args.bench_dir)
        print(f"trajectory record appended to {path}")
    return 0 if exact else 1


def cmd_convert(args) -> int:
    from .matrices.io import load_csr, save_csr

    src, dst = Path(args.source), Path(args.dest)
    if src.suffix == ".mtx":
        csr = read_matrix_market(str(src)).to_csr()
    elif src.suffix == ".npz":
        csr = load_csr(src)
    else:
        print(f"unsupported input {src.suffix!r} (use .mtx or .npz)",
              file=sys.stderr)
        return 2
    if dst.suffix == ".mtx":
        dst.parent.mkdir(parents=True, exist_ok=True)
        write_matrix_market(csr, dst)
    elif dst.suffix == ".npz":
        save_csr(dst, csr, name=src.stem)
    else:
        print(f"unsupported output {dst.suffix!r} (use .mtx or .npz)",
              file=sys.stderr)
        return 2
    print(f"{src} -> {dst}: {csr.shape[0]}x{csr.shape[1]}, nnz={csr.nnz:,}")
    return 0


def _print_trace_report(obs, stats, *, json_path=None, prom_path=None,
                        max_trees: int = 3) -> None:
    """Attribution table + sample span trees; optional file exports."""
    from .obs import export

    total = stats.device_busy_s + stats.preprocess_s
    att = obs.tracer.attribution(total)
    rows = [(phase, f"{seconds * 1e6:.1f}",
             f"{seconds / total:.1%}" if total > 0 else "-")
            for phase, seconds in att["phases"].items()]
    print("\n===== device-time attribution =====")
    print(markdown_table(("phase", "modeled us", "share"), rows))
    print(f"coverage: {att['coverage']:.1%} of "
          f"{total * 1e6:.1f} us modeled device time")
    traces = obs.tracer.traces()
    if traces:
        print(f"\n===== sample traces ({min(max_trees, len(traces))} "
              f"of {len(traces)}) =====")
        for root in traces[:max_trees]:
            print("\n".join(export.format_span_tree(root)))
    if json_path:
        Path(json_path).write_text(
            export.render_json(obs, device_total_s=total) + "\n")
        print(f"trace JSON written to {json_path}")
    if prom_path:
        Path(prom_path).write_text(export.to_prometheus(obs.registry))
        print(f"Prometheus metrics written to {prom_path}")


def _parse_shards(value):
    """``--shards`` parser: None, ``auto``, or a positive int."""
    if value is None or value == "auto":
        return value
    try:
        s = int(value)
    except ValueError:
        raise SystemExit(f"--shards must be an integer or 'auto', got {value!r}")
    if s < 1:
        raise SystemExit("--shards must be >= 1")
    return None if s == 1 else s


def cmd_serve_sim(args) -> int:
    from .obs import Obs, Tracer
    from .serve import (ChaosConfig, WorkloadConfig,
                        compare_batched_unbatched, run_workload)

    chaos = None
    if args.chaos:
        chaos = ChaosConfig(fault_rate=args.chaos_rate, seed=args.chaos_seed)
    shards = _parse_shards(args.shards)
    cfg = WorkloadConfig(
        n_requests=args.requests,
        rate_rps=args.rate,
        zipf_s=args.zipf,
        seed=args.seed,
        n_matrices=args.matrices,
        dtype=args.dtype,
        device=args.device,
        max_batch=args.max_batch,
        flush_timeout_s=args.timeout_us * 1e-6,
        cache_budget_bytes=int(args.cache_mb * 1024 * 1024),
        queue_depth=args.queue_depth,
        deadline_s=args.deadline_us * 1e-6 if args.deadline_us else None,
        chaos=chaos,
        shards=shards,
        shard_workers=args.shard_workers,
        store=args.store,
        warm_start=bool(args.warm_start),
        pipeline=bool(args.pipeline),
        warmer=bool(args.warmer),
        spmm_mix=args.spmm_mix,
        spmm_ks=tuple(args.spmm_ks),
        update_mix=args.update_mix,
        structural_frac=args.structural_frac,
        update_entries=args.update_entries,
    )
    trace = bool(args.trace or args.trace_json or args.trace_prom)
    obs = Obs(tracer=Tracer()) if trace else None
    if args.compare:
        res = compare_batched_unbatched(cfg, obs=obs)
        for name in ("unbatched", "batched"):
            print(f"\n===== {name} =====")
            print(res[name].summary_table())
        b, u = res["batched"], res["unbatched"]
        if u.throughput_rps > 0:
            print(f"\nbatched vs request-at-a-time throughput: "
                  f"{b.throughput_rps / u.throughput_rps:.2f}x")
        if trace:
            _print_trace_report(obs, b, json_path=args.trace_json,
                                prom_path=args.trace_prom)
        return 0
    stats = run_workload(cfg, obs=obs) if obs is not None else run_workload(cfg)
    print(stats.summary_table())
    if trace:
        _print_trace_report(obs, stats, json_path=args.trace_json,
                            prom_path=args.trace_prom)
    return 0


def cmd_cluster_sim(args) -> int:
    from .cluster import (
        ClusterConfig,
        ElasticConfig,
        HealthConfig,
        run_cluster_workload,
    )
    from .obs import Obs, Tracer
    from .serve import ChaosConfig

    chaos = None
    if args.chaos:
        chaos = ChaosConfig(fault_rate=args.chaos_rate, seed=args.chaos_seed)
    entries = (synthetic_collection(args.synthetic, seed=args.seed)
               if args.synthetic else None)
    elastic = None
    if args.elastic:
        elastic = ElasticConfig(min_replicas=args.min_replicas,
                                max_replicas=args.max_replicas)
    overload = None
    if args.overload:
        from .overload import (
            AdmissionConfig,
            HedgeConfig,
            OverloadConfig,
            RetryBudgetConfig,
        )

        overload = OverloadConfig(
            admission=AdmissionConfig(rate_rps=args.admission_rate),
            retry_budget=RetryBudgetConfig(),
            hedge=HedgeConfig(factor=args.hedge_factor),
            batch_fraction=args.batch_fraction,
        )
    health = HealthConfig(straggler_factor=args.straggler_factor) \
        if args.straggler_factor is not None else HealthConfig()
    cfg = ClusterConfig(
        n_requests=args.requests,
        rate_rps=args.rate,
        zipf_s=args.zipf,
        seed=args.seed,
        n_matrices=args.matrices,
        entries=entries,
        dtype=args.dtype,
        device=args.device,
        max_batch=args.max_batch,
        flush_timeout_s=args.timeout_us * 1e-6,
        queue_depth=args.queue_depth,
        deadline_s=args.deadline_us * 1e-6 if args.deadline_us else None,
        chaos=chaos,
        store=args.store,
        warm_start=bool(args.warm_start),
        pipeline=bool(args.pipeline),
        warmer=bool(args.warmer),
        n_replicas=args.replicas,
        vnodes=args.vnodes,
        ring_seed=args.ring_seed,
        probe_interval_s=(args.probe_interval_us * 1e-6
                          if args.probe_interval_us else None),
        fail_replica=args.fail_replica,
        fail_rate=args.fail_rate,
        elastic=elastic,
        health=health,
        overload=overload,
        slow_replica=args.slow_replica,
        slow_factor=args.slow_factor,
        partition_replica=args.partition_replica,
        partition_window=tuple(args.partition_window),
        update_mix=args.update_mix,
        structural_frac=args.structural_frac,
        update_entries=args.update_entries,
    )
    obs = Obs(tracer=Tracer()) if args.trace else Obs()
    import time as _time

    t0 = _time.perf_counter()
    stats = run_cluster_workload(cfg, obs=obs)
    wall_s = _time.perf_counter() - t0
    print(stats.summary_table())
    rows = [(rid, f"{s.n_requests:,}", f"{s.n_completed:,}",
             f"{s.retries:,}",
             f"{s.throughput_rps:,.0f}", f"{s.cache_hit_rate:.1%}",
             "yes" if stats.health.get(rid, {}).get("straggler") else "no",
             "no" if stats.health.get(rid, {}).get("healthy", True)
             else "DOWN")
            for rid, s in stats.replicas.items()]
    print()
    print(markdown_table(("replica", "requests", "completed", "retries",
                          "req/s", "cache hits", "straggler", "unhealthy"),
                         rows))
    if args.trace:
        by_replica = obs.tracer.device_time_by_attr("replica")
        if by_replica:
            print()
            print(markdown_table(
                ("replica", "attributed device ms"),
                [(rid, f"{sec * 1e3:.3f}")
                 for rid, sec in sorted(by_replica.items(),
                                        key=lambda kv: str(kv[0]))]))
    if args.bench_json:
        from .bench import record_bench

        pct = stats.latency_percentiles((50.0, 99.0))
        record = {
            "replicas": stats.n_replicas,
            "seed": cfg.seed,
            "requests": stats.n_requests,
            "completed": stats.n_completed,
            "throughput_rps": stats.throughput_rps,
            "in_deadline_fraction": stats.in_deadline_fraction,
            "p50_latency_s": pct[50.0],
            "p99_latency_s": pct[99.0],
            "failovers": stats.n_failover,
            "wall_s": round(wall_s, 3),
        }
        if stats.n_updates:
            record["updates"] = stats.n_updates
        if stats.overload_enabled:
            record.update({
                "offered": stats.n_offered,
                "shed": stats.n_shed,
                "link_failed": stats.n_link_failed,
                "hedges_issued": stats.n_hedges_issued,
                "hedges_won": stats.n_hedges_won,
                "hedges_wasted": stats.n_hedges_wasted,
                "retry_budget_granted": stats.retry_budget_granted,
                "retry_budget_denied": stats.retry_budget_denied,
                "lost_requests": stats.lost_requests,
                "priorities": stats.priorities,
            })
        path = record_bench("cluster", record, results_dir=args.bench_dir)
        print(f"\ntrajectory record appended to {path}")
    return 0


def cmd_stats(args) -> int:
    """Run a small traced workload and expose the telemetry."""
    from .obs import Obs, Tracer, export
    from .serve import WorkloadConfig, run_workload

    obs = Obs(tracer=Tracer())
    cfg = WorkloadConfig(n_requests=args.requests, n_matrices=args.matrices,
                         seed=args.seed, device=args.device)
    stats = run_workload(cfg, obs=obs)
    total = stats.device_busy_s + stats.preprocess_s
    if args.format == "json":
        print(export.render_json(obs, device_total_s=total))
        return 0
    if args.format == "prometheus":
        print(export.to_prometheus(obs.registry), end="")
        return 0
    print(stats.summary_table())
    _print_trace_report(obs, stats, max_trees=1)
    return 0


def _open_store(args):
    from .store import PlanStore

    cap = (int(args.capacity_mb * 1024 * 1024)
           if getattr(args, "capacity_mb", None) is not None else None)
    return PlanStore(args.store, capacity_bytes=cap,
                     device=getattr(args, "device", "A100"))


def _build_one_plan(spec: str, args):
    """(fingerprint, plan) for one matrix spec, honoring --shards."""
    from .store import fingerprint_csr

    csr = load_matrix(spec).astype(np.dtype(args.dtype))
    fp = fingerprint_csr(csr)
    shards = _parse_shards(args.shards)
    if shards == "auto":
        from .shard import choose_shards

        shards = int(choose_shards(csr, args.shard_workers,
                                   device=args.device).best_value)
    if shards is not None and int(shards) > 1:
        from .shard import build_sharded_plan

        return fp, build_sharded_plan(csr, int(shards))
    return fp, DASPMatrix.from_csr(csr)


def cmd_plan_build(args) -> int:
    from .store import modeled_load_time, modeled_rebuild_time, read_header

    store = _open_store(args)
    for spec in args.matrix:
        fp, plan = _build_one_plan(spec, args)
        path = store.put(fp, plan, overwrite=args.force)
        header, _ = read_header(path)
        load_ms = modeled_load_time(header, args.device) * 1e3
        rebuild_ms = modeled_rebuild_time(header, args.device) * 1e3
        print(f"{spec}: {fp} -> {path} ({path.stat().st_size:,} bytes, "
              f"modeled load {load_ms:.3f} ms vs rebuild {rebuild_ms:.3f} ms)")
    return 0


def cmd_plan_inspect(args) -> int:
    from .store import modeled_load_time, read_header

    store = _open_store(args)
    fps = args.fingerprint or store.fingerprints()
    if not fps:
        print("store is empty")
        return 0
    rows = []
    for fp in fps:
        path = store.path_for(fp)
        if not path.exists():
            rows.append((fp[:16], "-", "absent", "-", "-", "-"))
            continue
        header, _ = read_header(path)
        md = header["modeled"]
        shape = "x".join(str(s) for s in header["meta"]["shape"])
        kind = header["kind"]
        if kind == "sharded":
            kind = f"sharded({len(header['meta']['shards'])})"
        rows.append((fp[:16], kind,
                     f"{shape} nnz={int(md['nnz']):,} {header['dtype']}",
                     f"{path.stat().st_size:,}",
                     f"{len(header['arrays'])}",
                     f"{modeled_load_time(header, args.device) * 1e3:.3f}"))
    print(markdown_table(("fingerprint", "kind", "matrix", "bytes",
                          "arrays", "load ms"), rows))
    return 0


def cmd_plan_verify(args) -> int:
    from .store import ArtifactError

    store = _open_store(args)
    fps = args.fingerprint or store.fingerprints()
    bad = 0
    for fp in fps:
        try:
            header = store.verify(fp)
            print(f"{fp}: ok ({len(header['arrays'])} arrays, "
                  f"{header['kind']})")
        except (ArtifactError, OSError) as exc:
            bad += 1
            print(f"{fp}: FAILED — {exc}", file=sys.stderr)
    print(f"{len(fps) - bad}/{len(fps)} artifacts verified")
    return 1 if bad else 0


def cmd_plan_warm(args) -> int:
    """Simulate a warm start: preload each matrix's plan from the store."""
    from .serve import PlanRegistry
    from .store import fingerprint_csr

    registry = PlanRegistry(store=_open_store(args), device=args.device)
    missing = 0
    for spec in args.matrix:
        csr = load_matrix(spec).astype(np.dtype(args.dtype))
        fp = fingerprint_csr(csr)
        load_s = registry.warm(fp)
        if load_s is None:
            missing += 1
            print(f"{spec}: {fp[:16]}… not in store (would rebuild)")
        else:
            print(f"{spec}: {fp[:16]}… warmed in {load_s * 1e3:.3f} ms "
                  f"modeled")
    snap = registry.store.snapshot()
    print(f"warm start: {snap['hits']} loaded, {missing} missing, "
          f"{snap['load_failures']} failed")
    return 1 if missing else 0


def cmd_plan_gc(args) -> int:
    store = _open_store(args)
    if store.capacity_bytes is None:
        print("--capacity-mb is required for gc", file=sys.stderr)
        return 2
    before = store.nbytes()
    removed = store.gc()
    print(f"removed {len(removed)} artifact(s), "
          f"{before:,} -> {store.nbytes():,} bytes")
    for fp in removed:
        print(f"  {fp}")
    return 0


def cmd_bench(args) -> int:
    entries = synthetic_collection(args.count, seed=args.seed)
    res = run_comparison(entries, device=args.device,
                         dtype=np.dtype(args.dtype))
    dasp = res.times.get("DASP", {})
    if not dasp:
        print("DASP does not support this dtype", file=sys.stderr)
        return 1
    for base in res.times:
        if base == "DASP":
            continue
        print(speedup_summary(dasp, res.times[base], base))
    if args.shards is not None:
        _bench_shards(entries, args)
    return 0


def _bench_shards(entries, args) -> None:
    """Modeled sharded-vs-single-chain speedup table for ``bench``."""
    from .shard import build_sharded_plan, choose_shards, sharded_batch_cost

    shards = _parse_shards(args.shards)
    workers = args.shard_workers
    dtype = np.dtype(args.dtype)
    print(f"\nrow sharding (modeled, {workers} lanes):")
    print(f"{'matrix':<24}{'S':>4}{'single':>12}{'sharded':>12}{'speedup':>9}")
    for e in entries:
        csr = e.matrix().astype(dtype)
        S = (int(choose_shards(csr, workers, device=args.device).best_value)
             if shards == "auto" else int(shards))
        single = sharded_batch_cost(build_sharded_plan(csr, 1), args.device,
                                    1, workers=workers).makespan
        plan = build_sharded_plan(csr, S)
        cost = sharded_batch_cost(plan, args.device, 1, workers=workers)
        print(f"{e.name:<24}{plan.n_shards:>4}{single:>12.3e}"
              f"{cost.makespan:>12.3e}{single / cost.makespan:>8.2f}x")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DASP (SC'23) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list named matrices").set_defaults(fn=cmd_list)

    p = sub.add_parser("analyze", help="analyze a matrix")
    p.add_argument("matrix", help="named matrix or .mtx file")
    p.add_argument("--device", default="A100", choices=("A100", "H800"))
    p.add_argument("--dtype", default="float64",
                   choices=("float64", "float32", "float16"))
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("spmv", help="run one DASP SpMV")
    p.add_argument("matrix")
    p.add_argument("--device", default="A100", choices=("A100", "H800"))
    p.add_argument("--dtype", default="float64",
                   choices=("float64", "float32", "float16"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_spmv)

    p = sub.add_parser(
        "spmm", help="large-k SpMM strategy sweep for one matrix")
    p.add_argument("matrix")
    p.add_argument("--k", type=int, nargs="+", default=[8, 32, 128, 512],
                   help="right-hand-side widths to sweep")
    p.add_argument("--device", default="A100", choices=("A100", "H800"))
    p.add_argument("--dtype", default="float64",
                   choices=("float64", "float32", "float16"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-reorder", action="store_true",
                   help="disable the row-reordering candidate")
    p.add_argument("--store", default=None,
                   help="publish the plan (+ winning reorder permutation) "
                        "to this plan-store directory")
    p.add_argument("--bench-json", action="store_true",
                   help="append the sweep to results/BENCH_spmm.json")
    p.add_argument("--bench-dir", default=None,
                   help="directory for --bench-json output "
                        "(default: ./results)")
    p.set_defaults(fn=cmd_spmm)

    p = sub.add_parser("convert", help="convert .mtx <-> .npz")
    p.add_argument("source")
    p.add_argument("dest")
    p.set_defaults(fn=cmd_convert)

    p = sub.add_parser(
        "serve-sim",
        help="simulate batched, plan-cached SpMV serving (repro.serve)")
    p.add_argument("--requests", type=int, default=2000,
                   help="open-loop request count")
    p.add_argument("--rate", type=float, default=None,
                   help="offered rate (req/s); default saturates the device")
    p.add_argument("--zipf", type=float, default=1.1,
                   help="Zipf popularity exponent over the matrix pool")
    p.add_argument("--matrices", type=int, default=4,
                   help="pool size taken from the representative suite")
    p.add_argument("--device", default="A100", choices=("A100", "H800"))
    p.add_argument("--dtype", default="float64",
                   choices=("float64", "float16"))
    p.add_argument("--max-batch", type=int, default=8,
                   help="SpMM coalescing width (1 = request-at-a-time)")
    p.add_argument("--timeout-us", type=float, default=200.0,
                   help="partial-batch flush timeout (modeled us)")
    p.add_argument("--cache-mb", type=float, default=256.0,
                   help="plan-cache budget (MiB)")
    p.add_argument("--queue-depth", type=int, default=256,
                   help="bounded device backlog (batches)")
    p.add_argument("--seed", type=int, default=2023)
    p.add_argument("--compare", action="store_true",
                   help="also run request-at-a-time and print the speedup")
    p.add_argument("--chaos", action="store_true",
                   help="inject a seeded fault mix (repro.resilience)")
    p.add_argument("--chaos-rate", type=float, default=0.05,
                   help="total fault rate split over the fault kinds")
    p.add_argument("--chaos-seed", type=int, default=7,
                   help="fault-injector RNG seed")
    p.add_argument("--shards", default=None, metavar="S|auto",
                   help="row-shard every matrix into S bands ('auto' picks "
                        "S per matrix from the makespan cost model)")
    p.add_argument("--shard-workers", type=int, default=4,
                   help="concurrent lanes the sharded makespan is modeled "
                        "over (default 4)")
    p.add_argument("--deadline-us", type=float, default=None,
                   help="per-request deadline (modeled us); expired "
                        "requests fail fast")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="back the plan cache with an on-disk artifact "
                        "store (repro.store)")
    p.add_argument("--warm-start", action="store_true",
                   help="preload every pool matrix's plan from --store "
                        "before traffic starts")
    p.add_argument("--pipeline", action="store_true",
                   help="async pipelined execution: plan loads/builds run "
                        "on a modeled prefetch lane overlapping the device "
                        "(results stay bitwise identical)")
    p.add_argument("--warmer", action="store_true",
                   help="speculative plan warmer: prebuild/preload popular "
                        "matrices before their first request (Zipf "
                        "estimate over observed traffic; implies a "
                        "prefetch lane)")
    p.add_argument("--spmm-mix", type=float, default=0.0, metavar="P",
                   help="fraction of requests issued as SpMM blocks "
                        "(dedicated seed+13 stream; 0 disables)")
    p.add_argument("--spmm-ks", type=int, nargs="+", default=[16, 32, 64],
                   metavar="K",
                   help="RHS widths sampled for SpMM block requests")
    p.add_argument("--update-mix", type=float, default=0.0, metavar="P",
                   help="fraction of arrival slots carrying a matrix delta "
                        "instead of a read (plans are patched in place, "
                        "version chain advances; dedicated seed+17 stream; "
                        "0 disables)")
    p.add_argument("--structural-frac", type=float, default=0.3,
                   help="share of deltas that change the sparsity pattern "
                        "(the rest touch values only)")
    p.add_argument("--update-entries", type=int, default=8,
                   help="coordinates touched per delta")
    p.add_argument("--trace", action="store_true",
                   help="record spans (repro.obs) and print the "
                        "device-time attribution report")
    p.add_argument("--trace-json", metavar="FILE", default=None,
                   help="write the full observability JSON document "
                        "(metrics + traces + attribution) to FILE")
    p.add_argument("--trace-prom", metavar="FILE", default=None,
                   help="write the metrics in Prometheus text format "
                        "to FILE")
    p.set_defaults(fn=cmd_serve_sim)

    p = sub.add_parser(
        "cluster-sim",
        help="simulate N serving replicas behind consistent-hash routing "
             "(repro.cluster)")
    p.add_argument("--replicas", type=int, default=4,
                   help="initial replica count (N=1 matches serve-sim "
                        "bit for bit)")
    p.add_argument("--requests", type=int, default=10_000,
                   help="open-loop request count")
    p.add_argument("--rate", type=float, default=None,
                   help="offered rate (req/s); default saturates N replicas")
    p.add_argument("--zipf", type=float, default=1.1)
    p.add_argument("--matrices", type=int, default=4,
                   help="pool size taken from the representative suite")
    p.add_argument("--synthetic", type=int, default=None, metavar="N",
                   help="use an N-matrix synthetic pool instead of the "
                        "representative suite (much faster to model)")
    p.add_argument("--device", default="A100", choices=("A100", "H800"))
    p.add_argument("--dtype", default="float64",
                   choices=("float64", "float16"))
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--timeout-us", type=float, default=200.0)
    p.add_argument("--queue-depth", type=int, default=256)
    p.add_argument("--deadline-us", type=float, default=None)
    p.add_argument("--seed", type=int, default=2023)
    p.add_argument("--vnodes", type=int, default=128,
                   help="virtual nodes per replica on the hash ring")
    p.add_argument("--ring-seed", type=int, default=0,
                   help="seed of the ring's stable hash")
    p.add_argument("--probe-interval-us", type=float, default=None,
                   help="health-probe period (modeled us; default ~200 "
                        "probes per run)")
    p.add_argument("--fail-replica", type=int, default=None, metavar="I",
                   help="fault-inject replica index I with kernel errors "
                        "(failover demo)")
    p.add_argument("--fail-rate", type=float, default=1.0)
    p.add_argument("--chaos", action="store_true",
                   help="inject a seeded fault mix on every replica")
    p.add_argument("--chaos-rate", type=float, default=0.05)
    p.add_argument("--chaos-seed", type=int, default=7)
    p.add_argument("--elastic", action="store_true",
                   help="enable queue-depth-driven elastic scaling")
    p.add_argument("--min-replicas", type=int, default=1)
    p.add_argument("--max-replicas", type=int, default=8)
    p.add_argument("--overload", action="store_true",
                   help="enable the overload layer: admission control, "
                        "cluster-wide retry budget, hedged requests "
                        "(repro.overload)")
    p.add_argument("--admission-rate", type=float, default=None,
                   metavar="RPS",
                   help="admission token-bucket rate (default: unlimited "
                        "bucket, i.e. admission counts but never sheds)")
    p.add_argument("--batch-fraction", type=float, default=0.3,
                   help="share of traffic tagged batch priority "
                        "(shed first under --overload)")
    p.add_argument("--hedge-factor", type=float, default=3.0,
                   help="hedge/demote a replica whose latency EWMA "
                        "exceeds this multiple of the peer median")
    p.add_argument("--straggler-factor", type=float, default=None,
                   metavar="F",
                   help="demote (soft-drain) healthy replicas whose "
                        "latency EWMA exceeds F x the peer median")
    p.add_argument("--slow-replica", type=int, default=None, metavar="I",
                   help="chaos: multiply replica I's modeled device time "
                        "by --slow-factor (a live straggler)")
    p.add_argument("--slow-factor", type=float, default=4.0)
    p.add_argument("--partition", type=int, default=None, metavar="I",
                   dest="partition_replica",
                   help="chaos: drop the router link to replica I for "
                        "--partition-window of the run")
    p.add_argument("--partition-window", type=float, nargs=2,
                   default=(0.25, 0.75), metavar=("START", "END"),
                   help="partition window as fractions of the arrival span")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="shared plan store for ring-scoped warm-up")
    p.add_argument("--warm-start", action="store_true",
                   help="each replica preloads its ring-assigned "
                        "fingerprints from --store")
    p.add_argument("--pipeline", action="store_true",
                   help="async pipelined execution on every replica "
                        "(modeled prefetch lane beside each device)")
    p.add_argument("--warmer", action="store_true",
                   help="per-replica speculative plan warmer; ring "
                        "warm-ups and rebalance re-warms ride it")
    p.add_argument("--update-mix", type=float, default=0.0, metavar="P",
                   help="fraction of arrival slots carrying a matrix delta "
                        "(broadcast to every replica; the home replica "
                        "persists it to --store)")
    p.add_argument("--structural-frac", type=float, default=0.3,
                   help="share of deltas that change the sparsity pattern")
    p.add_argument("--update-entries", type=int, default=8,
                   help="coordinates touched per delta")
    p.add_argument("--trace", action="store_true",
                   help="shared tracer with per-replica device-time "
                        "attribution")
    p.add_argument("--bench-json", action="store_true",
                   help="append a perf-trajectory record to "
                        "results/BENCH_cluster.json")
    p.add_argument("--bench-dir", metavar="DIR", default=None,
                   help="trajectory output directory (default: results/)")
    p.set_defaults(fn=cmd_cluster_sim)

    p = sub.add_parser(
        "stats",
        help="run a small traced workload and print repro.obs telemetry")
    p.add_argument("--format", default="table",
                   choices=("table", "json", "prometheus"),
                   help="output form (default: summary table + trace)")
    p.add_argument("--requests", type=int, default=200,
                   help="workload size (kept small; this is a demo run)")
    p.add_argument("--matrices", type=int, default=3)
    p.add_argument("--device", default="A100", choices=("A100", "H800"))
    p.add_argument("--seed", type=int, default=2023)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "plan", help="manage the on-disk plan store (repro.store)")
    plan_sub = p.add_subparsers(dest="plan_command", required=True)

    def _plan_common(sp, *, matrices: bool) -> None:
        sp.add_argument("--store", required=True, metavar="DIR",
                        help="plan store directory")
        sp.add_argument("--device", default="A100", choices=("A100", "H800"))
        if matrices:
            sp.add_argument("--dtype", default="float64",
                            choices=("float64", "float32", "float16"))

    sp = plan_sub.add_parser(
        "build", help="build plans and publish .daspz artifacts")
    sp.add_argument("matrix", nargs="+", help="named matrices or .mtx files")
    _plan_common(sp, matrices=True)
    sp.add_argument("--shards", default=None, metavar="S|auto",
                    help="persist a sharded plan (S row bands)")
    sp.add_argument("--shard-workers", type=int, default=4)
    sp.add_argument("--force", action="store_true",
                    help="overwrite existing artifacts")
    sp.set_defaults(fn=cmd_plan_build)

    sp = plan_sub.add_parser("inspect", help="print artifact headers")
    sp.add_argument("fingerprint", nargs="*",
                    help="fingerprints to inspect (default: all)")
    _plan_common(sp, matrices=False)
    sp.set_defaults(fn=cmd_plan_inspect)

    sp = plan_sub.add_parser(
        "verify", help="CRC-verify artifacts (exit 1 on any failure)")
    sp.add_argument("fingerprint", nargs="*",
                    help="fingerprints to verify (default: all)")
    _plan_common(sp, matrices=False)
    sp.set_defaults(fn=cmd_plan_verify)

    sp = plan_sub.add_parser(
        "warm", help="simulate a warm start from the store")
    sp.add_argument("matrix", nargs="+", help="named matrices or .mtx files")
    _plan_common(sp, matrices=True)
    sp.set_defaults(fn=cmd_plan_warm)

    sp = plan_sub.add_parser(
        "gc", help="garbage-collect the store down to a capacity")
    _plan_common(sp, matrices=False)
    sp.add_argument("--capacity-mb", type=float, required=True,
                    help="target capacity (MiB); LRU artifacts beyond it "
                         "are removed")
    sp.set_defaults(fn=cmd_plan_gc)

    p = sub.add_parser("bench", help="mini Figure 10 sweep")
    p.add_argument("--count", type=int, default=20)
    p.add_argument("--shards", default=None, metavar="S|auto",
                   help="also print the modeled row-sharding speedup table")
    p.add_argument("--shard-workers", type=int, default=4)
    p.add_argument("--device", default="A100", choices=("A100", "H800"))
    p.add_argument("--dtype", default="float64",
                   choices=("float64", "float16"))
    p.add_argument("--seed", type=int, default=2023)
    p.set_defaults(fn=cmd_bench)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `repro list | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
