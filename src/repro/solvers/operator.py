"""Linear-operator abstraction over SpMV methods.

Iterative solvers are *the* consumer of SpMV (the paper's Section 4.4
amortization argument), so the solver layer works against a tiny
operator interface that any :class:`~repro.gpu.kernel.SpMVMethod` — or a
plain CSR matrix — can satisfy.  The operator counts its applications so
solver benchmarks can report modeled end-to-end cost including
preprocessing.
"""

from __future__ import annotations

import numpy as np

from .._util import check
from ..core.method import DASPMethod
from ..formats import to_csr
from ..gpu.cost_model import estimate_preprocess_time, estimate_time
from ..gpu.device import get_device


class SpMVOperator:
    """``y = A @ x`` through a prepared SpMV method, with apply counting.

    Parameters
    ----------
    matrix:
        Anything :func:`repro.formats.to_csr` accepts.
    method:
        An :class:`SpMVMethod` instance; default is DASP.
    """

    def __init__(self, matrix, method=None) -> None:
        self.csr = to_csr(matrix)
        self.method = method or DASPMethod()
        check(self.method.supports(self.csr.data.dtype),
              f"{self.method.name} does not support {self.csr.data.dtype}")
        self.plan = self.method.prepare(self.csr)
        #: Number of operator applications so far.
        self.applications = 0

    @property
    def shape(self) -> tuple[int, int]:
        return self.csr.shape

    @property
    def dtype(self):
        return self.csr.data.dtype

    def apply(self, x: np.ndarray) -> np.ndarray:
        """One SpMV through the method's kernel."""
        self.applications += 1
        return np.asarray(self.method.run(self.plan, x), dtype=np.float64)

    __matmul__ = apply

    def modeled_cost(self, device="A100") -> dict[str, float]:
        """Modeled device seconds: preprocessing + all applications."""
        device = get_device(device)
        bits = np.dtype(self.dtype).itemsize * 8
        spmv_s = estimate_time(self.method.events(self.plan, device), device,
                               dtype_bits=bits).total
        pre_s = estimate_preprocess_time(
            self.method.preprocess_events(self.plan), device)
        return {
            "preprocess_s": pre_s,
            "per_spmv_s": spmv_s,
            "applications": float(self.applications),
            "total_s": pre_s + spmv_s * self.applications,
        }
