"""Iterative solvers driven by SpMV methods — the paper's amortization
workload (Section 4.4): preprocessing pays off when SpMV repeats."""

from .krylov import SolveResult, bicgstab, conjugate_gradient, jacobi
from .operator import SpMVOperator

__all__ = [
    "SolveResult",
    "SpMVOperator",
    "bicgstab",
    "conjugate_gradient",
    "jacobi",
]
