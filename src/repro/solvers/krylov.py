"""Krylov-subspace solvers built on the SpMV operator.

Conjugate gradient (SPD systems) and BiCGSTAB (general systems), with a
Jacobi-preconditioned CG variant.  These are the canonical SpMV-bound
workloads behind the paper's preprocessing-amortization argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import check
from .operator import SpMVOperator


@dataclass
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("inf")


def _as_operator(A) -> SpMVOperator:
    return A if isinstance(A, SpMVOperator) else SpMVOperator(A)


def conjugate_gradient(A, b: np.ndarray, *, tol: float = 1e-10,
                       max_iter: int | None = None,
                       preconditioner: np.ndarray | None = None) -> SolveResult:
    """Preconditioned conjugate gradient for SPD systems.

    ``preconditioner``, if given, is the *diagonal* of a Jacobi
    preconditioner (element-wise inverse applied).
    """
    op = _as_operator(A)
    m, n = op.shape
    check(m == n, "CG requires a square matrix")
    b = np.asarray(b, dtype=np.float64)
    check(b.shape == (n,), "b has wrong length")
    max_iter = max_iter or 10 * n
    inv_m = None if preconditioner is None else 1.0 / np.asarray(preconditioner)

    x = np.zeros(n)
    r = b.copy()
    z = r * inv_m if inv_m is not None else r
    p = z.copy()
    rz = r @ z
    b_norm = np.linalg.norm(b) or 1.0
    history = [np.linalg.norm(r) / b_norm]

    for it in range(1, max_iter + 1):
        ap = op.apply(p)
        denom = p @ ap
        if denom == 0:
            return SolveResult(x, False, it, history)
        alpha = rz / denom
        x = x + alpha * p
        r = r - alpha * ap
        res = np.linalg.norm(r) / b_norm
        history.append(float(res))
        if res < tol:
            return SolveResult(x, True, it, history)
        z = r * inv_m if inv_m is not None else r
        rz_new = r @ z
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolveResult(x, False, max_iter, history)


def bicgstab(A, b: np.ndarray, *, tol: float = 1e-10,
             max_iter: int | None = None) -> SolveResult:
    """BiCGSTAB for general (non-symmetric) systems."""
    op = _as_operator(A)
    m, n = op.shape
    check(m == n, "BiCGSTAB requires a square matrix")
    b = np.asarray(b, dtype=np.float64)
    check(b.shape == (n,), "b has wrong length")
    max_iter = max_iter or 10 * n

    x = np.zeros(n)
    r = b.copy()
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)
    b_norm = np.linalg.norm(b) or 1.0
    history = [np.linalg.norm(r) / b_norm]

    for it in range(1, max_iter + 1):
        rho_new = r_hat @ r
        if rho_new == 0 or omega == 0:
            return SolveResult(x, False, it, history)
        beta = (rho_new / rho) * (alpha / omega)
        p = r + beta * (p - omega * v)
        v = op.apply(p)
        denom = r_hat @ v
        if denom == 0:
            return SolveResult(x, False, it, history)
        alpha = rho_new / denom
        s = r - alpha * v
        if np.linalg.norm(s) / b_norm < tol:
            x = x + alpha * p
            history.append(float(np.linalg.norm(s) / b_norm))
            return SolveResult(x, True, it, history)
        t = op.apply(s)
        tt = t @ t
        omega = (t @ s) / tt if tt else 0.0
        x = x + alpha * p + omega * s
        r = s - omega * t
        rho = rho_new
        res = np.linalg.norm(r) / b_norm
        history.append(float(res))
        if res < tol:
            return SolveResult(x, True, it, history)
    return SolveResult(x, False, max_iter, history)


def jacobi(A, b: np.ndarray, *, tol: float = 1e-10,
           max_iter: int = 1000) -> SolveResult:
    """Jacobi iteration (needs a diagonally dominant matrix).

    Uses the operator for the full product and corrects with the
    diagonal: ``x <- x + (b - A x) / diag``.
    """
    op = _as_operator(A)
    m, n = op.shape
    check(m == n, "Jacobi requires a square matrix")
    diag = op.csr.to_dense().diagonal().astype(np.float64) \
        if n <= 2048 else _extract_diagonal(op.csr)
    check(bool(np.all(diag != 0)), "Jacobi requires a nonzero diagonal")
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros(n)
    b_norm = np.linalg.norm(b) or 1.0
    history = []
    for it in range(1, max_iter + 1):
        r = b - op.apply(x)
        res = float(np.linalg.norm(r) / b_norm)
        history.append(res)
        if res < tol:
            return SolveResult(x, True, it, history)
        x = x + r / diag
    return SolveResult(x, False, max_iter, history)


def _extract_diagonal(csr) -> np.ndarray:
    """Diagonal of a CSR matrix without densifying."""
    n = csr.shape[0]
    diag = np.zeros(n)
    rows = np.repeat(np.arange(n, dtype=np.int64), csr.row_lengths())
    on_diag = rows == csr.indices
    diag[rows[on_diag]] = csr.data[on_diag]
    return diag
