"""Sharded execution and its cost model.

Execution: each shard's DASP kernels run independently (serially here;
the server fans shards out across its worker pool) and the per-shard
outputs are concatenated — bit-identical to the unsharded kernels
because shard boundaries never split rows and every row's value is
computed with row-local floating-point association.

Cost model: each shard pays its own kernel events plus one modeled
dispatch overhead; ``workers`` concurrent lanes execute the shards by
longest-processing-time list scheduling, and the batch is charged the
resulting **makespan**.  :func:`choose_shards` sweeps candidate shard
counts against that model, so over-sharding (dispatch overhead, lost
intra-kernel parallelism) shows up as a worse modeled time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check
from ..core.autotune import TuneResult
from ..core.format import DASPMatrix
from ..core.spmm import mma_phase_fraction, mma_utilization, spmm_events
from ..gpu.cost_model import estimate_time
from ..gpu.device import get_device
from .plan import ShardedPlan, build_sharded_plan

#: Default shard-count candidates are drawn from powers of two up to
#: twice the lane count (plus the lane count itself) — see
#: :func:`shard_candidates`.
MAX_SHARD_FACTOR = 2


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


def _as_sharded(matrix, shards, *, mma_shape=None) -> ShardedPlan:
    if isinstance(matrix, ShardedPlan):
        return matrix
    csr = matrix.csr if isinstance(matrix, DASPMatrix) else matrix
    return build_sharded_plan(csr, shards, mma_shape=mma_shape)


def dasp_spmv_sharded(matrix, x: np.ndarray, *, shards: int = 2,
                      pool=None, obs=None,
                      double_buffer: bool = False) -> np.ndarray:
    """``y = A @ x`` over row shards; bit-identical to ``dasp_spmv``.

    Parameters
    ----------
    matrix:
        A :class:`ShardedPlan` (used as-is), a :class:`DASPMatrix`, or
        a CSR matrix (partitioned on the fly into ``shards`` bands).
    pool:
        Optional executor with a ``map(fn, iterable)`` method (e.g.
        ``concurrent.futures.ThreadPoolExecutor``); shards run serially
        without one.  The gather is a concatenation either way, so the
        result does not depend on completion order.
    double_buffer:
        Marks the bands as double-buffered for accounting: the modeled
        clock (``sharded_batch_cost(double_buffer=True)``) overlaps the
        next band's packed-array stream with the current band's
        compute.  The numerics are identical either way — the flag only
        feeds the ``core.pipeline.*`` counters.
    """
    from ..core.spmv import dasp_spmv
    from ..obs import get_obs

    if obs is None:
        obs = get_obs()
    plan = _as_sharded(matrix, shards)
    x = np.asarray(x)
    check(x.shape == (plan.shape[1],),
          f"x must have shape ({plan.shape[1]},)")
    obs.counter("core.shard_spmv_calls_total").inc()
    obs.counter("core.shard_executions_total").inc(plan.n_shards)
    if double_buffer:
        obs.counter("core.pipeline.double_buffered_bands_total").inc(
            plan.n_shards)

    def run(shard):
        return dasp_spmv(shard.dasp, x, obs=obs)

    parts = list(pool.map(run, plan.shards)) if pool is not None \
        else [run(s) for s in plan.shards]
    return np.concatenate(parts) if parts else np.zeros(0)


def dasp_spmm_sharded(matrix, X: np.ndarray, *, shards: int = 2,
                      pool=None, obs=None) -> np.ndarray:
    """``Y = A @ X`` over row shards; bit-identical to ``dasp_spmm``."""
    from ..core.spmm import dasp_spmm
    from ..obs import get_obs

    if obs is None:
        obs = get_obs()
    plan = _as_sharded(matrix, shards)
    X = np.asarray(X)
    check(X.ndim == 2 and X.shape[0] == plan.shape[1],
          f"X must be ({plan.shape[1]}, k)")
    obs.counter("core.shard_spmm_calls_total").inc()
    obs.counter("core.shard_executions_total").inc(plan.n_shards)

    def run(shard):
        return dasp_spmm(shard.dasp, X, obs=obs)

    parts = list(pool.map(run, plan.shards)) if pool is not None \
        else [run(s) for s in plan.shards]
    return np.concatenate(parts, axis=0) if parts \
        else np.zeros((0, X.shape[1]))


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardCost:
    """Modeled cost of one sharded batch.

    ``per_shard`` holds each shard's seconds (kernel estimate plus one
    dispatch overhead when ``S > 1``); ``makespan`` is the LPT-schedule
    finish time over the worker lanes; ``serial`` is the sum — what a
    single lane would pay.
    """

    per_shard: tuple
    makespan: float
    serial: float
    useful_mma: float
    issued_mma: float

    @property
    def speedup(self) -> float:
        """Serial time over makespan (parallel efficiency signal)."""
        return self.serial / self.makespan if self.makespan > 0 else 1.0


def lpt_makespan(times, workers: int) -> float:
    """Finish time of longest-processing-time list scheduling on
    ``workers`` lanes — the standard 4/3-approximation bound."""
    lanes = [0.0] * max(1, int(workers))
    for t in sorted(times, reverse=True):
        i = min(range(len(lanes)), key=lanes.__getitem__)
        lanes[i] += t
    return max(lanes) if lanes else 0.0


def lpt_assign(times, workers: int) -> list:
    """LPT lane assignment: a list of per-lane index lists, in the
    order each lane executes its shards.  ``lpt_makespan`` is the max
    over lanes of the per-lane sums of the same assignment."""
    lanes = [0.0] * max(1, int(workers))
    assign = [[] for _ in lanes]
    order = sorted(range(len(times)), key=lambda i: -times[i])
    for idx in order:
        i = min(range(len(lanes)), key=lanes.__getitem__)
        lanes[i] += times[idx]
        assign[i].append(idx)
    return assign


def sharded_spmm_events(plan: ShardedPlan, device, k: int = 1) -> list:
    """Per-shard :class:`~repro.gpu.events.KernelEvents` for a k-RHS
    product."""
    device = get_device(device)
    return [spmm_events(s.dasp, device, k) for s in plan.shards]


def sharded_batch_cost(plan: ShardedPlan, device, k: int = 1, *,
                       workers: int = 1,
                       dtype_bits: int | None = None,
                       double_buffer: bool = False) -> ShardCost:
    """Modeled cost of running one k-RHS batch over *plan*'s shards.

    Each shard is charged its own cost-model time plus one
    ``device.launch_overhead_s`` dispatch overhead (the fan-out
    coordination a single-kernel launch does not pay; ``S = 1`` is the
    plain path and pays none), then the shards are LPT-scheduled on
    ``workers`` lanes.

    With ``double_buffer=True`` each lane overlaps the *next* band's
    packed-array stream (values / column ids / pointers) with the
    current band's compute under
    :func:`repro.core.overlap_schedule` — the pipeline mode's modeled
    clock; ``serial`` and ``per_shard`` still report the unoverlapped
    figures, so the makespan never exceeds the plain schedule's.
    """
    from dataclasses import replace as _replace

    device = get_device(device)
    if dtype_bits is None:
        dtype_bits = np.dtype(plan.dtype).itemsize * 8
    dispatch = device.launch_overhead_s if plan.n_shards > 1 else 0.0
    per_shard = []
    loads = []
    computes = []
    useful = 0.0
    issued = 0.0
    for shard, ev in zip(plan.shards, sharded_spmm_events(plan, device, k)):
        t = estimate_time(ev, device, dtype_bits=dtype_bits).total + dispatch
        per_shard.append(t)
        if double_buffer:
            c = estimate_time(
                _replace(ev, bytes_val=0.0, bytes_idx=0.0, bytes_ptr=0.0),
                device, dtype_bits=dtype_bits).total + dispatch
            computes.append(c)
            loads.append(max(t - c, 0.0))
        useful += mma_utilization(shard.dasp, k) * ev.flops_mma
        issued += ev.flops_mma
    if double_buffer:
        from ..core.spmm_block import overlap_schedule

        makespan = 0.0
        for lane in lpt_assign(per_shard, workers):
            if lane:
                makespan = max(makespan, overlap_schedule(
                    [loads[i] for i in lane], [computes[i] for i in lane]))
    else:
        makespan = lpt_makespan(per_shard, workers)
    return ShardCost(
        per_shard=tuple(per_shard),
        makespan=makespan,
        serial=float(sum(per_shard)),
        useful_mma=useful,
        issued_mma=issued,
    )


def sharded_phase_fraction(plan: ShardedPlan) -> float:
    """nnz-weighted regular-MMA share across shards (span attribution)."""
    nnz = plan.nnz
    if nnz <= 0:
        return 1.0
    return float(sum(mma_phase_fraction(s.dasp) * s.nnz
                     for s in plan.shards) / nnz)


def shard_candidates(workers: int, n_rows: int) -> tuple:
    """Candidate shard counts for :func:`choose_shards`: powers of two
    up to ``MAX_SHARD_FACTOR * workers``, plus ``workers`` itself,
    clamped to the row count."""
    cap = max(1, MAX_SHARD_FACTOR * int(workers))
    cands = {1, int(workers)}
    s = 2
    while s <= cap:
        cands.add(s)
        s *= 2
    return tuple(sorted(min(c, max(1, n_rows)) for c in cands))


def choose_shards(matrix, workers: int, *, device: str = "A100", k: int = 1,
                  candidates=None) -> TuneResult:
    """Sweep shard counts against the makespan model; autotuner entry.

    ``matrix`` may be a CSR matrix or a :class:`DASPMatrix` (its source
    CSR is re-partitioned per candidate).  Returns a
    :class:`~repro.core.autotune.TuneResult` with
    ``parameter="shards"`` and modeled seconds per candidate — the
    sweep builds candidate plans for *modeling only*; callers build
    (and charge) the winning plan through their normal preprocessing
    path.
    """
    check(workers >= 1, "workers must be >= 1")
    device = get_device(device)
    csr = matrix.csr if isinstance(matrix, DASPMatrix) else matrix
    if candidates is None:
        candidates = shard_candidates(workers, int(csr.shape[0]))
    times = {}
    for S in candidates:
        plan = build_sharded_plan(csr, S)
        cost = sharded_batch_cost(plan, device, k, workers=workers)
        times[int(plan.n_shards)] = cost.makespan
    best = min(times, key=times.get)
    return TuneResult("shards", best, times)
