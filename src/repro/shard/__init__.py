"""`repro.shard` — row-sharded parallel SpMV/SpMM execution.

Partitions a matrix into ``S`` contiguous, nnz-balanced row bands
(:func:`shard_csr`), builds each band its own DASP layout
(:class:`ShardedPlan`), and executes one request's shards concurrently
across the serving worker pool — gathering per-shard outputs by pure
concatenation.

Guarantees:

* **bit-determinism** — shard boundaries never split a row and every
  row's value uses row-local floating-point association, so
  :func:`dasp_spmv_sharded` / :func:`dasp_spmm_sharded` are
  byte-identical to the unsharded kernels for any ``S`` (``S = 1``
  *is* the unsharded path);
* **modeled honesty** — a sharded batch is charged the LPT-schedule
  makespan of its per-shard cost-model times plus per-shard dispatch
  overhead (:func:`sharded_batch_cost`), and :func:`choose_shards`
  picks ``S`` from that model, so over-sharding is visible, not free.
"""

from .execute import (
    ShardCost,
    choose_shards,
    dasp_spmm_sharded,
    dasp_spmv_sharded,
    lpt_assign,
    lpt_makespan,
    shard_candidates,
    sharded_batch_cost,
    sharded_phase_fraction,
    sharded_spmm_events,
)
from .plan import (
    RowShard,
    ShardedPlan,
    build_sharded_plan,
    shard_csr,
    traced_preprocess_sharded,
)

__all__ = [
    "RowShard",
    "ShardCost",
    "ShardedPlan",
    "build_sharded_plan",
    "choose_shards",
    "dasp_spmm_sharded",
    "dasp_spmv_sharded",
    "lpt_assign",
    "lpt_makespan",
    "shard_candidates",
    "shard_csr",
    "sharded_batch_cost",
    "sharded_phase_fraction",
    "sharded_spmm_events",
    "traced_preprocess_sharded",
]
