"""Row sharding — nnz-balanced contiguous row partitions of a matrix.

A :class:`ShardedPlan` splits one matrix into ``S`` contiguous row
bands, each carrying its own full DASP layout (long / medium / short
plans).  Shard boundaries never split a row, so ``y = A @ x`` over the
shards is a pure concatenation of per-shard outputs — and because every
row's value is computed with row-local floating-point association (see
``run_long_rows`` / ``run_medium_rows``), the gathered result is
**bit-identical** to the unsharded kernel for any ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check
from ..core.classify import DEFAULT_MAX_LEN
from ..core.format import DASPMatrix
from ..core.medium_rows import DEFAULT_THRESHOLD


def shard_csr(csr, shards: int) -> np.ndarray:
    """Return ``row_starts`` (length ``S + 1``) of an nnz-balanced
    contiguous row partition of *csr*.

    Cut points are placed where the cumulative nonzero count crosses
    ``i * nnz / S`` (binary search on ``indptr``), then nudged so every
    shard holds at least one row — boundaries always fall *between*
    rows, never inside one.  ``shards`` is clamped to the row count.
    """
    check(shards >= 1, "shards must be >= 1")
    m = int(csr.shape[0])
    S = max(1, min(int(shards), m)) if m else 1
    if S == 1:
        return np.array([0, m], dtype=np.int64)
    nnz = int(csr.indptr[-1])
    targets = np.arange(1, S, dtype=np.float64) * (nnz / S)
    cuts = np.searchsorted(csr.indptr, targets).astype(np.int64)
    # Enforce strictly increasing cuts inside (0, m): every shard gets
    # at least one row even when the nnz mass is concentrated.
    for i in range(S - 1):
        lo = (cuts[i - 1] if i else 0) + 1
        hi = m - (S - 1 - i)
        cuts[i] = min(max(int(cuts[i]), lo), hi)
    return np.concatenate(([0], cuts, [m])).astype(np.int64)


@dataclass
class RowShard:
    """One contiguous row band of a :class:`ShardedPlan`."""

    index: int
    row_start: int
    row_end: int
    dasp: DASPMatrix

    @property
    def n_rows(self) -> int:
        return self.row_end - self.row_start

    @property
    def nnz(self) -> int:
        return self.dasp.nnz


@dataclass
class ShardedPlan:
    """A matrix partitioned into row shards, each with its own DASP plan.

    Duck-types the :class:`DASPMatrix` attributes the serving layer
    reads (``shape`` / ``dtype`` / ``csr`` / ``mma_shape``), so it can
    live in the :class:`~repro.serve.plan_cache.PlanRegistry` as a
    composite entry.
    """

    shape: tuple[int, int]
    dtype: np.dtype
    csr: object
    mma_shape: object
    row_starts: np.ndarray
    shards: list

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def nnz(self) -> int:
        return sum(s.nnz for s in self.shards)

    def summary(self) -> str:
        sizes = ", ".join(f"{s.n_rows}r/{s.nnz}nnz" for s in self.shards)
        return (f"ShardedPlan {self.shape[0]}x{self.shape[1]} "
                f"S={self.n_shards} [{sizes}]")

    # ------------------------------------------------------------------
    # serialization inventory (repro.store)
    # ------------------------------------------------------------------
    def array_inventory(self, *, include_csr: bool = False) -> dict:
        """Ordered ``name -> ndarray`` inventory over every shard.

        Shard ``i``'s arrays are prefixed ``s{i}.``; with
        ``include_csr=True`` the ``row_starts`` partition and each
        band's sub-CSR join the inventory.  The *top-level* CSR is
        deliberately absent even then: band boundaries never split a
        row, so concatenating the band CSRs reproduces it bitwise —
        storing it too would double the artifact's CSR payload.  The
        default covers only the device-resident packed arrays,
        matching :func:`repro.serve.plan_nbytes` on composites.
        """
        inv: dict = {}
        if include_csr:
            inv["row_starts"] = np.asarray(self.row_starts)
        for i, s in enumerate(self.shards):
            sub = s.dasp.array_inventory(include_csr=include_csr)
            for name, arr in sub.items():
                inv[f"s{i}.{name}"] = arr
        return inv

    def to_arrays(self) -> tuple[dict, dict]:
        """``(meta, arrays)`` pair fully describing this composite plan
        (see :meth:`repro.core.DASPMatrix.to_arrays`)."""
        meta = {
            "kind": "sharded",
            "shape": [int(self.shape[0]), int(self.shape[1])],
            "dtype": np.dtype(self.dtype).name,
            "shards": [{"row_start": int(s.row_start),
                        "row_end": int(s.row_end),
                        "dasp": s.dasp.to_arrays()[0]}
                       for s in self.shards],
        }
        return meta, self.array_inventory(include_csr=True)

    @classmethod
    def from_arrays(cls, meta: dict, arrays: dict) -> "ShardedPlan":
        """Rebuild a composite plan from a :meth:`to_arrays` pair.

        The top-level CSR is regenerated by concatenating the band
        CSRs (bitwise-identical to the original: bands are contiguous
        row slices, so values and column indices line up exactly and
        the pointer array is the shifted concatenation).
        """
        from ..formats.csr import CSRMatrix

        shape = (int(meta["shape"][0]), int(meta["shape"][1]))
        bands = []
        for i, sm in enumerate(meta["shards"]):
            prefix = f"s{i}."
            sub = {name[len(prefix):]: arr for name, arr in arrays.items()
                   if name.startswith(prefix)}
            dasp = DASPMatrix.from_arrays(sm["dasp"], sub)
            bands.append(RowShard(index=i, row_start=int(sm["row_start"]),
                                  row_end=int(sm["row_end"]), dasp=dasp))
        sub_csrs = [b.dasp.csr for b in bands]
        offsets = np.concatenate(
            ([0], np.cumsum([c.indptr[-1] for c in sub_csrs])))
        indptr = np.concatenate(
            [np.asarray(c.indptr[:-1]) + off
             for c, off in zip(sub_csrs, offsets[:-1])]
            + [offsets[-1:]]).astype(np.int64)
        csr = CSRMatrix(
            shape, indptr,
            np.concatenate([np.asarray(c.indices) for c in sub_csrs]),
            np.concatenate([np.asarray(c.data) for c in sub_csrs]))
        return cls(
            shape=shape,
            dtype=np.dtype(meta["dtype"]),
            csr=csr,
            mma_shape=bands[0].dasp.mma_shape if bands else None,
            row_starts=np.asarray(arrays["row_starts"]),
            shards=bands,
        )


def build_sharded_plan(csr, shards: int, *, max_len: int = DEFAULT_MAX_LEN,
                       threshold: float = DEFAULT_THRESHOLD,
                       mma_shape=None) -> ShardedPlan:
    """Partition *csr* into ``shards`` row bands and build each band's
    DASP layout."""
    row_starts = shard_csr(csr, shards)
    bands = []
    for i in range(row_starts.size - 1):
        a, b = int(row_starts[i]), int(row_starts[i + 1])
        sub = csr.row_slice(np.arange(a, b, dtype=np.int64))
        dasp = DASPMatrix.from_csr(sub, max_len=max_len, threshold=threshold,
                                   mma_shape=mma_shape)
        bands.append(RowShard(index=i, row_start=a, row_end=b, dasp=dasp))
    return ShardedPlan(
        shape=tuple(csr.shape),
        dtype=np.dtype(csr.data.dtype),
        csr=csr,
        mma_shape=bands[0].dasp.mma_shape if bands else mma_shape,
        row_starts=row_starts,
        shards=bands,
    )


def traced_preprocess_sharded(csr, device, shards: int, *, obs,
                              injector=None, fingerprint: str | None = None,
                              max_len: int = DEFAULT_MAX_LEN,
                              threshold: float = DEFAULT_THRESHOLD,
                              ) -> tuple[ShardedPlan, float]:
    """Build a :class:`ShardedPlan` charging per-shard preprocessing.

    Each band is built through :func:`repro.core.preprocess.
    traced_preprocess` under a shard-scoped fingerprint
    (``{fp}#s{i}``), so preprocess fault rules can target individual
    shards; the returned cost is the sum over bands (preprocessing is
    a host-side pass and does not parallelize across the worker pool).
    """
    from ..core.preprocess import traced_preprocess

    row_starts = shard_csr(csr, shards)
    bands = []
    pre_total = 0.0
    for i in range(row_starts.size - 1):
        a, b = int(row_starts[i]), int(row_starts[i + 1])
        sub = csr.row_slice(np.arange(a, b, dtype=np.int64))
        sub_fp = f"{fingerprint}#s{i}" if fingerprint is not None else None
        dasp, pre = traced_preprocess(sub, device, obs=obs, injector=injector,
                                      fingerprint=sub_fp, max_len=max_len,
                                      threshold=threshold)
        pre_total += pre
        bands.append(RowShard(index=i, row_start=a, row_end=b, dasp=dasp))
    plan = ShardedPlan(
        shape=tuple(csr.shape),
        dtype=np.dtype(csr.data.dtype),
        csr=csr,
        mma_shape=bands[0].dasp.mma_shape if bands else None,
        row_starts=row_starts,
        shards=bands,
    )
    return plan, pre_total
