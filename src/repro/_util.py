"""Shared low-level helpers used across the :mod:`repro` package.

Everything in here is intentionally tiny and dependency-free (NumPy only):
argument validation, index-dtype normalization, and a couple of numeric
helpers (geometric mean, prefix sums) that several subsystems share.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Index dtype used for column indices throughout the package.  GPUs use
#: 32-bit indices for bandwidth reasons; we mirror that so byte accounting
#: in the cost model matches the paper's data structures.
INDEX_DTYPE = np.int32

#: Pointer dtype (row pointers, group pointers).  ``int64`` so that huge
#: synthetic matrices never overflow offsets.
PTR_DTYPE = np.int64

#: Floating dtypes accepted for matrix values.
VALUE_DTYPES = (np.float16, np.float32, np.float64)


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ValidationError(ReproError):
    """A matrix/data-structure failed an internal consistency check."""


def check(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with *message* unless *condition*."""
    if not condition:
        raise ValidationError(message)


def as_value_array(values, dtype=None) -> np.ndarray:
    """Return *values* as a contiguous 1-D floating array.

    ``dtype=None`` keeps an existing floating dtype and promotes anything
    else to ``float64``.
    """
    arr = np.ascontiguousarray(values)
    if dtype is not None:
        return arr.astype(dtype, copy=False).reshape(-1)
    if arr.dtype not in VALUE_DTYPES:
        arr = arr.astype(np.float64)
    return arr.reshape(-1)


def as_index_array(indices, *, name: str = "indices") -> np.ndarray:
    """Return *indices* as a contiguous 1-D :data:`INDEX_DTYPE` array."""
    arr = np.ascontiguousarray(indices)
    if arr.dtype.kind not in "iu":
        check(
            arr.size == 0 or np.all(arr == np.floor(arr)),
            f"{name} must be integral",
        )
    return arr.astype(INDEX_DTYPE, copy=False).reshape(-1)


def as_ptr_array(ptr, *, name: str = "indptr") -> np.ndarray:
    """Return *ptr* as a contiguous 1-D :data:`PTR_DTYPE` array."""
    arr = np.ascontiguousarray(ptr).astype(PTR_DTYPE, copy=False).reshape(-1)
    check(arr.size >= 1, f"{name} must have at least one entry")
    return arr


def validate_shape(shape) -> tuple[int, int]:
    """Normalize and validate a 2-tuple matrix shape."""
    check(len(shape) == 2, "shape must be a pair (rows, cols)")
    m, n = int(shape[0]), int(shape[1])
    check(m >= 0 and n >= 0, "shape entries must be non-negative")
    return m, n


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper's averaging choice).

    Returns ``nan`` for an empty input and raises for non-positive values
    (a speedup of zero would make the geomean meaningless).
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    check(bool(np.all(arr > 0)), "geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def lengths_to_ptr(lengths: Sequence[int]) -> np.ndarray:
    """Exclusive prefix sum turning per-row lengths into a pointer array."""
    lengths = np.asarray(lengths, dtype=PTR_DTYPE)
    ptr = np.zeros(lengths.size + 1, dtype=PTR_DTYPE)
    np.cumsum(lengths, out=ptr[1:])
    return ptr


def ptr_to_lengths(ptr: np.ndarray) -> np.ndarray:
    """Inverse of :func:`lengths_to_ptr`."""
    ptr = np.asarray(ptr)
    return np.diff(ptr)


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative operands."""
    check(b > 0, "ceil_div divisor must be positive")
    return -(-int(a) // int(b))


def round_up(a: int, multiple: int) -> int:
    """Round *a* up to the nearest multiple of *multiple*."""
    return ceil_div(a, multiple) * multiple


def default_rng(seed) -> np.random.Generator:
    """Normalize ``seed`` (int, Generator or None) into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
