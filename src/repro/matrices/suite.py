"""The 21 representative matrices (paper Table 2), scaled to laptop size.

Each entry names a SuiteSparse matrix tested in the paper and builds a
synthetic stand-in from the generator family that matches its structure.
Dimensions are scaled down ~10-30x (documented per matrix as
``paper_size`` / ``paper_nnz``), preserving the row-length profile that
determines DASP category assignment and relative method performance.

``highlight_suite`` adds the matrices the paper cites for its best
speedups (rel19, kron_g500-logn20, mycielskian18, lp_osa_60, wiki-Talk,
bibd_20_10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..formats import CSRMatrix
from . import generators as g


@dataclass(frozen=True)
class SuiteEntry:
    """One named matrix of the representative suite."""

    name: str
    family: str
    paper_shape: tuple[int, int]
    paper_nnz: int
    build: Callable[[], CSRMatrix]
    note: str = ""

    def matrix(self) -> CSRMatrix:
        """Generate the scaled stand-in matrix (deterministic)."""
        return self.build()


def _entries() -> list[SuiteEntry]:
    E = SuiteEntry
    return [
        E("pwtk", "fem_blocked", (217918, 217918), 11524432,
          lambda: g.fem_blocked(12000, 53, block=3, seed=101),
          "wind tunnel stiffness; medium rows, strong 3x3 blocks"),
        E("FullChip", "circuit", (2987012, 2987012), 26621983,
          lambda: g.circuit(30000, 8.9, n_dense_rows=4, dense_frac=0.25, seed=102),
          "power grid: short rows + few enormous net rows"),
        E("mip1", "dense_row_block", (66463, 66463), 10352819,
          lambda: g.dense_row_block(6000, dense_rows=60, dense_len=4000,
                                    base_len=120, seed=103),
          "MIP with dense coupling rows; medium/long mix"),
        E("mc2depi", "grid2d", (525825, 525825), 2100225,
          lambda: g.grid2d(200, 200, drop=0.02, seed=104, diagonal=False),
          "epidemiology 2-D grid: every row short (len <= 5)"),
        E("webbase-1M", "power_law", (1000005, 1000005), 3105536,
          lambda: g.power_law(50000, 3.1, alpha=1.6, seed=105, locality=0.3),
          "web crawl; mostly tiny rows, heavy tail"),
        E("circuit5M", "circuit", (5558326, 5558326), 59524291,
          lambda: g.circuit(50000, 10.7, n_dense_rows=6, dense_frac=0.2, seed=106),
          "large circuit; short + huge rows"),
        E("Si41Ge41H72", "quantum_chem", (185639, 185639), 15011265,
          lambda: g.quantum_chem(9000, 81, tail=0.95, seed=107),
          "electronic structure; medium rows with long tail"),
        E("Ga41As41H72", "quantum_chem", (268096, 268096), 18488476,
          lambda: g.quantum_chem(10000, 69, tail=1.05, seed=108),
          "electronic structure; longer tail than Si41Ge41H72"),
        E("in-2004", "power_law", (1382908, 1382908), 16917053,
          lambda: g.power_law(30000, 12.2, alpha=1.7, seed=109, locality=0.6),
          "web graph with host-local blocks"),
        E("eu-2005", "power_law", (862664, 862664), 19235140,
          lambda: g.power_law(25000, 22.3, alpha=1.8, seed=110, locality=0.6),
          "denser web graph"),
        E("shipsec1", "fem_blocked", (140874, 140874), 7813404,
          lambda: g.fem_blocked(10000, 55, block=3, seed=111),
          "ship section FEM"),
        E("mac_econ_fwd500", "uniform_random", (206500, 206500), 1273389,
          lambda: g.uniform_random(20000, 20000, 6.2, seed=112),
          "economic model; short scattered rows"),
        E("scircuit", "circuit", (170998, 170998), 958936,
          lambda: g.circuit(17000, 5.6, n_dense_rows=2, dense_frac=0.02, seed=113),
          "circuit with moderate outliers"),
        E("pdb1HYS", "fem_blocked", (36417, 36417), 4344765,
          lambda: g.fem_blocked(4000, 119, block=3, seed=114),
          "protein; long-ish medium rows, blocked"),
        E("consph", "fem_blocked", (83334, 83334), 6010480,
          lambda: g.fem_blocked(6000, 72, block=3, seed=115),
          "concentric spheres FEM"),
        E("cant", "fem_blocked", (62451, 62451), 4007383,
          lambda: g.fem_blocked(6200, 64, block=3, seed=116),
          "cantilever FEM"),
        E("cop20k_A", "fem_blocked", (121192, 121192), 2624331,
          lambda: g.fem_blocked(12000, 26, block=3, seed=117, empty_rows=2100),
          "accelerator cavity; medium rows + many empty rows"),
        E("dc2", "circuit", (116835, 116835), 766396,
          lambda: g.circuit(25000, 6.0, n_dense_rows=3, dense_frac=0.35, seed=118),
          "circuit with a few rows holding most nonzeros"),
        E("rma10", "fem_blocked", (46835, 46835), 2329092,
          lambda: g.fem_blocked(4700, 50, block=3, seed=119),
          "3-D CFD"),
        E("conf5_4-8x8-10", "qcd_regular", (49152, 49152), 1916928,
          lambda: g.qcd_regular(4900, 39, seed=120),
          "lattice QCD; perfectly regular 39-nnz rows"),
        E("ASIC_680k", "circuit", (682862, 682862), 3871773,
          lambda: g.circuit(34000, 5.6, n_dense_rows=4, dense_frac=0.5, seed=121),
          "ASIC netlist; short rows + near-dense rows"),
    ]


def representative_suite() -> list[SuiteEntry]:
    """The 21 representative matrices of Table 2 (scaled stand-ins)."""
    return _entries()


def highlight_suite() -> list[SuiteEntry]:
    """The best-speedup matrices cited in Section 4.2."""
    E = SuiteEntry
    return [
        E("rel19", "rect_short_rows", (9746232, 274667), 38355420,
          lambda: g.rect_short_rows(60000, 12000, max_len=3, seed=201),
          "all rows short; DASP's best case vs CSR5"),
        E("kron_g500-logn20", "kronecker", (1048576, 1048576), 89239674,
          lambda: g.kronecker(15, 10, seed=202),
          "no block structure at all; TileSpMV's worst case"),
        E("mycielskian18", "power_law", (196607, 196607), 300933832,
          lambda: g.power_law(12000, 180, alpha=1.4, seed=203, max_deg=9000),
          "extremely dense skewed rows; LSRB's worst case"),
        E("lp_osa_60", "lp_matrix", (10280, 243246), 1408073,
          lambda: g.lp_matrix(4000, 90000, 137, seed=204),
          "scattered wide rows; cuSPARSE-BSR fill-in disaster"),
        E("wiki-Talk", "power_law", (2394385, 2394385), 5021410,
          lambda: g.power_law(60000, 2.1, alpha=1.25, seed=205),
          "few rows hold most nonzeros; long-rows strategy case"),
        E("bibd_20_10", "rect_long_rows", (190, 184756), 8314020,
          lambda: g.rect_long_rows(190, 30000, 7200, seed=206),
          "every row a long row; FP16 best case"),
    ]


def suite_by_name(name: str) -> SuiteEntry:
    """Look up any suite/highlight entry by its SuiteSparse name."""
    for entry in _entries() + highlight_suite():
        if entry.name == name:
            return entry
    raise KeyError(f"no suite matrix named {name!r}")
