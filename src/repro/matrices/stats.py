"""Row-length and structure statistics.

Feeds Figure 12 (category ratios) and the cost model's imbalance and
blockiness inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check

#: The paper's medium/long boundary (Section 3.2).
DEFAULT_MAX_LEN = 256
#: The paper's short/medium boundary.
SHORT_LEN = 4


@dataclass(frozen=True)
class RowLengthStats:
    """Summary of the row-length distribution of a matrix."""

    rows: int
    nnz: int
    min_len: int
    max_len: int
    mean_len: float
    std_len: float
    empty_rows: int
    gini: float

    @property
    def imbalance_hint(self) -> float:
        """max/mean row length — a quick skew indicator."""
        return self.max_len / max(self.mean_len, 1e-12)


def row_length_stats(csr) -> RowLengthStats:
    """Compute :class:`RowLengthStats` for a CSR matrix."""
    lens = csr.row_lengths().astype(np.float64)
    if lens.size == 0:
        return RowLengthStats(0, 0, 0, 0, 0.0, 0.0, 0, 0.0)
    return RowLengthStats(
        rows=int(lens.size),
        nnz=int(lens.sum()),
        min_len=int(lens.min()),
        max_len=int(lens.max()),
        mean_len=float(lens.mean()),
        std_len=float(lens.std()),
        empty_rows=int(np.count_nonzero(lens == 0)),
        gini=gini_coefficient(lens),
    )


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution (0 = uniform)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0 or v.sum() == 0:
        return 0.0
    n = v.size
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


@dataclass(frozen=True)
class CategoryRatios:
    """Figure 12's quantities: row and nonzero shares per DASP category."""

    row_long: float
    row_medium: float
    row_short: float
    row_empty: float
    nnz_long: float
    nnz_medium: float
    nnz_short: float

    def row_shares(self) -> dict[str, float]:
        return {
            "long": self.row_long,
            "medium": self.row_medium,
            "short": self.row_short,
            "empty": self.row_empty,
        }

    def nnz_shares(self) -> dict[str, float]:
        return {
            "long": self.nnz_long,
            "medium": self.nnz_medium,
            "short": self.nnz_short,
        }


def category_ratios(csr, *, max_len: int = DEFAULT_MAX_LEN,
                    short_len: int = SHORT_LEN) -> CategoryRatios:
    """Share of rows and nonzeros in each DASP row category (Figure 12)."""
    lens = csr.row_lengths()
    rows = max(int(lens.size), 1)
    nnz = max(int(lens.sum()), 1)
    is_long = lens > max_len
    is_short = (lens >= 1) & (lens <= short_len)
    is_empty = lens == 0
    is_medium = ~(is_long | is_short | is_empty)
    return CategoryRatios(
        row_long=float(is_long.sum() / rows),
        row_medium=float(is_medium.sum() / rows),
        row_short=float(is_short.sum() / rows),
        row_empty=float(is_empty.sum() / rows),
        nnz_long=float(lens[is_long].sum() / nnz),
        nnz_medium=float(lens[is_medium].sum() / nnz),
        nnz_short=float(lens[is_short].sum() / nnz),
    )


def warp_imbalance(csr, *, rows_per_warp: int = 32) -> float:
    """Makespan ratio of one-thread-per-row scheduling (CSR-scalar).

    Each warp of 32 consecutive rows takes time proportional to its
    longest row; the ratio of that makespan to perfectly balanced work is
    the imbalance multiplier the cost model applies.
    """
    lens = csr.row_lengths().astype(np.float64)
    if lens.size == 0 or lens.sum() == 0:
        return 1.0
    pad = (-lens.size) % rows_per_warp
    padded = np.concatenate([lens, np.zeros(pad)])
    per_warp_max = padded.reshape(-1, rows_per_warp).max(axis=1)
    work = per_warp_max.sum() * rows_per_warp
    return float(max(work / lens.sum(), 1.0))


def blockiness(csr, *, block_rows: int = 8, block_cols: int = 4,
               threshold: float = 0.75) -> float:
    """Fraction of nonzeros living in dense aligned tiles.

    A tile is "dense" when its occupancy is at least ``threshold``.  High
    blockiness predicts that BSR/TileSpMV-style formats will do well; the
    kron/wiki-Talk style matrices score near zero.
    """
    if csr.nnz == 0:
        return 0.0
    rows = np.repeat(np.arange(csr.shape[0], dtype=np.int64), csr.row_lengths())
    brow = rows // block_rows
    bcol = csr.indices.astype(np.int64) // block_cols
    nb_cols = csr.shape[1] // block_cols + 1
    keys = brow * nb_cols + bcol
    _, counts = np.unique(keys, return_counts=True)
    dense_nnz = counts[counts >= threshold * block_rows * block_cols].sum()
    return float(dense_nnz / csr.nnz)


def column_locality(csr, *, window: int = 4) -> float:
    """Fraction of intra-row column gaps no wider than ``window``.

    High locality means x gathers hit the same DRAM sector repeatedly;
    the memory model rewards it.
    """
    if csr.nnz < 2:
        return 1.0
    sorted_csr = csr if csr.has_sorted_indices() else csr.sort_indices()
    idx = sorted_csr.indices.astype(np.int64)
    gaps = np.diff(idx)
    boundary = np.zeros(idx.size - 1, dtype=bool)
    starts = sorted_csr.indptr[1:-1]
    ok = (starts > 0) & (starts < idx.size)
    boundary[starts[ok] - 1] = True
    inner = ~boundary
    if not inner.any():
        return 1.0
    return float(np.mean(np.abs(gaps[inner]) <= window))
