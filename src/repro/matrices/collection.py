"""A synthetic stand-in for the SuiteSparse Matrix Collection.

The paper evaluates on all 2893 SuiteSparse matrices; offline we generate
a deterministic, diverse collection (default 160 matrices) spanning the
same structural families with log-uniform sizes.  Scatter-style figures
(1, 9, 10, 13) run over this collection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from .._util import default_rng
from ..formats import CSRMatrix
from . import generators as g


@dataclass(frozen=True)
class CollectionEntry:
    """One synthetic collection matrix (lazily built)."""

    name: str
    family: str
    build: Callable[[], CSRMatrix]

    def matrix(self) -> CSRMatrix:
        return self.build()


#: family -> (weight, factory(rng, target_nnz) -> CSRMatrix)
def _make_fem(rng, nnz):
    mean_len = float(rng.uniform(20, 120))
    m = max(64, int(nnz / mean_len))
    return g.fem_blocked(m, mean_len, block=int(rng.choice([1, 2, 3, 6])),
                         seed=rng.integers(1 << 31))


def _make_banded(rng, nnz):
    half_bw = int(rng.uniform(2, 40))
    fill = float(rng.uniform(0.3, 0.9))
    m = max(64, int(nnz / max((2 * half_bw + 1) * fill, 1)))
    return g.banded(m, half_bw, fill=fill, seed=rng.integers(1 << 31))


def _make_power_law(rng, nnz):
    avg = float(rng.uniform(2, 30))
    m = max(64, int(nnz / avg))
    return g.power_law(m, avg, alpha=float(rng.uniform(1.2, 2.4)),
                       seed=rng.integers(1 << 31),
                       locality=float(rng.uniform(0, 0.7)))


def _make_circuit(rng, nnz):
    avg = float(rng.uniform(3, 9))
    m = max(256, int(nnz / avg))
    return g.circuit(m, avg, n_dense_rows=int(rng.integers(0, 5)),
                     dense_frac=float(rng.uniform(0.02, 0.4)),
                     seed=rng.integers(1 << 31))


def _make_grid(rng, nnz):
    side = max(8, int(np.sqrt(nnz / 4.8)))
    return g.grid2d(side, side, drop=float(rng.uniform(0, 0.1)),
                    seed=rng.integers(1 << 31))


def _make_quantum(rng, nnz):
    mean_len = float(rng.uniform(50, 200))
    m = max(64, int(nnz / mean_len))
    return g.quantum_chem(m, mean_len, tail=float(rng.uniform(0.3, 0.7)),
                          seed=rng.integers(1 << 31))


def _make_uniform(rng, nnz):
    avg = float(rng.uniform(2, 40))
    m = max(64, int(nnz / avg))
    return g.uniform_random(m, m, avg, seed=rng.integers(1 << 31))


def _make_rect(rng, nnz):
    if rng.random() < 0.5:
        m = int(rng.uniform(50, 400))
        row_len = max(8, int(nnz / m))
        return g.rect_long_rows(m, max(row_len * 3, 256), row_len,
                                seed=rng.integers(1 << 31))
    m = max(256, int(nnz / 2))
    return g.rect_short_rows(m, max(m // 4, 64), seed=rng.integers(1 << 31))


def _make_lp(rng, nnz):
    mean_len = float(rng.uniform(40, 200))
    m = max(64, int(nnz / mean_len))
    return g.lp_matrix(m, int(m * rng.uniform(2, 20)), mean_len,
                       seed=rng.integers(1 << 31))


def _make_qcd(rng, nnz):
    row_len = int(rng.uniform(24, 64))
    m = max(64, int(nnz / row_len))
    return g.qcd_regular(m, row_len, seed=rng.integers(1 << 31))


_FAMILIES: list[tuple[str, float, Callable]] = [
    ("fem", 0.26, _make_fem),
    ("banded", 0.08, _make_banded),
    ("power_law", 0.16, _make_power_law),
    ("circuit", 0.14, _make_circuit),
    ("grid", 0.08, _make_grid),
    ("quantum", 0.06, _make_quantum),
    ("uniform", 0.10, _make_uniform),
    ("rect", 0.05, _make_rect),
    ("lp", 0.04, _make_lp),
    ("qcd", 0.03, _make_qcd),
]


def synthetic_collection(count: int = 160, *, seed: int = 2023,
                         min_nnz: int = 2_000,
                         max_nnz: int = 400_000) -> list[CollectionEntry]:
    """Build the deterministic synthetic collection.

    Sizes are log-uniform in ``[min_nnz, max_nnz]``; family proportions
    roughly follow SuiteSparse's domain mix.  Entries are lazy: the matrix
    is generated when :meth:`CollectionEntry.matrix` is called.
    """
    rng = default_rng(seed)
    names: list[CollectionEntry] = []
    fams = [f for f, _, _ in _FAMILIES]
    weights = np.array([w for _, w, _ in _FAMILIES])
    weights = weights / weights.sum()
    makers = {f: mk for f, _, mk in _FAMILIES}
    counters = {f: 0 for f in fams}
    for i in range(count):
        fam = str(rng.choice(fams, p=weights))
        target_nnz = int(np.exp(rng.uniform(np.log(min_nnz), np.log(max_nnz))))
        counters[fam] += 1
        name = f"{fam}_{counters[fam]:04d}"
        # Freeze the per-entry RNG state so entries are independent and
        # reproducible regardless of build order.
        sub_seed = int(rng.integers(1 << 31))
        maker = makers[fam]
        names.append(
            CollectionEntry(
                name=name,
                family=fam,
                build=(lambda mk=maker, s=sub_seed, t=target_nnz:
                       mk(default_rng(s), t)),
            )
        )
    return names


def iter_matrices(entries) -> Iterator[tuple[str, CSRMatrix]]:
    """Yield ``(name, matrix)`` pairs from suite/collection entries."""
    for entry in entries:
        yield entry.name, entry.matrix()
