"""Synthetic sparse-matrix generators.

The paper evaluates on the SuiteSparse Matrix Collection, which is not
available offline.  These generators reproduce the *structural families*
that drive SpMV performance differences — row-length distribution, column
locality, block structure — at laptop scale:

==============  ====================================================
family          SuiteSparse archetypes
==============  ====================================================
fem_blocked     pwtk, cant, consph, shipsec1, pdb1HYS, rma10
power_law       webbase-1M, wiki-Talk, in-2004, eu-2005
kronecker       kron_g500-logn20
circuit         FullChip, circuit5M, dc2, scircuit, ASIC_680k
grid2d          mc2depi (epidemiology grid)
quantum_chem    Si41Ge41H72, Ga41As41H72, mip1
qcd_regular     conf5_4-8x8-10
rect_long_rows  bibd_20_10
rect_short_rows rel19
lp_matrix       lp_osa_60
uniform_random  generic filler
banded          narrow-band PDE matrices
==============  ====================================================

All generators are deterministic given ``seed`` and return
:class:`repro.formats.CSRMatrix` with float64 values in roughly unit
range (so FP16 casts neither overflow nor flush to zero).
"""

from __future__ import annotations

import numpy as np

from .._util import check, default_rng
from ..formats import COOMatrix, CSRMatrix


def _finish(m: int, n: int, rows, cols, rng, *, values=None) -> CSRMatrix:
    """Clip, deduplicate, attach values and convert to CSR."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    keep = (rows >= 0) & (rows < m) & (cols >= 0) & (cols < n)
    rows, cols = rows[keep], cols[keep]
    # Deduplicate (row, col) pairs, keeping the first occurrence.
    keys = rows * n + cols
    _, first = np.unique(keys, return_index=True)
    rows, cols = rows[first], cols[first]
    if values is None:
        values = rng.uniform(0.1, 1.0, size=rows.size) * rng.choice([-1.0, 1.0], size=rows.size)
    else:
        values = np.asarray(values)[first] if np.asarray(values).size == keys.size else values
    return COOMatrix((m, n), rows, cols, values).to_csr(sum_duplicates=False)


def _lengths_to_pairs(lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-row lengths into (row_of_entry, slot_in_row) arrays."""
    lengths = lengths.astype(np.int64)
    rows = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
    starts = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    slots = np.arange(rows.size, dtype=np.int64) - starts[rows]
    return rows, slots


# ----------------------------------------------------------------------
# Finite-element style matrices (medium rows, strong block structure)
# ----------------------------------------------------------------------


def fem_blocked(m: int, mean_len: float, *, block: int = 3, seed=0,
                n: int | None = None, empty_rows: int = 0) -> CSRMatrix:
    """FEM-style matrix: clustered rows of similar length near the diagonal.

    Rows come in ``block``-sized groups (degrees of freedom per mesh node)
    and connect to a window of neighbouring node blocks, giving the dense
    8x4-tileable structure that makes matrices like 'cant' and 'pwtk'
    friendly to blocked formats.  ``empty_rows`` rows with no nonzeros are
    interleaved (cop20k_A famously has 21349 of them).
    """
    rng = default_rng(seed)
    n = m if n is None else n
    check(mean_len >= 1, "mean_len must be >= 1")
    lengths = np.clip(
        rng.normal(mean_len, mean_len * 0.18, size=m), 4, mean_len * 2.5
    ).astype(np.int64)
    if empty_rows:
        empty = rng.choice(m, size=min(empty_rows, m), replace=False)
        lengths[empty] = 0
    rows, slots = _lengths_to_pairs(lengths)
    # Each row's entries come in runs of `block` consecutive columns at
    # node-block granularity, centred on the row's own node.
    window = max(2, int(mean_len * 1.2 / block))
    node_of_row = rows // block
    run = slots // block
    jitter = rng.integers(-window, window + 1, size=rows.size)
    target_node = node_of_row + ((run - run.max() // 2) + jitter) // 2
    cols = target_node * block + (slots % block)
    return _finish(m, n, rows, cols, rng)


def qcd_regular(m: int, row_len: int = 39, *, seed=0) -> CSRMatrix:
    """Perfectly regular stencil rows (conf5_4-8x8-10 style lattice QCD)."""
    rng = default_rng(seed)
    lengths = np.full(m, row_len, dtype=np.int64)
    rows, slots = _lengths_to_pairs(lengths)
    # Fixed per-slot offsets shared by all rows (a structured stencil).
    offsets = np.sort(default_rng(7).choice(np.arange(-6 * row_len, 6 * row_len), size=row_len, replace=False))
    cols = (rows + offsets[slots]) % m
    return _finish(m, m, rows, cols, rng)


def banded(m: int, half_bandwidth: int, *, fill: float = 0.6, seed=0) -> CSRMatrix:
    """Classic banded matrix with the given half bandwidth and fill."""
    rng = default_rng(seed)
    band = 2 * half_bandwidth + 1
    lengths = np.maximum(1, rng.binomial(band, fill, size=m)).astype(np.int64)
    rows, slots = _lengths_to_pairs(lengths)
    offs = rng.integers(-half_bandwidth, half_bandwidth + 1, size=rows.size)
    return _finish(m, m, rows, rows + offs, rng)


# ----------------------------------------------------------------------
# Graphs (power-law row lengths — the imbalance stress cases)
# ----------------------------------------------------------------------


def power_law(m: int, avg_deg: float, *, alpha: float = 1.8, seed=0,
              n: int | None = None, max_deg: int | None = None,
              locality: float = 0.0) -> CSRMatrix:
    """Scale-free graph adjacency: few huge rows, many tiny ones.

    ``alpha`` controls the tail weight (smaller = heavier).  ``locality``
    in [0, 1] blends uniformly random targets with near-diagonal targets,
    modelling the host-grouped ordering of web crawls like in-2004.
    """
    rng = default_rng(seed)
    n = m if n is None else n
    if max_deg is None:
        max_deg = max(4, m // 3)
    raw = rng.pareto(alpha, size=m) + 0.2
    lengths = np.clip(raw * avg_deg / max(np.mean(raw), 1e-9), 1, max_deg).astype(np.int64)
    rows, _ = _lengths_to_pairs(lengths)
    # Column popularity is itself power-law distributed.
    u = rng.random(rows.size)
    popular = (n * u ** 2.5).astype(np.int64)
    local = rows + rng.integers(-64, 65, size=rows.size)
    use_local = rng.random(rows.size) < locality
    cols = np.where(use_local, local, popular)
    return _finish(m, n, rows, cols, rng)


def kronecker(scale: int, edge_factor: int = 12, *, seed=0,
              probs=(0.57, 0.19, 0.19, 0.05)) -> CSRMatrix:
    """Stochastic Kronecker (R-MAT) graph — kron_g500-logn20 style.

    ``2**scale`` vertices, ``edge_factor`` edges per vertex, Graph500
    default quadrant probabilities.
    """
    rng = default_rng(seed)
    nverts = 1 << scale
    nedges = nverts * edge_factor
    a, b, c, _ = probs
    rows = np.zeros(nedges, dtype=np.int64)
    cols = np.zeros(nedges, dtype=np.int64)
    for _level in range(scale):
        rows <<= 1
        cols <<= 1
        u = rng.random(nedges)
        right = (u >= a) & (u < a + b)
        down = (u >= a + b) & (u < a + b + c)
        both = u >= a + b + c
        cols += (right | both).astype(np.int64)
        rows += (down | both).astype(np.int64)
    return _finish(nverts, nverts, rows, cols, rng)


# ----------------------------------------------------------------------
# Circuits (mostly very short rows + a few huge ones)
# ----------------------------------------------------------------------


def circuit(m: int, avg_deg: float = 5.0, *, n_dense_rows: int = 2,
            dense_frac: float = 0.2, seed=0) -> CSRMatrix:
    """Circuit-simulation matrix: short near-diagonal rows plus a handful
    of very long rows (power/ground nets), the FullChip/dc2 pattern."""
    rng = default_rng(seed)
    lengths = np.maximum(1, rng.geometric(1.0 / max(avg_deg - 0.5, 1.0), size=m)).astype(np.int64)
    lengths = np.minimum(lengths, 8 * int(avg_deg) + 8)
    dense = rng.choice(m, size=min(n_dense_rows, m), replace=False)
    lengths[dense] = max(int(m * dense_frac), 300)
    rows, slots = _lengths_to_pairs(lengths)
    near = rows + rng.integers(-16, 17, size=rows.size)
    far = rng.integers(0, m, size=rows.size)
    is_dense_row = np.isin(rows, dense)
    take_far = is_dense_row | (rng.random(rows.size) < 0.15)
    cols = np.where(take_far, far, near)
    return _finish(m, m, rows, cols, rng)


def grid2d(nx: int, ny: int, *, drop: float = 0.05, seed=0,
           diagonal: bool = True) -> CSRMatrix:
    """5-point 2-D grid stencil with random dropped links (mc2depi style:
    every row short, extremely regular).  ``diagonal=False`` keeps only
    the four neighbour links, capping rows at length 4 — mc2depi's
    all-short-rows profile."""
    rng = default_rng(seed)
    m = nx * ny
    idx = np.arange(m, dtype=np.int64)
    ix, iy = idx % nx, idx // nx
    neighbors = []
    rows_all = []
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        ok = (ix + dx >= 0) & (ix + dx < nx) & (iy + dy >= 0) & (iy + dy < ny)
        rows_all.append(idx[ok])
        neighbors.append(idx[ok] + dx + dy * nx)
    diag = [idx] if diagonal else []
    rows = np.concatenate(diag + rows_all)
    cols = np.concatenate(diag + neighbors)
    keep = rng.random(rows.size) >= drop
    if diagonal:
        # never drop the diagonal so no row becomes empty
        keep[:m] = True
    return _finish(m, m, rows[keep], cols[keep], rng)


# ----------------------------------------------------------------------
# Quantum chemistry (medium/long mixed rows)
# ----------------------------------------------------------------------


def quantum_chem(m: int, mean_len: float, *, tail: float = 0.35, seed=0) -> CSRMatrix:
    """Electronic-structure Hamiltonian: lognormal row lengths whose tail
    crosses the long-row boundary (Si41Ge41H72 / Ga41As41H72 style)."""
    rng = default_rng(seed)
    lengths = np.clip(
        rng.lognormal(np.log(mean_len), tail, size=m), 8, mean_len * 8
    ).astype(np.int64)
    rows, slots = _lengths_to_pairs(lengths)
    spread = np.maximum(lengths[rows] * 3, 32)
    near = rows + rng.integers(-1, 2, size=rows.size) * rng.integers(0, spread)
    far = rng.integers(0, m, size=rows.size)
    cols = np.where(rng.random(rows.size) < 0.8, near, far)
    return _finish(m, m, rows, cols, rng)


# ----------------------------------------------------------------------
# Rectangular / LP matrices
# ----------------------------------------------------------------------


def rect_long_rows(m: int, n: int, row_len: int, *, seed=0) -> CSRMatrix:
    """Few rows, each very long (bibd_20_10: every row is a long row)."""
    rng = default_rng(seed)
    lengths = np.full(m, min(row_len, n), dtype=np.int64)
    rows, _ = _lengths_to_pairs(lengths)
    cols = rng.integers(0, n, size=rows.size)
    return _finish(m, n, rows, cols, rng)


def rect_short_rows(m: int, n: int, *, max_len: int = 3, seed=0) -> CSRMatrix:
    """Tall matrix of 1-3 nonzero rows (rel19: all rows short)."""
    rng = default_rng(seed)
    lengths = rng.integers(1, max_len + 1, size=m).astype(np.int64)
    rows, _ = _lengths_to_pairs(lengths)
    cols = rng.integers(0, n, size=rows.size)
    return _finish(m, n, rows, cols, rng)


def lp_matrix(m: int, n: int, mean_len: float = 120.0, *, seed=0) -> CSRMatrix:
    """LP constraint matrix: wide, scattered medium/long rows with no
    block structure at all (lp_osa_60 — the cuSPARSE-BSR disaster case)."""
    rng = default_rng(seed)
    lengths = np.clip(
        rng.lognormal(np.log(mean_len), 0.6, size=m), 2, n // 2
    ).astype(np.int64)
    rows, _ = _lengths_to_pairs(lengths)
    cols = rng.integers(0, n, size=rows.size)
    return _finish(m, n, rows, cols, rng)


def uniform_random(m: int, n: int, avg_deg: float, *, seed=0) -> CSRMatrix:
    """Uniformly random pattern with Poisson row lengths."""
    rng = default_rng(seed)
    lengths = np.maximum(0, rng.poisson(avg_deg, size=m)).astype(np.int64)
    if lengths.sum() == 0:
        lengths[0] = 1
    rows, _ = _lengths_to_pairs(lengths)
    cols = rng.integers(0, n, size=rows.size)
    return _finish(m, n, rows, cols, rng)


def dense_row_block(m: int, *, dense_rows: int, dense_len: int,
                    base_len: int = 6, seed=0) -> CSRMatrix:
    """A mostly-sparse matrix with a contiguous run of near-dense rows
    (mip1-style arrow structure)."""
    rng = default_rng(seed)
    lengths = np.maximum(1, rng.poisson(base_len, size=m)).astype(np.int64)
    lengths[:dense_rows] = min(dense_len, m)
    rows, _ = _lengths_to_pairs(lengths)
    near = rows + rng.integers(-24, 25, size=rows.size)
    far = rng.integers(0, m, size=rows.size)
    cols = np.where(rows < dense_rows, far, near)
    return _finish(m, m, rows, cols, rng)


#: Name -> callable registry used by the synthetic collection builder.
GENERATORS = {
    "fem_blocked": fem_blocked,
    "qcd_regular": qcd_regular,
    "banded": banded,
    "power_law": power_law,
    "kronecker": kronecker,
    "circuit": circuit,
    "grid2d": grid2d,
    "quantum_chem": quantum_chem,
    "rect_long_rows": rect_long_rows,
    "rect_short_rows": rect_short_rows,
    "lp_matrix": lp_matrix,
    "uniform_random": uniform_random,
    "dense_row_block": dense_row_block,
}
