"""Persistence for matrices and collections (compressed ``.npz``).

MatrixMarket text files are interoperable but slow for large synthetic
collections; this module round-trips CSR matrices (and whole named
collections) through NumPy's compressed container so benchmark runs can
reuse generated datasets.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .._util import ReproError, check
from ..formats import CSRMatrix

#: Format marker written into every file for forward compatibility.
_FORMAT_VERSION = 1


def save_csr(path, csr: CSRMatrix, *, name: str = "") -> Path:
    """Write one CSR matrix to a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        name=np.str_(name),
        shape=np.asarray(csr.shape, dtype=np.int64),
        indptr=csr.indptr,
        indices=csr.indices,
        data=csr.data,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_csr(path) -> CSRMatrix:
    """Load a CSR matrix written by :func:`save_csr`."""
    with np.load(Path(path), allow_pickle=False) as f:
        check(int(f["version"]) == _FORMAT_VERSION,
              f"unsupported matrix file version {int(f['version'])}")
        shape = tuple(int(v) for v in f["shape"])
        return CSRMatrix(shape, f["indptr"], f["indices"], f["data"])


def load(spec) -> CSRMatrix:
    """Resolve a matrix *spec* into a :class:`CSRMatrix`.

    Accepts, in order of routing:

    * a ``.mtx`` path — parsed as MatrixMarket text
      (:func:`repro.formats.read_matrix_market`);
    * an ``.npz`` path — NumPy-compressed, written by :func:`save_csr`;
    * any other *existing* path — rejected with :class:`ReproError`
      (unsupported extension);
    * otherwise — a named matrix from the representative/highlight
      suite (:func:`repro.matrices.suite_by_name`).

    This is the one public loader every tool should use (the CLI's
    private ``_load_matrix`` is a deprecated shim over it).
    """
    path = Path(str(spec))
    if path.suffix == ".mtx":
        from ..formats import read_matrix_market

        return read_matrix_market(str(path)).to_csr()
    if path.suffix == ".npz":
        return load_csr(path)
    if path.exists():
        raise ReproError(
            f"cannot load {str(spec)!r}: unsupported extension "
            f"{path.suffix!r} (use .mtx or .npz)")
    from .suite import suite_by_name

    return suite_by_name(str(spec)).matrix()


def save_collection(directory, named_matrices) -> Path:
    """Persist ``{name: CSRMatrix}`` (or an iterable of pairs) into a
    directory of ``.npz`` files plus an ``index.txt`` manifest."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    items = dict(named_matrices)
    manifest = []
    for name, csr in items.items():
        check("/" not in name and name.strip() == name,
              f"bad matrix name {name!r}")
        save_csr(directory / f"{name}.npz", csr, name=name)
        manifest.append(name)
    (directory / "index.txt").write_text("\n".join(manifest) + "\n")
    return directory


def load_collection(directory) -> dict[str, CSRMatrix]:
    """Load a collection written by :func:`save_collection`."""
    directory = Path(directory)
    index = directory / "index.txt"
    if not index.exists():
        raise ReproError(f"no collection manifest at {index}")
    out = {}
    for name in index.read_text().split():
        out[name] = load_csr(directory / f"{name}.npz")
    return out
