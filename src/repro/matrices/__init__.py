"""Matrix dataset substrate: generators, representative suite, collection.

Stands in for the SuiteSparse Matrix Collection the paper evaluates on
(see DESIGN.md for the substitution rationale).
"""

from .collection import CollectionEntry, iter_matrices, synthetic_collection
from .io import load, load_collection, load_csr, save_collection, save_csr
from .generators import (
    GENERATORS,
    banded,
    circuit,
    dense_row_block,
    fem_blocked,
    grid2d,
    kronecker,
    lp_matrix,
    power_law,
    qcd_regular,
    quantum_chem,
    rect_long_rows,
    rect_short_rows,
    uniform_random,
)
from .stats import (
    DEFAULT_MAX_LEN,
    SHORT_LEN,
    CategoryRatios,
    RowLengthStats,
    blockiness,
    category_ratios,
    column_locality,
    gini_coefficient,
    row_length_stats,
    warp_imbalance,
)
from .suite import SuiteEntry, highlight_suite, representative_suite, suite_by_name

__all__ = [
    "CategoryRatios",
    "CollectionEntry",
    "DEFAULT_MAX_LEN",
    "GENERATORS",
    "RowLengthStats",
    "SHORT_LEN",
    "SuiteEntry",
    "banded",
    "blockiness",
    "category_ratios",
    "circuit",
    "column_locality",
    "dense_row_block",
    "fem_blocked",
    "gini_coefficient",
    "grid2d",
    "highlight_suite",
    "iter_matrices",
    "kronecker",
    "load",
    "load_collection",
    "load_csr",
    "lp_matrix",
    "power_law",
    "qcd_regular",
    "quantum_chem",
    "rect_long_rows",
    "rect_short_rows",
    "representative_suite",
    "row_length_stats",
    "save_collection",
    "save_csr",
    "suite_by_name",
    "synthetic_collection",
    "uniform_random",
]
