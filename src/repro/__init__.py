"""repro — a from-scratch reproduction of DASP (SC '23).

DASP accelerates general sparse matrix-vector multiplication by
reorganizing the matrix into a layout dense matrix-multiply-accumulate
(MMA / tensor-core) units can consume.  This package implements the DASP
data structure and kernels, every baseline the paper compares against,
and the substrates the evaluation needs (sparse formats, a lane-accurate
GPU warp/MMA simulator with an analytic cost model, and a synthetic
SuiteSparse-like matrix collection).

Quickstart::

    import numpy as np
    from repro import CSRMatrix, DASPMatrix, dasp_spmv

    A = CSRMatrix.from_dense(np.eye(8))
    y = dasp_spmv(DASPMatrix.from_csr(A), np.ones(8))

See README.md / DESIGN.md / EXPERIMENTS.md for the full map.
"""

from . import (
    analysis,
    baselines,
    bench,
    cluster,
    core,
    formats,
    gpu,
    matrices,
    obs,
    overload,
    precision,
    resilience,
    serve,
    solvers,
    store,
)
from ._util import ReproError, ValidationError, geomean
from .core import DASPMatrix, DASPMethod, dasp_spmm, dasp_spmv
from .formats import BSRMatrix, COOMatrix, CSRMatrix, ELLMatrix, to_csr
from .formats.mmio import MatrixMarketError
from .cluster import NoHealthyReplicaError, RouterClosedError
from .gpu import A100, H800, DeviceSpec, get_device
from .overload import (
    AdmissionConfig,
    AdmissionRejectedError,
    HedgeConfig,
    OverloadConfig,
    RetryBudgetConfig,
)
from .resilience import (
    CircuitOpenError,
    DeadlineExceededError,
    InjectedFault,
    KernelFault,
    NumericFault,
    PlanTooLargeError,
    PreprocessFault,
    ResilienceError,
    ServerClosedError,
)
from .serve import QueueFullError, RequestShedError
from .store import ArtifactError, PlanStore, fingerprint_csr

__version__ = "1.0.0"

__all__ = [
    "A100",
    "AdmissionConfig",
    "AdmissionRejectedError",
    "ArtifactError",
    "BSRMatrix",
    "COOMatrix",
    "CSRMatrix",
    "CircuitOpenError",
    "DASPMatrix",
    "DASPMethod",
    "DeadlineExceededError",
    "DeviceSpec",
    "ELLMatrix",
    "H800",
    "HedgeConfig",
    "InjectedFault",
    "KernelFault",
    "MatrixMarketError",
    "NoHealthyReplicaError",
    "NumericFault",
    "OverloadConfig",
    "PlanStore",
    "PlanTooLargeError",
    "PreprocessFault",
    "QueueFullError",
    "ReproError",
    "RequestShedError",
    "ResilienceError",
    "RetryBudgetConfig",
    "RouterClosedError",
    "ServerClosedError",
    "ValidationError",
    "__version__",
    "analysis",
    "baselines",
    "bench",
    "cluster",
    "core",
    "dasp_spmm",
    "dasp_spmv",
    "fingerprint_csr",
    "formats",
    "geomean",
    "get_device",
    "gpu",
    "matrices",
    "obs",
    "overload",
    "precision",
    "resilience",
    "serve",
    "solvers",
    "store",
    "to_csr",
]
