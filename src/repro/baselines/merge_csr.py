"""Merge-based CSR SpMV — the cuSPARSE-CSR stand-in.

cuSPARSE's modern CSR SpMV follows Merrill & Garland's merge-path design
(SC'16): the 2-D merge of the row-pointer array with the nonzero indices
is split into equal-length diagonals, giving every thread exactly
``(m + nnz) / p`` merge items regardless of row skew — near-perfect load
balance at the price of binary searches and per-thread carry fix-up.

``merge_path_partition`` implements the real partitioning (used by the
tests and the event model); the functional kernel processes each
partition's items and resolves cross-partition carries exactly like the
GPU implementation does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check
from ..gpu.device import DeviceSpec
from ..gpu.events import KernelEvents, PreprocessEvents
from ..gpu.kernel import SpMVMethod
from ..gpu.memory import x_traffic_bytes


@dataclass
class MergePlan:
    """CSR plus the merge-path partition for a given thread count."""

    csr: object
    row_splits: np.ndarray  # first unfinished row per partition
    nnz_splits: np.ndarray  # first unconsumed nonzero per partition

    @property
    def partitions(self) -> int:
        return int(self.row_splits.size - 1)


def merge_path_partition(indptr: np.ndarray, nnz: int, parts: int):
    """Split the (rows x nonzeros) merge path into ``parts`` equal pieces.

    Returns ``(row_splits, nnz_splits)`` of length ``parts + 1``: partition
    ``p`` consumes rows ``row_splits[p]:row_splits[p+1]`` (the last row
    possibly partial) and nonzeros ``nnz_splits[p]:nnz_splits[p+1]``.

    For diagonal ``d`` the split point is the smallest row count ``i``
    with ``indptr[i+1] + i >= d`` kept as "row-end items consumed"; we
    find it with a vectorized binary search over ``indptr[1:] + arange``.
    """
    m = indptr.size - 1
    total = m + nnz
    diagonals = np.linspace(0, total, parts + 1).astype(np.int64)
    # Merge-list A = row-end markers at positions indptr[i+1] + i.
    keys = indptr[1:] + np.arange(m, dtype=np.int64)
    row_splits = np.searchsorted(keys, diagonals, side="left")
    nnz_splits = diagonals - row_splits
    nnz_splits = np.clip(nnz_splits, 0, nnz)
    row_splits = np.clip(row_splits, 0, m)
    return row_splits, nnz_splits


class MergeCSRMethod(SpMVMethod):
    """Merge-path CSR SpMV (cuSPARSE ``cusparseSpMV`` CSR stand-in)."""

    name = "cuSPARSE-CSR"

    def __init__(self, *, items_per_thread: int = 8) -> None:
        self.items_per_thread = items_per_thread

    def _partitions_for(self, csr) -> int:
        total = csr.shape[0] + csr.nnz
        return max(1, -(-total // self.items_per_thread))

    def prepare(self, csr) -> MergePlan:
        parts = self._partitions_for(csr)
        row_splits, nnz_splits = merge_path_partition(csr.indptr, csr.nnz, parts)
        return MergePlan(csr, row_splits, nnz_splits)

    def run(self, plan: MergePlan, x: np.ndarray) -> np.ndarray:
        """Execute partition-by-partition with carry fix-up.

        Each partition accumulates products into the rows it fully
        finishes and emits a carry (row, partial) pair for its trailing
        partial row — exactly the device algorithm's structure, evaluated
        with vectorized segment sums.
        """
        csr = plan.csr
        x = np.asarray(x)
        check(x.shape == (csr.shape[1],), "x has wrong length")
        acc = np.result_type(csr.data, x, np.float32)
        products = csr.data.astype(acc) * x[csr.indices].astype(acc)
        m = csr.shape[0]
        y = np.zeros(m, dtype=acc)
        if csr.nnz == 0:
            return y
        # Segment boundaries: row starts AND partition starts (carries are
        # just the partition-start segments added to their owning row).
        bounds = np.unique(np.concatenate([csr.indptr[:-1], plan.nnz_splits]))
        bounds = bounds[bounds < products.size]
        seg_sums = np.add.reduceat(products, bounds)
        owner = np.searchsorted(csr.indptr, bounds, side="right") - 1
        np.add.at(y, np.clip(owner, 0, m - 1), seg_sums)
        return y

    def events(self, plan: MergePlan, device: DeviceSpec) -> KernelEvents:
        csr = plan.csr
        vb = csr.data.dtype.itemsize
        m = csr.shape[0]
        parts = plan.partitions
        return KernelEvents(
            bytes_val=csr.nnz * vb,
            bytes_idx=csr.nnz * 4,
            # merge path re-reads row pointers along the merge list
            bytes_ptr=(m + 1) * 8 + m * 8,
            bytes_x=x_traffic_bytes(csr, vb, device),
            bytes_y=m * vb + parts * (vb + 4),  # carries spilled per partition
            flops_cuda=2.0 * csr.nnz,
            atomic_count=parts * 0.06,  # carry fix-up pass
            extra_instr=parts * (2 * np.log2(max(m, 2)) + self.items_per_thread),
            imbalance=1.0,  # merge path is balanced by construction
            # threads cross row boundaries mid-stream: value/index reads
            # stay coalesced but carry spills and pointer replays cost a
            # slice of streaming efficiency.  The FP16 path is worse: the
            # generic CSR kernel issues scalar 2-byte loads (no half2
            # vectorization), wasting most of each 32-byte sector.
            mem_efficiency=0.85 if vb >= 4 else 0.62,
            serial_iters=float(self.items_per_thread),
            kernel_launches=2,  # spmv + carry fix-up
            threads=parts,
        )

    def preprocess_events(self, plan: MergePlan) -> PreprocessEvents:
        """cusparseCreateCsr + SpMV analysis buffer: cheap device setup."""
        return PreprocessEvents(
            device_bytes=plan.csr.shape[0] * 8.0,
            kernel_launches=2,
            allocations=2,
        )
