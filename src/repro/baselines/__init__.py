"""Baseline SpMV methods the paper compares against, built from scratch:

* :class:`CSR5Method` — Liu & Vinter's CSR5 (tile-transposed segmented sum)
* :class:`TileSpMVMethod` — Niu et al.'s 2-D tiling with per-tile formats
* :class:`LSRBMethod` — LSRB-CSR segment descriptors + atomics
* :class:`BSRMethod` — cuSPARSE ``?bsrmv`` stand-in (best of 2x2/4x4/8x8)
* :class:`MergeCSRMethod` — cuSPARSE CSR stand-in (merge-path balanced)
* :class:`CSRScalarMethod` / :class:`CSRVectorMethod` — classic kernels
"""

from .bsr_spmv import BSRMethod, BSRPlan, CANDIDATE_BLOCKS
from .csr5 import CSR5Method, CSR5Plan, build_csr5
from .csr_scalar import CSRScalarMethod
from .csr_vector import CSRVectorMethod
from .lsrb import LSRBMethod, LSRBPlan, build_lsrb
from .merge_csr import MergeCSRMethod, MergePlan, merge_path_partition
from .registry import PAPER_METHODS, all_method_names, make_method, paper_methods
from .tilespmv import TILE, TilePlan, TileSpMVMethod, build_tiles

__all__ = [
    "BSRMethod",
    "BSRPlan",
    "CANDIDATE_BLOCKS",
    "CSR5Method",
    "CSR5Plan",
    "CSRScalarMethod",
    "CSRVectorMethod",
    "LSRBMethod",
    "LSRBPlan",
    "MergeCSRMethod",
    "MergePlan",
    "PAPER_METHODS",
    "TILE",
    "TilePlan",
    "TileSpMVMethod",
    "all_method_names",
    "build_csr5",
    "build_lsrb",
    "build_tiles",
    "make_method",
    "merge_path_partition",
    "paper_methods",
]
