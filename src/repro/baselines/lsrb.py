"""LSRB-CSR (Liu et al., ICPADS'15) — low-storage row-block baseline.

LSRB-CSR splits the nonzeros into fixed-size *segments* and stores, per
segment, a compact descriptor of which rows it touches; every CUDA block
reduces its segment locally and commits row results with global atomics
at segment boundaries.  Storage overhead is low (its design goal), but
the fixed segmentation makes it pay atomics on every row that spans a
segment and per-segment bookkeeping on matrices with many short rows —
which is why the paper measures it as the slowest of the five baselines
(DASP is 3.29x faster on geomean, up to 90.59x).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check
from ..gpu.device import WARP_SIZE, DeviceSpec
from ..gpu.events import KernelEvents, PreprocessEvents
from ..gpu.kernel import SpMVMethod
from ..gpu.memory import x_traffic_bytes

#: Nonzeros per segment (one thread block's share).
DEFAULT_SEGMENT = 256


@dataclass
class LSRBPlan:
    """Segment descriptors over the unmodified CSR payload.

    ``seg_first_row`` is the row containing each segment's first nonzero;
    ``seg_rows`` counts distinct rows the segment touches (descriptor
    width); ``boundary_rows`` counts rows split across segments (each
    costs one global atomic per extra segment).
    """

    csr: object
    segment: int
    seg_first_row: np.ndarray
    seg_rows: np.ndarray
    boundary_atomics: int

    @property
    def nsegments(self) -> int:
        return int(self.seg_first_row.size)


def build_lsrb(csr, *, segment: int = DEFAULT_SEGMENT) -> LSRBPlan:
    """Build the segment descriptors."""
    check(segment > 0, "segment must be positive")
    nnz = csr.nnz
    nseg = -(-nnz // segment) if nnz else 0
    seg_starts = np.arange(nseg, dtype=np.int64) * segment
    seg_ends = np.minimum(seg_starts + segment, nnz)
    first_row = np.searchsorted(csr.indptr, seg_starts, side="right") - 1
    last_row = np.searchsorted(csr.indptr, seg_ends - 1, side="right") - 1
    seg_rows = (last_row - first_row + 1) if nseg else np.zeros(0, np.int64)
    # A row spanning k segments needs k-1 atomic merges; equivalently each
    # segment whose first nonzero does not start a row pays one atomic.
    row_start_aligned = csr.indptr[np.clip(first_row, 0, csr.shape[0] - 1)] == seg_starts if nseg \
        else np.zeros(0, bool)
    boundary_atomics = int(nseg - np.count_nonzero(row_start_aligned)) if nseg else 0
    return LSRBPlan(csr, segment, first_row, np.asarray(seg_rows), boundary_atomics)


class LSRBMethod(SpMVMethod):
    """LSRB-CSR wrapped in the common method interface."""

    name = "LSRB-CSR"
    supported_dtypes = (np.float64, np.float32)  # no FP16 (paper Table 1)

    def __init__(self, *, segment: int = DEFAULT_SEGMENT) -> None:
        self.segment = segment

    def prepare(self, csr) -> LSRBPlan:
        return build_lsrb(csr, segment=self.segment)

    def run(self, plan: LSRBPlan, x: np.ndarray) -> np.ndarray:
        """Per-segment local reduction + atomic commits (functionally a
        segmented sum over row starts and segment starts)."""
        csr = plan.csr
        x = np.asarray(x)
        check(x.shape == (csr.shape[1],), "x has wrong length")
        acc = np.result_type(csr.data, x, np.float32)
        m = csr.shape[0]
        y = np.zeros(m, dtype=acc)
        if csr.nnz == 0:
            return y
        products = csr.data.astype(acc) * x[csr.indices.astype(np.int64)].astype(acc)
        seg_starts = np.arange(plan.nsegments, dtype=np.int64) * plan.segment
        bounds = np.unique(np.concatenate([csr.indptr[:-1], seg_starts]))
        bounds = bounds[bounds < products.size]
        seg = np.add.reduceat(products, bounds)
        owner = np.searchsorted(csr.indptr, bounds, side="right") - 1
        np.add.at(y, np.clip(owner, 0, m - 1), seg)
        return y

    def events(self, plan: LSRBPlan, device: DeviceSpec) -> KernelEvents:
        csr = plan.csr
        vb = csr.data.dtype.itemsize
        m = csr.shape[0]
        nseg = plan.nsegments
        # Every row result is committed with an atomic (the descriptor
        # does not distinguish exclusive rows), plus the boundary merges.
        atomics = float(plan.seg_rows.sum() + plan.boundary_atomics)
        # Per-segment descriptor decode is branch-heavy.
        per_seg_instr = 64.0
        # Segments hold equal nnz, so there is no across-segment skew;
        # the critical path is one segment's serial flag decode.
        max_rows = float(plan.seg_rows.max()) if plan.nsegments else 0.0
        serial = plan.segment / 8.0 + max_rows
        return KernelEvents(
            bytes_val=csr.nnz * vb,
            bytes_idx=csr.nnz * 4,
            bytes_ptr=(m + 1) * 8 + nseg * 8,  # row ptr + segment descriptors
            bytes_x=x_traffic_bytes(csr, vb, device),
            bytes_y=m * vb + atomics * vb,
            flops_cuda=2.0 * csr.nnz,
            atomic_count=atomics,
            extra_instr=nseg * per_seg_instr + csr.nnz * 0.5,
            imbalance=1.0,
            # segment-major decode with per-element flag tests and atomic
            # commits: far from streaming-coalesced access
            mem_efficiency=0.22,
            serial_iters=serial,
            kernel_launches=1,
            threads=nseg * WARP_SIZE,
        )

    def preprocess_events(self, plan: LSRBPlan) -> PreprocessEvents:
        """Descriptor build: one device scan over the row pointer."""
        csr = plan.csr
        return PreprocessEvents(
            device_bytes=(csr.shape[0] + 1) * 8.0 + plan.nsegments * 16.0,
            kernel_launches=4,
            allocations=2,
        )
