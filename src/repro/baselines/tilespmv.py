"""TileSpMV (Niu et al., IPDPS'21) — 2-D tiled SpMV baseline.

The matrix is cut into ``16 x 16`` tiles; non-empty tiles are indexed by
a CSR-of-tiles structure and each tile is stored in whichever of several
formats fits its population best (we implement the four that dominate in
practice: dense, dense-row, ELL, and COO).  Wins on matrices with block
substructure; loses when nonzeros scatter (kron, wiki-Talk) because tile
metadata and near-empty tiles dominate — exactly the behaviour the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check
from ..gpu.device import WARP_SIZE, DeviceSpec
from ..gpu.events import KernelEvents, PreprocessEvents
from ..gpu.kernel import SpMVMethod
from ..gpu.memory import x_traffic_bytes

#: Tile edge used by the original implementation.
TILE = 16

#: Per-tile formats.
FMT_DENSE = 0
FMT_DENSE_ROW = 1
FMT_ELL = 2
FMT_COO = 3


@dataclass
class TilePlan:
    """CSR-of-tiles with per-tile format tags.

    ``tile_row``/``tile_col`` give each non-empty tile's block position;
    entries are grouped by tile in ``order`` (a permutation of the CSR
    entry order), with ``tile_entry_ptr`` delimiting tiles.
    """

    csr: object
    tile_row: np.ndarray
    tile_col: np.ndarray
    tile_fmt: np.ndarray
    tile_entry_ptr: np.ndarray
    order: np.ndarray
    local_r: np.ndarray
    local_c: np.ndarray

    @property
    def ntiles(self) -> int:
        return int(self.tile_row.size)

    def tile_counts(self) -> np.ndarray:
        return np.diff(self.tile_entry_ptr)

    def format_histogram(self) -> dict[int, int]:
        """Number of tiles per format tag."""
        return {f: int(np.count_nonzero(self.tile_fmt == f))
                for f in (FMT_DENSE, FMT_DENSE_ROW, FMT_ELL, FMT_COO)}


def build_tiles(csr) -> TilePlan:
    """Tile the matrix and pick a per-tile storage format."""
    nnz = csr.nnz
    rows = np.repeat(np.arange(csr.shape[0], dtype=np.int64), csr.row_lengths())
    cols = csr.indices.astype(np.int64)
    trow, tcol = rows // TILE, cols // TILE
    nb_cols = csr.shape[1] // TILE + 1
    keys = trow * nb_cols + tcol
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    uniq_mask = np.empty(nnz, dtype=bool)
    if nnz:
        uniq_mask[0] = True
        np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=uniq_mask[1:])
    bounds = np.nonzero(uniq_mask)[0] if nnz else np.zeros(0, np.int64)
    tile_entry_ptr = np.concatenate([bounds, [nnz]]).astype(np.int64)
    uniq_keys = keys_sorted[uniq_mask] if nnz else keys_sorted
    tile_row = (uniq_keys // nb_cols).astype(np.int64)
    tile_col = (uniq_keys % nb_cols).astype(np.int64)

    counts = np.diff(tile_entry_ptr)
    local_r = (rows[order] % TILE).astype(np.int8)
    local_c = (cols[order] % TILE).astype(np.int8)

    # Format selection by tile population (thresholds follow the original
    # paper's heuristics in spirit):
    #   >= 50% full          -> dense
    #   rows nearly full     -> dense-row
    #   balanced row lengths -> ELL
    #   otherwise            -> COO
    tile_fmt = np.full(tile_row.size, FMT_COO, dtype=np.int8)
    tile_fmt[counts >= TILE * TILE // 2] = FMT_DENSE
    # Row balance per tile: max row population vs mean.
    ell_like = np.zeros(tile_row.size, dtype=bool)
    if nnz:
        tile_of_entry = np.cumsum(uniq_mask) - 1
        row_keys = tile_of_entry * TILE + local_r
        per_row = np.bincount(row_keys, minlength=tile_row.size * TILE).reshape(-1, TILE)
        row_max = per_row.max(axis=1)
        occupied_rows = (per_row > 0).sum(axis=1)
        mean_pop = counts / np.maximum(occupied_rows, 1)
        ell_like = (row_max <= 2 * mean_pop) & (counts >= 4)
        dense_row = (occupied_rows <= 2) & (counts >= TILE)
        tile_fmt[ell_like & (tile_fmt == FMT_COO)] = FMT_ELL
        tile_fmt[dense_row] = FMT_DENSE_ROW
        tile_fmt[counts >= TILE * TILE // 2] = FMT_DENSE
    return TilePlan(csr, tile_row, tile_col, tile_fmt, tile_entry_ptr,
                    order, local_r, local_c)


class TileSpMVMethod(SpMVMethod):
    """TileSpMV wrapped in the common method interface."""

    name = "TileSpMV"
    supported_dtypes = (np.float64, np.float32)  # no FP16 (paper Table 1)

    def prepare(self, csr) -> TilePlan:
        return build_tiles(csr)

    def run(self, plan: TilePlan, x: np.ndarray) -> np.ndarray:
        """Per-tile SpMV with per-format micro-kernels.

        Dense tiles run as batched 16x16 GEMV over gathered x strips
        (what the device's dense micro-kernel does); the sparse formats
        (ELL / dense-row / COO) share the scatter kernel — their device
        difference is access pattern, not arithmetic.
        """
        csr = plan.csr
        x = np.asarray(x)
        check(x.shape == (csr.shape[1],), "x has wrong length")
        acc = np.result_type(csr.data, x, np.float32)
        m, n = csr.shape
        y = np.zeros(m, dtype=acc)
        if csr.nnz == 0:
            return y
        vals = csr.data[plan.order].astype(acc)
        tile_of_entry = np.repeat(np.arange(plan.ntiles), plan.tile_counts())

        dense_tiles = np.nonzero(plan.tile_fmt == FMT_DENSE)[0]
        is_dense_entry = np.isin(tile_of_entry, dense_tiles)

        # --- dense micro-kernel: batched 16x16 GEMV --------------------
        if dense_tiles.size:
            nt_d = dense_tiles.size
            tiles = np.zeros((nt_d, TILE, TILE), dtype=acc)
            slot = np.searchsorted(dense_tiles, tile_of_entry[is_dense_entry])
            tiles[slot, plan.local_r[is_dense_entry],
                  plan.local_c[is_dense_entry]] = vals[is_dense_entry]
            # gather each dense tile's x strip (zero-pad the matrix edge)
            xp = np.zeros(((n // TILE + 2) * TILE,), dtype=acc)
            xp[:n] = x
            starts = plan.tile_col[dense_tiles] * TILE
            x_strips = xp[starts[:, None] + np.arange(TILE)]
            partial = np.einsum("trc,tc->tr", tiles, x_strips)
            y_pad = np.zeros(((m // TILE + 2) * TILE,), dtype=acc)
            np.add.at(y_pad.reshape(-1, TILE),
                      plan.tile_row[dense_tiles], partial)
            y += y_pad[:m]

        # --- sparse micro-kernels (ELL / dense-row / COO): scatter -----
        sparse_entries = ~is_dense_entry
        if sparse_entries.any():
            rows = (plan.tile_row[tile_of_entry[sparse_entries]] * TILE
                    + plan.local_r[sparse_entries])
            cols = (plan.tile_col[tile_of_entry[sparse_entries]] * TILE
                    + plan.local_c[sparse_entries])
            prod = vals[sparse_entries] * x[cols.astype(np.int64)].astype(acc)
            np.add.at(y, rows.astype(np.int64), prod)
        return y

    def events(self, plan: TilePlan, device: DeviceSpec) -> KernelEvents:
        csr = plan.csr
        vb = csr.data.dtype.itemsize
        m = csr.shape[0]
        nt = plan.ntiles
        counts = plan.tile_counts().astype(np.float64)
        fmt = plan.tile_fmt

        # Stored bytes per tile depend on the chosen format.  ELL tiles
        # pad every occupied row to the tile's max row population.
        ell_slots = counts.copy()
        ell_tiles = np.nonzero(fmt == FMT_ELL)[0]
        if ell_tiles.size and csr.nnz:
            tile_of_entry = np.repeat(np.arange(nt), plan.tile_counts())
            row_keys = tile_of_entry * TILE + plan.local_r
            per_row = np.bincount(row_keys, minlength=nt * TILE).reshape(-1, TILE)
            row_max = per_row.max(axis=1)
            occupied = (per_row > 0).sum(axis=1)
            ell_slots[ell_tiles] = (row_max * occupied)[ell_tiles]
        stored_slots = np.where(
            fmt == FMT_DENSE, TILE * TILE,
            np.where(fmt == FMT_DENSE_ROW, 2 * TILE, ell_slots))
        val_bytes = float((stored_slots * vb).sum())
        idx_bytes = float(np.where(fmt == FMT_COO, counts * 2, counts * 1).sum())
        # Tile metadata: tile ptr/col (CSR-of-tiles), format tags, bitmaps.
        meta_bytes = nt * (4 + 2 + 1 + 8) + (m // TILE + 1) * 4

        # A warp handles one tile-row strip; the heaviest strip is a
        # serial critical path (tiles are processed one after another).
        strip_work = np.bincount(plan.tile_row, weights=np.maximum(counts, 8),
                                 minlength=m // TILE + 1)
        serial = float(strip_work.max()) / WARP_SIZE if strip_work.size else 0.0
        return KernelEvents(
            bytes_val=val_bytes,
            bytes_idx=idx_bytes,
            bytes_ptr=meta_bytes,
            bytes_x=x_traffic_bytes(csr, vb, device),
            bytes_y=m * vb,
            flops_cuda=2.0 * float(stored_slots.sum()),
            shfl_count=nt * 4,
            # per-tile dispatch (format switch, bounds, pointer chasing)
            # stalls all 32 lanes for ~40 cycles -> thread-level cost
            extra_instr=nt * 40.0 * WARP_SIZE,
            imbalance=1.0,
            # per-tile format dispatch interleaves small reads of mixed
            # structures; near-coalesced but not a pure stream
            mem_efficiency=0.75,
            serial_iters=serial,
            kernel_launches=2,
            threads=nt * WARP_SIZE // 2,
        )

    def preprocess_events(self, plan: TilePlan) -> PreprocessEvents:
        """Host-side tiling: count pass, format-selection pass, packing."""
        csr = plan.csr
        vb = csr.data.dtype.itemsize
        host = csr.nnz * (vb + 4) * 3.0      # count, classify, pack passes
        host += plan.ntiles * 64.0           # per-tile format selection work
        host += plan.ntiles * (vb + 4) * 4.0
        return PreprocessEvents(
            device_bytes=plan.ntiles * 16.0,
            host_bytes=host,
            sort_keys=float(csr.nnz),  # entries sorted into tile order
            kernel_launches=6,
            allocations=8,
        )
