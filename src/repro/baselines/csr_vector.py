"""CSR-vector SpMV: one warp per row.

The classic fix for CSR-scalar's divergence on long rows — but it wastes
31 of 32 lanes on rows shorter than a warp, so it loses badly on
short-row matrices.  Included as a supporting baseline (it is the
building block TileSpMV and cuSPARSE use internally for dense rows).
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import WARP_SIZE, DeviceSpec
from ..gpu.events import KernelEvents, PreprocessEvents
from ..gpu.kernel import SpMVMethod
from ..gpu.memory import x_traffic_bytes


class CSRVectorMethod(SpMVMethod):
    """One warp per row over the unmodified CSR arrays."""

    name = "CSR-vector"

    def prepare(self, csr):
        return csr

    def run(self, csr, x: np.ndarray) -> np.ndarray:
        return csr.matvec(x)

    def events(self, csr, device: DeviceSpec) -> KernelEvents:
        vb = csr.data.dtype.itemsize
        m = csr.shape[0]
        lens = csr.row_lengths().astype(np.float64)
        # A warp spends ceil(len/32) lockstep iterations on its row; lanes
        # beyond the row length idle.
        warp_iters = np.ceil(lens / WARP_SIZE)
        warp_iters[lens == 0] = 1.0
        waste = float(warp_iters.sum() * WARP_SIZE / max(lens.sum(), 1.0))
        imb = max(waste, 1.0)
        return KernelEvents(
            bytes_val=csr.nnz * vb,
            bytes_idx=csr.nnz * 4,
            bytes_ptr=(m + 1) * 8,
            bytes_x=x_traffic_bytes(csr, vb, device),
            bytes_y=m * vb,
            flops_cuda=2.0 * csr.nnz,
            shfl_count=m * 5,  # per-row butterfly reduction
            extra_instr=m * 4,
            imbalance=imb,
            serial_iters=float(warp_iters.max()) if lens.size else 0.0,
            kernel_launches=1,
            threads=m * WARP_SIZE,
        )

    def preprocess_events(self, csr) -> PreprocessEvents:
        return PreprocessEvents()
