"""BSR SpMV — the cuSPARSE ``cusparse?bsrmv`` stand-in.

The paper converts each matrix to BSR at block sizes 2x2, 4x4 and 8x8 and
reports the best of the three.  On genuinely blocked matrices (FEM) the
fill-in is small and blocks amortize index storage; on scattered matrices
the fill-in explodes — the paper's 283.92x worst case ('lp_osa_60') is
pure fill-in cost, and this model reproduces it because fill-in is
*measured* from the real conversion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats import BSRMatrix
from ..gpu.cost_model import estimate_time
from ..gpu.device import WARP_SIZE, DeviceSpec, get_device
from ..gpu.events import KernelEvents, PreprocessEvents
from ..gpu.kernel import SpMVMethod
from ..gpu.memory import x_traffic_bytes

#: Block sizes the paper sweeps.
CANDIDATE_BLOCKS = ((2, 2), (4, 4), (8, 8))


@dataclass
class BSRPlan:
    """Best-of-three BSR conversion."""

    csr: object
    bsr: BSRMatrix
    tried: dict  # blocksize -> modeled seconds

    @property
    def fill_ratio(self) -> float:
        return self.bsr.fill_ratio(self.csr.nnz)


class BSRMethod(SpMVMethod):
    """cuSPARSE-BSR: convert at 2x2/4x4/8x8, keep the fastest."""

    name = "cuSPARSE-BSR"
    supported_dtypes = (np.float64, np.float32)  # no FP16 (paper Table 1)

    def __init__(self, *, candidates=CANDIDATE_BLOCKS, device="A100") -> None:
        self.candidates = candidates
        #: Device used for the best-of-three selection (the paper selects
        #: by measured time on the evaluation GPU).
        self.selection_device = get_device(device)

    def prepare(self, csr) -> BSRPlan:
        tried = {}
        best = None
        dtype_bits = np.dtype(csr.data.dtype).itemsize * 8
        for bs in self.candidates:
            bsr = BSRMatrix.from_csr(csr, bs)
            ev = self._events_for(csr, bsr, self.selection_device)
            t = estimate_time(ev, self.selection_device, dtype_bits=dtype_bits).total
            tried[bs] = t
            if best is None or t < tried[best[0]]:
                best = (bs, bsr)
        return BSRPlan(csr, best[1], tried)

    def run(self, plan: BSRPlan, x: np.ndarray) -> np.ndarray:
        return plan.bsr.matvec(x)

    def _events_for(self, csr, bsr: BSRMatrix, device: DeviceSpec) -> KernelEvents:
        vb = csr.data.dtype.itemsize
        m = csr.shape[0]
        r, c = bsr.blocksize
        stored = bsr.stored_values
        blocks_per_brow = np.diff(bsr.indptr).astype(np.float64)
        serial = (float(blocks_per_brow.max()) * r * c / WARP_SIZE
                  if blocks_per_brow.size else 0.0)
        # 2x2 FP64 blocks are 32-byte islands gathered from scattered
        # addresses; sector waste shrinks as blocks grow.
        mem_eff = {2: 0.62, 4: 0.82, 8: 0.95}.get(r, 0.9)
        return KernelEvents(
            bytes_val=stored * vb,
            bytes_idx=bsr.nblocks * 4,
            bytes_ptr=(bsr.indptr.size) * 8,
            bytes_x=x_traffic_bytes(csr, vb, device),
            bytes_y=m * vb,
            flops_cuda=2.0 * stored,  # fill-in zeros are multiplied too
            # per-block pointer/index arithmetic stalls the warp briefly
            extra_instr=bsr.nblocks * 4.0 * WARP_SIZE,
            imbalance=1.0,
            mem_efficiency=mem_eff,
            serial_iters=serial,
            kernel_launches=1,
            threads=max(int(bsr.indptr.size - 1), 1) * WARP_SIZE,
        )

    def events(self, plan: BSRPlan, device: DeviceSpec) -> KernelEvents:
        return self._events_for(plan.csr, plan.bsr, device)

    def preprocess_events(self, plan: BSRPlan) -> PreprocessEvents:
        """csr2bsr for all three candidates: analysis + fill passes.

        Selecting the best of 2x2/4x4/8x8 (the paper's procedure) costs
        three full conversions; each involves device analysis/fill passes
        plus host-side staging and a timing run's orchestration.
        """
        csr = plan.csr
        vb = csr.data.dtype.itemsize
        device_moved = 0.0
        host_moved = 0.0
        for _bs in self.candidates:
            # nnzb analysis pass + conversion writing the filled blocks.
            device_moved += csr.nnz * (vb + 4) * 2.0
            host_moved += csr.nnz * (vb + 4)
        device_moved += plan.bsr.stored_values * vb * 2.0
        host_moved += plan.bsr.stored_values * vb * 2.0
        return PreprocessEvents(
            device_bytes=device_moved,
            host_bytes=host_moved,
            kernel_launches=10 * len(self.candidates),
            allocations=3 * len(self.candidates),
        )
