"""CSR-scalar SpMV: one thread per row (Algorithm 1 of the paper).

This is the "standard CSR SpMV" whose cost breakdown the paper measures
in Figure 2.  Its weakness is warp divergence: a warp of 32 consecutive
rows runs as long as its *longest* row, so skewed matrices (wiki-Talk,
circuit nets) leave most lanes idle.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import WARP_SIZE, DeviceSpec
from ..gpu.events import KernelEvents, PreprocessEvents
from ..gpu.kernel import SpMVMethod
from ..gpu.memory import x_traffic_bytes


class CSRScalarMethod(SpMVMethod):
    """One CUDA thread per row over the unmodified CSR arrays."""

    name = "CSR-scalar"

    def prepare(self, csr):
        """CSR needs no conversion — the plan is the matrix itself."""
        return csr

    def run(self, csr, x: np.ndarray) -> np.ndarray:
        return csr.matvec(x)

    def events(self, csr, device: DeviceSpec) -> KernelEvents:
        vb = csr.data.dtype.itemsize
        m = csr.shape[0]
        lens = csr.row_lengths().astype(np.float64)
        # Warp cost = 32 lanes x the longest row in the warp (divergence
        # inflates issued work); the single longest row is additionally a
        # serial critical path for its owning thread.
        pad = (-m) % WARP_SIZE
        per_warp = np.concatenate([lens, np.zeros(pad)]).reshape(-1, WARP_SIZE)
        warp_work = per_warp.max(axis=1) * WARP_SIZE
        divergence = float(warp_work.sum() / max(lens.sum(), 1.0))
        imb = max(divergence, 1.0)
        return KernelEvents(
            bytes_val=csr.nnz * vb,
            bytes_idx=csr.nnz * 4,
            bytes_ptr=(m + 1) * 8,
            bytes_x=x_traffic_bytes(csr, vb, device),
            bytes_y=m * vb,
            flops_cuda=2.0 * csr.nnz,
            extra_instr=m * 4,
            imbalance=imb,
            # one thread per row strides through its row: adjacent lanes
            # read far-apart addresses, so coalescing is poor
            mem_efficiency=0.55,
            serial_iters=float(lens.max()) if lens.size else 0.0,
            kernel_launches=1,
            threads=m,
        )

    def preprocess_events(self, csr) -> PreprocessEvents:
        """No conversion at all."""
        return PreprocessEvents()
