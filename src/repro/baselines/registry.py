"""Registry of all SpMV methods (the paper's Table 1 line-up + extras)."""

from __future__ import annotations

from ..core.method import DASPMethod
from ..gpu.kernel import SpMVMethod
from .bsr_spmv import BSRMethod
from .csr5 import CSR5Method
from .csr_scalar import CSRScalarMethod
from .csr_vector import CSRVectorMethod
from .lsrb import LSRBMethod
from .merge_csr import MergeCSRMethod

#: The six methods of the paper's evaluation (Table 1), by display name.
PAPER_METHODS = (
    "CSR5",
    "TileSpMV",
    "LSRB-CSR",
    "cuSPARSE-BSR",
    "cuSPARSE-CSR",
    "DASP",
)


def make_method(name: str) -> SpMVMethod:
    """Instantiate a method by display name."""
    from .tilespmv import TileSpMVMethod

    factories = {
        "DASP": DASPMethod,
        "CSR5": CSR5Method,
        "TileSpMV": TileSpMVMethod,
        "LSRB-CSR": LSRBMethod,
        "cuSPARSE-BSR": BSRMethod,
        "cuSPARSE-CSR": MergeCSRMethod,
        "CSR-scalar": CSRScalarMethod,
        "CSR-vector": CSRVectorMethod,
    }
    if name not in factories:
        raise KeyError(f"unknown method {name!r}; have {sorted(factories)}")
    return factories[name]()


def paper_methods() -> list[SpMVMethod]:
    """Fresh instances of the six Table 1 methods."""
    return [make_method(n) for n in PAPER_METHODS]


def all_method_names() -> list[str]:
    """Every registered method name."""
    return ["DASP", "CSR5", "TileSpMV", "LSRB-CSR", "cuSPARSE-BSR",
            "cuSPARSE-CSR", "CSR-scalar", "CSR-vector"]
