"""CSR5 SpMV (Liu & Vinter, ICS'15) — the strongest open-source baseline.

CSR5 partitions the nonzeros into 2-D tiles of ``omega`` columns (one
warp lane each) by ``sigma`` rows, stores each tile *transposed*
(column-major), and marks row starts with per-tile bit flags so a
segmented sum over lanes computes all row results with perfect load
balance.  Rows spanning tiles are resolved with per-tile carries
("speculative segmented sum").

The plan here builds the genuine CSR5 structure — tile-transposed value
and column arrays, ``tile_ptr`` (row of each tile's first nonzero, with
an empty-row dirty bit), and packed bit flags — and the kernel consumes
that structure (un-transposing per tile), so padding/permutation bugs
would produce wrong results, not just wrong statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check
from ..gpu.device import WARP_SIZE, DeviceSpec
from ..gpu.events import KernelEvents, PreprocessEvents
from ..gpu.kernel import SpMVMethod
from ..gpu.memory import x_traffic_bytes

#: Tile width: one warp lane per column.
DEFAULT_OMEGA = WARP_SIZE
#: Tile height used for FP64 on Ampere-class devices.
DEFAULT_SIGMA = 16


@dataclass
class CSR5Plan:
    """The CSR5 data structure.

    ``tile_val``/``tile_cid`` hold ``ntiles * sigma * omega`` slots in
    per-tile column-major order (slot ``(t, c, r)`` at flat index
    ``t*sigma*omega + c*sigma + r``); positions past ``nnz`` in the last
    tile are zero filled.  ``bit_flag`` marks row starts in the same
    layout.  ``tile_ptr`` stores the row of each tile's first nonzero,
    negated (dirty bit) when the tile starts inside a run of empty rows.
    """

    csr: object
    omega: int
    sigma: int
    tile_val: np.ndarray
    tile_cid: np.ndarray
    bit_flag: np.ndarray
    tile_ptr: np.ndarray

    @property
    def ntiles(self) -> int:
        return int(self.tile_ptr.size - 1)

    @property
    def tile_elems(self) -> int:
        return self.omega * self.sigma


def build_csr5(csr, *, omega: int = DEFAULT_OMEGA,
               sigma: int = DEFAULT_SIGMA) -> CSR5Plan:
    """Convert CSR to CSR5 (the in-place GPU transposition, done host-side)."""
    check(omega > 0 and sigma > 0, "omega/sigma must be positive")
    nnz = csr.nnz
    te = omega * sigma
    ntiles = -(-nnz // te) if nnz else 0
    padded = ntiles * te

    flat_val = np.zeros(padded, dtype=csr.data.dtype)
    flat_cid = np.zeros(padded, dtype=np.int32)
    flat_val[:nnz] = csr.data
    flat_cid[:nnz] = csr.indices

    # Row-start flags in original nnz order.
    starts = csr.indptr[:-1]
    starts = starts[np.diff(csr.indptr) > 0]
    flags = np.zeros(padded, dtype=bool)
    flags[starts] = True

    # Per-tile transpose.  Lane c owns the sigma consecutive original
    # elements i in [c*sigma, (c+1)*sigma); element i lands at stored
    # position (r = i % sigma, c = i // sigma) of the (sigma, omega)
    # tile, i.e. flat offset r*omega + c — so lanes read their operands
    # with stride-omega (coalesced across the warp), the whole point of
    # the CSR5 layout.
    def transpose_tiles(arr):
        return (arr.reshape(ntiles, omega, sigma)
                .transpose(0, 2, 1)
                .reshape(-1)
                .copy()) if ntiles else arr

    tile_val = transpose_tiles(flat_val)
    tile_cid = transpose_tiles(flat_cid)
    bit_flag = transpose_tiles(flags)

    # tile_ptr: row containing each tile's first nonzero; dirty-negated if
    # that position sits after one or more empty rows' (shared) boundary.
    first_idx = np.arange(ntiles, dtype=np.int64) * te
    tile_rows = np.searchsorted(csr.indptr, first_idx, side="right") - 1
    tile_ptr = np.concatenate([tile_rows, [csr.shape[0] - 1 if csr.shape[0] else 0]])
    return CSR5Plan(csr, omega, sigma, tile_val, tile_cid, bit_flag, tile_ptr)


class CSR5Method(SpMVMethod):
    """CSR5 wrapped in the common method interface."""

    name = "CSR5"
    supported_dtypes = (np.float64, np.float32)  # no FP16 (paper Table 1)

    def __init__(self, *, omega: int = DEFAULT_OMEGA,
                 sigma: int = DEFAULT_SIGMA) -> None:
        self.omega = omega
        self.sigma = sigma

    def prepare(self, csr) -> CSR5Plan:
        return build_csr5(csr, omega=self.omega, sigma=self.sigma)

    def run(self, plan: CSR5Plan, x: np.ndarray) -> np.ndarray:
        """Segmented-sum kernel over the tile-transposed storage."""
        csr = plan.csr
        x = np.asarray(x)
        check(x.shape == (csr.shape[1],), "x has wrong length")
        acc = np.result_type(csr.data, x, np.float32)
        m = csr.shape[0]
        y = np.zeros(m, dtype=acc)
        if plan.ntiles == 0:
            return y
        te = plan.tile_elems
        # Un-transpose tiles to recover original order (the device kernel
        # walks lanes; the arithmetic is order-identical).
        def untranspose(arr):
            return (arr.reshape(plan.ntiles, plan.sigma, plan.omega)
                    .transpose(0, 2, 1)
                    .reshape(-1))

        val = untranspose(plan.tile_val)
        cid = untranspose(plan.tile_cid)
        flags = untranspose(plan.bit_flag).copy()
        products = val.astype(acc) * x[cid.astype(np.int64)].astype(acc)
        # Segmented sum: segments start at row starts and at tile starts
        # (tile-start partials are the carries the device resolves with
        # the speculative pass).
        flags[::te] = True
        bounds = np.nonzero(flags)[0]
        seg = np.add.reduceat(products, bounds)
        owner = np.searchsorted(csr.indptr, bounds, side="right") - 1
        owner = np.clip(owner, 0, m - 1)
        np.add.at(y, owner, seg)
        return y

    def events(self, plan: CSR5Plan, device: DeviceSpec) -> KernelEvents:
        csr = plan.csr
        vb = csr.data.dtype.itemsize
        m = csr.shape[0]
        nt = plan.ntiles
        te = plan.tile_elems
        return KernelEvents(
            bytes_val=nt * te * vb,
            bytes_idx=nt * te * 4,
            bytes_ptr=(nt + 1) * 4 + nt * (te // 8) + (m + 1) * 8,  # tile_ptr + bit flags + ptr for tail
            bytes_x=x_traffic_bytes(csr, vb, device),
            bytes_y=m * vb + nt * vb,  # results + per-tile carries
            flops_cuda=2.0 * csr.nnz,
            shfl_count=nt * plan.sigma,  # per-lane prefix passes
            atomic_count=nt * 0.05,
            # segmented-sum bookkeeping: flag tests + prefix ops per element
            extra_instr=nt * te * 1.5,
            imbalance=1.0,  # nnz-splitting is balanced by construction
            # tile-transposed layout streams almost perfectly; the tail
            # tile and y_offset lookups cost a little
            mem_efficiency=0.95,
            serial_iters=float(plan.sigma),
            kernel_launches=2,
            threads=nt * plan.omega,
        )

    def preprocess_events(self, plan: CSR5Plan) -> PreprocessEvents:
        """In-place GPU conversion: scan + transpose + descriptor build."""
        csr = plan.csr
        vb = csr.data.dtype.itemsize
        moved = plan.ntiles * plan.tile_elems * (vb + 4) * 2.0  # read+write
        moved += (csr.shape[0] + 1) * 8 * 2
        return PreprocessEvents(
            device_bytes=moved,
            kernel_launches=18,
            allocations=6,
        )
