"""Workload driver — open-loop synthetic traffic replay in virtual time.

Replays a serving workload against the batching + plan-caching pipeline
as a deterministic discrete-event simulation: Poisson arrivals at a
configured offered rate, matrix popularity drawn from a Zipf
distribution over the representative suite, a single modeled device
executing flushed batches in FIFO order, and a bounded device backlog
applying backpressure.  Every batch is charged its modeled device time
(:func:`repro.core.spmm.spmm_events` through the cost model), cache
misses additionally pay the modeled preprocessing cost (Figure 13), and
per-request latency is ``completion - arrival`` in virtual seconds.

Being single-threaded and clocked virtually, the driver is exactly
reproducible for a given seed — the property the serving benchmarks
rely on — while exercising the same :class:`RequestBatcher` and
:class:`PlanRegistry` code the real-threaded server runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from .._util import check, default_rng
from ..core.format import DASPMatrix
from ..core.preprocess import dasp_preprocess_events
from ..core.spmm import mma_utilization, spmm_events
from ..gpu.cost_model import estimate_preprocess_time, estimate_time
from ..gpu.device import get_device
from .batcher import DEFAULT_FLUSH_TIMEOUT_S, MMA_N, RequestBatcher, SpMVRequest
from .plan_cache import DEFAULT_BUDGET_BYTES, PlanRegistry, matrix_fingerprint
from .stats import ServerStats


@dataclass
class WorkloadConfig:
    """Knobs of one synthetic serving workload.

    Attributes
    ----------
    n_requests / rate_rps / zipf_s / seed:
        Open-loop traffic shape: request count, Poisson arrival rate
        (requests per virtual second), Zipf popularity exponent over
        the matrix pool, RNG seed.  ``rate_rps=None`` auto-picks a rate
        that saturates the modeled device (~4x its unbatched capacity).
    n_matrices / dtype / device:
        Pool size (taken from the representative suite in order) and
        the modeled precision/hardware.
    max_batch / flush_timeout_s:
        Batching policy (``max_batch=1`` is the request-at-a-time
        baseline).
    cache_budget_bytes / plan_cache:
        Plan-registry byte budget; ``plan_cache=False`` rebuilds the
        plan for every batch (the re-preprocessing baseline).
    queue_depth:
        Bounded device backlog (flushed-but-unstarted batches); arrivals
        beyond it are rejected.
    """

    n_requests: int = 2000
    rate_rps: float | None = None
    zipf_s: float = 1.1
    seed: int = 2023
    n_matrices: int = 4
    dtype: str = "float64"
    device: str = "A100"
    max_batch: int = MMA_N
    flush_timeout_s: float = DEFAULT_FLUSH_TIMEOUT_S
    cache_budget_bytes: int = DEFAULT_BUDGET_BYTES
    plan_cache: bool = True
    queue_depth: int = 256
    entries: list = field(default_factory=list)  # overrides the suite pool


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf popularity over ``n`` ranked items."""
    check(n >= 1, "need at least one item")
    w = np.arange(1, n + 1, dtype=np.float64) ** -float(s)
    return w / w.sum()


def _matrix_pool(cfg: WorkloadConfig):
    """Build the (fingerprint-keyed) CSR pool for the workload."""
    if cfg.entries:
        entries = cfg.entries
    else:
        from ..matrices import representative_suite

        entries = representative_suite()[:cfg.n_matrices]
    dtype = np.dtype(cfg.dtype)
    pool = []
    for e in entries:
        csr = e.matrix().astype(dtype)
        pool.append((e.name, matrix_fingerprint(csr), csr))
    return pool


class _ModeledDevice:
    """Lazily-memoized modeled batch times for (matrix, k) pairs."""

    def __init__(self, device, dtype_bits: int) -> None:
        self.device = device
        self.dtype_bits = dtype_bits
        self._times: dict[tuple[str, int], tuple[float, float, float]] = {}

    def batch_cost(self, fingerprint: str, plan: DASPMatrix,
                   k: int) -> tuple[float, float, float]:
        """(device seconds, useful MMA flops, issued MMA flops)."""
        key = (fingerprint, k)
        got = self._times.get(key)
        if got is None:
            ev = spmm_events(plan, self.device, k)
            t = estimate_time(ev, self.device, dtype_bits=self.dtype_bits).total
            util = mma_utilization(plan, k)
            got = (t, util * ev.flops_mma, ev.flops_mma)
            self._times[key] = got
        return got


def run_workload(cfg: WorkloadConfig) -> ServerStats:
    """Simulate *cfg* and return the populated :class:`ServerStats`."""
    check(cfg.n_requests >= 1, "n_requests must be >= 1")
    device = get_device(cfg.device)
    dtype = np.dtype(cfg.dtype)
    rng = default_rng(cfg.seed)
    pool = _matrix_pool(cfg)
    weights = zipf_weights(len(pool), cfg.zipf_s)
    registry = PlanRegistry(cfg.cache_budget_bytes)
    batcher = RequestBatcher(cfg.max_batch, cfg.flush_timeout_s)
    modeled = _ModeledDevice(device, dtype.itemsize * 8)
    stats = ServerStats(device=device.name, dtype=str(dtype))

    rate = cfg.rate_rps
    if rate is None:
        # Saturating default: 4x the unbatched modeled capacity of the
        # most popular matrix (open-loop overload is the regime where
        # batching pays; an idle server degenerates to singletons).
        plan0, _ = registry.get(pool[0][2], fingerprint=pool[0][1])
        t1, _, _ = modeled.batch_cost(pool[0][1], plan0, 1)
        registry.clear()
        registry.hits = registry.misses = registry.evictions = 0
        rate = 4.0 / t1

    # Pre-draw arrivals and matrix choices (deterministic given seed).
    gaps = rng.exponential(1.0 / rate, cfg.n_requests)
    arrivals = np.cumsum(gaps)
    choices = rng.choice(len(pool), size=cfg.n_requests, p=weights)
    # Requests reuse a tiny per-matrix pool of x vectors: the driver
    # models traffic, the numeric path is covered by the server tests.
    xs = {fp: rng.uniform(-1, 1, csr.shape[1]).astype(dtype)
          for _, fp, csr in pool}

    device_free = 0.0          # when the modeled device next idles
    backlog: deque = deque()   # flushed batches waiting for the device
    completed: list[SpMVRequest] = []

    def plan_for(fp: str, csr) -> DASPMatrix:
        nonlocal device_free
        if cfg.plan_cache:
            plan, hit = registry.get(csr, fingerprint=fp)
            if not hit:
                pre = estimate_preprocess_time(
                    dasp_preprocess_events(plan), device)
                stats.observe_preprocess(pre)
                device_free += pre
            return plan
        # no-cache baseline: rebuild (and pay for) the plan every batch
        plan = DASPMatrix.from_csr(csr)
        pre = estimate_preprocess_time(dasp_preprocess_events(plan), device)
        stats.observe_preprocess(pre)
        device_free += pre
        return plan

    csr_by_fp = {fp: csr for _, fp, csr in pool}

    def start_batches(now: float) -> None:
        """Run every backlog batch whose start time has been reached."""
        nonlocal device_free
        while backlog and device_free <= now:
            batch = backlog.popleft()
            plan = plan_for(batch.fingerprint, csr_by_fp[batch.fingerprint])
            t, useful, issued = modeled.batch_cost(
                batch.fingerprint, plan, batch.k)
            start = max(device_free, batch.formed_s)
            done = start + t
            device_free = done
            batch.scatter(np.zeros((plan.shape[0], batch.k),
                                   dtype=plan.mma_shape.acc_dtype), done)
            stats.observe_batch(batch.k, t, useful_mma=useful,
                                issued_mma=issued)
            for req in batch.requests:
                stats.observe_latency(req.latency_s)
                completed.append(req)

    def enqueue(batches) -> None:
        for b in batches:
            backlog.append(b)

    for i in range(cfg.n_requests):
        now = float(arrivals[i])
        # timeout flushes due before this arrival
        while True:
            deadline = batcher.next_deadline()
            if deadline >= now:
                break
            # nextafter guards against (arrival + timeout) - arrival
            # rounding below the timeout and stalling the flush
            batches = batcher.due(np.nextafter(deadline, np.inf))
            if not batches:
                break
            enqueue(batches)
            start_batches(deadline)
        start_batches(now)
        stats.observe_request()
        if len(backlog) >= cfg.queue_depth:
            stats.observe_rejected()
            continue
        _, fp, csr = pool[choices[i]]
        req = SpMVRequest(req_id=i, fingerprint=fp, x=xs[fp], arrival_s=now)
        full = batcher.add(req, now)
        if full is not None:
            enqueue([full])

    # End of arrivals: flush stragglers and let the device drain.
    end = float(arrivals[-1])
    while True:
        deadline = batcher.next_deadline()
        if deadline == float("inf"):
            break
        batches = batcher.due(np.nextafter(deadline, np.inf))
        if not batches:
            break
        enqueue(batches)
        end = max(end, deadline)
    enqueue(batcher.flush_all(end))
    device_free = max(device_free, end)
    start_batches(float("inf"))

    stats.duration_s = max((r.completion_s for r in completed), default=end)
    snap = registry.snapshot()
    stats.cache_hits = snap["hits"]
    stats.cache_misses = snap["misses"]
    stats.cache_evictions = snap["evictions"]
    return stats


def compare_batched_unbatched(cfg: WorkloadConfig) -> dict[str, ServerStats]:
    """Run *cfg* batched and as request-at-a-time; same traffic trace."""
    batched = run_workload(cfg)
    unbatched = run_workload(replace(cfg, max_batch=1))
    return {"batched": batched, "unbatched": unbatched}
