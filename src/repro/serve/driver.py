"""Workload driver — open-loop synthetic traffic replay in virtual time.

Replays a serving workload against the batching + plan-caching pipeline
as a deterministic discrete-event simulation: Poisson arrivals at a
configured offered rate, matrix popularity drawn from a Zipf
distribution over the representative suite, a single modeled device
executing flushed batches in FIFO order, and a bounded device backlog
applying backpressure.  Every batch is charged its modeled device time
(:func:`repro.core.spmm.spmm_events` through the cost model), cache
misses additionally pay the modeled preprocessing cost (Figure 13), and
per-request latency is ``completion - arrival`` in virtual seconds.

**Chaos mode** (:class:`ChaosConfig`) injects a seeded fault mix over
the same traffic: preprocessing failures, transient kernel failures
(retried with the configured backoff, charged in virtual time),
NaN-corrupted outputs (caught by validation), extra latency, and an
optional permanently-poisoned matrix that drives its circuit breaker
open.  Un-servable batches degrade to the modeled merge-CSR fallback;
requests past their deadline fail fast and are counted.

Being single-threaded and clocked virtually, the driver is exactly
reproducible for a given seed — the property the serving benchmarks
rely on — while exercising the same :class:`RequestBatcher`,
:class:`PlanRegistry`, breaker, retry and fallback code the
real-threaded server runs.

The per-replica simulation state (device clock, backlog, batcher, plan
registry, breaker, stats) lives in :class:`ReplicaSim` so that
:func:`run_workload` (one replica) and the cluster driver
(:mod:`repro.cluster.driver`, N replicas behind a consistent-hash
router) execute the *same* code — the cluster's N=1 exact-parity gate
rests on this shared core.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from .._util import ReproError, check, default_rng
from ..core.delta import apply_delta_to_csr, random_delta
from ..core.format import DASPMatrix
from ..core.preprocess import traced_preprocess
from ..core.spmm import mma_phase_fraction, mma_utilization, spmm_events
from ..gpu.cost_model import estimate_time
from ..gpu.device import get_device
from ..obs import Obs
from ..resilience import (
    BreakerConfig,
    CircuitBreaker,
    FallbackExecutor,
    FaultInjector,
    FaultPlan,
    FaultRule,
    KernelFault,
    NumericFault,
    RetryPolicy,
)
from ..shard import (
    ShardedPlan,
    choose_shards,
    sharded_batch_cost,
    sharded_phase_fraction,
    sharded_spmm_events,
    traced_preprocess_sharded,
)
from ..core.spmm_block import (
    choose_spmm_strategy,
    reorder_from_perm,
    spmm_tiled_overlap_cost,
)
from ..pipeline import (
    PipelineConfig,
    PrefetchLane,
    SpeculativeWarmer,
    WarmerConfig,
    warm_action,
)
from .batcher import Batch, DEFAULT_FLUSH_TIMEOUT_S, MMA_N, RequestBatcher
from .plan_cache import DEFAULT_BUDGET_BYTES, PlanRegistry, matrix_fingerprint
from .request import SpMMRequest, SpMVRequest
from .stats import ServerStats


@dataclass
class ChaosConfig:
    """Seeded fault mix injected over the synthetic workload.

    Attributes
    ----------
    fault_rate:
        Total firing probability, split evenly over *kinds* (0.05 =
        5% of eligible calls hit some fault).
    seed:
        RNG seed of the injector (independent of the traffic seed).
    latency_us:
        Extra modeled microseconds charged when a latency rule fires.
    kinds:
        Which fault kinds participate in the even split.
    poison_rank / poison_rate:
        Optionally make the ``poison_rank``-th pool matrix fail its
        kernel with probability ``poison_rate`` — the deterministic way
        to exercise the circuit breaker under Zipf traffic.
    """

    fault_rate: float = 0.05
    seed: int = 7
    latency_us: float = 300.0
    kinds: tuple = ("preprocess_error", "kernel_error", "kernel_nan",
                    "latency")
    poison_rank: int | None = None
    poison_rate: float = 1.0


@dataclass
class WorkloadConfig:
    """Knobs of one synthetic serving workload.

    Attributes
    ----------
    n_requests / rate_rps / zipf_s / seed:
        Open-loop traffic shape: request count, Poisson arrival rate
        (requests per virtual second), Zipf popularity exponent over
        the matrix pool, RNG seed.  ``rate_rps=None`` auto-picks a rate
        that saturates the modeled device (~4x its unbatched capacity).
    n_matrices / dtype / device:
        Pool size (taken from the representative suite in order) and
        the modeled precision/hardware.
    max_batch / flush_timeout_s:
        Batching policy (``max_batch=1`` is the request-at-a-time
        baseline).
    cache_budget_bytes / plan_cache:
        Plan-registry byte budget; ``plan_cache=False`` rebuilds the
        plan for every batch (the re-preprocessing baseline).
    queue_depth:
        Bounded device backlog (flushed-but-unstarted batches); arrivals
        beyond it are rejected.
    deadline_s / retry / breaker / fallback / chaos:
        Resilience knobs (virtual-time deadlines per request, retry
        policy for transient kernel failures, circuit-breaker
        thresholds, merge-CSR degradation on/off, fault mix).  All
        inert by default: with ``chaos=None`` and ``deadline_s=None``
        the driver behaves exactly like the resilience-free baseline.
    shards / shard_workers:
        Row sharding (:mod:`repro.shard`): ``shards=None`` keeps the
        single-kernel path, an integer partitions every pool matrix
        into that many nnz-balanced row bands, ``"auto"`` picks the
        count per matrix from the makespan cost model.  A sharded
        batch is charged the LPT makespan of its per-shard modeled
        times over ``shard_workers`` concurrent lanes instead of the
        single-chain time.
    store / warm_start:
        Durable plan tier (:class:`repro.store.PlanStore` or a
        path-like): builds write through as ``.daspz`` artifacts and
        cache misses try a disk load first, charging the *modeled*
        load time instead of the rebuild.  ``warm_start=True``
        additionally preloads every pool matrix's artifact before
        traffic starts — off the virtual clock, like a server
        restarting from its previous run's store.
    pipeline:
        Async pipelined execution (:mod:`repro.pipeline`): ``True`` or
        a :class:`~repro.pipeline.PipelineConfig` charges cold-matrix
        plan loads/builds to a modeled prefetch lane instead of the
        device clock — the batch parks until the lane finishes while
        the device keeps executing resident matrices — and prices
        shard bands / SpMM column tiles with the double-buffered
        overlap schedule.  Results are bitwise-identical to
        pipeline-off; only the timeline changes.  ``False`` (default)
        keeps the pre-pipeline driver bit-exactly.
    warmer:
        Speculative plan warmer (``True`` or a
        :class:`~repro.pipeline.WarmerConfig`): watches the Zipf
        popularity estimate from the run's obs counters and
        preloads/prebuilds not-yet-requested pool matrices on the
        prefetch lane, choosing load vs rebuild with the store's
        modeled gate.  Implies the prefetch lane even when
        ``pipeline`` is off.
    spmm_mix / spmm_ks:
        Large-k SpMM traffic: ``spmm_mix`` is the fraction of requests
        issued as :class:`~repro.serve.SpMMRequest` blocks (bypassing
        the coalescing batcher, exactly like the real server), with
        ``k`` drawn uniformly from ``spmm_ks``.  The mix uses a
        dedicated RNG stream (``seed + 13``), drawn only when the mix
        is nonzero — an SpMV-only workload stays bit-identical to the
        pre-mix driver.
    update_mix / structural_frac / update_entries:
        Dynamic-matrix traffic: ``update_mix`` is the fraction of
        arrival slots that carry a matrix *delta* instead of a read —
        the replica patches the resident plan through
        :meth:`repro.serve.PlanRegistry.update` (advancing the version
        chain; queued reads drain against their pinned version) rather
        than rebuilding it.  ``structural_frac`` of the updates change
        the sparsity pattern (:class:`repro.core.StructuralUpdate`);
        the rest touch values only.  Deltas draw ``update_entries``
        coordinates each from a dedicated RNG stream (``seed + 17``),
        touched only when the mix is nonzero — a static workload stays
        bit-identical to the pre-delta driver.
    """

    n_requests: int = 2000
    rate_rps: float | None = None
    zipf_s: float = 1.1
    seed: int = 2023
    n_matrices: int = 4
    dtype: str = "float64"
    device: str = "A100"
    max_batch: int = MMA_N
    flush_timeout_s: float = DEFAULT_FLUSH_TIMEOUT_S
    cache_budget_bytes: int = DEFAULT_BUDGET_BYTES
    plan_cache: bool = True
    queue_depth: int = 256
    entries: list = field(default_factory=list)  # overrides the suite pool
    deadline_s: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    fallback: bool = True
    chaos: ChaosConfig | None = None
    shards: int | str | None = None
    shard_workers: int = 4
    store: object = None
    warm_start: bool = False
    pipeline: PipelineConfig | bool = False
    warmer: WarmerConfig | bool = False
    spmm_mix: float = 0.0
    spmm_ks: tuple = (16, 32, 64)
    update_mix: float = 0.0
    structural_frac: float = 0.3
    update_entries: int = 8


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf popularity over ``n`` ranked items."""
    check(n >= 1, "need at least one item")
    w = np.arange(1, n + 1, dtype=np.float64) ** -float(s)
    return w / w.sum()


def _resolve_pipeline(cfg: WorkloadConfig) -> PipelineConfig | None:
    """Normalize the ``pipeline`` field (bool shorthand) to a config."""
    if isinstance(cfg.pipeline, PipelineConfig):
        return cfg.pipeline
    return PipelineConfig() if cfg.pipeline else None


def _resolve_warmer(cfg: WorkloadConfig) -> WarmerConfig | None:
    """Normalize the ``warmer`` field (bool shorthand) to a config."""
    if isinstance(cfg.warmer, WarmerConfig):
        return cfg.warmer
    return WarmerConfig() if cfg.warmer else None


def _modeled_for(cfg: WorkloadConfig, device, dtype) -> "_ModeledDevice":
    """The run's memoized device model, with pipeline pricing switched
    on only when the workload can exercise it (strategy-priced large-k
    batches change modeled times, so pre-mix runs must not see them)."""
    pcfg = _resolve_pipeline(cfg)
    return _ModeledDevice(
        device, np.dtype(dtype).itemsize * 8, workers=cfg.shard_workers,
        double_buffer=pcfg.double_buffer if pcfg is not None else False,
        strategy_large_k=pcfg is not None or cfg.spmm_mix > 0.0)


def _matrix_pool(cfg: WorkloadConfig):
    """Build the (fingerprint-keyed) CSR pool for the workload."""
    if cfg.entries:
        entries = cfg.entries
    else:
        from ..matrices import representative_suite

        entries = representative_suite()[:cfg.n_matrices]
    dtype = np.dtype(cfg.dtype)
    pool = []
    for e in entries:
        csr = e.matrix().astype(dtype)
        pool.append((e.name, matrix_fingerprint(csr), csr))
    return pool


def _build_injector(cfg: WorkloadConfig, pool) -> FaultInjector | None:
    chaos = cfg.chaos
    if chaos is None:
        return None
    plan = FaultPlan.chaos_mix(chaos.fault_rate, seed=chaos.seed,
                               latency_s=chaos.latency_us * 1e-6,
                               kinds=chaos.kinds)
    if chaos.poison_rank is not None:
        check(0 <= chaos.poison_rank < len(pool),
              "poison_rank outside the matrix pool")
        plan.rules.append(FaultRule(
            kind="kernel_error", rate=chaos.poison_rate,
            fingerprint=pool[chaos.poison_rank][1]))
    return FaultInjector(plan)


class _ModeledDevice:
    """Lazily-memoized modeled batch times for (matrix, k) pairs.

    A :class:`~repro.shard.ShardedPlan` entry is charged the LPT
    makespan of its per-shard times over ``workers`` lanes (the fan-out
    the real-threaded server performs), with the shards' events combined
    for span attributes.

    ``double_buffer`` prices shard bands (and large-k column tiles)
    with the overlapped schedule of :func:`repro.core.overlap_schedule`
    — the pipeline mode's clock.  ``strategy_large_k`` prices
    ``k > MMA_N`` unsharded batches with the tuner-chosen large-k
    strategy (what the real server executes) instead of the flat
    ``spmm_events`` pass; it is enabled only when the workload
    actually produces large-k traffic so pre-mix runs stay bit-exact.
    """

    def __init__(self, device, dtype_bits: int, *, workers: int = 1,
                 double_buffer: bool = False,
                 strategy_large_k: bool = False) -> None:
        self.device = device
        self.dtype_bits = dtype_bits
        self.workers = int(workers)
        self.double_buffer = bool(double_buffer)
        self.strategy_large_k = bool(strategy_large_k)
        #: fingerprint -> ReorderResult rebuilt from a stored ``aux.``
        #: permutation (fed by the warmer; consulted by the tuner).
        self.reorder_hints: dict[str, object] = {}
        self._times: dict[tuple[str, int], tuple] = {}
        self._frac: dict[str, float] = {}
        self._strategies: dict[tuple[str, int], object] = {}

    def strategy(self, fingerprint: str, plan, k: int):
        """Memoized tuner choice for one unsharded (matrix, k) pair."""
        key = (fingerprint, k)
        strat = self._strategies.get(key)
        if strat is None:
            hint = self.reorder_hints.get(fingerprint)
            strat = choose_spmm_strategy(plan, k, self.device,
                                         reorder_hint=hint)
            self._strategies[key] = strat
        return strat

    def _entry(self, fingerprint: str, plan, k: int) -> tuple:
        key = (fingerprint, k)
        got = self._times.get(key)
        if got is None:
            if isinstance(plan, ShardedPlan):
                cost = sharded_batch_cost(plan, self.device, k,
                                          workers=self.workers,
                                          dtype_bits=self.dtype_bits,
                                          double_buffer=self.double_buffer)
                evs = sharded_spmm_events(plan, self.device, k)
                combined = evs[0]
                for e in evs[1:]:
                    combined = combined.combine(e)
                got = (cost.makespan, cost.useful_mma, cost.issued_mma,
                       combined)
            elif self.strategy_large_k and k > plan.mma_shape.n:
                strat = self.strategy(fingerprint, plan, k)
                t = strat.modeled_s
                if self.double_buffer and strat.name != "looped":
                    _, t = spmm_tiled_overlap_cost(
                        plan, self.device, k, tile_k=strat.tile_k,
                        stats=strat.stats, dtype_bits=self.dtype_bits)
                ev = spmm_events(plan, self.device, k)
                util = mma_utilization(plan, k)
                got = (t, util * ev.flops_mma, ev.flops_mma, ev)
            else:
                ev = spmm_events(plan, self.device, k)
                t = estimate_time(ev, self.device,
                                  dtype_bits=self.dtype_bits).total
                util = mma_utilization(plan, k)
                got = (t, util * ev.flops_mma, ev.flops_mma, ev)
            self._times[key] = got
        return got

    def batch_cost(self, fingerprint: str, plan,
                   k: int) -> tuple[float, float, float]:
        """(device seconds, useful MMA flops, issued MMA flops)."""
        return self._entry(fingerprint, plan, k)[:3]

    def events(self, fingerprint: str, plan, k: int):
        """The memoized :class:`KernelEvents` behind :meth:`batch_cost`."""
        return self._entry(fingerprint, plan, k)[3]

    def phase_fraction(self, fingerprint: str, plan) -> float:
        """Memoized phase split for span attribution."""
        frac = self._frac.get(fingerprint)
        if frac is None:
            frac = (sharded_phase_fraction(plan)
                    if isinstance(plan, ShardedPlan)
                    else mma_phase_fraction(plan))
            self._frac[fingerprint] = frac
        return frac


class ReplicaSim:
    """One modeled serving replica in virtual time.

    Owns everything the single-replica driver used to keep in closures:
    the modeled device clock (``device_free``), the bounded backlog, a
    :class:`RequestBatcher`, a :class:`PlanRegistry` (optionally backed
    by a :class:`repro.store.PlanStore`), a :class:`CircuitBreaker`, a
    :class:`FallbackExecutor` and the per-replica :class:`ServerStats`.

    :func:`run_workload` drives exactly one instance; the cluster
    driver drives N of them behind a consistent-hash router, each with
    its own ``obs`` handle so queue-depth gauges and breaker counters
    stay per-replica (the signals :class:`repro.cluster.ReplicaHealth`
    consumes).

    Parameters
    ----------
    cfg:
        The :class:`WorkloadConfig` whose serving knobs (batching,
        cache budget, queue depth, resilience) this replica applies.
    device / dtype:
        Resolved device object and numpy dtype (shared by the run).
    pool:
        ``(name, fingerprint, csr)`` triples of the matrix pool.
    obs:
        Per-replica observability handle (fresh private one when
        omitted).
    injector:
        Optional per-replica :class:`FaultInjector`.
    retry_rng:
        Retry-jitter RNG stream; *shared* across the run's replicas so
        the N=1 cluster draws exactly the single-driver sequence.
    modeled:
        Memoized :class:`_ModeledDevice`; shareable across replicas
        (plan costs are deterministic per fingerprint).
    store:
        Optional disk tier for this replica's plan registry (a
        :class:`repro.store.PlanStore` or a path-like; replicas of one
        cluster each open their own instance over a shared directory).
    replica_id:
        Stable identifier used in cluster routing and span attribution.
    materialize_results:
        ``False`` skips allocating per-request result vectors (the
        virtual driver scatters zeros anyway) — the memory lever that
        lets the cluster driver replay millions of requests.
    time_scale:
        Multiplier on every modeled device second this replica charges
        (kernels, preprocessing, fallback) — the ``slow_replica`` chaos
        scenario: a straggler that is alive and correct, just slow.
        The default 1.0 skips the multiply entirely, keeping bit-exact
        parity with pre-overload runs.
    overload:
        Shared :class:`repro.overload.OverloadContext` of the run
        (cluster-wide retry budget, hedge counters and pair
        accounting); ``None`` keeps all overload machinery inert.
    """

    def __init__(self, cfg: WorkloadConfig, *, device, dtype, pool,
                 obs: Obs | None = None, injector=None, retry_rng=None,
                 modeled: _ModeledDevice | None = None, store=None,
                 replica_id: str = "r0",
                 materialize_results: bool = True,
                 time_scale: float = 1.0,
                 overload=None) -> None:
        if obs is None or not obs.enabled:
            obs = Obs()
        self.cfg = cfg
        self.device = device
        self.dtype = dtype
        self.obs = obs
        self.tracing = obs.tracing
        self.replica_id = replica_id
        self.materialize_results = bool(materialize_results)
        self.injector = injector
        if injector is not None:
            injector.bind(obs)
        self.registry = PlanRegistry(cfg.cache_budget_bytes,
                                     fault_injector=injector, obs=obs,
                                     store=store, device=device)
        self.batcher = RequestBatcher(cfg.max_batch, cfg.flush_timeout_s)
        self.modeled = modeled if modeled is not None \
            else _modeled_for(cfg, device, dtype)
        self.stats = ServerStats(device=device.name, dtype=str(dtype), obs=obs)
        self.breaker = CircuitBreaker(cfg.breaker, obs=obs)
        self.fallback = FallbackExecutor(device)
        self.retry_rng = retry_rng if retry_rng is not None \
            else default_rng(cfg.seed + 1)
        self.csr_by_fp = {fp: csr for _, fp, csr in pool}
        check(time_scale > 0.0, "time_scale must be > 0")
        self.time_scale = float(time_scale)
        self.overload = overload
        self.device_free = 0.0      # when the modeled device next idles
        self.backlog: deque = deque()  # flushed batches awaiting the device
        self.completed: list[SpMVRequest] = []
        self._shard_choice: dict[str, int] = {}
        # --- async pipeline / speculative warming state ---------------
        self.pipeline_cfg = _resolve_pipeline(cfg)
        warmer_cfg = _resolve_warmer(cfg)
        # the warmer needs a lane to charge speculative loads to, even
        # with the request pipeline itself off
        if self.pipeline_cfg is not None or warmer_cfg is not None:
            lanes = self.pipeline_cfg.lanes if self.pipeline_cfg else 1
            self._lane = PrefetchLane(obs=obs, lanes=lanes)
            self._parked_total = obs.counter("pipeline.parked_total")
        else:
            self._lane = None
        if warmer_cfg is not None:
            self._warmer = SpeculativeWarmer(warmer_cfg, obs=obs)
            for _, fp, _csr in pool:
                self._warmer.register(fp)
        else:
            self._warmer = None
        #: fingerprint -> modeled completion time of an in-flight plan
        #: acquisition on the lane.  The plan is already resident on
        #: the Python side (the sim is single-threaded); batches must
        #: still park until the lane clock says the load finished.
        self._prefetching: dict[str, float] = {}
        self._parked: list[tuple[float, int, Batch]] = []
        self._park_seq = 0

    def _scaled(self, seconds: float) -> float:
        """Apply the slow-replica time multiplier (identity at 1.0 —
        not even a float multiply, so default runs stay bit-exact)."""
        if self.time_scale == 1.0:
            return seconds
        return seconds * self.time_scale

    # ------------------------------------------------------------------
    # signals (consumed by the cluster health monitor)
    # ------------------------------------------------------------------
    @property
    def backlog_depth(self) -> int:
        """Flushed-but-unstarted batches (the queue-depth signal)."""
        return len(self.backlog)

    def open_circuits(self) -> int:
        """Fingerprints whose circuit is currently not closed."""
        return sum(1 for state in self.breaker.snapshot().values()
                   if state != "closed")

    # ------------------------------------------------------------------
    # plan acquisition
    # ------------------------------------------------------------------
    def warm(self, fingerprints) -> float:
        """Preload *fingerprints* from the disk tier (off the virtual
        clock — a restart reading its previous run's artifacts).
        Returns the total modeled load seconds charged."""
        total = 0.0
        if self.registry.store is None:
            return total
        for fp in fingerprints:
            load_s = self.registry.warm(fp)
            if load_s:
                self.stats.observe_preprocess(load_s)
                total += load_s
        return total

    def warm_many(self, fingerprints, now: float = 0.0) -> None:
        """Warm-start entry point (startup preload, router warm-up,
        post-rebalance re-warm).  With the speculative warmer enabled
        the warm rides its machinery — the modeled load-vs-rebuild
        gate, lane-charged acquisition, persisted ``aux.`` reorder
        permutations; otherwise it is the legacy store-only preload."""
        if self._warmer is None or self._lane is None:
            self.warm(fingerprints)
            return
        for fp in fingerprints:
            self._warmer.register(fp)
            if fp in self._prefetching or self.registry.peek(fp) is not None:
                continue
            self._speculative_warm(fp, now)

    def _load_reorder_hint(self, fp: str, plan) -> None:
        """Stash a stored ``spmm.reorder_perm`` as the tuner's hint so
        the large-k tier never re-derives a persisted decision."""
        if isinstance(plan, ShardedPlan) or fp in self.modeled.reorder_hints:
            return
        aux = self.registry.load_aux(fp)
        if not aux or "spmm.reorder_perm" not in aux:
            return
        perm = np.asarray(aux["spmm.reorder_perm"])
        self.modeled.reorder_hints[fp] = reorder_from_perm(
            plan.csr, perm, mma_shape=plan.mma_shape)
        self.obs.counter("spmm.reorder.loaded_total").inc()

    def _start_prefetch(self, fp: str, now: float) -> None:
        """Acquire *fp*'s plan off the device clock (pipeline mode).

        The load/build happens immediately on the Python side through
        the registry's single-flight; its modeled cost is booked on the
        prefetch lane, and batches needing the plan park until the
        lane's completion time."""
        pre_cell: dict[str, float] = {}

        def build(matrix):
            plan, pre = self._build_plan(fp, matrix)
            pre_cell["s"] = pre
            return plan

        try:
            plan, source, load_s = self.registry.get_ex(
                self.csr_by_fp[fp], fingerprint=fp, builder=build)
        except ReproError:
            # a failed speculative acquisition must not take traffic
            # down; the demand path retries (and pays) later
            self.obs.counter("pipeline.warm_failed_total").inc()
            return
        if source == "built":
            cost, kind = self._scaled(pre_cell.get("s", 0.0)), "build"
        elif source == "store":
            cost, kind = self._scaled(load_s), "load"
            self._load_reorder_hint(fp, plan)
        else:                       # already resident (or pending)
            return
        if cost:
            self.stats.observe_preprocess(cost)
        self._prefetching[fp] = self._lane.schedule(now, cost, kind=kind)

    def _speculative_warm(self, fp: str, now: float) -> None:
        """One warmer nomination: load vs rebuild by the store's
        modeled gate, charged to the prefetch lane."""
        action = warm_action(self.registry.store, fp, self.device)
        self.obs.counter("pipeline.warm_total", {"action": action}).inc()
        if action == "load":
            load_s = self.registry.warm(fp)
            if load_s is None:      # quarantined/corrupt: rebuild
                self._start_prefetch(fp, now)
                return
            cost = self._scaled(load_s)
            if cost:
                self.stats.observe_preprocess(cost)
            self._load_reorder_hint(fp, self.registry.peek(fp))
            self.obs.counter("pipeline.warm_load_total").inc()
            self._prefetching[fp] = self._lane.schedule(now, cost,
                                                        kind="warm.load")
        else:
            self.obs.counter("pipeline.warm_build_total").inc()
            self._start_prefetch(fp, now)

    def _warm_tick(self, now: float) -> None:
        """Let the warmer nominate and dispatch speculative warms."""
        due = self._warmer.due(resident=lambda f: (
            f in self._prefetching or self.registry.peek(f) is not None))
        for fp in due:
            self._speculative_warm(fp, now)

    def _park_if_pending(self, batch, fp: str) -> bool:
        """Park *batch* while its plan is still in flight on the lane.

        Returns True when parked; the device stays free for batches of
        resident matrices — the pipelining win."""
        ready = self._prefetching.get(fp)
        if ready is None:
            return False
        if ready > max(self.device_free, batch.formed_s):
            self._parked.append((ready, self._park_seq, batch))
            self._park_seq += 1
            self._parked_total.inc()
            return True
        self._prefetching.pop(fp, None)
        return False

    def _release_parked(self, now: float) -> None:
        """Re-enqueue parked batches whose plan acquisition finished."""
        due = [e for e in self._parked if e[0] <= now]
        if not due:
            return
        due.sort()
        self._parked = [e for e in self._parked if e[0] > now]
        for ready, _seq, batch in due:
            self._prefetching.pop(batch.fingerprint, None)
            # the batch cannot start before its plan is usable
            batch.formed_s = max(batch.formed_s, ready)
            self.backlog.append(batch)

    def _shards_for(self, fp: str, csr) -> int:
        """Resolve the shard count for one matrix (memoized for auto)."""
        cfg = self.cfg
        if cfg.shards in (None, 1):
            return 1
        if cfg.shards == "auto":
            S = self._shard_choice.get(fp)
            if S is None:
                # Offline model sweep; the winning plan is built — and
                # charged — through the traced path in ``_build_plan``.
                S = int(choose_shards(csr, cfg.shard_workers,
                                      device=self.device,
                                      k=cfg.max_batch).best_value)
                self._shard_choice[fp] = S
            return S
        return int(cfg.shards)

    def _build_plan(self, fp: str, csr):
        S = self._shards_for(fp, csr)
        if S > 1:
            return traced_preprocess_sharded(
                csr, self.device, S, obs=self.obs, injector=self.injector,
                fingerprint=fp)
        return traced_preprocess(csr, self.device, obs=self.obs,
                                 injector=self.injector, fingerprint=fp)

    def _batch_key(self, fp: str, batch) -> str:
        """Registry/cost key for *batch*: the version its requests were
        admitted against.  Static runs (version 0, no chain) keep the
        bare fingerprint so every pre-delta code path — and its memo
        keys — stays bit-identical."""
        v = batch.requests[0].version if batch.requests else 0
        if v == 0 and self.registry.version_of(fp) == 0:
            return fp
        return self.registry.versioned_key(fp, v)

    def plan_for(self, fp: str, csr, *, key: str | None = None):
        """Fetch/build a plan, charging (and possibly failing) the
        preprocessing pass.  Raises on injected preprocess faults and
        on plans over the cache budget.

        ``key`` is the (possibly versioned) registry key; the bare
        *fp* still names the matrix for the injector and traced spans.
        """
        pre_cell: dict[str, float] = {}

        def build(matrix):
            plan, pre = self._build_plan(fp, matrix)
            pre_cell["s"] = pre
            return plan

        if self.cfg.plan_cache:
            plan, source, load_s = self.registry.get_ex(
                csr, fingerprint=key if key is not None else fp,
                builder=build)
            if source == "built":
                pre = self._scaled(pre_cell.get("s", 0.0))
                self.stats.observe_preprocess(pre)
                self.device_free += pre
            elif source == "store":
                # an in-band disk load occupies the serving timeline
                # just like the rebuild it replaces — at modeled cost
                load_s = self._scaled(load_s)
                self.stats.observe_preprocess(load_s)
                self.device_free += load_s
            return plan
        # no-cache baseline: rebuild (and pay for) the plan every batch
        plan, pre = self._build_plan(fp, csr)
        pre = self._scaled(pre)
        self.stats.observe_preprocess(pre)
        self.device_free += pre
        return plan

    # ------------------------------------------------------------------
    # dynamic matrices — delta application
    # ------------------------------------------------------------------
    def apply_update(self, fp: str, delta, now: float, *,
                     persist: bool = True) -> int:
        """Apply one matrix *delta* at virtual time *now*.

        Pending reads for the matrix are fenced out of the batcher
        first (they were admitted against the old version and must
        execute against it), then the registry patches the resident
        plan and advances the version chain; the modeled patch time
        occupies the device timeline exactly like the rebuild it
        replaces would.  ``persist=False`` suppresses the store delta
        write — cluster replicas other than the matrix's home replica.

        With the plan cache off there is no plan to patch: the
        reference CSR evolves through
        :func:`repro.core.apply_delta_to_csr` and the next batch's
        rebuild pays the full preprocessing cost, which is exactly the
        rebuild-per-update baseline the patch path is gated against.
        Returns the new version (0 on the no-cache path).
        """
        fence = self.batcher.flush(fp, now)
        if fence is not None:
            self.enqueue([fence])
        if not self.cfg.plan_cache:
            self.csr_by_fp[fp] = apply_delta_to_csr(self.csr_by_fp[fp], delta)
            kind = "structural" if hasattr(delta, "insert_rows") else "value"
            self.obs.counter(f"delta.{kind}_total").inc()
            return 0
        with self.obs.span("plan.patch", attrs={"matrix": fp[:8]}
                           if self.tracing else None) as sp:
            version, info, plan = self.registry.update(
                fp, delta, csr=self.csr_by_fp[fp], persist=persist)
            patch_s = self._scaled(info.seconds(self.device))
            sp.set_device_time(patch_s)
            if self.tracing:
                sp.set_attr("version", version)
                sp.set_attr("kind", info.kind)
        self.stats.observe_preprocess(patch_s)
        self.device_free += patch_s
        # keep the reference CSR at the head of the chain — the next
        # delta is drawn against (and the fallback partitions) this
        self.csr_by_fp[fp] = plan.csr
        return version

    # ------------------------------------------------------------------
    # batch execution on the modeled device
    # ------------------------------------------------------------------
    @staticmethod
    def _side(req: SpMVRequest) -> str:
        return "hedge" if req.shadow else "primary"

    def _terminal_count(self, reqs) -> int:
        """How many of *reqs* are terminal *logical* failures.

        Pair-less requests always are; a hedged copy only when its
        failure is the pair's second (both copies dead, neither won) —
        so each logical request gets exactly one counted outcome no
        matter how its two copies fare."""
        if self.overload is None:
            return len(reqs)
        return sum(1 for r in reqs
                   if r.pair is None or r.pair.mark_failed(self._side(r)))

    def _allow_retry(self) -> bool:
        """Spend a global retry token (always allowed with no budget)."""
        ctx = self.overload
        if ctx is None or ctx.retry_budget is None:
            return True
        return ctx.retry_budget.try_spend()

    def _finish(self, batch, done: float, t: float, useful: float,
                issued: float, degraded: bool) -> None:
        self.device_free = done
        if self.materialize_results:
            plan_rows = self.csr_by_fp[batch.fingerprint].shape[0]
            batch.scatter(np.zeros((plan_rows, batch.k)), done)
        else:
            for req in batch.requests:
                req.completion_s = done
        ctx = self.overload
        if ctx is None:
            winners = batch.requests
        else:
            # first processed completion wins a hedge pair; the loser's
            # work is burned (device time above) but produces no
            # user-visible outcome
            winners = []
            for req in batch.requests:
                if req.pair is None or req.pair.resolve(self._side(req)):
                    if req.pair is not None and req.shadow:
                        ctx.hedges_won.inc()
                    winners.append(req)
                else:
                    ctx.hedges_wasted.inc()
        if degraded:
            self.stats.observe_degraded(len(winners))
        self.stats.observe_batch(batch.k, t, useful_mma=useful,
                                 issued_mma=issued, completed=len(winners))
        for req in winners:
            self.stats.observe_latency(req.latency_s)
            self.completed.append(req)

    def _degrade(self, batch, start: float) -> None:
        fp = batch.fingerprint
        with self.obs.span("fallback", attrs={"matrix": fp[:8]}
                           if self.tracing else None) as sp:
            # memoized per version key: the merge-CSR cost of an
            # updated matrix must not reuse the pre-update partition
            t, pre_s = self.fallback.modeled_cost(self._batch_key(fp, batch),
                                                  self.csr_by_fp[fp],
                                                  batch.k)
            t, pre_s = self._scaled(t), self._scaled(pre_s)
            sp.set_device_time(t)
            if pre_s:
                self.stats.observe_preprocess(pre_s)
                start += pre_s
                if self.tracing:
                    sp.child("preprocess", device_s=pre_s)
        self._finish(batch, start + t, t, 0.0, 0.0, degraded=True)

    def _run_kernel_attempt(self, fp: str, plan, batch, attempt: int,
                            cost_key: str | None = None):
        """One modeled kernel attempt inside a ``kernel`` span.

        ``cost_key`` keys the memoized device model (a versioned key
        once the matrix has a delta chain — patched plans must not
        reuse pre-update modeled times); the bare *fp* still names the
        matrix for the chaos injector, whose poison rules match bare
        fingerprints.
        """
        cfg, device, dtype = self.cfg, self.device, self.dtype
        ck = cost_key if cost_key is not None else fp
        with self.obs.span("kernel", attrs={"attempt": attempt}
                           if self.tracing else None) as sp:
            t, useful, issued = self.modeled.batch_cost(ck, plan, batch.k)
            t = self._scaled(t)
            fault: Exception | None = None
            extra_s = 0.0
            if self.injector is not None:
                try:
                    decision = self.injector.check_kernel(fp)
                    extra_s = self._scaled(decision.latency_s)
                    if decision.corrupt:
                        fault = NumericFault("injected NaN output")
                except KernelFault as exc:
                    fault = exc
            if self.tracing:
                if fault is not None:
                    sp.status = "error"
                    sp.set_attr("fault", type(fault).__name__)
                else:
                    # only successful attempts reach the stats counters
                    total = t + extra_s
                    if isinstance(plan, ShardedPlan):
                        # one `shard` span per band; phase children are
                        # scaled so the attributed sum equals the
                        # makespan the batch is charged.
                        sp.set_attr("shards", plan.n_shards)
                        cost = sharded_batch_cost(
                            plan, device, batch.k, workers=cfg.shard_workers,
                            dtype_bits=dtype.itemsize * 8)
                        scale = (total / cost.serial) if cost.serial else 0.0
                        for i, band in enumerate(plan.shards):
                            t_i = cost.per_shard[i]
                            frac_i = mma_phase_fraction(band.dasp)
                            ssp = sp.child("shard", attrs={
                                "shard": i, "modeled_s": t_i})
                            ssp.child("regular_mma",
                                      device_s=t_i * scale * frac_i)
                            ssp.child("irregular_csr",
                                      device_s=t_i * scale * (1.0 - frac_i))
                    else:
                        frac = self.modeled.phase_fraction(ck, plan)
                        sp.child("regular_mma", device_s=total * frac)
                        sp.child("irregular_csr",
                                 device_s=total * (1.0 - frac))
                    ev = self.modeled.events(ck, plan, batch.k)
                    for key, value in ev.as_attrs().items():
                        sp.set_attr(key, value)
        return t, useful, issued, extra_s, fault

    def _run_one(self, batch) -> None:
        """Execute one batch on the modeled device, chaos included."""
        fp = batch.fingerprint
        if self._lane is not None and self._park_if_pending(batch, fp):
            return
        with self.obs.span("batch", attrs={"matrix": fp[:8], "k": batch.k}
                           if self.tracing else None):
            self._run_one_inner(batch, fp)

    def _run_one_inner(self, batch, fp: str) -> None:
        cfg = self.cfg
        start = max(self.device_free, batch.formed_s)
        if self.overload is not None:
            # drop copies whose hedge pair the other replica already
            # won — first-wins cancellation before any work or expiry
            # accounting happens here
            live = []
            for r in batch.requests:
                if r.pair is not None and r.pair.cancelled(self._side(r)):
                    self.overload.hedges_wasted.inc()
                else:
                    live.append(r)
            batch.requests = live
            if not batch.requests:
                return
        if cfg.deadline_s is not None:
            expired = batch.split_expired(start)
            if expired:
                self.stats.observe_deadline_exceeded(
                    self._terminal_count(expired))
            if not batch.requests:
                return
        if self.injector is not None and not self.breaker.allow(fp, start):
            if cfg.fallback:
                self._degrade(batch, start)
            else:
                self.stats.observe_failed(
                    self._terminal_count(batch.requests))
            return
        key = self._batch_key(fp, batch)
        try:
            plan = self.plan_for(fp, self.csr_by_fp[fp], key=key)
        except ReproError:
            if self.injector is not None:
                self.breaker.record_failure(fp, start)
            if cfg.fallback:
                self._degrade(batch, max(self.device_free, start))
            else:
                self.stats.observe_failed(
                    self._terminal_count(batch.requests))
            return
        if self.modeled.strategy_large_k and not isinstance(plan, ShardedPlan) \
                and batch.k > plan.mma_shape.n:
            strat = self.modeled.strategy(key, plan, batch.k)
            self.stats.observe_spmm_large(strat.name)
        for attempt in range(cfg.retry.max_retries + 1):
            t, useful, issued, extra_s, fault = self._run_kernel_attempt(
                fp, plan, batch, attempt, cost_key=key)
            start = max(self.device_free, batch.formed_s)
            if fault is None:
                if self.injector is not None:
                    self.breaker.record_success(fp, start + t + extra_s)
                self._finish(batch, start + t + extra_s, t + extra_s,
                             useful, issued, degraded=False)
                return
            # failed attempt: the wasted kernel time is still burned
            self.device_free = start + t + extra_s
            self.breaker.record_failure(fp, self.device_free)
            if attempt < cfg.retry.max_retries and self._allow_retry():
                self.stats.observe_retry()
                self.device_free += cfg.retry.backoff_s(attempt + 1,
                                                        self.retry_rng)
                continue
            # out of attempts — or the global retry budget is dry, in
            # which case remaining attempts are skipped and the batch
            # goes straight to the merge-CSR fallback
            if cfg.fallback:
                self._degrade(batch, self.device_free)
            else:
                self.stats.observe_failed(
                    self._terminal_count(batch.requests))
            return

    # ------------------------------------------------------------------
    # virtual-time event loop hooks
    # ------------------------------------------------------------------
    def start_batches(self, now: float) -> None:
        """Run every backlog batch whose start time has been reached."""
        while True:
            if self._parked:
                self._release_parked(now)
            if not self.backlog or self.device_free > now:
                return
            self._run_one(self.backlog.popleft())

    def enqueue(self, batches) -> None:
        for b in batches:
            self.backlog.append(b)

    def advance_to(self, now: float) -> None:
        """Process every timeout flush and device start due before *now*."""
        while True:
            deadline = self.batcher.next_deadline()
            if deadline >= now:
                break
            # nextafter guards against (arrival + timeout) - arrival
            # rounding below the timeout and stalling the flush
            batches = self.batcher.due(np.nextafter(deadline, np.inf))
            if not batches:
                break
            self.enqueue(batches)
            self.start_batches(deadline)
        self.start_batches(now)

    def offer(self, req: SpMVRequest, now: float) -> bool:
        """Admit one request (False = rejected under backpressure)."""
        self.stats.observe_request()
        if len(self.backlog) >= self.cfg.queue_depth:
            self.stats.observe_rejected()
            return False
        # pin the request to the matrix version current at admission;
        # updates landing while it queues must not change its answer
        req.version = self.registry.version_of(req.fingerprint)
        if self._warmer is not None:
            self._warmer.observe(req.fingerprint)
            self._warm_tick(now)
        if self.pipeline_cfg is not None and self.cfg.plan_cache \
                and req.fingerprint not in self._prefetching \
                and self.registry.peek(req.fingerprint) is None:
            self._start_prefetch(req.fingerprint, now)
        if isinstance(req, SpMMRequest):
            # an SpMM block already is a batch; bypass the coalescer
            self.enqueue([Batch(req.fingerprint, [req], now)])
        else:
            full = self.batcher.add(req, now)
            if full is not None:
                self.enqueue([full])
        ctx = self.overload
        if ctx is not None and ctx.retry_budget is not None and not req.shadow:
            ctx.retry_budget.on_request()
        return True

    def drain(self, last_arrival: float) -> float:
        """End of arrivals: flush stragglers and let the device empty.

        Returns the virtual end time (last arrival or last flush
        deadline, whichever is later) and leaves ``stats.duration_s``
        set to the final completion time."""
        end = float(last_arrival)
        while True:
            deadline = self.batcher.next_deadline()
            if deadline == float("inf"):
                break
            batches = self.batcher.due(np.nextafter(deadline, np.inf))
            if not batches:
                break
            self.enqueue(batches)
            end = max(end, deadline)
        self.enqueue(self.batcher.flush_all(end))
        self.device_free = max(self.device_free, end)
        self.start_batches(float("inf"))
        self.stats.duration_s = max(
            (r.completion_s for r in self.completed), default=end)
        # Cache, breaker and fault counters already live in the shared
        # registry (one source of truth); only the non-counter breaker
        # state map is copied for the report.
        self.stats.breaker_state = self.breaker.snapshot()
        return end


def auto_rate(pool, modeled: _ModeledDevice, *, replicas: int = 1) -> float:
    """Saturating default offered rate: 4x the unbatched modeled
    capacity of the most popular matrix per replica (open-loop overload
    is the regime where batching pays; an idle server degenerates to
    singletons).  Built directly — going through a registry would
    pollute the cache/store counters the run reports, and the probe
    must give the same rate (hence the same traffic trace) whether or
    not a warm-start already populated the cache."""
    plan0 = DASPMatrix.from_csr(pool[0][2])
    t1, _, _ = modeled.batch_cost(pool[0][1], plan0, 1)
    return 4.0 * replicas / t1


def run_workload(cfg: WorkloadConfig, *, obs: Obs | None = None) -> ServerStats:
    """Simulate *cfg* and return the populated :class:`ServerStats`.

    ``obs`` is the run's observability handle (fresh private one by
    default); the plan registry, breaker, injector and stats facade all
    share it.  Pass one carrying a :class:`repro.obs.Tracer` to record
    ``batch -> preprocess / kernel / fallback`` span trees in *virtual*
    clock coordinates — the simulation itself stays bit-identical, as
    instrumentation never touches the RNG streams or modeled times.
    """
    check(cfg.n_requests >= 1, "n_requests must be >= 1")
    check(0.0 <= cfg.spmm_mix <= 1.0, "spmm_mix must be in [0, 1]")
    check(0.0 <= cfg.update_mix < 1.0, "update_mix must be in [0, 1)")
    if obs is None or not obs.enabled:
        obs = Obs()
    device = get_device(cfg.device)
    dtype = np.dtype(cfg.dtype)
    rng = default_rng(cfg.seed)
    pool = _matrix_pool(cfg)
    weights = zipf_weights(len(pool), cfg.zipf_s)
    injector = _build_injector(cfg, pool)
    modeled = _modeled_for(cfg, device, dtype)
    replica = ReplicaSim(cfg, device=device, dtype=dtype, pool=pool, obs=obs,
                         injector=injector, modeled=modeled, store=cfg.store)
    stats = replica.stats

    if cfg.warm_start and replica.registry.store is not None:
        # Startup preload (a server restart reading its previous run's
        # artifacts): charged to preprocess_s but off the virtual
        # device clock — it happens before traffic exists.  With the
        # speculative warmer enabled it rides the warmer machinery
        # (load-vs-rebuild gate, persisted reorder permutations).
        replica.warm_many([fp for _, fp, _csr in pool])

    rate = cfg.rate_rps
    if rate is None:
        rate = auto_rate(pool, modeled)

    # Pre-draw arrivals and matrix choices (deterministic given seed).
    gaps = rng.exponential(1.0 / rate, cfg.n_requests)
    arrivals = np.cumsum(gaps)
    choices = rng.choice(len(pool), size=cfg.n_requests, p=weights)
    # Requests reuse a tiny per-matrix pool of x vectors: the driver
    # models traffic, the numeric path is covered by the server tests.
    xs = {fp: rng.uniform(-1, 1, csr.shape[1]).astype(dtype)
          for _, fp, csr in pool}

    # SpMM block traffic draws from its own stream (seed+13), touched
    # only when the mix is on — spmm_mix=0 runs stay bit-identical.
    is_spmm = k_idx = None
    xblocks: dict[tuple[str, int], np.ndarray] = {}
    if cfg.spmm_mix > 0.0:
        check(len(cfg.spmm_ks) >= 1, "spmm_ks must be non-empty")
        spmm_rng = default_rng(cfg.seed + 13)
        is_spmm = spmm_rng.random(cfg.n_requests) < cfg.spmm_mix
        k_idx = spmm_rng.integers(0, len(cfg.spmm_ks), size=cfg.n_requests)

    # Delta traffic draws from its own stream (seed+17), touched only
    # when the mix is on — update_mix=0 runs stay bit-identical.
    is_update = delta_rng = None
    if cfg.update_mix > 0.0:
        delta_rng = default_rng(cfg.seed + 17)
        is_update = delta_rng.random(cfg.n_requests) < cfg.update_mix

    deadline_for = (lambda now: now + cfg.deadline_s) \
        if cfg.deadline_s is not None else (lambda now: float("inf"))

    for i in range(cfg.n_requests):
        now = float(arrivals[i])
        replica.advance_to(now)
        _, fp, csr = pool[choices[i]]
        if is_update is not None and is_update[i]:
            # this arrival slot carries a delta, not a read
            structural = bool(delta_rng.random() < cfg.structural_frac)
            d = random_delta(replica.csr_by_fp[fp], delta_rng,
                             structural=structural,
                             n_entries=cfg.update_entries)
            replica.apply_update(fp, d, now)
            continue
        if is_spmm is not None and is_spmm[i]:
            k = int(cfg.spmm_ks[k_idx[i]])
            X = xblocks.get((fp, k))
            if X is None:
                X = spmm_rng.uniform(-1, 1, (csr.shape[1], k)).astype(dtype)
                xblocks[(fp, k)] = X
            req = SpMMRequest(req_id=i, fingerprint=fp, x=X, arrival_s=now,
                              deadline_s=deadline_for(now))
        else:
            req = SpMVRequest(req_id=i, fingerprint=fp, x=xs[fp],
                              arrival_s=now, deadline_s=deadline_for(now))
        replica.offer(req, now)

    replica.drain(float(arrivals[-1]))
    return stats


def compare_batched_unbatched(cfg: WorkloadConfig, *,
                              obs: Obs | None = None) -> dict[str, ServerStats]:
    """Run *cfg* batched and as request-at-a-time; same traffic trace.

    ``obs`` (if given) observes the *batched* run — the one whose trace
    the comparison is about; the unbatched baseline keeps its private
    handle so the two runs' counters never mix.
    """
    batched = run_workload(cfg, obs=obs)
    unbatched = run_workload(replace(cfg, max_batch=1))
    return {"batched": batched, "unbatched": unbatched}
