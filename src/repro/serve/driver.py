"""Workload driver — open-loop synthetic traffic replay in virtual time.

Replays a serving workload against the batching + plan-caching pipeline
as a deterministic discrete-event simulation: Poisson arrivals at a
configured offered rate, matrix popularity drawn from a Zipf
distribution over the representative suite, a single modeled device
executing flushed batches in FIFO order, and a bounded device backlog
applying backpressure.  Every batch is charged its modeled device time
(:func:`repro.core.spmm.spmm_events` through the cost model), cache
misses additionally pay the modeled preprocessing cost (Figure 13), and
per-request latency is ``completion - arrival`` in virtual seconds.

**Chaos mode** (:class:`ChaosConfig`) injects a seeded fault mix over
the same traffic: preprocessing failures, transient kernel failures
(retried with the configured backoff, charged in virtual time),
NaN-corrupted outputs (caught by validation), extra latency, and an
optional permanently-poisoned matrix that drives its circuit breaker
open.  Un-servable batches degrade to the modeled merge-CSR fallback;
requests past their deadline fail fast and are counted.

Being single-threaded and clocked virtually, the driver is exactly
reproducible for a given seed — the property the serving benchmarks
rely on — while exercising the same :class:`RequestBatcher`,
:class:`PlanRegistry`, breaker, retry and fallback code the
real-threaded server runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from .._util import ReproError, check, default_rng
from ..core.format import DASPMatrix
from ..core.preprocess import traced_preprocess
from ..core.spmm import mma_phase_fraction, mma_utilization, spmm_events
from ..gpu.cost_model import estimate_time
from ..gpu.device import get_device
from ..obs import Obs
from ..resilience import (
    BreakerConfig,
    CircuitBreaker,
    FallbackExecutor,
    FaultInjector,
    FaultPlan,
    FaultRule,
    KernelFault,
    NumericFault,
    RetryPolicy,
)
from ..shard import (
    ShardedPlan,
    choose_shards,
    sharded_batch_cost,
    sharded_phase_fraction,
    sharded_spmm_events,
    traced_preprocess_sharded,
)
from .batcher import DEFAULT_FLUSH_TIMEOUT_S, MMA_N, RequestBatcher, SpMVRequest
from .plan_cache import DEFAULT_BUDGET_BYTES, PlanRegistry, matrix_fingerprint
from .stats import ServerStats


@dataclass
class ChaosConfig:
    """Seeded fault mix injected over the synthetic workload.

    Attributes
    ----------
    fault_rate:
        Total firing probability, split evenly over *kinds* (0.05 =
        5% of eligible calls hit some fault).
    seed:
        RNG seed of the injector (independent of the traffic seed).
    latency_us:
        Extra modeled microseconds charged when a latency rule fires.
    kinds:
        Which fault kinds participate in the even split.
    poison_rank / poison_rate:
        Optionally make the ``poison_rank``-th pool matrix fail its
        kernel with probability ``poison_rate`` — the deterministic way
        to exercise the circuit breaker under Zipf traffic.
    """

    fault_rate: float = 0.05
    seed: int = 7
    latency_us: float = 300.0
    kinds: tuple = ("preprocess_error", "kernel_error", "kernel_nan",
                    "latency")
    poison_rank: int | None = None
    poison_rate: float = 1.0


@dataclass
class WorkloadConfig:
    """Knobs of one synthetic serving workload.

    Attributes
    ----------
    n_requests / rate_rps / zipf_s / seed:
        Open-loop traffic shape: request count, Poisson arrival rate
        (requests per virtual second), Zipf popularity exponent over
        the matrix pool, RNG seed.  ``rate_rps=None`` auto-picks a rate
        that saturates the modeled device (~4x its unbatched capacity).
    n_matrices / dtype / device:
        Pool size (taken from the representative suite in order) and
        the modeled precision/hardware.
    max_batch / flush_timeout_s:
        Batching policy (``max_batch=1`` is the request-at-a-time
        baseline).
    cache_budget_bytes / plan_cache:
        Plan-registry byte budget; ``plan_cache=False`` rebuilds the
        plan for every batch (the re-preprocessing baseline).
    queue_depth:
        Bounded device backlog (flushed-but-unstarted batches); arrivals
        beyond it are rejected.
    deadline_s / retry / breaker / fallback / chaos:
        Resilience knobs (virtual-time deadlines per request, retry
        policy for transient kernel failures, circuit-breaker
        thresholds, merge-CSR degradation on/off, fault mix).  All
        inert by default: with ``chaos=None`` and ``deadline_s=None``
        the driver behaves exactly like the resilience-free baseline.
    shards / shard_workers:
        Row sharding (:mod:`repro.shard`): ``shards=None`` keeps the
        single-kernel path, an integer partitions every pool matrix
        into that many nnz-balanced row bands, ``"auto"`` picks the
        count per matrix from the makespan cost model.  A sharded
        batch is charged the LPT makespan of its per-shard modeled
        times over ``shard_workers`` concurrent lanes instead of the
        single-chain time.
    store / warm_start:
        Durable plan tier (:class:`repro.store.PlanStore` or a
        path-like): builds write through as ``.daspz`` artifacts and
        cache misses try a disk load first, charging the *modeled*
        load time instead of the rebuild.  ``warm_start=True``
        additionally preloads every pool matrix's artifact before
        traffic starts — off the virtual clock, like a server
        restarting from its previous run's store.
    """

    n_requests: int = 2000
    rate_rps: float | None = None
    zipf_s: float = 1.1
    seed: int = 2023
    n_matrices: int = 4
    dtype: str = "float64"
    device: str = "A100"
    max_batch: int = MMA_N
    flush_timeout_s: float = DEFAULT_FLUSH_TIMEOUT_S
    cache_budget_bytes: int = DEFAULT_BUDGET_BYTES
    plan_cache: bool = True
    queue_depth: int = 256
    entries: list = field(default_factory=list)  # overrides the suite pool
    deadline_s: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    fallback: bool = True
    chaos: ChaosConfig | None = None
    shards: int | str | None = None
    shard_workers: int = 4
    store: object = None
    warm_start: bool = False


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf popularity over ``n`` ranked items."""
    check(n >= 1, "need at least one item")
    w = np.arange(1, n + 1, dtype=np.float64) ** -float(s)
    return w / w.sum()


def _matrix_pool(cfg: WorkloadConfig):
    """Build the (fingerprint-keyed) CSR pool for the workload."""
    if cfg.entries:
        entries = cfg.entries
    else:
        from ..matrices import representative_suite

        entries = representative_suite()[:cfg.n_matrices]
    dtype = np.dtype(cfg.dtype)
    pool = []
    for e in entries:
        csr = e.matrix().astype(dtype)
        pool.append((e.name, matrix_fingerprint(csr), csr))
    return pool


def _build_injector(cfg: WorkloadConfig, pool) -> FaultInjector | None:
    chaos = cfg.chaos
    if chaos is None:
        return None
    plan = FaultPlan.chaos_mix(chaos.fault_rate, seed=chaos.seed,
                               latency_s=chaos.latency_us * 1e-6,
                               kinds=chaos.kinds)
    if chaos.poison_rank is not None:
        check(0 <= chaos.poison_rank < len(pool),
              "poison_rank outside the matrix pool")
        plan.rules.append(FaultRule(
            kind="kernel_error", rate=chaos.poison_rate,
            fingerprint=pool[chaos.poison_rank][1]))
    return FaultInjector(plan)


class _ModeledDevice:
    """Lazily-memoized modeled batch times for (matrix, k) pairs.

    A :class:`~repro.shard.ShardedPlan` entry is charged the LPT
    makespan of its per-shard times over ``workers`` lanes (the fan-out
    the real-threaded server performs), with the shards' events combined
    for span attributes."""

    def __init__(self, device, dtype_bits: int, *, workers: int = 1) -> None:
        self.device = device
        self.dtype_bits = dtype_bits
        self.workers = int(workers)
        self._times: dict[tuple[str, int], tuple] = {}
        self._frac: dict[str, float] = {}

    def _entry(self, fingerprint: str, plan, k: int) -> tuple:
        key = (fingerprint, k)
        got = self._times.get(key)
        if got is None:
            if isinstance(plan, ShardedPlan):
                cost = sharded_batch_cost(plan, self.device, k,
                                          workers=self.workers,
                                          dtype_bits=self.dtype_bits)
                evs = sharded_spmm_events(plan, self.device, k)
                combined = evs[0]
                for e in evs[1:]:
                    combined = combined.combine(e)
                got = (cost.makespan, cost.useful_mma, cost.issued_mma,
                       combined)
            else:
                ev = spmm_events(plan, self.device, k)
                t = estimate_time(ev, self.device,
                                  dtype_bits=self.dtype_bits).total
                util = mma_utilization(plan, k)
                got = (t, util * ev.flops_mma, ev.flops_mma, ev)
            self._times[key] = got
        return got

    def batch_cost(self, fingerprint: str, plan,
                   k: int) -> tuple[float, float, float]:
        """(device seconds, useful MMA flops, issued MMA flops)."""
        return self._entry(fingerprint, plan, k)[:3]

    def events(self, fingerprint: str, plan, k: int):
        """The memoized :class:`KernelEvents` behind :meth:`batch_cost`."""
        return self._entry(fingerprint, plan, k)[3]

    def phase_fraction(self, fingerprint: str, plan) -> float:
        """Memoized phase split for span attribution."""
        frac = self._frac.get(fingerprint)
        if frac is None:
            frac = (sharded_phase_fraction(plan)
                    if isinstance(plan, ShardedPlan)
                    else mma_phase_fraction(plan))
            self._frac[fingerprint] = frac
        return frac


def run_workload(cfg: WorkloadConfig, *, obs: Obs | None = None) -> ServerStats:
    """Simulate *cfg* and return the populated :class:`ServerStats`.

    ``obs`` is the run's observability handle (fresh private one by
    default); the plan registry, breaker, injector and stats facade all
    share it.  Pass one carrying a :class:`repro.obs.Tracer` to record
    ``batch -> preprocess / kernel / fallback`` span trees in *virtual*
    clock coordinates — the simulation itself stays bit-identical, as
    instrumentation never touches the RNG streams or modeled times.
    """
    check(cfg.n_requests >= 1, "n_requests must be >= 1")
    if obs is None or not obs.enabled:
        obs = Obs()
    tracing = obs.tracing
    device = get_device(cfg.device)
    dtype = np.dtype(cfg.dtype)
    rng = default_rng(cfg.seed)
    pool = _matrix_pool(cfg)
    weights = zipf_weights(len(pool), cfg.zipf_s)
    injector = _build_injector(cfg, pool)
    if injector is not None:
        injector.bind(obs)
    registry = PlanRegistry(cfg.cache_budget_bytes, fault_injector=injector,
                            obs=obs, store=cfg.store, device=device.name)
    batcher = RequestBatcher(cfg.max_batch, cfg.flush_timeout_s)
    modeled = _ModeledDevice(device, dtype.itemsize * 8,
                             workers=cfg.shard_workers)
    stats = ServerStats(device=device.name, dtype=str(dtype), obs=obs)
    breaker = CircuitBreaker(cfg.breaker, obs=obs)
    fallback = FallbackExecutor(device)
    retry_rng = default_rng(cfg.seed + 1)  # jitter stream, not traffic

    if cfg.warm_start and registry.store is not None:
        # Startup preload (a server restart reading its previous run's
        # artifacts): charged to preprocess_s but off the virtual
        # device clock — it happens before traffic exists.
        for _, fp, _csr in pool:
            load_s = registry.warm(fp)
            if load_s:
                stats.observe_preprocess(load_s)

    rate = cfg.rate_rps
    if rate is None:
        # Saturating default: 4x the unbatched modeled capacity of the
        # most popular matrix (open-loop overload is the regime where
        # batching pays; an idle server degenerates to singletons).
        # Built directly — going through the registry would pollute the
        # cache/store counters the run reports, and the probe must give
        # the same rate (hence the same traffic trace) whether or not a
        # warm-start already populated the cache.
        plan0 = DASPMatrix.from_csr(pool[0][2])
        t1, _, _ = modeled.batch_cost(pool[0][1], plan0, 1)
        rate = 4.0 / t1

    # Pre-draw arrivals and matrix choices (deterministic given seed).
    gaps = rng.exponential(1.0 / rate, cfg.n_requests)
    arrivals = np.cumsum(gaps)
    choices = rng.choice(len(pool), size=cfg.n_requests, p=weights)
    # Requests reuse a tiny per-matrix pool of x vectors: the driver
    # models traffic, the numeric path is covered by the server tests.
    xs = {fp: rng.uniform(-1, 1, csr.shape[1]).astype(dtype)
          for _, fp, csr in pool}

    device_free = 0.0          # when the modeled device next idles
    backlog: deque = deque()   # flushed batches waiting for the device
    completed: list[SpMVRequest] = []

    shard_choice: dict[str, int] = {}

    def shards_for(fp: str, csr) -> int:
        """Resolve the shard count for one matrix (memoized for auto)."""
        if cfg.shards in (None, 1):
            return 1
        if cfg.shards == "auto":
            S = shard_choice.get(fp)
            if S is None:
                # Offline model sweep; the winning plan is built — and
                # charged — through the traced path in ``build`` below.
                S = int(choose_shards(csr, cfg.shard_workers, device=device,
                                      k=cfg.max_batch).best_value)
                shard_choice[fp] = S
            return S
        return int(cfg.shards)

    def build_plan(fp: str, csr):
        S = shards_for(fp, csr)
        if S > 1:
            return traced_preprocess_sharded(
                csr, device, S, obs=obs, injector=injector, fingerprint=fp)
        return traced_preprocess(csr, device, obs=obs, injector=injector,
                                 fingerprint=fp)

    def plan_for(fp: str, csr):
        """Fetch/build a plan, charging (and possibly failing) the
        preprocessing pass.  Raises on injected preprocess faults and
        on plans over the cache budget."""
        nonlocal device_free
        pre_cell: dict[str, float] = {}

        def build(matrix):
            plan, pre = build_plan(fp, matrix)
            pre_cell["s"] = pre
            return plan

        if cfg.plan_cache:
            plan, source, load_s = registry.get_ex(csr, fingerprint=fp,
                                                   builder=build)
            if source == "built":
                pre = pre_cell.get("s", 0.0)
                stats.observe_preprocess(pre)
                device_free += pre
            elif source == "store":
                # an in-band disk load occupies the serving timeline
                # just like the rebuild it replaces — at modeled cost
                stats.observe_preprocess(load_s)
                device_free += load_s
            return plan
        # no-cache baseline: rebuild (and pay for) the plan every batch
        plan, pre = build_plan(fp, csr)
        stats.observe_preprocess(pre)
        device_free += pre
        return plan

    csr_by_fp = {fp: csr for _, fp, csr in pool}

    def finish(batch, done: float, t: float, useful: float, issued: float,
               degraded: bool) -> None:
        nonlocal device_free
        device_free = done
        plan_rows = csr_by_fp[batch.fingerprint].shape[0]
        batch.scatter(np.zeros((plan_rows, batch.k)), done)
        if degraded:
            stats.observe_degraded(batch.k)
        stats.observe_batch(batch.k, t, useful_mma=useful, issued_mma=issued)
        for req in batch.requests:
            stats.observe_latency(req.latency_s)
            completed.append(req)

    def degrade(batch, start: float) -> None:
        nonlocal device_free
        fp = batch.fingerprint
        with obs.span("fallback",
                      attrs={"matrix": fp[:8]} if tracing else None) as sp:
            t, pre_s = fallback.modeled_cost(fp, csr_by_fp[fp], batch.k)
            sp.set_device_time(t)
            if pre_s:
                stats.observe_preprocess(pre_s)
                start += pre_s
                if tracing:
                    sp.child("preprocess", device_s=pre_s)
        finish(batch, start + t, t, 0.0, 0.0, degraded=True)

    def run_kernel_attempt(fp: str, plan, batch, attempt: int):
        """One modeled kernel attempt inside a ``kernel`` span."""
        with obs.span("kernel",
                      attrs={"attempt": attempt} if tracing else None) as sp:
            t, useful, issued = modeled.batch_cost(fp, plan, batch.k)
            fault: Exception | None = None
            extra_s = 0.0
            if injector is not None:
                try:
                    decision = injector.check_kernel(fp)
                    extra_s = decision.latency_s
                    if decision.corrupt:
                        fault = NumericFault("injected NaN output")
                except KernelFault as exc:
                    fault = exc
            if tracing:
                if fault is not None:
                    sp.status = "error"
                    sp.set_attr("fault", type(fault).__name__)
                else:
                    # only successful attempts reach the stats counters
                    total = t + extra_s
                    if isinstance(plan, ShardedPlan):
                        # one `shard` span per band; phase children are
                        # scaled so the attributed sum equals the
                        # makespan the batch is charged.
                        sp.set_attr("shards", plan.n_shards)
                        cost = sharded_batch_cost(
                            plan, device, batch.k, workers=cfg.shard_workers,
                            dtype_bits=dtype.itemsize * 8)
                        scale = (total / cost.serial) if cost.serial else 0.0
                        for i, band in enumerate(plan.shards):
                            t_i = cost.per_shard[i]
                            frac_i = mma_phase_fraction(band.dasp)
                            ssp = sp.child("shard", attrs={
                                "shard": i, "modeled_s": t_i})
                            ssp.child("regular_mma",
                                      device_s=t_i * scale * frac_i)
                            ssp.child("irregular_csr",
                                      device_s=t_i * scale * (1.0 - frac_i))
                    else:
                        frac = modeled.phase_fraction(fp, plan)
                        sp.child("regular_mma", device_s=total * frac)
                        sp.child("irregular_csr",
                                 device_s=total * (1.0 - frac))
                    ev = modeled.events(fp, plan, batch.k)
                    for key, value in ev.as_attrs().items():
                        sp.set_attr(key, value)
        return t, useful, issued, extra_s, fault

    def run_one(batch) -> None:
        """Execute one batch on the modeled device, chaos included."""
        nonlocal device_free
        fp = batch.fingerprint
        with obs.span("batch", attrs={"matrix": fp[:8], "k": batch.k}
                      if tracing else None):
            run_one_inner(batch, fp)

    def run_one_inner(batch, fp: str) -> None:
        nonlocal device_free
        start = max(device_free, batch.formed_s)
        if cfg.deadline_s is not None:
            expired = batch.split_expired(start)
            if expired:
                stats.observe_deadline_exceeded(len(expired))
            if not batch.requests:
                return
        if injector is not None and not breaker.allow(fp, start):
            if cfg.fallback:
                degrade(batch, start)
            else:
                stats.observe_failed(batch.k)
            return
        try:
            plan = plan_for(fp, csr_by_fp[fp])
        except ReproError:
            if injector is not None:
                breaker.record_failure(fp, start)
            if cfg.fallback:
                degrade(batch, max(device_free, start))
            else:
                stats.observe_failed(batch.k)
            return
        for attempt in range(cfg.retry.max_retries + 1):
            t, useful, issued, extra_s, fault = run_kernel_attempt(
                fp, plan, batch, attempt)
            start = max(device_free, batch.formed_s)
            if fault is None:
                if injector is not None:
                    breaker.record_success(fp, start + t + extra_s)
                finish(batch, start + t + extra_s, t + extra_s,
                       useful, issued, degraded=False)
                return
            # failed attempt: the wasted kernel time is still burned
            device_free = start + t + extra_s
            breaker.record_failure(fp, device_free)
            if attempt < cfg.retry.max_retries:
                stats.observe_retry()
                device_free += cfg.retry.backoff_s(attempt + 1, retry_rng)
                continue
            if cfg.fallback:
                degrade(batch, device_free)
            else:
                stats.observe_failed(batch.k)
            return

    def start_batches(now: float) -> None:
        """Run every backlog batch whose start time has been reached."""
        while backlog and device_free <= now:
            run_one(backlog.popleft())

    def enqueue(batches) -> None:
        for b in batches:
            backlog.append(b)

    deadline_for = (lambda now: now + cfg.deadline_s) \
        if cfg.deadline_s is not None else (lambda now: float("inf"))

    for i in range(cfg.n_requests):
        now = float(arrivals[i])
        # timeout flushes due before this arrival
        while True:
            deadline = batcher.next_deadline()
            if deadline >= now:
                break
            # nextafter guards against (arrival + timeout) - arrival
            # rounding below the timeout and stalling the flush
            batches = batcher.due(np.nextafter(deadline, np.inf))
            if not batches:
                break
            enqueue(batches)
            start_batches(deadline)
        start_batches(now)
        stats.observe_request()
        if len(backlog) >= cfg.queue_depth:
            stats.observe_rejected()
            continue
        _, fp, csr = pool[choices[i]]
        req = SpMVRequest(req_id=i, fingerprint=fp, x=xs[fp], arrival_s=now,
                          deadline_s=deadline_for(now))
        full = batcher.add(req, now)
        if full is not None:
            enqueue([full])

    # End of arrivals: flush stragglers and let the device drain.
    end = float(arrivals[-1])
    while True:
        deadline = batcher.next_deadline()
        if deadline == float("inf"):
            break
        batches = batcher.due(np.nextafter(deadline, np.inf))
        if not batches:
            break
        enqueue(batches)
        end = max(end, deadline)
    enqueue(batcher.flush_all(end))
    device_free = max(device_free, end)
    start_batches(float("inf"))

    stats.duration_s = max((r.completion_s for r in completed), default=end)
    # Cache, breaker and fault counters already live in the shared
    # registry (one source of truth); only the non-counter breaker
    # state map is copied for the report.
    stats.breaker_state = breaker.snapshot()
    return stats


def compare_batched_unbatched(cfg: WorkloadConfig, *,
                              obs: Obs | None = None) -> dict[str, ServerStats]:
    """Run *cfg* batched and as request-at-a-time; same traffic trace.

    ``obs`` (if given) observes the *batched* run — the one whose trace
    the comparison is about; the unbatched baseline keeps its private
    handle so the two runs' counters never mix.
    """
    batched = run_workload(cfg, obs=obs)
    unbatched = run_workload(replace(cfg, max_batch=1))
    return {"batched": batched, "unbatched": unbatched}
