"""`SpMVServer` — the real-threaded SpMV inference service.

Wires the serving components together: :class:`SpMVRequest` s
submitted with :meth:`SpMVServer.submit` are coalesced per matrix by
the :class:`~repro.serve.batcher.RequestBatcher` and executed as
:func:`~repro.core.spmm.dasp_spmm` batches (singletons included —
``dasp_spmm`` column folds are bitwise ``dasp_spmv``) on the
:class:`~repro.serve.scheduler.Scheduler` worker pool, against plans
cached in the :class:`~repro.serve.plan_cache.PlanRegistry`.
:class:`SpMMRequest` blocks skip the coalescer (the ``(n, k)`` block
already is a batch); widths beyond ``MMA_N`` execute through the
tuner-chosen large-k strategy
(:func:`~repro.core.spmm_block.choose_spmm_strategy` — looped /
column-tiled / reordered+tiled, all bitwise-identical).  Each submit
returns a ``concurrent.futures.Future`` resolving to the result.

Alongside the numeric result, every batch is charged its *modeled*
device time (A100/H800 cost model over the measured SpMM events), so
the server reports hardware-meaningful throughput even though the
kernels run as NumPy on the host.

Partial failure is a first-class citizen (see :mod:`repro.resilience`):

* requests carry **deadlines** — expired ones fail fast with
  :class:`DeadlineExceededError` at dequeue time instead of occupying
  a batch slot;
* transient kernel failures are **retried** with exponential backoff
  and seeded jitter, bounded by a :class:`RetryPolicy`;
* a per-matrix **circuit breaker** quarantines fingerprints that keep
  failing (closed -> open -> half-open probe);
* when DASP preprocessing fails, blows its deadline, the plan cannot
  fit the cache, or the breaker is open, the batch **degrades** to the
  merge-CSR fallback path — no plan needed, modeled cost charged
  honestly — and ``ServerStats`` reports the degradation;
* :meth:`close` never leaks futures: anything still parked fails with
  :class:`ServerClosedError`.
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import Future
from dataclasses import replace

import numpy as np

from .._util import ReproError, check, default_rng
from ..core.preprocess import traced_preprocess
from ..core.spmm import dasp_spmm, mma_phase_fraction, mma_utilization, spmm_events
from ..core.spmm_block import choose_spmm_strategy, dasp_spmm_large, reorder_from_perm
from ..gpu.cost_model import estimate_time
from ..gpu.device import get_device
from ..obs import Obs
from ..overload import (
    AdmissionConfig,
    AdmissionController,
    RetryBudget,
    RetryBudgetConfig,
)
from ..pipeline import PlanPrefetcher, SpeculativeWarmer, WarmerConfig
from ..resilience import (
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    FallbackExecutor,
    NumericFault,
    RetryPolicy,
    ServerClosedError,
)
from .batcher import DEFAULT_FLUSH_TIMEOUT_S, MMA_N, Batch, RequestBatcher
from .plan_cache import DEFAULT_BUDGET_BYTES, PlanRegistry, matrix_fingerprint
from .request import SpMMRequest, SpMVRequest
from .scheduler import QueueFullError, Scheduler
from .stats import ServerStats


class RequestShedError(ReproError):
    """Set on futures whose batch was shed under backpressure."""


class SpMVServer:
    """Batched, plan-cached, failure-hardened SpMV serving.

    Matrices must be :meth:`register`-ed before requests can address
    them (by the returned fingerprint).  Use as a context manager, or
    call :meth:`close` to drain and stop the workers.

    Resilience parameters
    ---------------------
    default_deadline_s:
        Deadline applied to every request that does not pass its own
        (``None`` = no deadline).
    preprocess_deadline_s:
        Budget for one modeled preprocessing pass; exceeding it counts
        as a preprocess failure and degrades the batch (``None`` = no
        budget).
    retry:
        :class:`RetryPolicy` for transiently-failed batches.
    breaker:
        :class:`BreakerConfig` for the per-matrix circuit breaker, or
        ``None`` to disable it.
    fault_injector:
        Optional :class:`repro.resilience.FaultInjector` installed into
        the plan registry, the preprocessing builder and the batch
        executor.
    fallback:
        Serve un-servable batches from the merge-CSR path (default).
        When ``False`` they fail with the causing exception instead.
    admission:
        Optional :class:`repro.overload.AdmissionConfig` (or a shared
        :class:`~repro.overload.AdmissionController`) installing
        token-bucket admission control at :meth:`submit`: shed
        requests fail immediately with a typed
        :class:`~repro.overload.AdmissionRejectedError` — distinct
        from queue-full backpressure — and batch-priority traffic is
        shed first.
    retry_budget:
        Optional :class:`repro.overload.RetryBudgetConfig` (or a
        shared :class:`~repro.overload.RetryBudget` instance, e.g. one
        pool spanning every replica of a cluster) bounding aggregate
        retries: when the pool is dry, a transiently-failed batch
        skips its remaining attempts and degrades straight to the
        merge-CSR fallback instead of amplifying a cluster-wide fault
        into a retry storm.
    shards:
        ``None`` (default) serves each batch with one kernel chain.
        An integer ``S >= 2`` partitions every registered matrix into
        ``S`` nnz-balanced row bands (:mod:`repro.shard`) and executes
        a batch's shards concurrently across this server's worker
        pool, gathering bit-identically; ``"auto"`` picks ``S`` per
        matrix from the makespan cost model
        (:func:`repro.shard.choose_shards`).  Fault rules can target
        one shard via the ``{fingerprint}#s{i}`` fingerprint; a
        transiently-failed shard is retried at shard granularity
        before the whole batch retries or degrades.
    store:
        Optional durable plan tier: a :class:`repro.store.PlanStore`
        (or a path-like to open one at) backing the plan registry.
        Freshly-built plans are written through as ``.daspz``
        artifacts, cache misses try a disk load before rebuilding, and
        plans over the RAM budget are served load-through instead of
        degrading to the fallback path.
    warm_start:
        With a store configured, :meth:`register` preloads the
        matrix's plan from disk (bypassing the load-vs-rebuild gate —
        registration is off the serving clock), so the first request
        skips preprocessing entirely.  The modeled load time is
        charged to ``preprocess_s`` like any other plan-acquisition
        cost.
    pipeline:
        Install a :class:`repro.pipeline.PlanPrefetcher` — a small
        background executor feeding the plan registry through the same
        per-fingerprint single-flight as demand misses.  ``warm_start``
        registration preloads become non-blocking, and the speculative
        warmer (below) gets an execution vehicle.  Results are bitwise
        identical with the pipeline on or off; only *where* plan
        acquisition runs changes.
    warmer:
        Enable the speculative plan warmer
        (:class:`repro.pipeline.SpeculativeWarmer`; pass a
        :class:`~repro.pipeline.WarmerConfig` for custom thresholds,
        or ``True`` for defaults).  The warmer watches the Zipf
        popularity estimate over per-matrix request counters and
        prefetches registered-but-cold matrices before their first
        request.  Implies the background prefetcher even when
        ``pipeline`` is off.
    obs:
        :class:`repro.obs.Obs` handle shared by every component of this
        server — the plan registry, scheduler, breaker, fault injector
        and :class:`ServerStats` all read/write its registry, so the
        stats facade needs no copy-at-close step.  Pass one with a
        :class:`repro.obs.Tracer` to record ``batch -> preprocess /
        kernel / fallback`` span trees; defaults to a fresh private
        metrics-only handle.
    """

    def __init__(self, *, device: str = "A100",
                 max_batch: int = MMA_N,
                 flush_timeout_s: float = DEFAULT_FLUSH_TIMEOUT_S,
                 cache_budget_bytes: int = DEFAULT_BUDGET_BYTES,
                 workers: int = 2, queue_depth: int = 64,
                 policy: str = "reject",
                 default_deadline_s: float | None = None,
                 preprocess_deadline_s: float | None = None,
                 retry: RetryPolicy | None = None,
                 breaker: BreakerConfig | None = BreakerConfig(),
                 fault_injector=None,
                 fallback: bool = True,
                 admission: AdmissionConfig | AdmissionController | None = None,
                 retry_budget: RetryBudgetConfig | RetryBudget | None = None,
                 shards: int | str | None = None,
                 store=None,
                 warm_start: bool = False,
                 pipeline: bool = False,
                 warmer: WarmerConfig | bool = False,
                 seed: int = 0,
                 obs: Obs | None = None) -> None:
        self.device = get_device(device)
        if shards is not None and shards != "auto":
            shards = int(shards)
            check(shards >= 1, "shards must be >= 1 (or 'auto')")
            if shards == 1:
                shards = None  # S=1 is exactly the unsharded path
        self.shards = shards
        self._shard_choice: dict[str, int] = {}
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self.fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.bind(obs)
        self.registry = PlanRegistry(cache_budget_bytes,
                                     fault_injector=fault_injector, obs=obs,
                                     store=store, device=self.device)
        self.warm_start = bool(warm_start)
        self.batcher = RequestBatcher(max_batch, flush_timeout_s)
        self.stats = ServerStats(device=self.device.name, obs=obs)
        self.default_deadline_s = default_deadline_s
        self.preprocess_deadline_s = preprocess_deadline_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = (CircuitBreaker(breaker, obs=obs)
                        if breaker is not None else None)
        self.fallback_enabled = bool(fallback)
        if admission is None or isinstance(admission, AdmissionController):
            self.admission = admission
        else:
            self.admission = AdmissionController(admission, obs=obs)
        if retry_budget is None or isinstance(retry_budget, RetryBudget):
            self.retry_budget = retry_budget
        else:
            self.retry_budget = RetryBudget(retry_budget, obs=obs)
        self._fallback = FallbackExecutor(self.device)
        self._retry_rng = default_rng(seed)
        self._rng_lock = threading.Lock()
        self.scheduler = Scheduler(
            self._execute_batch, workers=workers, queue_depth=queue_depth,
            policy=policy, on_shed=self._shed_batch,
            on_error=self._fail_batch, prune=self._prune_batch, obs=obs)
        if warmer:
            self._warmer = SpeculativeWarmer(
                warmer if isinstance(warmer, WarmerConfig) else None, obs=obs)
        else:
            self._warmer = None
        self.prefetcher = (PlanPrefetcher(self.registry, obs=obs)
                           if (pipeline or self._warmer is not None) else None)
        self._matrices: dict[str, object] = {}
        # (fingerprint, k) -> tuner-chosen large-k SpMM strategy; the
        # reorder pass and permuted-plan build run once per width.
        self._spmm_strategies: dict[tuple[str, int], object] = {}
        # fingerprint -> ReorderResult from a persisted aux permutation
        # (or None once the lookup came back empty).
        self._reorder_hints: dict[str, object] = {}
        # fingerprint -> per-request shard hint (SpMVRequest.shards),
        # consulted only before the matrix's plan is first built.
        self._shard_hints: dict[str, int | str] = {}
        self._futures: dict[int, Future] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._t0 = time.perf_counter()
        self._closed = False
        self._stop = threading.Event()
        self._flusher = threading.Thread(target=self._flush_loop,
                                         name="serve-flusher", daemon=True)
        self._flusher.start()

    # ------------------------------------------------------------------
    def register(self, csr) -> str:
        """Make *csr* servable; returns its routing fingerprint.

        With ``warm_start=True`` and a store configured, the matrix's
        plan is preloaded from its on-disk artifact here (best-effort:
        a missing or corrupt artifact just means the first request
        builds as usual)."""
        fp = matrix_fingerprint(csr)
        with self._lock:
            if self._closed:
                raise ServerClosedError("server is closed")
            self._matrices[fp] = csr
        if self._warmer is not None:
            self._warmer.register(fp)
        if self.warm_start and self.registry.store is not None:
            if self.prefetcher is not None:
                # async pipeline: the preload happens off the caller's
                # thread (single-flight shared with any demand miss)
                self.prefetcher.prefetch(fp)
            else:
                load_s = self.registry.warm(fp)
                if load_s:
                    self.stats.observe_preprocess(load_s)
        return fp

    def submit(self, request, x=None, deadline_s: float | None = None,
               priority: str = "interactive") -> Future:
        """Queue one request; the future resolves to its result.

        The unified entry point takes a typed request object —
        :class:`~repro.serve.SpMVRequest` for ``y = A @ x`` (future
        resolves to the ``(m,)`` vector) or
        :class:`~repro.serve.SpMMRequest` for ``Y = A @ X`` (future
        resolves to the ``(m, k)`` block) — carrying its keyword-only
        ``deadline_us`` / ``priority`` / ``shards``.  The submitted
        object is never mutated; bookkeeping happens on a private
        copy, so the same request may be re-issued (e.g. by the
        router's hedging path).

        .. deprecated::
            The positional form ``submit(fingerprint, x, deadline_s=...,
            priority=...)`` still routes identically for one release,
            emitting a :class:`DeprecationWarning`.

        Invalid inputs fail immediately on the caller thread: an
        unknown fingerprint, a wrong-shape or non-finite payload, or a
        closed server (:class:`ServerClosedError`).  Deadlines are
        relative budgets from now (falling back to the server-wide
        default); once passed, the future fails with
        :class:`DeadlineExceededError` instead of occupying a slot.
        With admission control installed, an over-rate request fails
        here with :class:`~repro.overload.AdmissionRejectedError`
        (``priority="batch"`` traffic is shed first).  Raises
        :class:`~repro.serve.scheduler.QueueFullError` under
        ``"reject"`` backpressure; under ``"shed"`` the displaced
        batch's futures fail with :class:`RequestShedError`.
        """
        if isinstance(request, (SpMVRequest, SpMMRequest)):
            check(x is None and deadline_s is None
                  and priority == "interactive",
                  "pass deadline/priority on the request object, not "
                  "as submit() arguments")
            return self._submit_request(request)
        warnings.warn(
            "submit(fingerprint, x, ...) is deprecated; pass a "
            "repro.serve.SpMVRequest (or SpMMRequest) instead — the "
            "positional form will be removed next release",
            DeprecationWarning, stacklevel=2)
        deadline_us = None if deadline_s is None else deadline_s * 1e6
        return self._submit_request(SpMVRequest(
            request, np.asarray(x), deadline_us=deadline_us,
            priority=priority))

    def _submit_request(self, request) -> Future:
        """Validate, admit, and route one typed request."""
        fingerprint = request.fingerprint
        with self._lock:
            if self._closed:
                raise ServerClosedError("server is closed")
            csr = self._matrices.get(fingerprint)
        if csr is None:
            raise ReproError(f"unknown matrix fingerprint {fingerprint!r}")
        x = np.asarray(request.x)
        if isinstance(request, SpMMRequest):
            check(x.ndim == 2 and x.shape[0] == csr.shape[1]
                  and x.shape[1] >= 1,
                  f"X must have shape ({csr.shape[1]}, k) with k >= 1")
        else:
            check(x.shape == (csr.shape[1],),
                  f"x must have shape ({csr.shape[1]},)")
        check(bool(np.isfinite(x).all()), "x must be finite (no NaN/Inf)")
        if self.admission is not None:
            self.admission.admit(request.priority, self._now())  # may raise
        if request.shards is not None:
            with self._lock:
                self._shard_hints.setdefault(fingerprint, request.shards)
        deadline_rel = (request.deadline_us * 1e-6
                        if request.deadline_us is not None
                        else self.default_deadline_s)
        now = self._now()
        deadline = (float("inf") if deadline_rel is None
                    else now + deadline_rel)
        future: Future = Future()
        with self._lock:
            req_id = self._next_id
            self._next_id += 1
            self._futures[req_id] = future
        # Private bookkeeping copy: the caller's object stays pristine.
        req = replace(request, x=x, req_id=req_id, arrival_s=now,
                      deadline_s=deadline, result=None,
                      completion_s=float("nan"), pair=None, shadow=False)
        self.stats.observe_request()
        if self._warmer is not None:
            self._warmer.observe(fingerprint)
            self._warm_tick()
        try:
            if isinstance(req, SpMMRequest):
                # A block is already a batch — skip the coalescer.
                self.scheduler.submit(Batch(
                    fingerprint=fingerprint, requests=[req],
                    formed_s=self._now()))
            else:
                full = self.batcher.add(req, self._now())
                if full is not None:
                    self.scheduler.submit(full)
        except QueueFullError:
            with self._lock:
                self._futures.pop(req_id, None)
            self.stats.observe_rejected()
            raise
        if self.retry_budget is not None:
            self.retry_budget.on_request()
        return future

    def signals(self) -> dict:
        """Raw health signals for cluster routing (:mod:`repro.cluster`).

        ``queue_depth`` and ``open_circuits`` are instantaneous;
        ``deadline_exceeded`` / ``requests`` are cumulative so the
        router can compute a miss *rate* between its own probes.
        """
        return {
            "queue_depth": self.scheduler.backlog(),
            "open_circuits": (self.breaker.open_count()
                              if self.breaker is not None else 0),
            "deadline_exceeded": self.stats.n_deadline_exceeded,
            "requests": self.stats.n_requests,
        }

    def flush(self) -> None:
        """Force-flush all pending partial batches to the workers."""
        for batch in self.batcher.flush_all(self._now()):
            self.scheduler.submit(batch)

    def drain(self, timeout: float | None = None) -> bool:
        """Flush then wait for every in-flight batch to finish."""
        self.flush()
        return self.scheduler.drain(timeout)

    def close(self, timeout: float | None = None, *, drain: bool = True) -> None:
        """Shut down; never leaks a future.

        ``drain=True`` (default) executes what it can first; with
        ``drain=False`` (abort) pending batches are dropped.  Either
        way, every future still unresolved afterwards — parked in the
        batcher, dropped from the queue, or raced in by a concurrent
        :meth:`submit` — fails with :class:`ServerClosedError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        if self.prefetcher is not None:
            self.prefetcher.close()
        if drain:
            try:
                self.drain(timeout)
            except ReproError:
                pass  # backpressure mid-shutdown: leftovers swept below
        self.scheduler.close(drain=drain, timeout=timeout)
        self._flusher.join(timeout)
        self._fail_parked()
        self.stats.duration_s = self._now()
        # Cache, breaker and fault counters already live in the shared
        # registry (one source of truth); only the non-counter breaker
        # state map is copied for the report.
        if self.breaker is not None:
            self.stats.breaker_state = self.breaker.snapshot()

    def __enter__(self) -> "SpMVServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _flush_loop(self) -> None:
        # Wake a few times per timeout window; wall-clock flushing only
        # bounds latency, it does not affect modeled throughput.  The
        # stop event (not a sleep) keeps shutdown prompt even when the
        # flush timeout is long.
        interval = max(self.batcher.flush_timeout_s / 4, 1e-4)
        while not self._stop.wait(interval):
            try:
                for batch in self.batcher.due(self._now()):
                    self.scheduler.submit(batch)
            except (QueueFullError, ReproError):
                continue  # backpressure: leave batches queued in batcher

    def _fail_parked(self) -> None:
        """Fail every still-unresolved future with ServerClosedError."""
        for batch in self.batcher.flush_all(self._now()):
            for req in batch.requests:
                fut = self._pop_future(req.req_id)
                if fut is not None:
                    self.stats.observe_closed()
                    fut.set_exception(ServerClosedError(
                        f"request {req.req_id} unserved at shutdown"))
        with self._lock:
            leftovers = list(self._futures.items())
            self._futures.clear()
        for req_id, fut in leftovers:
            self.stats.observe_closed()
            fut.set_exception(ServerClosedError(
                f"request {req_id} unserved at shutdown"))

    # ------------------------------------------------------------------
    # batch execution (scheduler worker context)
    # ------------------------------------------------------------------
    def _prune_batch(self, batch: Batch) -> Batch | None:
        """Scheduler dequeue hook: drop expired requests before work."""
        self._fail_expired(batch, self._now())
        return batch if batch.requests else None

    def _fail_expired(self, batch: Batch, now: float) -> None:
        for req in batch.split_expired(now):
            self.stats.observe_deadline_exceeded()
            fut = self._pop_future(req.req_id)
            if fut is not None:
                fut.set_exception(DeadlineExceededError(
                    f"request {req.req_id} missed its deadline "
                    f"({req.deadline_s - req.arrival_s:.6f}s budget)"))

    def _execute_batch(self, batch: Batch) -> None:
        self._fail_expired(batch, self._now())
        if not batch.requests:
            return
        fp = batch.fingerprint
        attrs = None
        if self.obs.tracing:
            attrs = {"matrix": fp[:8], "k": batch.k}
        with self.obs.span("batch", attrs=attrs):
            self._execute_batch_inner(batch, fp)

    def _execute_batch_inner(self, batch: Batch, fp: str) -> None:
        csr = self._matrices[fp]
        if self.breaker is not None and not self.breaker.allow(fp, self._now()):
            self._degrade(batch, csr, CircuitOpenError(
                f"circuit open for matrix {fp[:8]}…"))
            return
        try:
            plan = self._get_plan(fp, csr)
        except Exception as exc:  # noqa: BLE001 — degrade, never crash a worker
            if self.breaker is not None:
                self.breaker.record_failure(fp, self._now())
            self._degrade(batch, csr, exc)
            return
        for attempt in range(self.retry.max_retries + 1):
            try:
                Y, device_s, useful, issued = self._run_kernel(
                    batch, plan, fp, attempt)
                break
            except Exception as exc:  # noqa: BLE001
                if self.breaker is not None:
                    self.breaker.record_failure(fp, self._now())
                transient = getattr(exc, "transient", False)
                if (transient and attempt < self.retry.max_retries
                        and self._allow_retry()):
                    self.stats.observe_retry()
                    with self._rng_lock:
                        backoff = self.retry.backoff_s(attempt + 1,
                                                       self._retry_rng)
                    time.sleep(backoff)
                    self._fail_expired(batch, self._now())
                    if not batch.requests:
                        return
                    continue
                self._degrade(batch, csr, exc)
                return
        if self.breaker is not None:
            self.breaker.record_success(fp, self._now())
        self._complete(batch, Y, device_s, useful, issued)

    def _allow_retry(self) -> bool:
        """Spend one global retry token (always allowed with no budget).

        A denial sends the batch straight to the merge-CSR fallback —
        under a cluster-wide fault that is strictly better than N
        replicas independently hammering the device with retries.
        """
        return self.retry_budget is None or self.retry_budget.try_spend()

    def _warm_tick(self) -> None:
        """Dispatch the warmer's nominations to the prefetcher."""
        due = self._warmer.due(
            resident=lambda f: self.registry.peek(f) is not None)
        for fp in due:
            self.obs.counter("pipeline.warm_total",
                             {"action": "prefetch"}).inc()
            with self._lock:
                csr = self._matrices.get(fp)
            self.prefetcher.prefetch(fp, csr)

    def _reorder_hint(self, fp: str, plan):
        """Persisted ``spmm.reorder_perm`` as a tuner hint, or ``None``.

        Consulting the store *before* re-deriving the permutation is
        what makes a tuned-offline matrix serve its first large-k batch
        without paying the reorder sweep again; the outcome is counted
        (``spmm.reorder.{loaded,derived}``) once per matrix.
        """
        with self._lock:
            if fp in self._reorder_hints:
                return self._reorder_hints[fp]
        aux = self.registry.load_aux(fp)
        hint = None
        if aux and "spmm.reorder_perm" in aux:
            hint = reorder_from_perm(plan.csr,
                                     np.asarray(aux["spmm.reorder_perm"]),
                                     mma_shape=plan.mma_shape)
            self.obs.counter("spmm.reorder.loaded_total").inc()
        else:
            self.obs.counter("spmm.reorder.derived_total").inc()
        with self._lock:
            if fp not in self._reorder_hints:
                self._reorder_hints[fp] = hint
            return self._reorder_hints[fp]

    def _spmm_strategy(self, fp: str, plan, k: int):
        """Tuner-chosen large-k strategy, memoized per (matrix, k).

        The tuner's reorder pass and permuted-plan build are paid once;
        concurrent workers racing the first build keep the first-stored
        strategy so every batch of a given width executes identically.
        A reorder permutation persisted alongside the plan artifact
        (the ``spmm.reorder_perm`` aux record) is loaded instead of
        re-derived.
        """
        key = (fp, int(k))
        with self._lock:
            strat = self._spmm_strategies.get(key)
        if strat is None:
            hint = self._reorder_hint(fp, plan)
            built = choose_spmm_strategy(plan, k, self.device,
                                         reorder_hint=hint)
            with self._lock:
                strat = self._spmm_strategies.setdefault(key, built)
        return strat

    def _shards_for(self, fp: str, csr) -> int:
        """Resolve the shard count for one matrix (memoized for auto).

        A per-request shard hint (``SpMVRequest.shards`` /
        ``SpMMRequest.shards``) recorded before the plan was first
        built overrides the server-wide policy for that matrix.
        """
        with self._lock:
            policy = self._shard_hints.get(fp, self.shards)
        if policy is None:
            return 1
        if policy == "auto":
            S = self._shard_choice.get(fp)
            if S is None:
                from ..shard import choose_shards

                # Offline model sweep (candidate plans are modeling-only
                # throwaways); the winning plan is built — and charged —
                # through the traced preprocessing path below.
                S = int(choose_shards(csr, self.scheduler.workers,
                                      device=self.device,
                                      k=self.batcher.max_batch).best_value)
                self._shard_choice[fp] = S
            return S
        return int(policy)

    def _get_plan(self, fp: str, csr):
        """Fetch or build the (possibly sharded) plan, charging modeled
        preprocess time and enforcing the preprocess deadline on
        misses."""
        pre_cell: dict[str, float] = {}

        def build(matrix):
            S = self._shards_for(fp, matrix)
            if S > 1:
                from ..shard import traced_preprocess_sharded

                plan, pre = traced_preprocess_sharded(
                    matrix, self.device, S, obs=self.obs,
                    injector=self.fault_injector, fingerprint=fp)
            else:
                plan, pre = traced_preprocess(
                    matrix, self.device, obs=self.obs,
                    injector=self.fault_injector, fingerprint=fp)
            if (self.preprocess_deadline_s is not None
                    and pre > self.preprocess_deadline_s):
                raise DeadlineExceededError(
                    f"preprocess needs {pre:.6f}s modeled, over the "
                    f"{self.preprocess_deadline_s:.6f}s budget")
            pre_cell["s"] = pre
            return plan

        plan, source, load_s = self.registry.get_ex(csr, fingerprint=fp,
                                                    builder=build)
        if source == "built":
            self.stats.observe_preprocess(pre_cell.get("s", 0.0))
        elif source == "store":
            # A disk load replaces the rebuild it saved; charge its
            # modeled cost to the same plan-acquisition bucket.
            self.stats.observe_preprocess(load_s)
        return plan

    def _run_kernel(self, batch: Batch, plan, fp: str, attempt: int = 0):
        """One DASP SpMV/SpMM attempt; raises on (injected) failure."""
        from ..shard import ShardedPlan

        if isinstance(plan, ShardedPlan):
            return self._run_kernel_sharded(batch, plan, fp, attempt)
        attrs = {"attempt": attempt} if self.obs.tracing else None
        with self.obs.span("kernel", attrs=attrs) as sp:
            extra_s = 0.0
            corrupt = False
            if self.fault_injector is not None:
                decision = self.fault_injector.check_kernel(fp)  # may raise
                extra_s, corrupt = decision.latency_s, decision.corrupt
            k = batch.k
            ev = spmm_events(plan, self.device, k)
            bits = plan.dtype.itemsize * 8
            util = mma_utilization(plan, k)
            if k > MMA_N:
                # Large-k tier: tuner-chosen strategy (looped / tiled /
                # reordered), memoized per (matrix, k).  All strategies
                # are bitwise-identical to column-wise dasp_spmv; the
                # batch is charged the chosen strategy's modeled time.
                strat = self._spmm_strategy(fp, plan, k)
                device_s = strat.modeled_s + extra_s
                Y = dasp_spmm_large(plan, batch.assemble_x(), strat)
                self.obs.counter("serve.spmm_large_total",
                                 {"strategy": strat.name}).inc()
                if self.obs.tracing:
                    sp.set_attr("spmm_strategy", strat.name)
                    sp.set_attr("tile_k", strat.tile_k)
            else:
                # k == 1 routes through the same SpMM path as 2..8 —
                # dasp_spmm's column folds are bitwise dasp_spmv, and
                # scale_rhs(k=1) preserves every event field.
                device_s = (estimate_time(ev, self.device,
                                          dtype_bits=bits).total + extra_s)
                Y = dasp_spmm(plan, batch.assemble_x(), obs=self.obs)
            if corrupt:
                Y = self.fault_injector.corrupt_output(Y)
            if not np.isfinite(Y).all():
                raise NumericFault(
                    f"non-finite kernel output for matrix {fp[:8]}…")
            # Attribute device time only on success: a failed attempt's
            # time never reaches the stats counters either, so the span
            # tree and `device_busy_s` stay in lockstep.
            if self.obs.tracing:
                frac = mma_phase_fraction(plan)
                sp.child("regular_mma", device_s=device_s * frac)
                sp.child("irregular_csr", device_s=device_s * (1.0 - frac))
                for key, value in ev.as_attrs().items():
                    sp.set_attr(key, value)
        return Y, device_s, util * ev.flops_mma, ev.flops_mma

    def _run_kernel_sharded(self, batch: Batch, plan, fp: str,
                            attempt: int = 0):
        """One sharded attempt: fan the shards out over idle workers.

        The join is **claim-based** and deadlock-free: helper closures
        submitted via :meth:`Scheduler.submit_task` and this (worker)
        thread all pull shard indices from a shared claim counter, so
        the batch's worker finishes every shard no helper picked up —
        whether the pool is busy, sized 1, or mid-shutdown — and then
        waits only on shards a live helper is actively executing.

        The batch is charged the modeled LPT makespan of the per-shard
        times over the participating lanes (deterministic, unlike the
        wall-clock interleaving); useful/issued MMA flops are sums.
        """
        attrs = {"attempt": attempt, "shards": plan.n_shards} \
            if self.obs.tracing else None
        with self.obs.span("kernel", attrs=attrs) as sp:
            k = batch.k
            X = batch.assemble_x()
            S = plan.n_shards
            results: list = [None] * S
            errors: list[Exception] = []
            state = {"next": 0, "done": 0}
            cond = threading.Condition()

            def helper() -> None:
                while True:
                    with cond:
                        if state["next"] >= S or errors:
                            return
                        i = state["next"]
                        state["next"] += 1
                    try:
                        out = self._run_shard(plan.shards[i], X, k, fp)
                        with cond:
                            results[i] = out
                    except Exception as exc:  # noqa: BLE001 — joined below
                        with cond:
                            errors.append(exc)
                    finally:
                        with cond:
                            state["done"] += 1
                            cond.notify_all()

            lanes = min(S, self.scheduler.workers)
            for _ in range(lanes - 1):
                self.scheduler.submit_task(helper)
            helper()  # this worker participates; returns when all claimed
            with cond:
                cond.wait_for(lambda: state["done"] >= state["next"])
                if errors:
                    raise errors[0]
            from ..shard import lpt_makespan

            parts = [r[0] for r in results]
            times = [r[1] for r in results]
            serial = sum(times)
            device_s = lpt_makespan(times, lanes)
            useful = sum(r[3] * r[2].flops_mma for r in results)
            issued = sum(r[2].flops_mma for r in results)
            Y = np.concatenate(parts, axis=0)
            if self.obs.tracing:
                # Scale per-shard phase children so the attributed total
                # equals the makespan the batch is actually charged.
                scale = device_s / serial if serial > 0 else 0.0
                combined = None
                for i, r in enumerate(results):
                    _, t, ev, _, frac = r
                    shard_sp = sp.child("shard", attrs={
                        "shard": i, "modeled_s": t})
                    shard_sp.child("regular_mma",
                                   device_s=t * scale * frac)
                    shard_sp.child("irregular_csr",
                                   device_s=t * scale * (1.0 - frac))
                    combined = ev if combined is None else combined.combine(ev)
                if combined is not None:
                    for key, value in combined.as_attrs().items():
                        sp.set_attr(key, value)
        return Y, device_s, useful, issued

    def _run_shard(self, shard, X, k: int, fp: str):
        """Run one shard's kernels with shard-level retry.

        Fault rules target a shard via the ``{fp}#s{i}`` fingerprint;
        a transient shard fault burns retry budget here — at shard
        granularity — before the whole batch's retry/degrade machinery
        sees anything.  Returns ``(Y_band, modeled_s, events,
        utilization, phase_fraction)``.
        """
        from ..core.spmm import dasp_spmm_on_plan
        from ..core.spmm_block import DEFAULT_TILE_K, dasp_spmm_tiled

        self.obs.counter("core.shard_executions_total").inc()
        for attempt in range(self.retry.max_retries + 1):
            try:
                extra_s, corrupt = 0.0, False
                if self.fault_injector is not None:
                    decision = self.fault_injector.check_kernel(
                        f"{fp}#s{shard.index}")  # may raise
                    extra_s, corrupt = decision.latency_s, decision.corrupt
                ev = spmm_events(shard.dasp, self.device, k)
                bits = shard.dasp.dtype.itemsize * 8
                t = (estimate_time(ev, self.device, dtype_bits=bits).total
                     + self.device.launch_overhead_s + extra_s)
                # The un-spanned kernel entry point: helper threads must
                # not open root spans in the thread-local tracer.
                # Column-tile wide blocks; both calls are bitwise the
                # column-wise dasp_spmv (k == 1 included).
                if k > MMA_N:
                    Yi = dasp_spmm_tiled(shard.dasp, X,
                                         tile_k=DEFAULT_TILE_K)
                else:
                    Yi = dasp_spmm_on_plan(shard.dasp, X)
                if corrupt:
                    Yi = self.fault_injector.corrupt_output(Yi)
                if not np.isfinite(Yi).all():
                    raise NumericFault(
                        f"non-finite output in shard {shard.index} of "
                        f"matrix {fp[:8]}…")
                return (Yi, t, ev, mma_utilization(shard.dasp, k),
                        mma_phase_fraction(shard.dasp))
            except Exception as exc:  # noqa: BLE001
                if (getattr(exc, "transient", False)
                        and attempt < self.retry.max_retries
                        and self._allow_retry()):
                    self.stats.observe_retry()
                    with self._rng_lock:
                        backoff = self.retry.backoff_s(attempt + 1,
                                                       self._retry_rng)
                    time.sleep(backoff)
                    continue
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _degrade(self, batch: Batch, csr, cause: Exception) -> None:
        """Serve the batch from the merge-CSR path (or fail it)."""
        if not self.fallback_enabled:
            self.stats.observe_failed(len(batch.requests))
            self._fail_batch(batch, cause)
            return
        attrs = None
        if self.obs.tracing:
            attrs = {"cause": type(cause).__name__}
        with self.obs.span("fallback", attrs=attrs) as sp:
            try:
                Y = self._fallback.run(batch.fingerprint, csr,
                                       batch.assemble_x())
                device_s, pre_s = self._fallback.modeled_cost(
                    batch.fingerprint, csr, batch.k)
            except Exception as exc:  # noqa: BLE001 — fallback itself broke
                if self.obs.tracing:
                    sp.status = "error"
                self.stats.observe_failed(len(batch.requests))
                self._fail_batch(batch, exc)
                return
            sp.set_device_time(device_s)
            if pre_s:
                self.stats.observe_preprocess(pre_s)
                if self.obs.tracing:
                    sp.child("preprocess", device_s=pre_s)
        self.stats.observe_degraded(len(batch.requests))
        # degraded batches issue no MMA work — utilization stays honest
        self._complete(batch, Y, device_s, 0.0, 0.0)

    def _complete(self, batch: Batch, Y, device_s: float,
                  useful: float, issued: float) -> None:
        now = self._now()
        batch.scatter(Y, now)
        self.stats.observe_batch(batch.k, device_s,
                                 useful_mma=useful, issued_mma=issued,
                                 completed=len(batch.requests))
        for req in batch.requests:
            self.stats.observe_latency(req.latency_s)
            fut = self._pop_future(req.req_id)
            if fut is not None:
                fut.set_result(req.result)

    def _shed_batch(self, batch: Batch) -> None:
        self.stats.observe_shed(len(batch.requests))
        for req in batch.requests:
            fut = self._pop_future(req.req_id)
            if fut is not None:
                fut.set_exception(RequestShedError(
                    f"request {req.req_id} shed under backpressure"))

    def _fail_batch(self, batch: Batch, exc: Exception) -> None:
        for req in batch.requests:
            fut = self._pop_future(req.req_id)
            if fut is not None:
                fut.set_exception(exc)

    def _pop_future(self, req_id: int) -> Future | None:
        with self._lock:
            return self._futures.pop(req_id, None)
