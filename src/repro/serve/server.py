"""`SpMVServer` — the real-threaded SpMV inference service.

Wires the three serving components together: requests submitted with
:meth:`SpMVServer.submit` are coalesced per matrix by the
:class:`~repro.serve.batcher.RequestBatcher`, executed as
:func:`~repro.core.spmm.dasp_spmm` batches (``dasp_spmv`` for
singletons) on the :class:`~repro.serve.scheduler.Scheduler` worker
pool, against plans cached in the
:class:`~repro.serve.plan_cache.PlanRegistry`.  Each submit returns a
``concurrent.futures.Future`` resolving to the result vector.

Alongside the numeric result, every batch is charged its *modeled*
device time (A100/H800 cost model over the measured SpMM events), so
the server reports hardware-meaningful throughput even though the
kernels run as NumPy on the host.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

from .._util import ReproError, check
from ..core.preprocess import dasp_preprocess_events
from ..core.spmm import dasp_spmm, mma_utilization, spmm_events
from ..core.spmv import dasp_spmv
from ..gpu.cost_model import estimate_preprocess_time, estimate_time
from ..gpu.device import get_device
from .batcher import DEFAULT_FLUSH_TIMEOUT_S, MMA_N, Batch, RequestBatcher, SpMVRequest
from .plan_cache import DEFAULT_BUDGET_BYTES, PlanRegistry, matrix_fingerprint
from .scheduler import QueueFullError, Scheduler
from .stats import ServerStats


class RequestShedError(ReproError):
    """Set on futures whose batch was shed under backpressure."""


class SpMVServer:
    """Batched, plan-cached SpMV serving (see module docstring).

    Matrices must be :meth:`register`-ed before requests can address
    them (by the returned fingerprint).  Use as a context manager, or
    call :meth:`close` to drain and stop the workers.
    """

    def __init__(self, *, device: str = "A100",
                 max_batch: int = MMA_N,
                 flush_timeout_s: float = DEFAULT_FLUSH_TIMEOUT_S,
                 cache_budget_bytes: int = DEFAULT_BUDGET_BYTES,
                 workers: int = 2, queue_depth: int = 64,
                 policy: str = "reject") -> None:
        self.device = get_device(device)
        self.registry = PlanRegistry(cache_budget_bytes)
        self.batcher = RequestBatcher(max_batch, flush_timeout_s)
        self.stats = ServerStats(device=self.device.name)
        self.scheduler = Scheduler(
            self._execute_batch, workers=workers, queue_depth=queue_depth,
            policy=policy, on_shed=self._shed_batch,
            on_error=self._fail_batch)
        self._matrices: dict[str, object] = {}
        self._futures: dict[int, Future] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._t0 = time.perf_counter()
        self._closed = False
        self._flusher = threading.Thread(target=self._flush_loop,
                                         name="serve-flusher", daemon=True)
        self._flusher.start()

    # ------------------------------------------------------------------
    def register(self, csr) -> str:
        """Make *csr* servable; returns its routing fingerprint."""
        fp = matrix_fingerprint(csr)
        with self._lock:
            self._matrices[fp] = csr
        return fp

    def submit(self, fingerprint: str, x) -> Future:
        """Queue ``y = A @ x``; the future resolves to the result vector.

        Raises :class:`~repro.serve.scheduler.QueueFullError` under
        ``"reject"`` backpressure; under ``"shed"`` the displaced
        batch's futures fail with :class:`RequestShedError`.
        """
        with self._lock:
            check(not self._closed, "server is closed")
            csr = self._matrices.get(fingerprint)
        if csr is None:
            raise ReproError(f"unknown matrix fingerprint {fingerprint!r}")
        check(x.shape == (csr.shape[1],),
              f"x must have shape ({csr.shape[1]},)")
        future: Future = Future()
        with self._lock:
            req_id = self._next_id
            self._next_id += 1
            self._futures[req_id] = future
        req = SpMVRequest(req_id=req_id, fingerprint=fingerprint, x=x,
                          arrival_s=self._now())
        self.stats.observe_request()
        try:
            full = self.batcher.add(req, self._now())
            if full is not None:
                self.scheduler.submit(full)
        except QueueFullError:
            with self._lock:
                self._futures.pop(req_id, None)
            self.stats.observe_rejected()
            raise
        return future

    def flush(self) -> None:
        """Force-flush all pending partial batches to the workers."""
        for batch in self.batcher.flush_all(self._now()):
            self.scheduler.submit(batch)

    def drain(self, timeout: float | None = None) -> bool:
        """Flush then wait for every in-flight batch to finish."""
        self.flush()
        return self.scheduler.drain(timeout)

    def close(self, timeout: float | None = None) -> None:
        if self._closed:
            return
        self.drain(timeout)
        self._closed = True
        self.scheduler.close(timeout=timeout)
        self._flusher.join(timeout)
        self.stats.duration_s = self._now()
        snap = self.registry.snapshot()
        self.stats.cache_hits = snap["hits"]
        self.stats.cache_misses = snap["misses"]
        self.stats.cache_evictions = snap["evictions"]

    def __enter__(self) -> "SpMVServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _flush_loop(self) -> None:
        # Wake a few times per timeout window; wall-clock flushing only
        # bounds latency, it does not affect modeled throughput.
        interval = max(self.batcher.flush_timeout_s / 4, 1e-4)
        while not self._closed:
            time.sleep(interval)
            try:
                for batch in self.batcher.due(self._now()):
                    self.scheduler.submit(batch)
            except (QueueFullError, ReproError):
                continue  # backpressure: leave batches queued in batcher

    def _execute_batch(self, batch: Batch) -> None:
        csr = self._matrices[batch.fingerprint]
        plan, hit = self.registry.get(csr, fingerprint=batch.fingerprint)
        if not hit:
            self.stats.observe_preprocess(estimate_preprocess_time(
                dasp_preprocess_events(plan), self.device))
        k = batch.k
        ev = spmm_events(plan, self.device, k)
        bits = plan.dtype.itemsize * 8
        device_s = estimate_time(ev, self.device, dtype_bits=bits).total
        util = mma_utilization(plan, k)
        if k == 1:
            Y = dasp_spmv(plan, batch.requests[0].x)[:, None]
        else:
            Y = dasp_spmm(plan, batch.assemble_x())
        now = self._now()
        batch.scatter(Y, now)
        self.stats.observe_batch(k, device_s,
                                 useful_mma=util * ev.flops_mma,
                                 issued_mma=ev.flops_mma)
        for req in batch.requests:
            self.stats.observe_latency(req.latency_s)
            fut = self._pop_future(req.req_id)
            if fut is not None:
                fut.set_result(req.result)

    def _shed_batch(self, batch: Batch) -> None:
        self.stats.observe_shed(batch.k)
        for req in batch.requests:
            fut = self._pop_future(req.req_id)
            if fut is not None:
                fut.set_exception(RequestShedError(
                    f"request {req.req_id} shed under backpressure"))

    def _fail_batch(self, batch: Batch, exc: Exception) -> None:
        for req in batch.requests:
            fut = self._pop_future(req.req_id)
            if fut is not None:
                fut.set_exception(exc)

    def _pop_future(self, req_id: int) -> Future | None:
        with self._lock:
            return self._futures.pop(req_id, None)
