"""Plan registry — cached DASP preprocessing keyed by matrix fingerprint.

The paper's Figure 13 shows preprocessing (CSR -> DASP layout) costs
tens to hundreds of SpMV invocations.  A server must therefore pay it
once per matrix and reuse the plan across requests.  The registry is an
LRU cache of :class:`~repro.core.format.DASPMatrix` plans under a
configurable byte budget (the device-resident footprint of the packed
arrays), with explicit hit / miss / eviction accounting so serving
experiments can report the amortization.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import fields, is_dataclass

import numpy as np

from .._util import check
from ..core.format import DASPMatrix
from ..resilience.errors import PlanTooLargeError

#: Default cache budget: 256 MiB of packed plan arrays.
DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024


def matrix_fingerprint(csr) -> str:
    """Content fingerprint of a CSR matrix (shape, dtype and payload).

    Two matrices share a fingerprint iff they are bytewise-identical
    CSR structures, so the fingerprint is a safe plan-cache key and a
    stable request-routing handle.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(repr((tuple(csr.shape), str(csr.data.dtype))).encode())
    h.update(np.ascontiguousarray(csr.indptr).tobytes())
    h.update(np.ascontiguousarray(csr.indices).tobytes())
    h.update(np.ascontiguousarray(csr.data).tobytes())
    return h.hexdigest()


def plan_nbytes(dasp) -> int:
    """Device-resident footprint of a plan's packed arrays in bytes.

    Walks the three category plans and sums every NumPy array they hold
    (values, column ids, pointers, row indices) — the arrays a real
    server would keep resident on the GPU between requests.  The source
    CSR is host-side and not charged.  A composite
    :class:`repro.shard.ShardedPlan` is charged the sum of its shards'
    plans (each band's packed arrays are all device-resident).
    """
    shards = getattr(dasp, "shards", None)
    if shards is not None:
        return sum(plan_nbytes(s.dasp) for s in shards)
    total = 0
    for plan in (dasp.long_plan, dasp.medium_plan, dasp.short_plan):
        if not is_dataclass(plan):
            continue
        for f in fields(plan):
            v = getattr(plan, f.name)
            if isinstance(v, np.ndarray):
                total += v.nbytes
    return total


class PlanRegistry:
    """LRU cache of DASP plans under a byte budget (thread-safe).

    Parameters
    ----------
    budget_bytes:
        Maximum total :func:`plan_nbytes` held.  A plan that alone
        exceeds the whole budget is *rejected* with
        :class:`~repro.resilience.errors.PlanTooLargeError` instead of
        thrash-evicting every other entry — the server answers such
        matrices from the plan-free fallback path.
    fault_injector:
        Optional :class:`repro.resilience.FaultInjector`; its
        ``cache_pressure`` rules shrink the effective budget per
        insertion, simulating device-memory pressure.
    obs:
        Optional :class:`repro.obs.Obs` handle.  The ``hits`` /
        ``misses`` / ``evictions`` / ``bytes_cached`` attributes are
        facades over its registry (``serve.plan_cache.*``), so a
        registry sharing the server's handle feeds ``ServerStats``
        directly — no copy-at-close step.  Defaults to a fresh private
        handle (per-run-object convention).
    """

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES, *,
                 fault_injector=None, obs=None) -> None:
        from ..obs import Obs

        check(budget_bytes >= 0, "budget_bytes must be non-negative")
        self.budget_bytes = int(budget_bytes)
        self.fault_injector = fault_injector
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self._hits = obs.counter("serve.plan_cache.hits_total")
        self._misses = obs.counter("serve.plan_cache.misses_total")
        self._evictions = obs.counter("serve.plan_cache.evictions_total")
        self._bytes = obs.gauge("serve.plan_cache.bytes")
        self._plans: OrderedDict[str, tuple[DASPMatrix, int]] = OrderedDict()
        self._lock = threading.RLock()
        # single-flight: fingerprints whose plan is being built right now;
        # concurrent misses on the same key wait on the condition instead
        # of each running the expensive conversion (dogpile).
        self._building: set[str] = set()
        self._build_cond = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    # counter facades (assignable for compatibility, e.g. rate probes
    # resetting `registry.hits = 0` between passes)
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @hits.setter
    def hits(self, value) -> None:
        self._hits.set(value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @misses.setter
    def misses(self, value) -> None:
        self._misses.set(value)

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    @evictions.setter
    def evictions(self, value) -> None:
        self._evictions.set(value)

    @property
    def bytes_cached(self) -> int:
        return int(self._bytes.value)

    @bytes_cached.setter
    def bytes_cached(self, value) -> None:
        self._bytes.set(value)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._plans

    def get(self, csr, *, fingerprint: str | None = None,
            builder=None) -> tuple[DASPMatrix, bool]:
        """Return ``(plan, hit)`` for *csr*, building and caching on miss.

        ``builder(csr) -> DASPMatrix`` overrides the default
        :meth:`DASPMatrix.from_csr` conversion (e.g. to pass tuning
        parameters); ``fingerprint`` skips re-hashing when the caller
        already holds the key.

        Concurrent misses on one fingerprint are **single-flight**: the
        first caller builds, later callers block until the build lands
        and then return it as a hit.  Misses on *different* fingerprints
        still build concurrently.  If the build fails (e.g.
        :class:`PlanTooLargeError`), one waiter takes over as the next
        builder and the error propagates to the failed caller.
        """
        key = fingerprint if fingerprint is not None else matrix_fingerprint(csr)
        with self._lock:
            while True:
                entry = self._plans.get(key)
                if entry is not None:
                    self._plans.move_to_end(key)
                    self.hits += 1
                    return entry[0], True
                if key not in self._building:
                    break
                self._build_cond.wait()
            self._building.add(key)
            self.misses += 1
        # Build outside the lock: conversion is the expensive part and
        # must not serialize concurrent misses on other matrices.
        try:
            plan = (builder(csr) if builder is not None
                    else DASPMatrix.from_csr(csr))
            self.put(key, plan)
        finally:
            with self._lock:
                self._building.discard(key)
                self._build_cond.notify_all()
        return plan, False

    def peek(self, fingerprint: str) -> DASPMatrix | None:
        """Return a cached plan without touching LRU order or counters."""
        with self._lock:
            entry = self._plans.get(fingerprint)
            return entry[0] if entry is not None else None

    def effective_budget(self) -> int:
        """Byte budget after any injected cache pressure."""
        if self.fault_injector is not None:
            return self.fault_injector.effective_budget(self.budget_bytes)
        return self.budget_bytes

    def put(self, fingerprint: str, plan: DASPMatrix) -> None:
        """Insert (or refresh) a plan and evict LRU entries over budget.

        Raises :class:`PlanTooLargeError` when the plan alone exceeds
        the (effective) budget — rejecting it outright beats evicting
        the whole working set for a matrix that cannot be cached anyway.
        """
        nbytes = plan_nbytes(plan)
        budget = self.effective_budget()
        if nbytes > budget:
            raise PlanTooLargeError(
                f"plan {fingerprint[:8]}… needs {nbytes:,} bytes, over the "
                f"{budget:,}-byte cache budget")
        with self._lock:
            old = self._plans.pop(fingerprint, None)
            if old is not None:
                self.bytes_cached -= old[1]
            self._plans[fingerprint] = (plan, nbytes)
            self.bytes_cached += nbytes
            while self.bytes_cached > budget and len(self._plans) > 1:
                _, (_, evicted_bytes) = self._plans.popitem(last=False)
                self.bytes_cached -= evicted_bytes
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.bytes_cached = 0

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """Counter snapshot for folding into :class:`ServerStats`."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "bytes_cached": self.bytes_cached,
                "plans": len(self._plans),
            }
