"""Plan registry — cached DASP preprocessing keyed by matrix fingerprint.

The paper's Figure 13 shows preprocessing (CSR -> DASP layout) costs
tens to hundreds of SpMV invocations.  A server must therefore pay it
once per matrix and reuse the plan across requests.  The registry is an
LRU cache of :class:`~repro.core.format.DASPMatrix` plans under a
configurable byte budget (the device-resident footprint of the packed
arrays), with explicit hit / miss / eviction accounting so serving
experiments can report the amortization.

With a :class:`repro.store.PlanStore` configured (``store=``), the
registry becomes the RAM tier of a two-tier hierarchy: misses try a
disk load before building (when the cost model says the load is
cheaper), builds write through to disk, evictions spill any plan the
store does not yet hold, and plans over the RAM budget are served
**load-through** from disk instead of failing with
:class:`PlanTooLargeError`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from .._util import check
from ..core.format import DASPMatrix
from ..resilience.errors import PlanTooLargeError
from ..store import fingerprint_csr

#: Default cache budget: 256 MiB of packed plan arrays.
DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024

#: Canonical content fingerprint (shape, dtype and CSR payload) — the
#: one key the plan cache, the artifact store and request routing all
#: share.  Alias of :func:`repro.store.fingerprint_csr`.
matrix_fingerprint = fingerprint_csr


def plan_nbytes(dasp, *, include_csr: bool = False) -> int:
    """Byte footprint of a plan's arrays.

    The default sums exactly the packed per-category arrays (values,
    column ids, pointers, row indices) a real server keeps resident on
    the GPU between requests — the figure charged against the registry
    budget.  ``include_csr=True`` adds the host-side source CSR arrays,
    which is what the on-disk artifact stores; both figures walk the
    same :meth:`~repro.core.DASPMatrix.array_inventory`, so the
    registry budget and the artifact size always agree on what they
    count.  A composite :class:`repro.shard.ShardedPlan` is the sum
    over its shards.
    """
    inventory = dasp.array_inventory(include_csr=include_csr)
    return int(sum(np.asarray(v).nbytes for v in inventory.values()))


class PlanRegistry:
    """LRU cache of DASP plans under a byte budget (thread-safe).

    Parameters
    ----------
    budget_bytes:
        Maximum total :func:`plan_nbytes` held.  A plan that alone
        exceeds the whole budget is *rejected* with
        :class:`~repro.resilience.errors.PlanTooLargeError` instead of
        thrash-evicting every other entry — the server answers such
        matrices from the plan-free fallback path.
    fault_injector:
        Optional :class:`repro.resilience.FaultInjector`; its
        ``cache_pressure`` rules shrink the effective budget per
        insertion, simulating device-memory pressure.
    obs:
        Optional :class:`repro.obs.Obs` handle.  The ``hits`` /
        ``misses`` / ``evictions`` / ``bytes_cached`` attributes are
        facades over its registry (``serve.plan_cache.*``), so a
        registry sharing the server's handle feeds ``ServerStats``
        directly — no copy-at-close step.  Defaults to a fresh private
        handle (per-run-object convention).
    store:
        Optional disk tier: a :class:`repro.store.PlanStore`, or a
        path-like to open one at.  The store is re-bound to this
        registry's ``obs`` handle so its ``store.*`` counters land in
        the same report.
    device:
        Device whose cost model gates disk loads (load-vs-rebuild);
        only consulted when a store is configured.
    """

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES, *,
                 fault_injector=None, obs=None, store=None,
                 device="A100") -> None:
        from ..obs import Obs

        check(budget_bytes >= 0, "budget_bytes must be non-negative")
        self.budget_bytes = int(budget_bytes)
        self.device = device
        self.fault_injector = fault_injector
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        if store is not None and not hasattr(store, "load"):
            from ..store import PlanStore

            store = PlanStore(store, device=device)
        self.store = store
        if store is not None:
            store.device = device
            store.bind(obs)
        self._hits = obs.counter("serve.plan_cache.hits_total")
        self._misses = obs.counter("serve.plan_cache.misses_total")
        self._evictions = obs.counter("serve.plan_cache.evictions_total")
        self._spills = obs.counter("serve.plan_cache.spills_total")
        self._store_loads = obs.counter("serve.plan_cache.store_loads_total")
        self._load_modeled = obs.counter(
            "serve.plan_cache.load_modeled_seconds_total")
        self._oversized = obs.counter("serve.plan_cache.oversized_total")
        self._delta_value = obs.counter("delta.value_total")
        self._delta_structural = obs.counter("delta.structural_total")
        self._delta_compaction = obs.counter("delta.compaction_total")
        self._patch_modeled = obs.counter("delta.patch_modeled_seconds_total")
        self._rebuild_modeled = obs.counter(
            "delta.rebuild_modeled_seconds_total")
        self._bytes = obs.gauge("serve.plan_cache.bytes")
        self._plans: OrderedDict[str, tuple[DASPMatrix, int]] = OrderedDict()
        # Bytes resident in *this* registry.  The gauge above is only a
        # mirror: several registries may share one Obs handle (the
        # cluster driver's replicas do), which makes the gauge the sum
        # across all of them — an eviction loop keyed on it would
        # thrash-evict one registry's working set chasing another's
        # bytes and never converge.  All budget decisions read this
        # local figure; the gauge is maintained by deltas.
        self._resident_bytes = 0
        self._lock = threading.RLock()
        # single-flight: fingerprints whose plan is being built right now;
        # concurrent misses on the same key wait on the condition instead
        # of each running the expensive conversion (dogpile).
        self._building: set[str] = set()
        self._build_cond = threading.Condition(self._lock)
        # MatrixVersion chain: base fingerprint -> current version (0 =
        # the original build; version v lives under key "fp@v{v}").
        self._versions: dict[str, int] = {}

    # ------------------------------------------------------------------
    # counter facades (assignable for compatibility, e.g. rate probes
    # resetting `registry.hits = 0` between passes)
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @hits.setter
    def hits(self, value) -> None:
        self._hits.set(value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @misses.setter
    def misses(self, value) -> None:
        self._misses.set(value)

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    @evictions.setter
    def evictions(self, value) -> None:
        self._evictions.set(value)

    @property
    def bytes_cached(self) -> int:
        """Bytes resident in this registry (the figure the budget
        governs).  With a private Obs handle it equals the
        ``serve.plan_cache.bytes`` gauge; with a shared handle the
        gauge is the sum across registries instead."""
        with self._lock:
            return self._resident_bytes

    @bytes_cached.setter
    def bytes_cached(self, value) -> None:
        with self._lock:
            self._resident_bytes = int(value)
        self._bytes.set(value)

    def _account(self, delta: int) -> None:
        """Adjust resident bytes (caller holds the lock) and mirror the
        change into the shared gauge."""
        self._resident_bytes += delta
        self._bytes.inc(delta)

    # ------------------------------------------------------------------
    # MatrixVersion chain (repro.core.delta)
    # ------------------------------------------------------------------
    @staticmethod
    def split_version(key: str) -> tuple[str, int | None]:
        """``"fp@v3" -> ("fp", 3)``; a bare key returns ``(key, None)``.

        ``None`` (no suffix) means *current* — distinct from an explicit
        ``"fp@v0"``, which pins the original pre-update version for a
        drain even after the chain has advanced."""
        base, sep, v = key.partition("@v")
        return (base, int(v)) if sep else (key, None)

    @staticmethod
    def versioned_key(base: str, version: int) -> str:
        return base if version == 0 else f"{base}@v{int(version)}"

    def version_of(self, fingerprint: str) -> int:
        """Current version of a base fingerprint (0 until updated) —
        the figure the serving layer stamps onto requests at submit
        time (the version fence)."""
        base, _ = self.split_version(fingerprint)
        with self._lock:
            return self._versions.get(base, 0)

    def _resolve(self, base: str, req_version: int | None) -> str:
        """Map a requested key to a cache key (caller holds the lock).

        An unversioned request (``None``) means *current* — after an
        update, a pre-update plan can never satisfy it; an explicitly
        versioned request (a drain against a retained old version,
        including ``@v0``) resolves to exactly that key."""
        if req_version is not None:
            return self.versioned_key(base, req_version)
        return self.versioned_key(base, self._versions.get(base, 0))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, fingerprint: str) -> bool:
        base, req_v = self.split_version(fingerprint)
        with self._lock:
            return self._resolve(base, req_v) in self._plans

    def get(self, csr, *, fingerprint: str | None = None,
            builder=None) -> tuple[DASPMatrix, bool]:
        """Return ``(plan, hit)`` for *csr*, building and caching on miss.

        ``builder(csr) -> DASPMatrix`` overrides the default
        :meth:`DASPMatrix.from_csr` conversion (e.g. to pass tuning
        parameters); ``fingerprint`` skips re-hashing when the caller
        already holds the key.  ``hit`` means *RAM* hit; a plan read
        back from the disk tier counts as a miss here (use
        :meth:`get_ex` to distinguish).

        Concurrent misses on one fingerprint are **single-flight**: the
        first caller builds, later callers block until the build lands
        and then return it as a hit.  Misses on *different* fingerprints
        still build concurrently.  If the build fails (e.g.
        :class:`PlanTooLargeError`), one waiter takes over as the next
        builder and the error propagates to the failed caller.
        """
        plan, source, _ = self.get_ex(csr, fingerprint=fingerprint,
                                      builder=builder)
        return plan, source == "ram"

    def get_ex(self, csr, *, fingerprint: str | None = None, builder=None,
               load_only: bool = False):
        """Two-tier lookup; returns ``(plan, source, load_s)``.

        ``source`` is ``"ram"`` (cache hit), ``"store"`` (loaded from
        the disk tier; ``load_s`` is the *modeled* load seconds the
        caller should charge in place of a rebuild), ``"built"`` (the
        builder ran), or — only with ``load_only=True`` — ``"absent"``
        with ``plan=None`` when nothing was cached or stored, or
        ``"pending"`` when another thread is already loading/building
        this fingerprint.  ``load_only`` never builds, never counts a
        miss, and never blocks: it is the warm-start / speculative
        prefetch path, and stalling it behind an in-flight build would
        serialize the warmer on the very cold matrix it is trying to
        hide (the in-flight owner lands the plan either way).

        Store loads happen inside the same single-flight section as
        builds, so concurrent misses on one fingerprint do one disk
        read, not N — including a `warm` racing a `get`, which must not
        double-load the artifact or double-count ``store.*`` counters.
        A corrupt artifact is quarantined by the store and falls
        through to a fresh build.
        """
        req = fingerprint if fingerprint is not None else matrix_fingerprint(csr)
        base, req_v = self.split_version(req)
        with self._lock:
            while True:
                key = self._resolve(base, req_v)
                entry = self._plans.get(key)
                if entry is not None:
                    self._plans.move_to_end(key)
                    self.hits += 1
                    return entry[0], "ram", 0.0
                if key not in self._building:
                    break
                if load_only:
                    return None, "pending", 0.0
                self._build_cond.wait()
            if load_only and (self.store is None
                              or not self.store.contains(base)):
                return None, "absent", 0.0
            self._building.add(key)
            if not load_only:
                self.misses += 1
        # Load/build outside the lock: both are the expensive part and
        # must not serialize concurrent misses on other matrices.
        try:
            if self.store is not None:
                # Pin the load to the version the request resolved to;
                # a bare base key (no local chain yet) loads whatever
                # the store reconstructs and adopts its version below.
                want = (req_v if req_v is not None
                        else self.split_version(key)[1])
                loaded = self._load_from_store(
                    base, want_version=want, gate=not load_only)
                if loaded is not None:
                    plan, load_s, stored_v = loaded
                    actual = self.versioned_key(base, stored_v)
                    with self._lock:
                        # Version-aware warm-up: a fresh registry over a
                        # shared store adopts the store's current chain.
                        if stored_v > self._versions.get(base, 0):
                            self._versions[base] = stored_v
                    self._insert(actual, plan)
                    return plan, "store", load_s
            if load_only:
                return None, "absent", 0.0
            plan = (builder(csr) if builder is not None
                    else DASPMatrix.from_csr(csr))
            self.put(key, plan)
        finally:
            with self._lock:
                self._building.discard(key)
                self._build_cond.notify_all()
        return plan, "built", 0.0

    def warm(self, fingerprint: str) -> float | None:
        """Preload *fingerprint* from the disk tier (never builds).

        Returns the modeled load seconds on success, ``None`` when the
        registry has no store, the artifact is absent or corrupt, or
        the plan was already cached.  The cost gate is bypassed: an
        explicit warm-start pays the load off the serving clock, so it
        is worth doing even when an in-band rebuild would be cheaper.
        """
        plan, source, load_s = self.get_ex(None, fingerprint=fingerprint,
                                           load_only=True)
        return load_s if source == "store" else None

    def load_aux(self, fingerprint: str) -> dict | None:
        """Auxiliary arrays published with *fingerprint*'s artifact.

        Passthrough to :meth:`repro.store.PlanStore.load_aux` — e.g.
        the tuned ``spmm.reorder_perm`` permutation the ``spmm`` CLI
        persists.  ``None`` without a store or when the artifact is
        absent/corrupt; an empty dict when it carries no aux records.
        """
        if self.store is None:
            return None
        return self.store.load_aux(fingerprint)

    def _store_version(self, base: str) -> int | None:
        """Version the store would reconstruct for *base* (header-only
        peek — no payload read), or ``None`` when absent/corrupt."""
        header = self.store.peek_header(base)
        if header is None:
            return None
        names = header.get("aux") or []
        deltas = [int(n.split(".")[1]) for n in names
                  if n.startswith("delta.") and n != "delta.base"]
        if deltas:
            return max(deltas)
        if "delta.base" in names:
            state = self.store.delta_state(base)
            return state[0] if state is not None else None
        return 0

    def _load_from_store(self, base: str, *, want_version: int | None = None,
                         gate: bool = True):
        """One traced disk-tier load attempt (inside single-flight).

        Returns ``(plan, load_s, stored_version)`` or ``None``.  A
        pinned request (``want_version`` not ``None``) only succeeds
        when the store reconstructs exactly that version — a divergent
        chain (deltas not yet persisted here) falls through to a
        rebuild from the caller's current CSR."""
        attrs = {"matrix": base[:8]} if self.obs.tracing else None
        with self.obs.span("plan.load", attrs=attrs) as sp:
            stored_v = self._store_version(base)
            if stored_v is None:
                return None
            if want_version is not None and stored_v != want_version:
                return None
            got = self.store.load(base, gate=gate)
            if got is None:
                return None
            plan, load_s = got
            self._store_loads.inc()
            self._load_modeled.inc(load_s)
            sp.set_device_time(load_s)
            if self.obs.tracing:
                sp.set_attr("modeled_s", load_s)
        return plan, load_s, stored_v

    def update(self, fingerprint: str, delta, *, csr=None,
               persist: bool = True):
        """Advance *fingerprint*'s version chain by applying *delta*.

        Patches the current plan instead of rebuilding: value updates
        patch a **clone** of the resident plan (in-flight requests
        pinned to the old version drain against unmodified slabs),
        structural updates reclassify only the touched rows into the
        patch overlay.  The new plan lands under ``fp@v{n+1}``; the
        immediately preceding version is retained in RAM for drains and
        anything older is retired.  With a store configured the delta is
        persisted as a CRC-checked ``aux.delta.*`` record *before* the
        version becomes visible, so a crash between the two leaves
        readers on the old, fully consistent version.

        ``csr`` (the **pre**-update CSR) is the rebuild fallback when
        the current plan is neither cached nor loadable.
        ``persist=False`` skips the store write — cluster replicas that
        share one store directory designate a single *home* replica as
        the delta writer, since concurrent ``put_delta`` calls would
        trip the version-contiguity check.  Returns
        ``(new_version, PatchInfo, new_plan)``.

        Rides the single-flight machinery on the *new* key: concurrent
        readers of the old key proceed untouched, while readers that
        already resolved to the new version block until it lands.
        """
        from ..core.delta import (ValueUpdate, apply_update, clone_for_patch,
                                  rebuild_events)
        from ..gpu.cost_model import estimate_preprocess_time

        base, req_v = self.split_version(fingerprint)
        check(not req_v,
              "update() takes a base fingerprint, not a versioned key")
        with self._lock:
            while True:
                cur_v = self._versions.get(base, 0)
                cur_key = self.versioned_key(base, cur_v)
                new_key = self.versioned_key(base, cur_v + 1)
                if (cur_key not in self._building
                        and new_key not in self._building):
                    break
                self._build_cond.wait()
            self._building.add(new_key)
            entry = self._plans.get(cur_key)
            plan = entry[0] if entry is not None else None
        try:
            if plan is None and self.store is not None:
                loaded = self._load_from_store(base, want_version=cur_v,
                                               gate=False)
                if loaded is not None:
                    plan = loaded[0]
            if plan is None:
                if csr is None:
                    raise KeyError(
                        f"no current plan for {base[:8]}… and no csr= "
                        f"fallback to rebuild from")
                plan = DASPMatrix.from_csr(csr)
            work = (clone_for_patch(plan) if isinstance(delta, ValueUpdate)
                    else plan)
            new_plan, info = apply_update(work, delta)
            new_v = cur_v + 1
            if self.store is not None and persist:
                self.store.put_delta(base, new_v, delta, seed_plan=plan)
            with self._lock:
                self._versions[base] = new_v
            self._insert(new_key, new_plan)
            if isinstance(delta, ValueUpdate):
                self._delta_value.inc()
            else:
                self._delta_structural.inc()
            if info.compacted:
                self._delta_compaction.inc()
            self._patch_modeled.inc(info.seconds(self.device))
            self._rebuild_modeled.inc(estimate_preprocess_time(
                rebuild_events(new_plan), self.device))
            self._retire_versions(base, keep_min=new_v - 1)
            return new_v, info, new_plan
        finally:
            with self._lock:
                self._building.discard(new_key)
                self._build_cond.notify_all()

    def _retire_versions(self, base: str, *, keep_min: int) -> None:
        """Drop RAM entries of *base*'s chain older than *keep_min*.

        Retirement is version lifecycle, not cache pressure: it counts
        as neither an eviction nor a spill (versioned entries are
        reconstructable from the base artifact's delta chain).
        """
        with self._lock:
            stale = [k for k in self._plans
                     if self.split_version(k)[0] == base
                     and (self.split_version(k)[1] or 0) < keep_min]
            for k in stale:
                _, nbytes = self._plans.pop(k)
                self._account(-nbytes)

    def rollback(self, fingerprint: str, version: int):
        """Roll *fingerprint*'s chain back to *version* (cheap undo).

        The store is the source of truth for retained deltas, so a
        store is required; it truncates its ``aux.delta.*`` records
        first (while the payload is pristine) and replays the survivors.
        Newer RAM entries are dropped so no lookup can resolve past the
        rollback point.  Returns the plan at *version*, or ``None`` when
        the store cannot reach it (outside the retained window).
        """
        check(self.store is not None,
              "rollback requires a store (deltas are not retained in RAM)")
        base, _ = self.split_version(fingerprint)
        target = self.versioned_key(base, version)
        with self._lock:
            while target in self._building:
                self._build_cond.wait()
            self._building.add(target)
        try:
            got = self.store.rollback(base, version)
            if got is None:
                return None
            plan = got[0]
            with self._lock:
                self._versions[base] = version
                stale = [k for k in self._plans
                         if self.split_version(k)[0] == base
                         and (self.split_version(k)[1] or 0) > version]
                for k in stale:
                    _, nbytes = self._plans.pop(k)
                    self._account(-nbytes)
            self._insert(target, plan)
            return plan
        finally:
            with self._lock:
                self._building.discard(target)
                self._build_cond.notify_all()

    def peek(self, fingerprint: str) -> DASPMatrix | None:
        """Return a cached plan without touching LRU order or counters.

        Version-resolved like every lookup: an unversioned fingerprint
        peeks at the *current* version of its chain."""
        base, req_v = self.split_version(fingerprint)
        with self._lock:
            entry = self._plans.get(self._resolve(base, req_v))
            return entry[0] if entry is not None else None

    def effective_budget(self) -> int:
        """Byte budget after any injected cache pressure."""
        if self.fault_injector is not None:
            return self.fault_injector.effective_budget(self.budget_bytes)
        return self.budget_bytes

    def put(self, fingerprint: str, plan: DASPMatrix) -> None:
        """Insert (or refresh) a plan and evict LRU entries over budget.

        A plan that alone exceeds the (effective) budget raises
        :class:`PlanTooLargeError` when no store is configured —
        rejecting it outright beats evicting the whole working set for
        a matrix that cannot be cached anyway.  With a disk tier, the
        plan is persisted instead and served **load-through**: later
        lookups read it back from the store without ever occupying RAM
        budget.  In-budget builds write through to the store so a
        later process can warm-start from them.
        """
        nbytes = plan_nbytes(plan)
        budget = self.effective_budget()
        # Versioned plans never write through as standalone artifacts:
        # update() persists the chain as aux.delta.* records on the base
        # fingerprint (via PlanStore.put_delta), and the store replays
        # them on load — a "fp@v3" artifact would shadow that channel.
        versioned = "@v" in fingerprint
        if nbytes > budget:
            if self.store is not None:
                self._oversized.inc()
                if not versioned:
                    self.store.put(fingerprint, plan, overwrite=False)
                return
            raise PlanTooLargeError(
                f"plan {fingerprint[:8]}… needs {nbytes:,} bytes, over the "
                f"{budget:,}-byte cache budget")
        self._insert(fingerprint, plan, nbytes=nbytes, budget=budget)
        if (self.store is not None and not versioned
                and fingerprint not in self.store):
            self.store.put(fingerprint, plan, overwrite=False)

    def _insert(self, fingerprint: str, plan, *, nbytes: int | None = None,
                budget: int | None = None) -> None:
        """RAM-tier insert + LRU eviction; evictees spill to the store.

        An over-budget plan is silently *not* inserted (the disk tier
        already holds it — this is the load-through path); the caller
        keeps serving the reference it was handed.
        """
        if nbytes is None:
            nbytes = plan_nbytes(plan)
        if budget is None:
            budget = self.effective_budget()
        if nbytes > budget:
            return
        evicted = []
        with self._lock:
            old = self._plans.pop(fingerprint, None)
            if old is not None:
                self._account(-old[1])
            self._plans[fingerprint] = (plan, nbytes)
            self._account(nbytes)
            # Evict down to (at worst) the just-inserted plan, judged by
            # *this* registry's resident bytes — never the shared gauge,
            # which may also count plans held by sibling registries and
            # would leave this loop spinning over budget forever.
            while self._resident_bytes > budget and len(self._plans) > 1:
                fp, (ev_plan, evicted_bytes) = self._plans.popitem(last=False)
                self._account(-evicted_bytes)
                self.evictions += 1
                evicted.append((fp, ev_plan))
        # Spill outside the lock: serialization is the slow part.  The
        # write-through on build makes most spills no-ops (the artifact
        # already exists); racing spills of one fingerprint are safe —
        # content addressing makes both bytes identical and the rename
        # atomic.
        if self.store is not None:
            for fp, ev_plan in evicted:
                # Versioned entries are reconstructable from the base
                # artifact's delta chain — spilling them would create
                # shadow artifacts the store never garbage-collects.
                if "@v" not in fp and fp not in self.store:
                    self.store.put(fp, ev_plan, overwrite=False)
                    self._spills.inc()

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._account(-self._resident_bytes)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """Counter snapshot for folding into :class:`ServerStats`."""
        with self._lock:
            snap = {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "bytes_cached": self.bytes_cached,
                "plans": len(self._plans),
            }
        if self.store is not None:
            snap.update({
                "spills": int(self._spills.value),
                "store_loads": int(self._store_loads.value),
                "oversized": int(self._oversized.value),
            })
        return snap
