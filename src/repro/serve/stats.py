"""`ServerStats` — the serving layer's metrics facade.

Since the `repro.obs` redesign, ``ServerStats`` no longer *owns* any
counter: it is a thin facade over a
:class:`repro.obs.MetricsRegistry`.  Every counter-like attribute
(``n_requests``, ``cache_hits``, ``device_busy_s``, ...) is a property
reading — and, for backward compatibility, writing — a named
registry instrument, so components that share the same
:class:`repro.obs.Obs` handle (the plan registry, scheduler, breaker,
fault injector) and the stats object report from **one source of
truth**; the pre-redesign copy-counters-at-close drift is structurally
impossible.

The observation API (``observe_request`` and friends), the derived
metrics and :meth:`summary_table` are unchanged, so existing callers
and report goldens keep working byte-for-byte.
"""

from __future__ import annotations

import numpy as np

from ..bench.report import markdown_table
from ..obs import DEFAULT_TIME_BUCKETS, Obs

#: registry metric names backing the facade (property -> (metric, int?)).
_COUNTER_METRICS = {
    "n_requests": ("serve.requests_total", True),
    "n_completed": ("serve.completed_total", True),
    "n_rejected": ("serve.rejected_total", True),
    "n_shed": ("serve.shed_total", True),
    "n_batches": ("serve.batches_total", True),
    "cache_hits": ("serve.plan_cache.hits_total", True),
    "cache_misses": ("serve.plan_cache.misses_total", True),
    "cache_evictions": ("serve.plan_cache.evictions_total", True),
    "device_busy_s": ("serve.device_busy_seconds_total", False),
    "preprocess_s": ("serve.preprocess_seconds_total", False),
    "useful_mma_flops": ("serve.mma_useful_flops_total", False),
    "issued_mma_flops": ("serve.mma_issued_flops_total", False),
    "degraded_requests": ("serve.degraded_total", True),
    "retries": ("serve.retries_total", True),
    "n_deadline_exceeded": ("serve.deadline_exceeded_total", True),
    "n_failed": ("serve.failed_total", True),
    "n_closed": ("serve.closed_total", True),
    "breaker_transitions": ("resilience.breaker_transitions_total", True),
    "store_hits": ("store.hits_total", True),
    "store_misses": ("store.misses_total", True),
    "store_writes": ("store.writes_total", True),
    "store_quarantined": ("store.quarantined_total", True),
    "store_spills": ("serve.plan_cache.spills_total", True),
    "store_loads": ("serve.plan_cache.store_loads_total", True),
    "store_oversized": ("serve.plan_cache.oversized_total", True),
    "store_load_modeled_s": ("serve.plan_cache.load_modeled_seconds_total",
                             False),
    "hedges_issued": ("overload.hedge.issued_total", True),
    "hedges_won": ("overload.hedge.won_total", True),
    "hedges_wasted": ("overload.hedge.wasted_total", True),
    "retry_budget_granted": ("overload.retry_budget.granted_total", True),
    "retry_budget_denied": ("overload.retry_budget.denied_total", True),
    "prefetches": ("pipeline.prefetch_total", True),
    "prefetch_modeled_s": ("pipeline.prefetch_seconds_total", False),
    "parked_batches": ("pipeline.parked_total", True),
    "warm_loads": ("pipeline.warm_load_total", True),
    "warm_builds": ("pipeline.warm_build_total", True),
    "warm_failed": ("pipeline.warm_failed_total", True),
    "reorder_loaded": ("spmm.reorder.loaded_total", True),
    "reorder_derived": ("spmm.reorder.derived_total", True),
    "delta_value_updates": ("delta.value_total", True),
    "delta_structural_updates": ("delta.structural_total", True),
    "delta_compactions": ("delta.compaction_total", True),
    "delta_patch_modeled_s": ("delta.patch_modeled_seconds_total", False),
    "delta_rebuild_modeled_s": ("delta.rebuild_modeled_seconds_total", False),
}


def _counter_property(attr: str, metric: str, as_int: bool) -> property:
    def fget(self):
        v = self._registry.counter(metric).value
        return int(v) if as_int else v

    def fset(self, value):
        self._registry.counter(metric).set(value)

    return property(fget, fset, doc=f"Facade over registry counter "
                                    f"``{metric}``.")


class ServerStats:
    """Accumulated metrics for one serving run (registry-backed).

    Parameters
    ----------
    device / dtype:
        Where and at which precision the run served.
    obs:
        The :class:`repro.obs.Obs` handle whose registry backs every
        counter.  Defaults to a fresh private handle so standalone
        stats objects stay independent; the server/driver pass their
        run-wide handle so the plan cache, breaker and injector write
        the *same* instruments this facade reads.  A disabled handle
        (``NULL_OBS``) is replaced by a private one — the stats object
        must always be able to report.

    The attribute surface is unchanged from the dataclass era:
    ``n_requests``, ``n_completed``, ``n_rejected``, ``n_shed``,
    ``n_batches``, ``batch_hist``, ``cache_hits/misses/evictions``,
    ``device_busy_s``, ``preprocess_s``, ``duration_s``,
    ``useful_mma_flops``, ``issued_mma_flops``, ``latencies_s``,
    ``degraded_requests``, ``retries``, ``n_deadline_exceeded``,
    ``n_failed``, ``n_closed``, ``breaker_transitions``,
    ``breaker_state``, ``faults_injected`` — all readable (and, for
    migration, assignable) exactly as before.
    """

    def __init__(self, device: str = "A100", dtype: str = "float64",
                 obs: Obs | None = None) -> None:
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self._registry = obs.registry
        self.device = device
        self.dtype = dtype
        #: Raw per-request latencies (seconds) for exact percentiles;
        #: also folded into the ``serve.latency_seconds`` histogram.
        self.latencies_s: list[float] = []
        #: fingerprint -> breaker state map (copied at report time).
        self.breaker_state: dict[str, str] = {}
        self._latency_hist = obs.histogram("serve.latency_seconds",
                                           DEFAULT_TIME_BUCKETS)
        self._duration = obs.gauge("serve.duration_seconds")

    # ------------------------------------------------------------------
    # registry-backed attributes
    # ------------------------------------------------------------------
    locals().update({attr: _counter_property(attr, metric, as_int)
                     for attr, (metric, as_int) in _COUNTER_METRICS.items()})

    @property
    def duration_s(self) -> float:
        """Makespan of the run (virtual or wall seconds) — a gauge."""
        return self._duration.value

    @duration_s.setter
    def duration_s(self, value: float) -> None:
        self._duration.set(value)

    @property
    def batch_hist(self) -> dict:
        """batch size -> number of batches of that size (from the
        ``serve.batch_size_total{k=...}`` counter family)."""
        return {int(c.labels["k"]): int(c.value)
                for c in self._registry.family("serve.batch_size_total")
                if c.value}

    @property
    def admission_rejected(self) -> int:
        """Requests shed by admission control (sum of the labeled
        ``overload.admission.rejected_total`` family)."""
        return int(self._registry.family_total(
            "overload.admission.rejected_total"))

    @property
    def admission_admitted(self) -> int:
        return int(self._registry.family_total(
            "overload.admission.admitted_total"))

    @property
    def warms(self) -> int:
        """Speculative warms dispatched (sum of the labeled
        ``pipeline.warm_total`` family)."""
        return int(self._registry.family_total("pipeline.warm_total"))

    @property
    def spmm_large_by_strategy(self) -> dict[str, int]:
        """strategy name -> large-k batches executed through it."""
        return {c.labels["strategy"]: int(c.value)
                for c in self._registry.family("serve.spmm_large_total")
                if c.value}

    @property
    def faults_injected(self) -> int:
        """Total fault-injector rule firings (sum of the labeled
        ``resilience.faults_total`` family)."""
        return int(self._registry.family_total("resilience.faults_total"))

    @faults_injected.setter
    def faults_injected(self, value) -> None:
        # Migration shim: only meaningful when no bound injector is
        # already incrementing the labeled family.
        self._registry.counter("resilience.faults_total").set(value)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe_request(self, n: int = 1) -> None:
        self._registry.counter("serve.requests_total").inc(n)

    def observe_rejected(self, n: int = 1) -> None:
        self._registry.counter("serve.rejected_total").inc(n)

    def observe_shed(self, n: int = 1) -> None:
        self._registry.counter("serve.shed_total").inc(n)

    def observe_batch(self, k: int, device_s: float, *,
                      useful_mma: float = 0.0, issued_mma: float = 0.0,
                      completed: int | None = None) -> None:
        """Record one executed batch of ``k`` requests.

        ``completed`` overrides the completion increment when it
        differs from the batch size — hedge shadows that lost their
        pair do real device work (counted in ``k`` and the device
        seconds) without producing a user-visible completion.
        """
        reg = self._registry
        reg.counter("serve.batches_total").inc()
        reg.counter("serve.completed_total").inc(
            k if completed is None else completed)
        reg.counter("serve.batch_size_total", {"k": k}).inc()
        reg.counter("serve.device_busy_seconds_total").inc(device_s)
        reg.counter("serve.mma_useful_flops_total").inc(useful_mma)
        reg.counter("serve.mma_issued_flops_total").inc(issued_mma)

    def observe_preprocess(self, seconds: float) -> None:
        self._registry.counter("serve.preprocess_seconds_total").inc(seconds)

    def observe_degraded(self, n: int = 1) -> None:
        """Record *n* requests answered from the fallback path."""
        self._registry.counter("serve.degraded_total").inc(n)

    def observe_retry(self, n: int = 1) -> None:
        self._registry.counter("serve.retries_total").inc(n)

    def observe_deadline_exceeded(self, n: int = 1) -> None:
        self._registry.counter("serve.deadline_exceeded_total").inc(n)

    def observe_failed(self, n: int = 1) -> None:
        self._registry.counter("serve.failed_total").inc(n)

    def observe_closed(self, n: int = 1) -> None:
        self._registry.counter("serve.closed_total").inc(n)

    def observe_spmm_large(self, strategy: str, n: int = 1) -> None:
        """Record *n* large-k batches executed with *strategy*."""
        self._registry.counter("serve.spmm_large_total",
                               {"strategy": strategy}).inc(n)

    def observe_latency(self, seconds: float) -> None:
        s = float(seconds)
        self.latencies_s.append(s)
        self._latency_hist.observe(s)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        return self.n_completed / self.n_batches if self.n_batches else 0.0

    @property
    def cache_hit_rate(self) -> float:
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    @property
    def fallback_ratio(self) -> float:
        """Share of completed requests served by the degraded path."""
        return (self.degraded_requests / self.n_completed
                if self.n_completed else 0.0)

    @property
    def mma_utilization(self) -> float:
        if self.issued_mma_flops <= 0:
            return 0.0
        return self.useful_mma_flops / self.issued_mma_flops

    @property
    def throughput_rps(self) -> float:
        """Completed requests per modeled device-second of kernel time."""
        if self.device_busy_s <= 0:
            return 0.0
        return self.n_completed / self.device_busy_s

    @property
    def goodput_rps(self) -> float:
        """Throughput including preprocessing time (the end-to-end rate
        a cold or cache-thrashing server actually sustains)."""
        busy = self.device_busy_s + self.preprocess_s
        if busy <= 0:
            return 0.0
        return self.n_completed / busy

    def latency_percentiles(self, qs=(50, 95, 99)) -> dict[int, float]:
        """Latency percentiles (seconds) over completed requests."""
        if not self.latencies_s:
            return {q: float("nan") for q in qs}
        arr = np.asarray(self.latencies_s)
        return {q: float(np.percentile(arr, q)) for q in qs}

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary_table(self) -> str:
        """Markdown summary of every reported metric."""
        pct = self.latency_percentiles()
        batch_hist = self.batch_hist
        hist = " ".join(f"{k}:{batch_hist[k]}" for k in sorted(batch_hist))
        rows = [
            ("device / dtype", f"{self.device} / {self.dtype}"),
            ("requests offered / completed", f"{self.n_requests:,} / {self.n_completed:,}"),
            ("rejected / shed", f"{self.n_rejected:,} / {self.n_shed:,}"),
            ("batches (mean size)", f"{self.n_batches:,} ({self.mean_batch_size:.2f})"),
            ("batch-size histogram", hist or "-"),
            ("plan cache hit / miss / evict",
             f"{self.cache_hits} / {self.cache_misses} / {self.cache_evictions}"),
            ("cache hit rate", f"{self.cache_hit_rate:.1%}"),
            ("device busy (kernels)", f"{self.device_busy_s * 1e3:.3f} ms"),
            ("preprocessing", f"{self.preprocess_s * 1e3:.3f} ms"),
            ("makespan", f"{self.duration_s * 1e3:.3f} ms"),
            ("throughput (kernel time)", f"{self.throughput_rps:,.0f} req/s"),
            ("goodput (incl. preprocess)", f"{self.goodput_rps:,.0f} req/s"),
            ("MMA utilization", f"{self.mma_utilization:.1%}"),
            ("latency p50 / p95 / p99",
             " / ".join("-" if np.isnan(pct[q]) else f"{pct[q] * 1e6:.1f} us"
                        for q in (50, 95, 99))),
        ]
        if (self.store_loads or self.store_writes or self.store_spills
                or self.store_quarantined or self.store_oversized):
            rows += [
                ("store load / write / spill",
                 f"{self.store_loads} / {self.store_writes} "
                 f"/ {self.store_spills}"),
                ("store quarantined / oversized",
                 f"{self.store_quarantined} / {self.store_oversized}"),
                ("modeled plan-load time",
                 f"{self.store_load_modeled_s * 1e3:.3f} ms"),
            ]
        if (self.faults_injected or self.degraded_requests or self.retries
                or self.n_deadline_exceeded or self.n_failed
                or self.breaker_transitions):
            breaker = " ".join(f"{fp[:8]}:{st}"
                               for fp, st in sorted(self.breaker_state.items())
                               if st != "closed")
            rows += [
                ("faults injected", f"{self.faults_injected:,}"),
                ("degraded (fallback) requests",
                 f"{self.degraded_requests:,} "
                 f"({self.fallback_ratio:.1%} of completed)"),
                ("retries / deadline-exceeded / failed",
                 f"{self.retries:,} / {self.n_deadline_exceeded:,} "
                 f"/ {self.n_failed:,}"),
                ("breaker transitions (open circuits)",
                 f"{self.breaker_transitions:,} ({breaker or 'none'})"),
            ]
        if self.prefetches or self.warms or self.parked_batches:
            spmm_large = self.spmm_large_by_strategy
            rows += [
                ("prefetches (modeled lane time)",
                 f"{self.prefetches:,} "
                 f"({self.prefetch_modeled_s * 1e3:.3f} ms)"),
                ("parked batches", f"{self.parked_batches:,}"),
                ("speculative warms load / build / failed",
                 f"{self.warm_loads:,} / {self.warm_builds:,} "
                 f"/ {self.warm_failed:,}"),
            ]
            if spmm_large:
                rows.append(("large-k batches by strategy",
                             " ".join(f"{name}:{spmm_large[name]}"
                                      for name in sorted(spmm_large))))
            if self.reorder_loaded or self.reorder_derived:
                rows.append(("reorder perm loaded / derived",
                             f"{self.reorder_loaded:,} "
                             f"/ {self.reorder_derived:,}"))
        if self.delta_value_updates or self.delta_structural_updates:
            rows += [
                ("matrix updates value / structural / compactions",
                 f"{self.delta_value_updates:,} "
                 f"/ {self.delta_structural_updates:,} "
                 f"/ {self.delta_compactions:,}"),
                ("modeled patch vs rebuild-per-update",
                 f"{self.delta_patch_modeled_s * 1e3:.3f} ms vs "
                 f"{self.delta_rebuild_modeled_s * 1e3:.3f} ms"),
            ]
        if (self.admission_admitted or self.admission_rejected
                or self.hedges_issued or self.retry_budget_granted
                or self.retry_budget_denied):
            rows += [
                ("admission admitted / rejected",
                 f"{self.admission_admitted:,} / {self.admission_rejected:,}"),
                ("hedges issued / won / wasted",
                 f"{self.hedges_issued:,} / {self.hedges_won:,} "
                 f"/ {self.hedges_wasted:,}"),
                ("retry budget granted / denied",
                 f"{self.retry_budget_granted:,} / {self.retry_budget_denied:,}"),
            ]
        return markdown_table(("metric", "value"), rows)
