"""`ServerStats` — the serving layer's metrics object.

One instance accumulates everything a serving experiment reports:
request / batch / rejection counters, the batch-size histogram, plan
cache hit/miss/eviction counts, modeled device busy time (kernels and
preprocessing separately), per-request latencies, and the MMA
utilization of the issued work.  All observation methods are
thread-safe so the real-threaded :class:`repro.serve.server.SpMVServer`
and the virtual-time workload driver share the same object.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..bench.report import markdown_table


@dataclass
class ServerStats:
    """Accumulated metrics for one serving run.

    Attributes
    ----------
    device / dtype:
        Where and at which precision the run served.
    n_requests / n_completed / n_rejected / n_shed:
        Offered, answered, backpressure-rejected and shed requests.
    n_batches:
        SpMV/SpMM kernel invocations issued.
    batch_hist:
        batch size -> number of batches of that size.
    cache_hits / cache_misses / cache_evictions:
        Plan-registry accounting (copied from the registry at report
        time by the server/driver).
    device_busy_s:
        Modeled device seconds spent in SpMV/SpMM kernels.
    preprocess_s:
        Modeled device+host seconds spent building DASP plans (paid on
        cache misses only).
    duration_s:
        Makespan of the run (virtual seconds for the driver, wall
        seconds for the real server).
    useful_mma_flops / issued_mma_flops:
        Numerator/denominator of the aggregate MMA utilization.
    degraded_requests / retries / n_deadline_exceeded / n_failed /
    n_closed:
        Resilience accounting: requests answered from the merge-CSR
        fallback, batch retry attempts, requests failed fast past
        their deadline, requests failed permanently (fallback disabled
        or broken), and requests failed with ``ServerClosedError`` at
        shutdown.
    breaker_transitions / breaker_state:
        Circuit-breaker transition count and the final
        fingerprint -> state map (copied at report time).
    faults_injected:
        Total fault-injector rule firings (0 without chaos).
    """

    device: str = "A100"
    dtype: str = "float64"
    n_requests: int = 0
    n_completed: int = 0
    n_rejected: int = 0
    n_shed: int = 0
    n_batches: int = 0
    batch_hist: dict = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    device_busy_s: float = 0.0
    preprocess_s: float = 0.0
    duration_s: float = 0.0
    useful_mma_flops: float = 0.0
    issued_mma_flops: float = 0.0
    latencies_s: list = field(default_factory=list)
    degraded_requests: int = 0
    retries: int = 0
    n_deadline_exceeded: int = 0
    n_failed: int = 0
    n_closed: int = 0
    breaker_transitions: int = 0
    breaker_state: dict = field(default_factory=dict)
    faults_injected: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe_request(self, n: int = 1) -> None:
        with self._lock:
            self.n_requests += n

    def observe_rejected(self, n: int = 1) -> None:
        with self._lock:
            self.n_rejected += n

    def observe_shed(self, n: int = 1) -> None:
        with self._lock:
            self.n_shed += n

    def observe_batch(self, k: int, device_s: float, *,
                      useful_mma: float = 0.0, issued_mma: float = 0.0) -> None:
        """Record one executed batch of ``k`` requests."""
        with self._lock:
            self.n_batches += 1
            self.n_completed += k
            self.batch_hist[k] = self.batch_hist.get(k, 0) + 1
            self.device_busy_s += device_s
            self.useful_mma_flops += useful_mma
            self.issued_mma_flops += issued_mma

    def observe_preprocess(self, seconds: float) -> None:
        with self._lock:
            self.preprocess_s += seconds

    def observe_degraded(self, n: int = 1) -> None:
        """Record *n* requests answered from the fallback path."""
        with self._lock:
            self.degraded_requests += n

    def observe_retry(self, n: int = 1) -> None:
        with self._lock:
            self.retries += n

    def observe_deadline_exceeded(self, n: int = 1) -> None:
        with self._lock:
            self.n_deadline_exceeded += n

    def observe_failed(self, n: int = 1) -> None:
        with self._lock:
            self.n_failed += n

    def observe_closed(self, n: int = 1) -> None:
        with self._lock:
            self.n_closed += n

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self.latencies_s.append(float(seconds))

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        return self.n_completed / self.n_batches if self.n_batches else 0.0

    @property
    def cache_hit_rate(self) -> float:
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    @property
    def fallback_ratio(self) -> float:
        """Share of completed requests served by the degraded path."""
        return (self.degraded_requests / self.n_completed
                if self.n_completed else 0.0)

    @property
    def mma_utilization(self) -> float:
        if self.issued_mma_flops <= 0:
            return 0.0
        return self.useful_mma_flops / self.issued_mma_flops

    @property
    def throughput_rps(self) -> float:
        """Completed requests per modeled device-second of kernel time."""
        if self.device_busy_s <= 0:
            return 0.0
        return self.n_completed / self.device_busy_s

    @property
    def goodput_rps(self) -> float:
        """Throughput including preprocessing time (the end-to-end rate
        a cold or cache-thrashing server actually sustains)."""
        busy = self.device_busy_s + self.preprocess_s
        if busy <= 0:
            return 0.0
        return self.n_completed / busy

    def latency_percentiles(self, qs=(50, 95, 99)) -> dict[int, float]:
        """Latency percentiles (seconds) over completed requests."""
        if not self.latencies_s:
            return {q: float("nan") for q in qs}
        arr = np.asarray(self.latencies_s)
        return {q: float(np.percentile(arr, q)) for q in qs}

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary_table(self) -> str:
        """Markdown summary of every reported metric."""
        pct = self.latency_percentiles()
        hist = " ".join(f"{k}:{self.batch_hist[k]}"
                        for k in sorted(self.batch_hist))
        rows = [
            ("device / dtype", f"{self.device} / {self.dtype}"),
            ("requests offered / completed", f"{self.n_requests:,} / {self.n_completed:,}"),
            ("rejected / shed", f"{self.n_rejected:,} / {self.n_shed:,}"),
            ("batches (mean size)", f"{self.n_batches:,} ({self.mean_batch_size:.2f})"),
            ("batch-size histogram", hist or "-"),
            ("plan cache hit / miss / evict",
             f"{self.cache_hits} / {self.cache_misses} / {self.cache_evictions}"),
            ("cache hit rate", f"{self.cache_hit_rate:.1%}"),
            ("device busy (kernels)", f"{self.device_busy_s * 1e3:.3f} ms"),
            ("preprocessing", f"{self.preprocess_s * 1e3:.3f} ms"),
            ("makespan", f"{self.duration_s * 1e3:.3f} ms"),
            ("throughput (kernel time)", f"{self.throughput_rps:,.0f} req/s"),
            ("goodput (incl. preprocess)", f"{self.goodput_rps:,.0f} req/s"),
            ("MMA utilization", f"{self.mma_utilization:.1%}"),
            ("latency p50 / p95 / p99",
             " / ".join("-" if np.isnan(pct[q]) else f"{pct[q] * 1e6:.1f} us"
                        for q in (50, 95, 99))),
        ]
        if (self.faults_injected or self.degraded_requests or self.retries
                or self.n_deadline_exceeded or self.n_failed
                or self.breaker_transitions):
            breaker = " ".join(f"{fp[:8]}:{st}"
                               for fp, st in sorted(self.breaker_state.items())
                               if st != "closed")
            rows += [
                ("faults injected", f"{self.faults_injected:,}"),
                ("degraded (fallback) requests",
                 f"{self.degraded_requests:,} "
                 f"({self.fallback_ratio:.1%} of completed)"),
                ("retries / deadline-exceeded / failed",
                 f"{self.retries:,} / {self.n_deadline_exceeded:,} "
                 f"/ {self.n_failed:,}"),
                ("breaker transitions (open circuits)",
                 f"{self.breaker_transitions:,} ({breaker or 'none'})"),
            ]
        return markdown_table(("metric", "value"), rows)
