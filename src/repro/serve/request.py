"""Typed request surface for the serving stack.

One request vocabulary for every entry point: :class:`SpMVRequest`
(``y = A @ x``, one right-hand side) and :class:`SpMMRequest`
(``Y = A @ X``, an ``(n, k)`` block served through the large-k SpMM
tier) are accepted by both :meth:`repro.serve.SpMVServer.submit` and
:meth:`repro.cluster.Router.submit`.  The caller-facing knobs —
``deadline_us``, ``priority``, ``shards`` — are keyword-only on the
request object, so the server and the router no longer grow divergent
positional signatures (the old ``submit(fingerprint, x, deadline_s)``
shape still works for one release behind a ``DeprecationWarning``).

The same dataclasses double as the stack's internal bookkeeping
records: the server stamps ``req_id``/``arrival_s``/``deadline_s`` on
a private :func:`dataclasses.replace` copy at admission, leaving the
submitted object untouched — which is what lets the router's hedging
path re-issue one request object to a second replica safely.
"""

from __future__ import annotations

from dataclasses import KW_ONLY, dataclass

import numpy as np

__all__ = ["SpMMRequest", "SpMVRequest"]


@dataclass
class SpMVRequest:
    """One ``y = A @ x`` request addressed by matrix fingerprint.

    Public construction is ``SpMVRequest(fingerprint, x, *,
    deadline_us=..., priority=..., shards=...)``; everything after
    ``x`` is keyword-only.

    Parameters
    ----------
    deadline_us:
        Relative deadline in microseconds from submission (matching
        the modeled microsecond-scale kernel times); ``None`` falls
        back to the server-wide default.  The server converts it to
        the absolute ``deadline_s`` used for expiry checks.
    priority:
        Admission class (``"interactive"`` | ``"batch"``) — only
        consulted when an admission controller is installed.
    shards:
        Optional shard-count hint (an int or ``"auto"``) recorded
        before the matrix's plan is first built; it overrides the
        server-wide shard policy for that matrix.  Ignored once a
        plan exists.
    """

    fingerprint: str
    x: np.ndarray
    _: KW_ONLY
    deadline_us: float | None = None
    priority: str = "interactive"
    shards: int | str | None = None
    # -- internal bookkeeping, stamped by the server at admission --
    req_id: int = -1
    arrival_s: float = float("nan")
    #: Absolute deadline; once passed the request fails fast with
    #: ``DeadlineExceededError`` instead of occupying a batch slot.
    deadline_s: float = float("inf")
    result: np.ndarray | None = None
    completion_s: float = float("nan")
    #: First-wins pair state when this request is hedged
    #: (:class:`repro.overload.HedgePair`); ``None`` for plain requests.
    pair: object | None = None
    #: True for the hedge *copy* of a request (the shadow issued to a
    #: second replica); its completion never counts as a user-visible
    #: outcome unless it wins the pair.
    shadow: bool = False
    #: Matrix version this request was admitted against (stamped from
    #: the plan registry's version chain).  Requests already queued when
    #: an update lands keep draining against their pinned version; 0 is
    #: the original build, so static workloads never see the field.
    version: int = 0

    @property
    def width(self) -> int:
        """Right-hand-side columns this request contributes (1)."""
        return 1

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    def expired(self, now: float) -> bool:
        return now >= self.deadline_s


@dataclass
class SpMMRequest:
    """One ``Y = A @ X`` block request with ``k`` right-hand sides.

    ``x`` is the ``(n, k)`` RHS block (column ``j`` is one vector);
    the result is the ``(m, k)`` output block.  SpMM requests bypass
    the coalescing batcher — the block already *is* a batch — and for
    ``k > MMA_N`` execute through the tuner-chosen large-k strategy
    (:func:`repro.core.choose_spmm_strategy`).  Keyword-only fields
    match :class:`SpMVRequest`.
    """

    fingerprint: str
    x: np.ndarray
    _: KW_ONLY
    deadline_us: float | None = None
    priority: str = "interactive"
    shards: int | str | None = None
    # -- internal bookkeeping, stamped by the server at admission --
    req_id: int = -1
    arrival_s: float = float("nan")
    deadline_s: float = float("inf")
    result: np.ndarray | None = None
    completion_s: float = float("nan")
    pair: object | None = None
    shadow: bool = False
    #: Matrix version at admission (see :class:`SpMVRequest.version`).
    version: int = 0

    @property
    def width(self) -> int:
        """Right-hand-side columns this request contributes (``k``)."""
        return int(np.asarray(self.x).shape[1])

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    def expired(self, now: float) -> bool:
        return now >= self.deadline_s
