"""Scheduler — a thread-pool worker loop with a bounded batch queue.

Executes flushed :class:`~repro.serve.batcher.Batch` objects on a small
worker pool with three serving guarantees:

* **bounded queue** — at most ``queue_depth`` batches wait; beyond that
  the scheduler applies **backpressure**: policy ``"reject"`` refuses
  the new batch, policy ``"shed"`` drops the oldest queued batch (its
  requests fail) to admit the new one;
* **per-matrix FIFO** — batches for the same fingerprint execute in
  submission order and never concurrently (a real server streams one
  plan's kernels in sequence on its stream), while batches for
  different matrices run in parallel across workers;
* **clean shutdown** — :meth:`close` drains or aborts deterministically.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque

from .._util import ReproError, check
from .batcher import Batch


class QueueFullError(ReproError):
    """Raised to signal backpressure under the ``"reject"`` policy."""


class Scheduler:
    """Bounded-queue thread-pool executor for batches.

    Parameters
    ----------
    execute:
        ``execute(batch)`` callback that runs one batch (the server's
        SpMM/SpMV path).  Exceptions propagate to ``on_error`` if given.
    workers:
        Worker thread count.
    queue_depth:
        Maximum queued (not yet executing) batches.
    policy:
        ``"reject"`` (submit raises :class:`QueueFullError`) or
        ``"shed"`` (oldest queued batch is dropped; ``on_shed`` is
        called with it).
    prune:
        Optional ``prune(batch) -> Batch | None`` called at dequeue
        time, before execution — the server uses it to fail expired
        requests fast so they never occupy a worker.  Returning
        ``None`` (or an empty batch) skips execution entirely; the
        batch still counts as handled for drain purposes.
    obs:
        Optional :class:`repro.obs.Obs` handle.  The scheduler keeps
        ``serve.scheduler.queue_depth`` (waiting batches — updated on
        enqueue, dequeue, shed and close, so health monitors and
        Prometheus scrapes see real-time depth that returns to 0 on
        drain) and ``serve.scheduler.inflight`` (executing batches)
        gauges current, and counts executed / rejected / shed batches
        under ``serve.scheduler.*_total``.  Defaults to a fresh
        private handle (per-run-object convention).
    """

    def __init__(self, execute, *, workers: int = 2, queue_depth: int = 64,
                 policy: str = "reject", on_shed=None, on_error=None,
                 prune=None, obs=None) -> None:
        from ..obs import Obs

        check(workers >= 1, "workers must be >= 1")
        check(queue_depth >= 1, "queue_depth must be >= 1")
        if policy not in ("reject", "shed"):
            raise ValueError(f"unknown backpressure policy {policy!r}")
        self._execute = execute
        self.workers = int(workers)
        self.queue_depth = int(queue_depth)
        self.policy = policy
        self._on_shed = on_shed
        self._on_error = on_error
        self._prune = prune
        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self._depth_gauge = obs.gauge("serve.scheduler.queue_depth")
        self._inflight_gauge = obs.gauge("serve.scheduler.inflight")
        self._executed = obs.counter("serve.scheduler.executed_total")
        self._pruned = obs.counter("serve.scheduler.pruned_total")
        self._rejected = obs.counter("serve.scheduler.rejected_total")
        self._shed = obs.counter("serve.scheduler.shed_batches_total")
        # lightweight helper callables (shard fan-out); workers prefer
        # these over batches so an in-flight batch's helpers never sit
        # behind other queued batches.
        self._tasks: deque = deque()
        # fingerprint -> FIFO of its queued batches; dict order gives the
        # round-robin scan order for ready work.
        self._queues: OrderedDict[str, deque[Batch]] = OrderedDict()
        self._queued = 0
        self._inflight: set[str] = set()
        self._closed = False
        self._cond = threading.Condition()
        self._threads = [
            threading.Thread(target=self._worker, name=f"serve-worker-{i}",
                             daemon=True)
            for i in range(int(workers))
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    @property
    def n_executed(self) -> int:
        return int(self._executed.value)

    @property
    def n_pruned(self) -> int:
        return int(self._pruned.value)

    @property
    def n_shed_batches(self) -> int:
        return int(self._shed.value)

    # ------------------------------------------------------------------
    def submit(self, batch: Batch) -> None:
        """Enqueue *batch*, applying backpressure when the queue is full."""
        with self._cond:
            check(not self._closed, "scheduler is closed")
            shed = None
            if self._queued >= self.queue_depth:
                if self.policy == "reject":
                    self._rejected.inc()
                    raise QueueFullError(
                        f"batch queue full ({self.queue_depth} batches)")
                shed = self._pop_oldest()
                self._shed.inc()
            q = self._queues.get(batch.fingerprint)
            if q is None:
                q = deque()
                self._queues[batch.fingerprint] = q
            q.append(batch)
            self._queued += 1
            self._depth_gauge.set(self._queued)
            self._cond.notify()
        if shed is not None and self._on_shed is not None:
            self._on_shed(shed)

    def submit_task(self, fn) -> bool:
        """Best-effort: run ``fn()`` on a worker thread soon.

        Used by shard fan-out to borrow idle workers as helpers.
        Returns ``False`` (dropping *fn*) when the scheduler is closed —
        callers must not depend on a task running: the sharded join is
        claim-based, so the submitting worker picks up any shard whose
        helper never started.
        """
        with self._cond:
            if self._closed:
                return False
            self._tasks.append(fn)
            self._cond.notify()
        return True

    def backlog(self) -> int:
        """Queued batches not yet executing."""
        with self._cond:
            return self._queued

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every queued and in-flight batch finished."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._queued == 0 and not self._inflight, timeout)

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the workers (idempotent).  ``drain=False`` abandons the
        queue (pending batches are dropped without execution).

        ``_closed`` is set *before* the final drain: a submission racing
        with ``close`` either lands before the flag (and is executed by
        the drain) or fails loudly in :meth:`submit` — it can no longer
        slip in between the drain returning and the flag being set, where
        exiting workers would silently abandon it.
        """
        with self._cond:
            already = self._closed
            self._closed = True
            if not drain:
                self._queues.clear()
                self._queued = 0
                self._tasks.clear()  # claim-based joins survive the drop
                self._depth_gauge.set(0)
            self._cond.notify_all()
        if drain and not already:
            self.drain(timeout)
        for t in self._threads:
            t.join(timeout)

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _pop_oldest(self) -> Batch:
        # caller holds the lock; queues are non-empty iff _queued > 0
        oldest_fp = min(self._queues,
                        key=lambda fp: self._queues[fp][0].formed_s
                        if self._queues[fp] else float("inf"))
        q = self._queues[oldest_fp]
        batch = q.popleft()
        if not q:
            del self._queues[oldest_fp]
        self._queued -= 1
        self._depth_gauge.set(self._queued)
        return batch

    def _next_ready(self) -> Batch | None:
        # caller holds the lock: first queued matrix not already in flight
        for fp in self._queues:
            if fp not in self._inflight and self._queues[fp]:
                q = self._queues[fp]
                batch = q.popleft()
                if not q:
                    del self._queues[fp]
                self._queued -= 1
                self._depth_gauge.set(self._queued)
                self._inflight.add(fp)
                self._inflight_gauge.set(len(self._inflight))
                return batch
        return None

    def _worker(self) -> None:
        while True:
            task = None
            with self._cond:
                while True:
                    if self._tasks:
                        task = self._tasks.popleft()
                        break
                    batch = self._next_ready()
                    if batch is not None or self._closed:
                        break
                    self._cond.wait()
                if task is None and batch is None:  # closed, nothing ready
                    return
            if task is not None:
                # Helper tasks guard their own state; an unexpected
                # error must not kill the worker loop.
                try:
                    task()
                except Exception:  # noqa: BLE001
                    pass
                continue
            executed = False
            try:
                run = batch
                if self._prune is not None:
                    run = self._prune(batch)
                if run is not None and run.requests:
                    executed = True
                    self._execute(run)
            except Exception as exc:  # noqa: BLE001 — surfaced via callback
                if self._on_error is not None:
                    self._on_error(batch, exc)
            finally:
                with self._cond:
                    self._inflight.discard(batch.fingerprint)
                    self._inflight_gauge.set(len(self._inflight))
                    # pruned-empty batches are handled, not executed —
                    # count them separately so dashboards don't overstate
                    # executed work.
                    (self._executed if executed else self._pruned).inc()
                    self._cond.notify_all()
