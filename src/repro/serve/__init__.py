"""`repro.serve` — batched, plan-cached SpMV serving.

Models an SpMV inference service on top of the DASP kernels:

* :class:`PlanRegistry` caches preprocessed :class:`DASPMatrix` plans
  keyed by matrix fingerprint (LRU under a byte budget) so the paper's
  Figure 13 preprocessing cost is paid once per matrix;
* :class:`RequestBatcher` coalesces concurrent ``y = A @ x`` requests
  for the same matrix into ``k <= MMA_N = 8`` right-hand-side
  :func:`~repro.core.spmm.dasp_spmm` batches — the paper's
  1/8-of-the-MMA-output observation turned into a throughput lever;
* :class:`Scheduler` runs batches on a bounded-queue worker pool with
  backpressure and per-matrix FIFO ordering;
* :class:`SpMVServer` wires the three together behind a futures API;
* :func:`run_workload` replays synthetic open-loop traffic (Poisson
  arrivals, Zipf matrix popularity) in deterministic virtual time and
  reports modeled throughput, latency percentiles, the batch-size
  histogram, MMA utilization and the cache hit rate as
  :class:`ServerStats`.

Partial-failure handling (deadlines, retries, circuit breaking, the
merge-CSR degraded path, and the :class:`ChaosConfig` fault mix) comes
from :mod:`repro.resilience`; the key names are re-exported here for
convenience.
"""

from ..resilience import (
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    FallbackExecutor,
    FaultInjector,
    FaultPlan,
    FaultRule,
    PlanTooLargeError,
    RetryPolicy,
    ServerClosedError,
)
from .batcher import (
    DEFAULT_FLUSH_TIMEOUT_S,
    MMA_N,
    Batch,
    RequestBatcher,
)
from .request import SpMMRequest, SpMVRequest
from .driver import (
    ChaosConfig,
    WorkloadConfig,
    compare_batched_unbatched,
    run_workload,
    zipf_weights,
)
from .plan_cache import (
    DEFAULT_BUDGET_BYTES,
    PlanRegistry,
    matrix_fingerprint,
    plan_nbytes,
)
from ..store import ArtifactError, PlanStore, fingerprint_csr
from .scheduler import QueueFullError, Scheduler
from .server import RequestShedError, SpMVServer
from .stats import ServerStats

__all__ = [
    "ArtifactError",
    "Batch",
    "BreakerConfig",
    "ChaosConfig",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEFAULT_BUDGET_BYTES",
    "DEFAULT_FLUSH_TIMEOUT_S",
    "DeadlineExceededError",
    "FallbackExecutor",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "MMA_N",
    "PlanRegistry",
    "PlanStore",
    "PlanTooLargeError",
    "QueueFullError",
    "RequestBatcher",
    "RequestShedError",
    "RetryPolicy",
    "Scheduler",
    "ServerClosedError",
    "ServerStats",
    "SpMMRequest",
    "SpMVRequest",
    "SpMVServer",
    "WorkloadConfig",
    "compare_batched_unbatched",
    "fingerprint_csr",
    "matrix_fingerprint",
    "plan_nbytes",
    "run_workload",
    "zipf_weights",
]
