"""Request batcher — coalesces concurrent SpMV requests into SpMM batches.

The paper's key serving lever: SpMV uses only the diagonal of each
``m8n8k4`` output (1/8 of the MMA work), but ``k = MMA_N = 8``
right-hand sides through :func:`repro.core.spmm.dasp_spmm` fill the B
operand completely while streaming the matrix once.  The batcher holds
per-matrix queues of pending requests and flushes a batch when it
reaches ``max_batch`` (size trigger) or when its oldest request has
waited ``flush_timeout_s`` (latency trigger).

Time is always passed in by the caller, so the same batcher runs under
the real-threaded server (wall clock) and the virtual-time workload
driver (simulated clock) without modification.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from .._util import check
from .request import SpMMRequest, SpMVRequest

#: MMA B-operand width — the batch size that saturates the MMA units.
MMA_N = 8

#: Default flush timeout: 200 modeled microseconds, ~10-20 SpMV times.
DEFAULT_FLUSH_TIMEOUT_S = 200e-6


@dataclass
class Batch:
    """A group of requests for the same matrix, executed as one SpMM.

    ``requests`` is either coalesced :class:`SpMVRequest` singles (the
    batcher's output) or one :class:`SpMMRequest` block — the server
    submits SpMM blocks as pre-formed singleton batches, bypassing the
    coalescer.  ``k`` is the total RHS width either way.
    """

    fingerprint: str
    requests: list[SpMVRequest | SpMMRequest]
    formed_s: float

    @property
    def k(self) -> int:
        return sum(r.width for r in self.requests)

    def assemble_x(self) -> np.ndarray:
        """Stack the request payloads into the ``(n, k)`` RHS block."""
        if all(isinstance(r, SpMVRequest) for r in self.requests):
            return np.stack([r.x for r in self.requests], axis=1)
        blocks = [r.x if isinstance(r, SpMMRequest) else r.x[:, None]
                  for r in self.requests]
        if len(blocks) == 1:
            return np.ascontiguousarray(blocks[0])
        return np.ascontiguousarray(np.concatenate(blocks, axis=1))

    def scatter(self, Y: np.ndarray, completion_s: float) -> None:
        """Distribute the SpMM output columns back to the requests.

        Each request gets its own contiguous copy — handing out a
        column *view* would pin the whole ``(n, k)`` SpMM output alive
        for as long as any one request's result is retained.
        """
        j = 0
        for req in self.requests:
            w = req.width
            if isinstance(req, SpMMRequest):
                req.result = np.ascontiguousarray(Y[:, j:j + w])
            else:
                req.result = np.ascontiguousarray(Y[:, j])
            req.completion_s = completion_s
            j += w

    def split_expired(self, now: float) -> list[SpMVRequest | SpMMRequest]:
        """Remove and return the requests whose deadline has passed."""
        expired: list[SpMVRequest | SpMMRequest] = []
        survivors: list[SpMVRequest | SpMMRequest] = []
        for r in self.requests:
            (expired if r.expired(now) else survivors).append(r)
        if expired:
            self.requests = survivors
        return expired


class RequestBatcher:
    """Per-matrix request coalescing with size and timeout triggers.

    Parameters
    ----------
    max_batch:
        Flush as soon as a matrix has this many pending requests
        (default ``MMA_N = 8``; 1 disables coalescing — every request
        becomes a singleton batch, the request-at-a-time baseline).
    flush_timeout_s:
        Flush a partial batch once its oldest request has waited this
        long, bounding the latency cost of waiting for peers.
    """

    def __init__(self, max_batch: int = MMA_N,
                 flush_timeout_s: float = DEFAULT_FLUSH_TIMEOUT_S) -> None:
        check(max_batch >= 1, "max_batch must be >= 1")
        check(flush_timeout_s >= 0.0, "flush_timeout_s must be >= 0")
        self.max_batch = int(max_batch)
        self.flush_timeout_s = float(flush_timeout_s)
        self._pending: OrderedDict[str, deque[SpMVRequest]] = OrderedDict()
        # Lazy min-heap over group heads: (oldest arrival, seq, fp).
        # next_deadline() and due() are called once per arrival event by
        # the virtual-time driver; scanning every pending group there is
        # O(matrices) per event.  The heap answers the min query in
        # O(log n) with entries invalidated lazily — an entry is stale
        # when its group is gone or its head request has changed.
        self._heap: list[tuple[float, int, str]] = []
        self._seq = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def pending_count(self, fingerprint: str | None = None) -> int:
        with self._lock:
            if fingerprint is not None:
                return len(self._pending.get(fingerprint, ()))
            return sum(len(q) for q in self._pending.values())

    def add(self, request: SpMVRequest, now: float) -> Batch | None:
        """Queue *request*; return a full batch if the size trigger fired.

        Version fence: a batch must be homogeneous in matrix version —
        the ``(n, k)`` SpMM runs against exactly one plan.  When the
        incoming request was admitted against a newer version than the
        group's pending requests, the old group is flushed immediately
        (returned as if the size trigger had fired) and the new request
        starts a fresh group.
        """
        with self._lock:
            q = self._pending.get(request.fingerprint)
            fence = None
            if q and q[0].version != request.version:
                # pending groups are always < max_batch, so one _form
                # drains the whole stale-version group
                fence = self._form(request.fingerprint, now)
                q = None
            if q is None:
                q = deque()
                self._pending[request.fingerprint] = q
                q.append(request)
                self._push_head(request.fingerprint, q)
            else:
                q.append(request)
            if len(q) >= self.max_batch:
                full = self._form(request.fingerprint, now)
                check(fence is None, "fence and size trigger cannot both fire")
                return full
            return fence

    def due(self, now: float) -> list[Batch]:
        """Flush every group whose oldest request has timed out.

        Groups flush oldest-head-first.  A group larger than
        ``max_batch`` yields several batches in one pass: ``_form``
        re-queues the remainder's new oldest request on the heap, so an
        overflow remainder whose deadline already passed is re-examined
        in the same loop rather than deferred to the next poll.
        """
        batches = []
        with self._lock:
            while True:
                head = self._live_head()
                if head is None or now - head[0] < self.flush_timeout_s:
                    break
                batches.append(self._form(head[2], now))
            return batches

    def next_deadline(self) -> float:
        """Earliest virtual time at which a timeout flush is due
        (``inf`` when nothing is pending)."""
        with self._lock:
            head = self._live_head()
            if head is None:
                return float("inf")
            return head[0] + self.flush_timeout_s

    def flush(self, fingerprint: str, now: float) -> Batch | None:
        """Force-flush one matrix's pending requests."""
        with self._lock:
            if self._pending.get(fingerprint):
                return self._form(fingerprint, now)
            return None

    def flush_all(self, now: float) -> list[Batch]:
        """Force-flush everything (end of run / shutdown)."""
        with self._lock:
            batches = []
            for fp in list(self._pending):
                while self._pending.get(fp):
                    batches.append(self._form(fp, now))
            return batches

    # ------------------------------------------------------------------
    def _push_head(self, fingerprint: str, q: deque) -> None:
        # caller holds the lock; q must be non-empty
        self._seq += 1
        heapq.heappush(self._heap, (q[0].arrival_s, self._seq, fingerprint))

    def _live_head(self) -> tuple[float, int, str] | None:
        """Discard stale heap entries; return the live top (or None).

        An entry is live when its group still exists and its recorded
        arrival matches the group's current head — any pop or re-form
        since the push leaves the old entry behind as garbage.
        """
        # caller holds the lock
        while self._heap:
            arrival, _, fp = self._heap[0]
            q = self._pending.get(fp)
            if q and q[0].arrival_s == arrival:
                return self._heap[0]
            heapq.heappop(self._heap)
        return None

    def _form(self, fingerprint: str, now: float) -> Batch:
        # caller holds the lock
        q = self._pending.pop(fingerprint)
        take = [q.popleft() for _ in range(min(self.max_batch, len(q)))]
        if q:  # overflow beyond max_batch stays pending
            self._pending[fingerprint] = q
            self._push_head(fingerprint, q)
        return Batch(fingerprint=fingerprint, requests=take, formed_s=now)
