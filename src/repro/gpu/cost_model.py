"""Analytic time model turning :class:`KernelEvents` into seconds.

The model is additive over the paper's Figure 2 taxonomy:

``total = (RANDOM_ACCESS + COMPUTE + MISC) * imbalance + launch``

* RANDOM ACCESS — DRAM traffic for the ``x`` gather.
* COMPUTE — arithmetic pipe occupancy: CUDA-core flops at a derated SpMV
  efficiency (dependent loads and FMA latency in per-thread row loops keep
  real kernels far from peak — the derate is calibrated so the standard
  CSR kernel's average COMPUTE share matches the paper's 21.1%), MMA-unit
  flops at a streaming efficiency, plus shuffles / bookkeeping
  instructions / atomics.
* MISC — streaming the matrix arrays (values, column indices, pointers)
  and writing ``y`` / auxiliary arrays.
* launch — fixed kernel-launch overhead.

Choosing an *additive* rather than a ``max()`` roofline is deliberate: the
paper's Figure 2 measures the three parts by ablation and they sum to the
total, and Figure 1 shows baseline SpMV achieving well below Triad
bandwidth — i.e. the compute and bookkeeping portions are not hidden
behind memory traffic in practice.  DASP's whole premise is that shrinking
the COMPUTE part (with MMA units) raises achieved bandwidth toward the
Triad peak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .device import DeviceSpec, get_device
from .events import KernelEvents, PreprocessEvents, TimeParts
from .memory import effective_bandwidth

# ----------------------------------------------------------------------
# Calibration constants (documented rationale next to each)
# ----------------------------------------------------------------------

#: Fraction of peak CUDA-core flops an irregular SpMV inner loop sustains.
#: Calibrated so the standard CSR kernel's COMPUTE share averages ~21%
#: over the synthetic collection, matching the paper's Figure 2 (21.1%).
CUDA_SPMV_EFFICIENCY = 0.028

#: Fraction of peak tensor-core flops a streaming SpMV MMA pipeline
#: sustains (no operand reuse, fragments fed straight from loads).
MMA_SPMV_EFFICIENCY = 0.50

#: Warp-level shuffle instructions retired per SM per cycle.
SHFL_PER_SM_CYCLE = 2.0

#: Thread-level bookkeeping instructions retired per SM per cycle
#: (4 schedulers x 32 lanes, derated for dependence stalls).
INSTR_PER_SM_CYCLE = 96.0

#: Global-memory atomic adds per SM per cycle (serialization-heavy).
ATOMIC_PER_SM_CYCLE = 0.25

#: How strongly load imbalance degrades memory-traffic time (the DRAM is
#: shared device-wide, so stragglers only partially serialize traffic).
IMBALANCE_MEM_COUPLING = 0.35

#: Sustained time per warp iteration on a straggler's critical path
#: (dependent loads software-pipelined at a few outstanding per warp).
SERIAL_ITER_NS = 3.0

#: Host (CPU) effective memory bandwidth for preprocessing passes, bytes/s.
HOST_BW = 25e9

#: Cost per sorted key for host-side sorts (comparison sort, cache-hot).
HOST_SORT_NS_PER_KEY_LOG = 1.2

#: Fixed cost of one device allocation during preprocessing.
ALLOC_OVERHEAD_S = 8e-6


def estimate_time(events: KernelEvents, device, *, dtype_bits: int = 64) -> TimeParts:
    """Estimate one SpMV invocation's time decomposition on *device*."""
    device = get_device(device)
    bw = effective_bandwidth(device, events.threads) * events.mem_efficiency
    # Compute pipes saturate at far lower occupancy than HBM (a few
    # resident warps per SM suffice), so their utilization ramp is steeper.
    compute_util = 0.10 + 0.90 * min(1.0, max(events.threads, 1)
                                     / (device.sms * 8 * 32))
    cyc = device.sms * device.clock_hz * compute_util

    random_access = events.bytes_x / bw

    compute = 0.0
    if events.flops_cuda:
        compute += events.flops_cuda / (
            device.cuda_flops(dtype_bits) * CUDA_SPMV_EFFICIENCY * compute_util)
    if events.flops_mma:
        compute += events.flops_mma / (
            device.tensor_flops(dtype_bits) * MMA_SPMV_EFFICIENCY * compute_util)
    if events.shfl_count:
        compute += events.shfl_count / (cyc * SHFL_PER_SM_CYCLE)
    if events.extra_instr:
        compute += events.extra_instr / (cyc * INSTR_PER_SM_CYCLE)
    if events.atomic_count:
        compute += events.atomic_count / (cyc * ATOMIC_PER_SM_CYCLE)

    misc = (events.bytes_stream + events.bytes_y) / bw
    launch = events.kernel_launches * device.launch_overhead_s

    # Imbalance hits the arithmetic pipes of the straggling SMs in full;
    # DRAM bandwidth is a device-global resource that other warps keep
    # saturating while stragglers finish, so traffic time degrades with a
    # weaker coupling.
    comp_scale = events.imbalance
    mem_scale = 1.0 + (events.imbalance - 1.0) * IMBALANCE_MEM_COUPLING
    parts = TimeParts(
        random_access=random_access * mem_scale,
        compute=compute * comp_scale,
        misc=misc * mem_scale,
        launch=launch,
    )
    # Straggler critical path: a single warp's sequential chain runs
    # concurrently with everything else, so only the portion that pokes
    # past the parallel work is exposed (charged to COMPUTE: it is
    # latency, not traffic).
    serial_s = events.serial_iters * SERIAL_ITER_NS * 1e-9
    parallel_s = parts.random_access + parts.compute + parts.misc
    if serial_s > parallel_s:
        parts.compute += serial_s - parallel_s
    return parts


def estimate_preprocess_time(events: PreprocessEvents, device) -> float:
    """Estimate format-conversion (preprocessing) time in seconds."""
    device = get_device(device)
    t = events.device_bytes / device.measured_bw
    t += events.host_bytes / HOST_BW
    if events.sort_keys > 1:
        t += events.sort_keys * np.log2(events.sort_keys) * HOST_SORT_NS_PER_KEY_LOG * 1e-9
    t += events.kernel_launches * device.launch_overhead_s
    t += events.allocations * ALLOC_OVERHEAD_S
    return float(t)


def schedule_imbalance(work: np.ndarray, device) -> float:
    """Makespan ratio of scheduling independent work units on the device.

    ``work`` holds the (relative) cost of each independent schedulable
    unit (a warp's worth of work, typically).  Greedy list scheduling on
    ``P`` resident warp slots achieves a makespan of roughly
    ``max(total/P, max(work))``; the returned multiplier is that makespan
    relative to perfect balance.  A single enormous unit (one thread
    owning a 2M-nonzero row) therefore shows up as a large factor, while
    thousands of similar units converge to 1 — exactly the behaviour that
    separates CSR-scalar from DASP on skewed matrices.
    """
    work = np.asarray(work, dtype=np.float64)
    total = float(work.sum())
    if total <= 0 or work.size == 0:
        return 1.0
    device = get_device(device)
    processors = device.sms * 32  # concurrently executing warp slots
    # Units beyond the device's slot count queue up; fewer units than
    # slots is a *utilization* (not imbalance) effect, handled by the
    # bandwidth/compute ramps — so normalize by the slots actually usable.
    slots = min(work.size, processors)
    ideal = total / slots
    makespan = max(ideal, float(work.max()))
    return float(max(makespan / ideal, 1.0))


# ----------------------------------------------------------------------
# Performance metrics
# ----------------------------------------------------------------------


def spmv_gflops(nnz: int, seconds: float) -> float:
    """SpMV rate in GFlops (2 flops per nonzero, the paper's metric)."""
    if seconds <= 0:
        return float("nan")
    return 2.0 * nnz / seconds / 1e9


def effective_bandwidth_gbs(csr, seconds: float, *, value_bytes: int | None = None) -> float:
    """Figure 1's bandwidth metric: useful CSR bytes moved / time.

    Counts each matrix value + index once, each x element once, and each
    y element once — the algorithm-independent lower bound on traffic.
    """
    if seconds <= 0:
        return float("nan")
    vb = csr.data.dtype.itemsize if value_bytes is None else value_bytes
    m, n = csr.shape
    useful = csr.nnz * (vb + 4) + (m + 1) * 8 + n * vb + m * vb
    return useful / seconds / 1e9


@dataclass
class Measurement:
    """One (method, matrix, device, precision) model measurement."""

    method: str
    matrix: str
    device: str
    dtype_bits: int
    nnz: int
    time_s: float
    parts: TimeParts

    @property
    def gflops(self) -> float:
        return spmv_gflops(self.nnz, self.time_s)
