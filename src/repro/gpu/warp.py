"""Lane-accurate warp emulator.

A :class:`Warp` models the 32 lanes of a CUDA warp executing in lockstep.
Per-lane registers are NumPy arrays of shape ``(32,)`` indexed by lane id,
and the CUDA shuffle intrinsics (``__shfl_sync``, ``__shfl_down_sync``,
``__shfl_up_sync``, ``__shfl_xor_sync``) are reproduced with their exact
semantics, including the behaviour outside the width window (the source
lane's own value is returned unchanged).

The paper's Algorithms 2-5 are executed verbatim on this emulator by
:mod:`repro.core` (``engine="warp"``); the default vectorized kernels are
property-tested against it.
"""

from __future__ import annotations

import numpy as np

from .._util import check
from .device import WARP_SIZE

FULL_MASK = 0xFFFFFFFF


class Warp:
    """A 32-lane SIMT warp with shuffle intrinsics.

    The emulator is *synchronous*: every intrinsic operates on all 32
    lanes at once, exactly like a converged warp on real hardware.  Masks
    are accepted for signature compatibility; partially-masked shuffles
    (which are undefined behaviour on hardware when reading an inactive
    lane) raise instead of silently producing garbage.
    """

    size = WARP_SIZE

    def __init__(self) -> None:
        #: Lane indices 0..31 — the emulated ``%laneid`` register.
        self.lane = np.arange(WARP_SIZE)
        #: Number of shuffle operations executed (for event counting).
        self.shfl_count = 0

    # ------------------------------------------------------------------
    # Register helpers
    # ------------------------------------------------------------------
    def zeros(self, dtype=np.float64) -> np.ndarray:
        """A fresh per-lane register initialized to zero."""
        return np.zeros(WARP_SIZE, dtype=dtype)

    def _as_reg(self, value) -> np.ndarray:
        arr = np.asarray(value)
        if arr.ndim == 0:
            arr = np.full(WARP_SIZE, arr[()])
        check(arr.shape == (WARP_SIZE,), "register must have one value per lane")
        return arr

    @staticmethod
    def _check_mask(mask: int) -> None:
        check(mask == FULL_MASK, "emulator only supports full-warp masks")

    # ------------------------------------------------------------------
    # Shuffle intrinsics (CUDA semantics)
    # ------------------------------------------------------------------
    def shfl_sync(self, mask: int, value, src_lane, width: int = WARP_SIZE):
        """``__shfl_sync``: every lane reads ``value`` from ``src_lane``.

        ``src_lane`` may be a scalar or a per-lane array.  With a sub-warp
        ``width``, the source lane is taken modulo the width within each
        subsection, as on hardware.
        """
        self._check_mask(mask)
        value = self._as_reg(value)
        src = np.broadcast_to(np.asarray(src_lane), (WARP_SIZE,)).astype(np.int64)
        base = self.lane & ~(width - 1)
        resolved = base + (src % width)
        self.shfl_count += 1
        return value[resolved]

    def shfl_down_sync(self, mask: int, value, delta: int, width: int = WARP_SIZE):
        """``__shfl_down_sync``: lane ``i`` reads lane ``i + delta``.

        Lanes whose source would cross the width boundary keep their own
        value (hardware returns the caller's value in that case).
        """
        self._check_mask(mask)
        value = self._as_reg(value)
        src = self.lane + int(delta)
        boundary = (self.lane & ~(width - 1)) + width
        src = np.where(src < boundary, src, self.lane)
        self.shfl_count += 1
        return value[src]

    def shfl_up_sync(self, mask: int, value, delta: int, width: int = WARP_SIZE):
        """``__shfl_up_sync``: lane ``i`` reads lane ``i - delta``."""
        self._check_mask(mask)
        value = self._as_reg(value)
        src = self.lane - int(delta)
        base = self.lane & ~(width - 1)
        src = np.where(src >= base, src, self.lane)
        self.shfl_count += 1
        return value[src]

    def shfl_xor_sync(self, mask: int, value, lane_mask: int, width: int = WARP_SIZE):
        """``__shfl_xor_sync``: lane ``i`` reads lane ``i ^ lane_mask``."""
        self._check_mask(mask)
        value = self._as_reg(value)
        src = self.lane ^ int(lane_mask)
        base = self.lane & ~(width - 1)
        src = np.where(src < base + width, src, self.lane)
        self.shfl_count += 1
        return value[src]

    # ------------------------------------------------------------------
    # Convenience reductions built from shuffles
    # ------------------------------------------------------------------
    def reduce_sum(self, value) -> np.ndarray:
        """Butterfly warp-sum: every lane ends with the full warp total.

        This is the classic ``warpReduceSum`` used at the end of the
        paper's long-rows kernel (Algorithm 2, line 22).
        """
        value = self._as_reg(value).copy()
        offset = WARP_SIZE // 2
        while offset:
            value = value + self.shfl_xor_sync(FULL_MASK, value, offset)
            offset //= 2
        return value

    def ballot_sync(self, mask: int, predicate) -> int:
        """``__ballot_sync``: bitmask of lanes whose predicate is true."""
        self._check_mask(mask)
        pred = self._as_reg(predicate).astype(bool)
        return int(np.bitwise_or.reduce((pred.astype(np.uint64) << np.arange(WARP_SIZE, dtype=np.uint64))))
