"""DRAM / cache traffic model for the random accesses to ``x``.

SpMV's vector gather is the classic RANDOM ACCESS cost (Figure 2 of the
paper).  GPUs fetch DRAM in 32-byte sectors, so the cost of gathering
``x[ColIdx[j]]`` depends on how the column indices cluster:

* within a row, consecutive nonzeros often live in nearby columns — every
  distinct 32-byte sector a row touches is one fetch;
* across rows, sectors are reused through L2; how often depends on whether
  the active slice of ``x`` fits in L2.

``x_traffic_bytes`` turns both effects into an estimated DRAM byte count,
computed *exactly* from the matrix structure (per-row distinct sectors and
global distinct sectors) plus a capacity-miss factor.
"""

from __future__ import annotations

import numpy as np

from .device import DeviceSpec

#: DRAM sector granularity on Ampere/Hopper.
SECTOR_BYTES = 32

#: L2 sectors served per SM per cycle for random gathers.  Even when x
#: fits in L2, every distinct sector a warp touches is one L2
#: transaction, and that throughput — not DRAM bytes — is what makes
#: RANDOM ACCESS ~25% of CSR SpMV time in the paper's Figure 2.
L2_SECTORS_PER_SM_CYCLE = 0.8


def sector_counts(csr, value_bytes: int) -> tuple[int, int]:
    """(per-row distinct sector fetches summed, globally distinct sectors).

    A "sector" is a 32-byte aligned span of ``x``; ``value_bytes`` is the
    size of one x element, so a sector holds ``32 // value_bytes``
    consecutive elements.
    """
    elems_per_sector = max(1, SECTOR_BYTES // value_bytes)
    if csr.nnz == 0:
        return 0, 0
    sectors = csr.indices.astype(np.int64) // elems_per_sector
    rows = np.repeat(np.arange(csr.shape[0], dtype=np.int64), csr.row_lengths())
    keys = rows * (int(sectors.max()) + 2) + sectors
    uniq_per_row = np.unique(keys).size
    uniq_global = np.unique(sectors).size
    return int(uniq_per_row), int(uniq_global)


def x_traffic_bytes(csr, value_bytes: int, device: DeviceSpec,
                    *, bypass_l1: bool = False) -> float:
    """Estimated DRAM bytes fetched for ``x`` during one SpMV.

    Model: every *globally distinct* sector must come from DRAM at least
    once (compulsory misses).  Re-fetches of a sector by later rows hit L2
    when the touched slice of ``x`` fits there; otherwise they miss with
    probability proportional to the capacity overflow.  ``bypass_l1``
    models the paper's cache-bypass optimization (Section 3.3), which
    stops the streamed matrix data from evicting ``x`` — we credit it with
    a modestly lower capacity-miss rate.
    """
    from .device import get_device

    device = get_device(device)
    per_row, uniq = sector_counts(csr, value_bytes)
    if uniq == 0:
        return 0.0
    touched_bytes = uniq * SECTOR_BYTES
    # Effective L2 available to x: matrix streaming pollutes the cache
    # unless the kernel bypasses it for streamed data.
    l2_share = 0.75 if bypass_l1 else 0.5
    capacity = device.l2_bytes * l2_share
    if touched_bytes <= capacity:
        miss_rate = 0.0
    else:
        miss_rate = 1.0 - capacity / touched_bytes
    refetches = max(per_row - uniq, 0)
    dram_bytes = (uniq + refetches * miss_rate) * SECTOR_BYTES
    # L2-hit gathers are not free: every distinct sector per row is one
    # L2 transaction.  Convert that transaction time into equivalent DRAM
    # bytes so one number drives the cost model.
    l2_rate = device.sms * device.clock_hz * L2_SECTORS_PER_SM_CYCLE
    equiv_bytes_per_sector = device.measured_bw / l2_rate
    gather_factor = 0.72 if bypass_l1 else 1.0
    return dram_bytes + per_row * equiv_bytes_per_sector * gather_factor


def rhs_block_traffic_factor(csr, value_bytes: int, k: int) -> float:
    """Gather-traffic scaling for a row-major ``(n, k)`` RHS block (SpMM).

    SpMV gathers scattered single elements: every distinct 32-byte sector
    a row touches moves a full sector however few useful elements it
    holds.  With ``k`` right-hand sides stored row-major, one column
    index addresses ``k`` *contiguous* values, so each former
    one-sector transaction becomes a dense burst of
    ``ceil(occupancy * k * value_bytes / 32)`` sectors, where
    ``occupancy`` is the average number of useful x elements the SpMV
    sector carried.  The factor therefore sits between ~``k * vb / 32``
    (fully scattered columns) and ``k`` (densely clustered columns) —
    never above the naive per-RHS rescan.
    """
    if k <= 1:
        return 1.0
    per_row, _ = sector_counts(csr, value_bytes)
    if per_row == 0:
        return 1.0
    occupancy = csr.nnz / per_row
    burst_bytes = occupancy * k * value_bytes
    burst_sectors = -(-int(np.ceil(burst_bytes)) // SECTOR_BYTES)
    return float(min(k, max(1, burst_sectors)))


def effective_bandwidth(device: DeviceSpec, threads: int) -> float:
    """Achievable DRAM bandwidth (bytes/s) given the launched thread count.

    Small kernels cannot saturate HBM: bandwidth ramps with the number of
    outstanding threads until the device's latency-hiding capacity is
    reached.  The ramp floor (15%) reflects single-wave latency-bound
    transfers.
    """
    if threads <= 0:
        threads = 1
    # HBM saturates at roughly 16 resident warps per SM of memory
    # parallelism — far below the occupancy ceiling.
    saturation = device.sms * 16 * 32
    utilization = min(1.0, threads / saturation)
    ramp = 0.15 + 0.85 * utilization
    return device.measured_bw * ramp
