"""Order-sensitive MMA tile counters for the large-k SpMM engine.

The DASP plan's own padding counters are *permutation-invariant*: rows
are classified by length and the medium rows re-sorted by length, so
shuffling the row order never changes how many zero slots the plan
stores.  What row order *does* change is how well consecutive rows
share column support — which is exactly what a tensor-core SpMM tier
cares about (Acc-SpMM, arXiv 2501.09251): a tile of ``MMA_M``
consecutive rows is consumed as dense ``MMA_M x MMA_K`` A-fragments
over the *union* of the rows' columns, so rows with disjoint supports
pay ``MMA_M - 1`` zero slots for every real nonzero while rows with
overlapping supports amortize each fetched column across the tile.

:func:`mma_tile_stats` measures that: it tiles the rows (in a given
order) into groups of ``MMA_M``, takes each tile's distinct-column
union, and counts the ``MMA_K``-column chunks, slots, and zero padding
the MMA units would consume.  These counters are the objective the
row-reordering pass in :mod:`repro.core.spmm_block` optimizes, and
:func:`tile_gather_bytes` converts the unions into modeled RHS gather
traffic (each distinct column fetches ``tile_k`` contiguous X values —
one coalesced burst per column per column-tile).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check
from .memory import SECTOR_BYTES
from .mma import MmaShape, shape_for_dtype

__all__ = ["TileStats", "mma_tile_stats", "tile_gather_bytes"]


@dataclass(frozen=True)
class TileStats:
    """Aggregate MMA tile counters for one row order.

    Attributes
    ----------
    n_tiles:
        Row tiles of ``MMA_M`` consecutive rows (last one padded).
    n_chunks:
        ``MMA_K``-column chunks over all tile unions — one A-fragment
        (and one MMA issue per ``MMA_N`` rhs columns) each.
    slots:
        Stored A-fragment slots, ``n_chunks * MMA_M * MMA_K``.
    nnz:
        Real nonzeros covered (fills ``nnz`` of the ``slots``).
    gather_cols:
        Sum of distinct-column union sizes over tiles — distinct X rows
        fetched per column-tile pass.
    """

    n_tiles: int
    n_chunks: int
    slots: int
    nnz: int
    gather_cols: int

    @property
    def padding_slots(self) -> int:
        """Zero slots the MMA units chew through (``slots - nnz``)."""
        return self.slots - self.nnz

    @property
    def occupancy(self) -> float:
        """Real nonzeros per stored slot (1.0 = perfectly dense tiles)."""
        return self.nnz / self.slots if self.slots else 1.0

    @property
    def padding_waste(self) -> float:
        """Share of MMA slots wasted on padding (``1 - occupancy``)."""
        return 1.0 - self.occupancy

    @property
    def union_ratio(self) -> float:
        """Distinct X fetches per nonzero (``gather_cols / nnz``).

        1.0 means no two rows of any tile share a column (every nonzero
        fetches its own X entry); overlapping supports pull it below
        1.0 — the deduplication a tile-resident RHS gather achieves,
        and the traffic channel through which row reordering pays off.
        """
        return self.gather_cols / self.nnz if self.nnz else 1.0


def mma_tile_stats(csr, *, mma_shape: MmaShape | None = None,
                   perm: np.ndarray | None = None) -> TileStats:
    """Measure MMA tile density for *csr* rows taken in ``perm`` order.

    Rows are grouped into tiles of ``MMA_M`` consecutive rows of the
    permuted matrix; each tile's distinct-column union is consumed in
    ``MMA_K``-column chunks.  Unlike the DASP plan's padding ratio this
    is order-sensitive: it is the measured objective for the
    row-reordering pass.
    """
    shape = mma_shape or shape_for_dtype(csr.data.dtype)
    M, K = shape.m, shape.k
    m, n = csr.shape
    if m == 0 or csr.nnz == 0:
        return TileStats(n_tiles=-(-m // M) if m else 0, n_chunks=0,
                         slots=0, nnz=int(csr.nnz), gather_cols=0)
    if perm is None:
        order = np.arange(m, dtype=np.int64)
    else:
        order = np.asarray(perm, dtype=np.int64)
        check(order.shape == (m,), f"perm must have shape ({m},)")
        check(np.array_equal(np.sort(order), np.arange(m)),
              "perm must be a permutation of the rows")
    lens = csr.row_lengths()[order]
    total = int(lens.sum())
    # Gather every nonzero's (tile, column) pair in permuted row order.
    owner_pos = np.repeat(np.arange(m, dtype=np.int64), lens)
    starts = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(lens, out=starts[1:])
    offset = np.arange(total, dtype=np.int64) - starts[owner_pos]
    src = csr.indptr[order[owner_pos]] + offset
    cols = csr.indices[src].astype(np.int64)
    tile_of_nnz = owner_pos // M
    n_tiles = -(-m // M)
    union_sizes = np.bincount(
        np.unique(tile_of_nnz * n + cols) // n, minlength=n_tiles)
    chunks = -(-union_sizes // K)
    n_chunks = int(chunks.sum())
    return TileStats(
        n_tiles=n_tiles,
        n_chunks=n_chunks,
        slots=n_chunks * M * K,
        nnz=total,
        gather_cols=int(union_sizes.sum()),
    )


def tile_gather_bytes(stats: TileStats, value_bytes: int, k: int,
                      tile_k: int) -> float:
    """Modeled RHS gather traffic for a column-tiled large-k pass.

    Every distinct column in a tile union fetches ``tile_k`` contiguous
    X values (the row-major RHS block makes that one coalesced burst of
    ``ceil(tile_k * value_bytes / 32)`` sectors), once per column tile.
    The last column tile may be narrower; tiles are charged exactly.
    """
    check(k >= 1, "k must be positive")
    check(tile_k >= 1, "tile_k must be positive")
    total = 0.0
    for j0 in range(0, k, tile_k):
        width = min(tile_k, k - j0)
        sectors = -(-(width * value_bytes) // SECTOR_BYTES)
        total += stats.gather_cols * sectors * SECTOR_BYTES
    return total
