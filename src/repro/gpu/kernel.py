"""Common interface all SpMV methods (DASP and the five baselines) implement.

A method is a *plan factory*: ``prepare`` converts a CSR matrix into the
method's own data structure (counting preprocessing work), ``run``
executes the SpMV functionally, and ``events`` reports the device events
one SpMV invocation would generate, which the cost model turns into time.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from .._util import check
from .cost_model import Measurement, estimate_time
from .device import DeviceSpec, get_device
from .events import KernelEvents, PreprocessEvents


class SpMVMethod(abc.ABC):
    """Abstract SpMV method: preprocessing + kernel + event model."""

    #: Short display name, e.g. ``"DASP"`` or ``"cuSPARSE-CSR"``.
    name: str = "?"

    #: Value dtypes the method supports (cuSPARSE-BSR etc. are FP64/FP32
    #: only, mirroring Table 1's footnote that only cuSPARSE-CSR does FP16).
    supported_dtypes: tuple = (np.float64, np.float32, np.float16)

    def supports(self, dtype) -> bool:
        """True when the method can run matrices of the given dtype."""
        return np.dtype(dtype) in {np.dtype(d) for d in self.supported_dtypes}

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def prepare(self, csr) -> Any:
        """Convert CSR into the method's data structure ("plan")."""

    @abc.abstractmethod
    def run(self, plan, x: np.ndarray) -> np.ndarray:
        """Execute ``y = A @ x`` functionally from a prepared plan."""

    @abc.abstractmethod
    def events(self, plan, device: DeviceSpec) -> KernelEvents:
        """Device events one SpMV invocation generates."""

    @abc.abstractmethod
    def preprocess_events(self, plan) -> PreprocessEvents:
        """Work performed by :meth:`prepare` (Figure 13)."""

    # ------------------------------------------------------------------
    def spmv(self, csr, x: np.ndarray) -> np.ndarray:
        """One-shot convenience: prepare + run."""
        return self.run(self.prepare(csr), x)

    def measure(self, csr, device, *, matrix_name: str = "?") -> Measurement:
        """Prepare the matrix and produce a model time measurement."""
        device = get_device(device)
        dtype_bits = np.dtype(csr.data.dtype).itemsize * 8
        check(self.supports(csr.data.dtype),
              f"{self.name} does not support dtype {csr.data.dtype}")
        plan = self.prepare(csr)
        ev = self.events(plan, device)
        parts = estimate_time(ev, device, dtype_bits=dtype_bits)
        return Measurement(
            method=self.name,
            matrix=matrix_name,
            device=device.name,
            dtype_bits=dtype_bits,
            nnz=csr.nnz,
            time_s=parts.total,
            parts=parts,
        )
