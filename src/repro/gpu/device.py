"""Device specifications for the simulated GPUs.

The numbers for the two presets come straight from Table 1 of the paper
(and public NVIDIA datasheets for fields the paper does not list).  The
cost model (:mod:`repro.gpu.cost_model`) combines these with *derating*
factors representing achievable — rather than theoretical — throughput;
the measured STREAM-like Triad bandwidth of Figure 1 is modeled with
:attr:`DeviceSpec.triad_efficiency`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import check

#: Warp width on all NVIDIA architectures this paper targets.
WARP_SIZE = 32


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a (simulated) GPU.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"A100-PCIe-40GB"``.
    arch:
        Architecture codename (``"Ampere"``, ``"Hopper"``).
    sms:
        Number of streaming multiprocessors.
    clock_ghz:
        Sustained SM clock in GHz.
    mem_bw_gbs:
        Theoretical DRAM bandwidth in GB/s (the red dashed line of Fig 1).
    triad_efficiency:
        Fraction of theoretical bandwidth a STREAM-like Triad achieves
        (the blue dashed line of Fig 1).
    l2_bytes:
        L2 cache capacity in bytes.
    fp64_cuda_tflops / fp32_cuda_tflops:
        Peak CUDA-core throughput.
    fp64_tensor_tflops / fp16_tensor_tflops:
        Peak tensor-core (MMA unit) throughput.
    launch_overhead_us:
        Fixed cost of one kernel launch in microseconds.
    max_warps_per_sm:
        Occupancy ceiling used by the latency-hiding model.
    """

    name: str
    arch: str
    sms: int
    clock_ghz: float
    mem_bw_gbs: float
    triad_efficiency: float
    l2_bytes: int
    fp64_cuda_tflops: float
    fp32_cuda_tflops: float
    fp64_tensor_tflops: float
    fp16_tensor_tflops: float
    launch_overhead_us: float = 2.2
    max_warps_per_sm: int = 64
    mem_latency_ns: float = 450.0

    def __post_init__(self) -> None:
        check(self.sms > 0, "sms must be positive")
        check(0 < self.triad_efficiency <= 1, "triad_efficiency in (0, 1]")

    # ------------------------------------------------------------------
    # Derived rates (SI units)
    # ------------------------------------------------------------------
    @property
    def mem_bw(self) -> float:
        """Theoretical bandwidth in bytes/s."""
        return self.mem_bw_gbs * 1e9

    @property
    def measured_bw(self) -> float:
        """Achievable (Triad) bandwidth in bytes/s — what SpMV can hope for."""
        return self.mem_bw * self.triad_efficiency

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    def cuda_flops(self, dtype_bits: int) -> float:
        """Peak CUDA-core flops/s for the given precision."""
        if dtype_bits == 64:
            return self.fp64_cuda_tflops * 1e12
        # FP16 on CUDA cores runs at (up to) 2x FP32 rate; we conservatively
        # use the FP32 rate, matching how cuSPARSE's FP16 SpMV behaves.
        return self.fp32_cuda_tflops * 1e12

    def tensor_flops(self, dtype_bits: int) -> float:
        """Peak tensor-core flops/s for the given precision."""
        if dtype_bits == 64:
            check(self.fp64_tensor_tflops > 0, f"{self.name} lacks FP64 MMA units")
            return self.fp64_tensor_tflops * 1e12
        return self.fp16_tensor_tflops * 1e12

    @property
    def launch_overhead_s(self) -> float:
        return self.launch_overhead_us * 1e-6

    @property
    def concurrency(self) -> int:
        """Threads resident at full occupancy (latency-hiding capacity)."""
        return self.sms * self.max_warps_per_sm * WARP_SIZE


#: NVIDIA A100 PCIe 40 GB — the paper's primary platform (Table 1).
A100 = DeviceSpec(
    name="A100-PCIe-40GB",
    arch="Ampere",
    sms=108,
    clock_ghz=1.41,
    mem_bw_gbs=1555.0,
    triad_efficiency=0.88,
    l2_bytes=40 * 1024 * 1024,
    fp64_cuda_tflops=9.7,
    fp32_cuda_tflops=19.5,
    fp64_tensor_tflops=19.5,
    fp16_tensor_tflops=312.0,
)

#: NVIDIA H800 PCIe 80 GB — the paper's FP16 Hopper platform (Table 1).
#: The H800's FP64 tensor throughput is capped by export rules; the paper
#: only evaluates FP16 on it, so we publish 1.0 TFlops as the capped value.
H800 = DeviceSpec(
    name="H800-PCIe-80GB",
    arch="Hopper",
    sms=114,
    clock_ghz=1.755,
    mem_bw_gbs=2048.0,
    triad_efficiency=0.90,
    l2_bytes=50 * 1024 * 1024,
    fp64_cuda_tflops=0.8,
    fp32_cuda_tflops=51.2,
    fp64_tensor_tflops=1.0,
    fp16_tensor_tflops=756.0,
    launch_overhead_us=2.0,
)

#: Registry of presets by name.
DEVICES = {"A100": A100, "H800": H800}


def get_device(name_or_spec) -> DeviceSpec:
    """Resolve ``"A100"`` / ``"H800"`` / a :class:`DeviceSpec` instance.

    A preset's full marketing name (``spec.name``, e.g.
    ``"A100-PCIe-40GB"``) resolves too: components that persist or
    re-plumb ``device.name`` round-trip back to the preset.
    """
    if isinstance(name_or_spec, DeviceSpec):
        return name_or_spec
    key = str(name_or_spec).upper()
    if key not in DEVICES:
        for spec in DEVICES.values():
            if spec.name.upper() == key:
                return spec
    check(key in DEVICES, f"unknown device {name_or_spec!r}; have {sorted(DEVICES)}")
    return DEVICES[key]
