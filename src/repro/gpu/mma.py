"""Matrix multiply-accumulate (MMA) unit emulation.

Two levels of fidelity:

* :class:`MmaUnit` — a *functional* MMA unit: given whole operand blocks it
  performs ``D = A @ B + C`` with tensor-core precision semantics (inputs
  cast to the unit's input dtype, products and accumulation carried in the
  accumulator dtype).  Used by the fast vectorized kernels.

* The ``m8n8k4`` FP64 *fragment layout* of the PTX ``mma.sync.aligned.
  m8n8k4.row.col.f64.f64.f64.f64`` instruction (paper Listing 1 and
  Figure 4), with per-lane fragment distribution:

  - A (8x4, row major): one register per lane, ``A[lane >> 2, lane & 3]``
  - B (4x8, col major): one register per lane, ``B[lane & 3, lane >> 2]``
  - C/D (8x8): two registers per lane, ``C[lane >> 2, 2*(lane & 3) + r]``

  The paper's index expression ``idx = (3 & laneid) + (laneid >> 2) *
  MMA_K`` (Algorithms 2-4) is exactly the flattened A-fragment address for
  this layout, and the shuffle reductions with offsets 9/18/4 and
  ``target = ((laneid - i*8) >> 1) * 9`` only extract the correct values
  under this distribution — so the layout is load-bearing for the whole
  reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check
from .device import WARP_SIZE
from .warp import Warp

# ----------------------------------------------------------------------
# Functional MMA unit
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MmaShape:
    """Dimensions and precision of one MMA instruction."""

    m: int
    n: int
    k: int
    in_dtype: np.dtype
    acc_dtype: np.dtype
    name: str

    @property
    def flops(self) -> int:
        """Flops performed by a single instruction (multiply + add)."""
        return 2 * self.m * self.n * self.k

    @property
    def a_elements(self) -> int:
        """Elements of the A operand consumed per instruction."""
        return self.m * self.k


#: The FP64 instruction the paper programs directly (Listing 1).
FP64_M8N8K4 = MmaShape(8, 8, 4, np.dtype(np.float64), np.dtype(np.float64), "mma.m8n8k4.f64")

#: FP16 configuration used by our DASP half-precision path.  We keep the
#: paper's 8x4 A-block geometry so the DASP data structure is precision
#: independent; real hardware would issue m16n8k8 instructions over pairs
#: of these blocks, which the cost model accounts for via ``flops``.
FP16_M8N8K4 = MmaShape(8, 8, 4, np.dtype(np.float16), np.dtype(np.float32), "mma.m8n8k4.f16")

#: Native Hopper/Ampere FP16 shape, provided for completeness and used by
#: the cost model to reason about instruction counts in FP16.
FP16_M16N8K8 = MmaShape(16, 8, 8, np.dtype(np.float16), np.dtype(np.float32), "mma.m16n8k8.f16")


def shape_for_dtype(dtype) -> MmaShape:
    """The MMA shape DASP uses for a given value dtype."""
    dtype = np.dtype(dtype)
    if dtype == np.float64:
        return FP64_M8N8K4
    if dtype == np.float16:
        return FP16_M8N8K4
    if dtype == np.float32:
        # TF32 path: stored FP32, accumulated FP32 (rounding of TF32
        # inputs is not modeled; the paper does not evaluate FP32).
        return MmaShape(8, 8, 4, np.dtype(np.float32), np.dtype(np.float32), "mma.m8n8k4.tf32")
    raise TypeError(f"no MMA shape for dtype {dtype}")


class MmaUnit:
    """Functional MMA unit with tensor-core precision semantics.

    Counts issued instructions so kernels can report exact MMA event
    totals to the cost model.
    """

    def __init__(self, shape: MmaShape) -> None:
        self.shape = shape
        #: Number of MMA instructions issued through this unit.
        self.issue_count = 0

    def mma(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        """``D = A @ B + C`` for one instruction's operands."""
        s = self.shape
        check(a.shape == (s.m, s.k), f"A must be {s.m}x{s.k}")
        check(b.shape == (s.k, s.n), f"B must be {s.k}x{s.n}")
        check(c.shape == (s.m, s.n), f"C must be {s.m}x{s.n}")
        self.issue_count += 1
        a = a.astype(s.in_dtype, copy=False).astype(s.acc_dtype)
        b = b.astype(s.in_dtype, copy=False).astype(s.acc_dtype)
        return a @ b + c.astype(s.acc_dtype, copy=False)

    def block_row_dots(self, a_blocks: np.ndarray, x_blocks: np.ndarray) -> np.ndarray:
        """Batched diagonal-of-``A @ B`` — the SpMV use of the MMA unit.

        DASP builds ``B`` so that column ``j`` of ``B`` holds the ``x``
        values gathered for row ``j`` of ``A``; only the diagonal of the
        product is meaningful (Section 3.3).  For the vectorized engine we
        compute exactly those diagonal entries: given ``a_blocks`` of shape
        ``(nb, m, k)`` and matching gathered ``x_blocks``, return row sums
        ``(nb, m)`` with the unit's precision semantics.

        Every block still counts as a full MMA instruction (the hardware
        cannot skip the off-diagonal work — that inefficiency is part of
        the paper's design and is reflected in the cost model).
        """
        s = self.shape
        check(a_blocks.ndim == 3 and a_blocks.shape[1:] == (s.m, s.k),
              f"a_blocks must be (nb, {s.m}, {s.k})")
        check(x_blocks.shape == a_blocks.shape, "x_blocks must match a_blocks")
        self.issue_count += int(a_blocks.shape[0])
        prod = a_blocks.astype(s.in_dtype, copy=False).astype(s.acc_dtype) * \
            x_blocks.astype(s.in_dtype, copy=False).astype(s.acc_dtype)
        return prod.sum(axis=2, dtype=s.acc_dtype)


# ----------------------------------------------------------------------
# m8n8k4 FP64 fragment layout (lane-accurate)
# ----------------------------------------------------------------------

_LANE = np.arange(WARP_SIZE)
#: Row/col of the A fragment element held by each lane.
A_ROW, A_COL = _LANE >> 2, _LANE & 3
#: Row/col of the B fragment element held by each lane.
B_ROW, B_COL = _LANE & 3, _LANE >> 2
#: Row of both C registers and col of each C register per lane.
C_ROW = _LANE >> 2
C_COL0 = 2 * (_LANE & 3)
C_COL1 = C_COL0 + 1


def frag_a_from_matrix(a: np.ndarray) -> np.ndarray:
    """Distribute an 8x4 A operand into per-lane fragment registers."""
    check(a.shape == (8, 4), "A operand must be 8x4")
    return np.ascontiguousarray(a[A_ROW, A_COL])


def matrix_from_frag_a(frag: np.ndarray) -> np.ndarray:
    """Reassemble the 8x4 A operand from per-lane registers."""
    out = np.empty((8, 4), dtype=frag.dtype)
    out[A_ROW, A_COL] = frag
    return out


def frag_b_from_matrix(b: np.ndarray) -> np.ndarray:
    """Distribute a 4x8 B operand into per-lane fragment registers."""
    check(b.shape == (4, 8), "B operand must be 4x8")
    return np.ascontiguousarray(b[B_ROW, B_COL])


def matrix_from_frag_b(frag: np.ndarray) -> np.ndarray:
    """Reassemble the 4x8 B operand from per-lane registers."""
    out = np.empty((4, 8), dtype=frag.dtype)
    out[B_ROW, B_COL] = frag
    return out


def frag_c_from_matrix(c: np.ndarray) -> np.ndarray:
    """Distribute an 8x8 accumulator into per-lane (32, 2) registers."""
    check(c.shape == (8, 8), "C operand must be 8x8")
    out = np.empty((WARP_SIZE, 2), dtype=c.dtype)
    out[:, 0] = c[C_ROW, C_COL0]
    out[:, 1] = c[C_ROW, C_COL1]
    return out


def matrix_from_frag_c(frag: np.ndarray) -> np.ndarray:
    """Reassemble the 8x8 accumulator from per-lane (32, 2) registers."""
    check(frag.shape == (WARP_SIZE, 2), "C fragment must be (32, 2)")
    out = np.empty((8, 8), dtype=frag.dtype)
    out[C_ROW, C_COL0] = frag[:, 0]
    out[C_ROW, C_COL1] = frag[:, 1]
    return out


def mma_m8n8k4(warp: Warp, acc: np.ndarray, frag_a: np.ndarray,
               frag_b: np.ndarray, *, shape: MmaShape = FP64_M8N8K4) -> np.ndarray:
    """Execute one ``mma.m8n8k4`` on lane-distributed fragments.

    Mirrors the paper's Listing 1: ``acc`` is both the C input and the D
    output, held as per-lane ``(32, 2)`` registers.  Returns the new
    accumulator fragment.  ``shape`` selects the precision contract
    (FP64 by default; :data:`FP16_M8N8K4` rounds inputs to binary16 and
    accumulates in FP32).
    """
    check(acc.shape == (WARP_SIZE, 2), "acc must be per-lane (32, 2)")
    a = matrix_from_frag_a(
        np.asarray(frag_a).astype(shape.in_dtype, copy=False)
    ).astype(shape.acc_dtype)
    b = matrix_from_frag_b(
        np.asarray(frag_b).astype(shape.in_dtype, copy=False)
    ).astype(shape.acc_dtype)
    c = matrix_from_frag_c(np.asarray(acc, dtype=shape.acc_dtype))
    d = a @ b + c
    if not hasattr(warp, "mma_count"):
        warp.mma_count = 0
    warp.mma_count += 1
    return frag_c_from_matrix(d)


# ----------------------------------------------------------------------
# m16n8k8 FP16 fragment layout (lane-accurate)
# ----------------------------------------------------------------------
#
# The native half-precision instruction on Ampere/Hopper:
# ``mma.sync.aligned.m16n8k8.row.col.f32.f16.f16.f32``.  Per the PTX ISA,
# with groupID = lane >> 2 and tid = lane & 3:
#
# * A (16x8 f16, 4 regs): rows {groupID, groupID+8} x cols {2*tid, 2*tid+1}
# * B (8x8 f16, 2 regs):  rows {2*tid, 2*tid+1}, col groupID
# * C/D (16x8 f32, 4 regs): rows {groupID, groupID+8} x cols {2*tid, 2*tid+1}

_GROUP = _LANE >> 2
_TID = _LANE & 3

#: (reg, lane) -> row/col of the m16n8k8 A fragment element.
A16_ROW = np.stack([_GROUP, _GROUP, _GROUP + 8, _GROUP + 8])
A16_COL = np.stack([2 * _TID, 2 * _TID + 1, 2 * _TID, 2 * _TID + 1])
#: (reg, lane) -> row/col of the B fragment element.
B16_ROW = np.stack([2 * _TID, 2 * _TID + 1])
B16_COL = np.stack([_GROUP, _GROUP])
#: (reg, lane) -> row/col of the C/D accumulator element.
C16_ROW = A16_ROW
C16_COL = A16_COL


def frag_a16_from_matrix(a: np.ndarray) -> np.ndarray:
    """Distribute a 16x8 FP16 A operand into per-lane (32, 4) registers."""
    check(a.shape == (16, 8), "A operand must be 16x8")
    return np.ascontiguousarray(a[A16_ROW, A16_COL].T)


def matrix_from_frag_a16(frag: np.ndarray) -> np.ndarray:
    """Reassemble the 16x8 A operand from per-lane (32, 4) registers."""
    check(frag.shape == (WARP_SIZE, 4), "A fragment must be (32, 4)")
    out = np.empty((16, 8), dtype=frag.dtype)
    out[A16_ROW, A16_COL] = frag.T
    return out


def frag_b16_from_matrix(b: np.ndarray) -> np.ndarray:
    """Distribute an 8x8 FP16 B operand into per-lane (32, 2) registers."""
    check(b.shape == (8, 8), "B operand must be 8x8")
    return np.ascontiguousarray(b[B16_ROW, B16_COL].T)


def matrix_from_frag_b16(frag: np.ndarray) -> np.ndarray:
    """Reassemble the 8x8 B operand from per-lane (32, 2) registers."""
    check(frag.shape == (WARP_SIZE, 2), "B fragment must be (32, 2)")
    out = np.empty((8, 8), dtype=frag.dtype)
    out[B16_ROW, B16_COL] = frag.T
    return out


def frag_c16_from_matrix(c: np.ndarray) -> np.ndarray:
    """Distribute a 16x8 FP32 accumulator into per-lane (32, 4) registers."""
    check(c.shape == (16, 8), "C operand must be 16x8")
    return np.ascontiguousarray(c[C16_ROW, C16_COL].T)


def matrix_from_frag_c16(frag: np.ndarray) -> np.ndarray:
    """Reassemble the 16x8 accumulator from per-lane (32, 4) registers."""
    check(frag.shape == (WARP_SIZE, 4), "C fragment must be (32, 4)")
    out = np.empty((16, 8), dtype=frag.dtype)
    out[C16_ROW, C16_COL] = frag.T
    return out


def mma_m16n8k8(warp: Warp, acc: np.ndarray, frag_a: np.ndarray,
                frag_b: np.ndarray) -> np.ndarray:
    """Execute one ``mma.m16n8k8.f32.f16.f16.f32`` on lane fragments.

    Inputs are rounded to binary16, products and accumulation are FP32 —
    the tensor-core contract the FP16 DASP path relies on.
    """
    check(acc.shape == (WARP_SIZE, 4), "acc must be per-lane (32, 4)")
    a = matrix_from_frag_a16(np.asarray(frag_a)).astype(np.float16).astype(np.float32)
    b = matrix_from_frag_b16(np.asarray(frag_b)).astype(np.float16).astype(np.float32)
    c = matrix_from_frag_c16(np.asarray(acc, dtype=np.float32))
    d = a @ b + c
    if not hasattr(warp, "mma_count"):
        warp.mma_count = 0
    warp.mma_count += 1
    return frag_c16_from_matrix(d)
