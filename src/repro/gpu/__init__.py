"""GPU execution substrate: device specs, warp/MMA emulation, cost model.

This package stands in for the NVIDIA A100/H800 hardware of the paper:
:class:`Warp` reproduces warp shuffle semantics lane-accurately,
:mod:`repro.gpu.mma` reproduces the ``mma.m8n8k4`` FP64 fragment layout,
and :mod:`repro.gpu.cost_model` converts measured kernel event counts
into time estimates using published device specifications.
"""

from .cost_model import (
    Measurement,
    effective_bandwidth_gbs,
    estimate_preprocess_time,
    estimate_time,
    spmv_gflops,
)
from .device import A100, DEVICES, H800, WARP_SIZE, DeviceSpec, get_device
from .events import KernelEvents, PreprocessEvents, TimeParts
from .kernel import SpMVMethod
from .memory import (
    effective_bandwidth,
    rhs_block_traffic_factor,
    sector_counts,
    x_traffic_bytes,
)
from .mma import (
    FP16_M8N8K4,
    FP16_M16N8K8,
    FP64_M8N8K4,
    MmaShape,
    MmaUnit,
    frag_a16_from_matrix,
    frag_a_from_matrix,
    frag_b16_from_matrix,
    frag_b_from_matrix,
    frag_c16_from_matrix,
    frag_c_from_matrix,
    matrix_from_frag_a,
    matrix_from_frag_a16,
    matrix_from_frag_b,
    matrix_from_frag_b16,
    matrix_from_frag_c,
    matrix_from_frag_c16,
    mma_m16n8k8,
    mma_m8n8k4,
    shape_for_dtype,
)
from .tiles import TileStats, mma_tile_stats, tile_gather_bytes
from .warp import FULL_MASK, Warp

__all__ = [
    "A100",
    "DEVICES",
    "DeviceSpec",
    "FP16_M16N8K8",
    "FP16_M8N8K4",
    "FP64_M8N8K4",
    "FULL_MASK",
    "H800",
    "KernelEvents",
    "Measurement",
    "MmaShape",
    "MmaUnit",
    "PreprocessEvents",
    "SpMVMethod",
    "TileStats",
    "TimeParts",
    "WARP_SIZE",
    "Warp",
    "effective_bandwidth",
    "effective_bandwidth_gbs",
    "estimate_preprocess_time",
    "estimate_time",
    "frag_a16_from_matrix",
    "frag_a_from_matrix",
    "frag_b16_from_matrix",
    "frag_b_from_matrix",
    "frag_c16_from_matrix",
    "frag_c_from_matrix",
    "get_device",
    "matrix_from_frag_a",
    "matrix_from_frag_a16",
    "matrix_from_frag_b",
    "matrix_from_frag_b16",
    "matrix_from_frag_c",
    "matrix_from_frag_c16",
    "mma_m16n8k8",
    "mma_m8n8k4",
    "mma_tile_stats",
    "rhs_block_traffic_factor",
    "sector_counts",
    "shape_for_dtype",
    "spmv_gflops",
    "tile_gather_bytes",
    "x_traffic_bytes",
]
