"""Kernel event accounting.

Every SpMV method in this package reports what its GPU kernels *would do*
— bytes streamed, x-vector gather traffic, flops on CUDA cores and MMA
units, shuffles, atomics, launches, thread counts and measured load
imbalance — as a :class:`KernelEvents` record.  The analytic cost model
(:mod:`repro.gpu.cost_model`) turns these into time estimates.

Crucially, the counts are *measured from the actual data structures* (real
padding, real fill-in, real imbalance), not assumed, so relative method
performance emerges from the same structural properties the paper
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class KernelEvents:
    """Aggregate device events for one logical SpMV invocation.

    Attributes
    ----------
    bytes_val / bytes_idx / bytes_ptr:
        DRAM traffic for matrix values, column indices, and pointer /
        metadata arrays (streamed once per SpMV).
    bytes_x:
        Estimated DRAM traffic for the random accesses to ``x`` after the
        sector/cache model of :mod:`repro.gpu.memory`.
    bytes_y:
        Output and auxiliary (e.g. ``warpVal``) traffic.
    flops_cuda:
        Floating-point operations executed on CUDA cores.
    flops_mma:
        Floating-point operations executed on MMA units, *including* the
        work spent on padding zeros (the hardware cannot skip it).
    mma_count / shfl_count / atomic_count:
        Instruction counts for MMA, warp shuffles and atomic adds.
    extra_instr:
        Additional per-element scalar instruction estimate beyond the
        flops themselves (segmented-sum bookkeeping, binary searches, ...),
        counted in *thread-level* instructions.
    imbalance:
        Load-imbalance multiplier (>= 1): ratio of the makespan implied by
        the method's work partitioning to a perfectly balanced partition.
    mem_efficiency:
        Coalescing efficiency of the kernel's DRAM accesses in (0, 1]:
        fraction of peak streaming bandwidth its access pattern sustains
        (1.0 = fully coalesced streams; segment-major or thread-strided
        patterns sit well below).
    serial_iters:
        Longest sequential iteration chain any single warp must execute
        (the straggler's critical path, in warp-iterations).  The cost
        model exposes it only when it exceeds the kernel's parallel work
        — one thread owning a two-million-nonzero row dominates the
        kernel; a sorted medium-row warp with 2x average work does not.
    kernel_launches:
        Kernel-launch overhead units per SpMV.  Fractional values model
        concurrent-stream launches whose latency partially overlaps.
    threads:
        Total device threads launched (drives the bandwidth-utilization
        model for small problems).
    """

    bytes_val: float = 0.0
    bytes_idx: float = 0.0
    bytes_ptr: float = 0.0
    bytes_x: float = 0.0
    bytes_y: float = 0.0
    flops_cuda: float = 0.0
    flops_mma: float = 0.0
    mma_count: float = 0.0
    shfl_count: float = 0.0
    atomic_count: float = 0.0
    extra_instr: float = 0.0
    imbalance: float = 1.0
    mem_efficiency: float = 1.0
    serial_iters: float = 0.0
    kernel_launches: float = 1
    threads: int = 0

    def __post_init__(self) -> None:
        if self.imbalance < 1.0:
            self.imbalance = 1.0
        if not (0.0 < self.mem_efficiency <= 1.0):
            raise ValueError("mem_efficiency must be in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def bytes_stream(self) -> float:
        """Matrix-stream traffic (everything but x and y)."""
        return self.bytes_val + self.bytes_idx + self.bytes_ptr

    def as_attrs(self) -> dict:
        """Flat numeric dict for feeding span attributes
        (:mod:`repro.obs`): the headline counts a kernel trace should
        carry without serializing the whole record."""
        return {
            "bytes_total": self.bytes_total,
            "bytes_stream": self.bytes_stream,
            "bytes_x": self.bytes_x,
            "flops_mma": self.flops_mma,
            "flops_cuda": self.flops_cuda,
            "mma_count": self.mma_count,
            "imbalance": self.imbalance,
            "mem_efficiency": self.mem_efficiency,
            "kernel_launches": self.kernel_launches,
            "threads": float(self.threads),
        }

    @property
    def bytes_total(self) -> float:
        """All DRAM traffic."""
        return self.bytes_stream + self.bytes_x + self.bytes_y

    @property
    def flops_total(self) -> float:
        return self.flops_cuda + self.flops_mma

    def combine(self, other: "KernelEvents") -> "KernelEvents":
        """Merge two kernels of the same SpMV (e.g. DASP's category
        kernels): traffic and ops add; imbalance is traffic-weighted."""
        merged = KernelEvents()
        for f in fields(KernelEvents):
            if f.name in ("imbalance", "mem_efficiency", "serial_iters"):
                continue
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        w_self = max(self.bytes_total + self.flops_total, 1.0)
        w_other = max(other.bytes_total + other.flops_total, 1.0)
        total_w = w_self + w_other
        merged.imbalance = (
            self.imbalance * w_self + other.imbalance * w_other) / total_w
        merged.mem_efficiency = (
            self.mem_efficiency * w_self + other.mem_efficiency * w_other) / total_w
        # Kernels launch back to back; the longest critical path is the
        # one that can poke out past the combined parallel work.
        merged.serial_iters = max(self.serial_iters, other.serial_iters)
        return merged

    def scale_rhs(self, k: int, *, mma_n: int, mma_flops: float,
                  x_factor: float | None = None) -> "KernelEvents":
        """Events for the same kernel consuming ``k`` right-hand sides.

        This is the SpMM-batch accounting used by :func:`repro.core.spmm.
        spmm_events` and the serving layer: the matrix stream
        (values / indices / pointers), shuffles, bookkeeping and launch
        structure are paid **once** for the whole batch; CUDA-core flops
        and y writes scale with ``k``; every MMA block needs
        ``ceil(k / mma_n)`` instructions (each worth ``mma_flops``); and
        the x gather scales by ``x_factor`` — the caller's coalescing
        model for the RHS block (defaults to the naive ``k``, see
        :func:`repro.gpu.memory.rhs_block_traffic_factor` for the
        row-major-block refinement).
        """
        if k < 1:
            raise ValueError("k must be positive")
        passes = -(-k // mma_n)
        return KernelEvents(
            bytes_val=self.bytes_val,
            bytes_idx=self.bytes_idx,
            bytes_ptr=self.bytes_ptr,
            bytes_x=self.bytes_x * (float(k) if x_factor is None else x_factor),
            bytes_y=self.bytes_y * k,
            flops_cuda=self.flops_cuda * k,
            flops_mma=self.mma_count * mma_flops * passes,
            mma_count=self.mma_count * passes,
            shfl_count=self.shfl_count,
            atomic_count=self.atomic_count,
            extra_instr=self.extra_instr,
            imbalance=self.imbalance,
            mem_efficiency=self.mem_efficiency,
            serial_iters=self.serial_iters,
            kernel_launches=self.kernel_launches,
            threads=self.threads,
        )


@dataclass
class PreprocessEvents:
    """Device/host work performed by format conversion (Figure 13).

    Attributes
    ----------
    device_bytes:
        Bytes moved by device-side conversion passes.
    host_bytes:
        Bytes touched by host-side (CPU) passes; the model charges these
        at host memory bandwidth.
    sort_keys:
        Number of keys sorted (charged ``k log k`` host work / device
        radix work).
    kernel_launches:
        Device kernels launched during conversion.
    allocations:
        Device allocations performed (each has a fixed cost).
    """

    device_bytes: float = 0.0
    host_bytes: float = 0.0
    sort_keys: float = 0.0
    kernel_launches: int = 0
    allocations: int = 0


@dataclass
class TimeParts:
    """Decomposed time estimate (seconds) for one SpMV invocation.

    Mirrors the paper's Figure 2 taxonomy: ``random_access`` is the x
    gather, ``compute`` the arithmetic pipes, and ``misc`` the matrix
    stream + pointer/y traffic + launch overhead.
    """

    random_access: float = 0.0
    compute: float = 0.0
    misc: float = 0.0
    launch: float = 0.0

    @property
    def total(self) -> float:
        return self.random_access + self.compute + self.misc + self.launch

    def fractions(self) -> dict[str, float]:
        """Shares of total time per part (launch folded into misc, as the
        paper's MISCELLANEOUS includes fixed overheads)."""
        t = self.total
        if t <= 0:
            return {"random_access": 0.0, "compute": 0.0, "misc": 1.0}
        return {
            "random_access": self.random_access / t,
            "compute": self.compute / t,
            "misc": (self.misc + self.launch) / t,
        }
