"""`PlanStore` — a content-addressed directory of plan artifacts.

Layout under the store root::

    plans/<fingerprint>.daspz       published artifacts
    quarantine/<fingerprint>.daspz  artifacts that failed to load
    quarantine/<fingerprint>.reason one-line failure description
    tmp/                            in-flight writes (crash debris only)

Publishing is atomic: :meth:`PlanStore.put` serializes into ``tmp/``
(with an fsync) and ``os.replace``-renames into ``plans/`` — readers
never observe a half-written artifact, and concurrent writers of the
same fingerprint are idempotent (last rename wins, both files are
identical by content addressing).

Loads are fail-safe: any :class:`~repro.store.artifact.ArtifactError`
(corruption, truncation, version mismatch, fingerprint mismatch) moves
the offending file to ``quarantine/``, counts it, and returns a miss —
the caller rebuilds from CSR.  A load is also skipped (counted as
``store.load_skipped_total``) when the cost model says rebuilding is
cheaper than reading the artifact back (:mod:`repro.store.tier`).

Counters flow through :mod:`repro.obs` (``store.*``), so a store bound
to a server's handle reports in the same ``ServerStats`` facade as the
plan cache it backs.

The store is safe under **concurrent multi-instance use** of one root
directory — the cluster's replicas each open their own ``PlanStore``
over the shared store and warm-start in parallel.  All instances on a
root share one process-wide advisory lock, so an artifact read can
never race another instance's gc/quarantine unlink; removals by a
*different process* surface as plain misses (the caller rebuilds), and
byte accounting tolerates files vanishing mid-scan.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import time
from pathlib import Path

import numpy as np

from .._util import check
from .artifact import (
    EXTENSION,
    ArtifactError,
    load_artifact,
    read_aux,
    read_header,
    save_artifact,
    verify_artifact,
)
from .tier import load_beats_rebuild, modeled_load_time

# One advisory lock per store root, shared by every PlanStore instance
# opened on that directory in this process: N replicas warm-starting
# from one shared store must not race an artifact read against another
# instance's gc/quarantine unlink.  (An RLock because quarantine runs
# under load's lock.)  Cross-process races are handled by tolerance
# instead: a vanished file reads as a miss, never an exception.
_ROOT_LOCKS: dict[str, threading.RLock] = {}
_ROOT_LOCKS_GUARD = threading.Lock()

# process-wide tmp-file sequence: two instances over one root must not
# collide on in-flight write names (the pid alone no longer suffices)
_TMP_SEQ = itertools.count(1)

#: How many ``aux.delta.*`` records an artifact retains before the
#: oldest deltas are folded forward into the plan payload (gc of
#: superseded versions).  Retained deltas are the rollback window.
DELTA_RETAIN = 8


def _root_lock(root: Path) -> threading.RLock:
    key = str(root.resolve())
    with _ROOT_LOCKS_GUARD:
        lock = _ROOT_LOCKS.get(key)
        if lock is None:
            lock = _ROOT_LOCKS[key] = threading.RLock()
        return lock


def fingerprint_csr(csr) -> str:
    """Canonical content fingerprint of a CSR matrix.

    Hashes the shape, dtype and the raw ``indptr`` / ``indices`` /
    ``data`` payloads (blake2b-128): two matrices share a fingerprint
    iff they are bytewise-identical CSR structures.  This is the one
    key the plan cache, the artifact store and request routing all
    agree on; :func:`repro.serve.matrix_fingerprint` is an alias.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(repr((tuple(csr.shape), str(csr.data.dtype))).encode())
    h.update(np.ascontiguousarray(csr.indptr).tobytes())
    h.update(np.ascontiguousarray(csr.indices).tobytes())
    h.update(np.ascontiguousarray(csr.data).tobytes())
    return h.hexdigest()


class PlanStore:
    """Durable, capacity-bounded artifact store keyed by fingerprint.

    Parameters
    ----------
    root:
        Store directory (created if missing, including parents).
    capacity_bytes:
        Optional cap on published artifact bytes; exceeding it after a
        :meth:`put` garbage-collects least-recently-used artifacts
        (by file access/modify time — loads touch their artifact).
    device:
        Device whose cost model gates load-vs-rebuild (default A100).
    obs:
        :class:`repro.obs.Obs` handle for the ``store.*`` counters;
        a fresh private one by default.  Components that adopt a
        pre-built store call :meth:`bind` to repoint the counters at
        their shared handle.
    """

    def __init__(self, root, *, capacity_bytes: int | None = None,
                 device="A100", obs=None) -> None:
        self.root = Path(root)
        self.plans_dir = self.root / "plans"
        self.quarantine_dir = self.root / "quarantine"
        self.tmp_dir = self.root / "tmp"
        for d in (self.plans_dir, self.quarantine_dir, self.tmp_dir):
            d.mkdir(parents=True, exist_ok=True)
        if capacity_bytes is not None:
            check(capacity_bytes >= 0, "capacity_bytes must be non-negative")
        self.capacity_bytes = capacity_bytes
        self.device = device
        self._lock = _root_lock(self.root)
        self.bind(obs)

    def bind(self, obs) -> None:
        """(Re)point the ``store.*`` instruments at *obs*' registry."""
        from ..obs import Obs

        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self._hits = obs.counter("store.hits_total")
        self._misses = obs.counter("store.misses_total")
        self._writes = obs.counter("store.writes_total")
        self._load_failures = obs.counter("store.load_failures_total")
        self._load_skipped = obs.counter("store.load_skipped_total")
        self._quarantined = obs.counter("store.quarantined_total")
        self._gc_removed = obs.counter("store.gc_removed_total")
        self._load_seconds = obs.counter("store.load_seconds_total")
        self._delta_writes = obs.counter("store.delta_writes_total")
        self._delta_replayed = obs.counter("store.delta_replayed_total")
        self._delta_folded = obs.counter("store.delta_folded_total")
        self._rollbacks = obs.counter("store.rollbacks_total")
        self._bytes = obs.gauge("store.bytes")
        self._bytes.set(self.nbytes())

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        return self.plans_dir / f"{fingerprint}{EXTENSION}"

    def contains(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    __contains__ = contains

    def fingerprints(self) -> list[str]:
        """Published fingerprints, sorted."""
        return sorted(p.stem for p in self.plans_dir.glob(f"*{EXTENSION}"))

    def __len__(self) -> int:
        return len(self.fingerprints())

    def nbytes(self) -> int:
        """Total published artifact bytes (tolerant of concurrent
        removal — a file another instance unlinks mid-scan counts 0)."""
        total = 0
        for p in self.plans_dir.glob(f"*{EXTENSION}"):
            try:
                total += p.stat().st_size
            except OSError:
                continue
        return total

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, fingerprint: str, plan, *, overwrite: bool = True,
            aux: dict | None = None) -> Path:
        """Atomically publish *plan* under *fingerprint*.

        Serializes to ``tmp/`` then renames into place; a reader never
        sees a partial file.  With ``overwrite=False`` an existing
        artifact is kept (content addressing makes the bytes identical
        anyway).  ``aux`` arrays (e.g. a tuned row-reorder permutation)
        ride along in the artifact — see
        :func:`repro.store.artifact.save_artifact`.  Returns the
        published path.
        """
        final = self.path_for(fingerprint)
        if not overwrite and final.exists():
            return final
        tmp = self.tmp_dir / (f"{fingerprint}.{os.getpid()}"
                              f".{next(_TMP_SEQ)}.part")
        try:
            save_artifact(tmp, plan, fingerprint=fingerprint, aux=aux)
            os.replace(tmp, final)
        finally:
            tmp.unlink(missing_ok=True)  # failed before the rename
        self._writes.inc()
        self._bytes.set(self.nbytes())
        if self.capacity_bytes is not None:
            self.gc()
        return final

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def peek_header(self, fingerprint: str) -> dict | None:
        """Header of a published artifact, or ``None`` when absent.

        A malformed header quarantines the artifact (and returns
        ``None``) just like a failed load.
        """
        path = self.path_for(fingerprint)
        with self._lock:  # a gc/quarantine unlink cannot race the read
            if not path.exists():
                return None
            try:
                header, _ = read_header(path)
                return header
            except FileNotFoundError:
                return None  # cross-process removal: plain absence
            except ArtifactError as exc:
                self._load_failures.inc()
                self.quarantine(fingerprint, str(exc))
                return None

    def load(self, fingerprint: str, *, mmap: bool = True,
             gate: bool = True):
        """Load *fingerprint*'s plan; ``(plan, modeled_load_s)`` or ``None``.

        ``None`` means the caller should build from CSR: the artifact
        is absent (a miss), modeled slower to read than to rebuild
        (skipped, with ``gate=True``), or corrupt (quarantined).  A
        successful load verifies every CRC, counts a hit, charges the
        wall-clock into ``store.load_seconds_total`` and touches the
        file for LRU garbage collection.
        """
        path = self.path_for(fingerprint)
        t0 = time.perf_counter()
        with self._lock:  # a gc/quarantine unlink cannot race the read
            if not path.exists():
                self._misses.inc()
                return None
            try:
                if gate:
                    header, _ = read_header(path)
                    if not load_beats_rebuild(header, self.device):
                        self._load_skipped.inc()
                        return None
                plan, header = load_artifact(path, mmap=mmap, verify=True,
                                             fingerprint=fingerprint)
                if any(n.startswith("delta.") for n in header.get("aux") or ()):
                    # Versioned artifact: the payload is the *base*
                    # version — replay the retained aux.delta.* records
                    # to reach the current one.  Patching mutates value
                    # slabs, so a memmapped (read-only) payload is
                    # re-read as private copies first.
                    if mmap:
                        plan, header = load_artifact(path, mmap=False,
                                                     verify=True,
                                                     fingerprint=fingerprint)
                    plan, replay_s = self._replay_deltas(plan, read_aux(path))
                else:
                    replay_s = 0.0
            except FileNotFoundError:
                # removed by another *process* (in-process removers hold
                # this lock): absence, not corruption — rebuild from CSR
                self._misses.inc()
                return None
            except ArtifactError as exc:
                self._load_failures.inc()
                self.quarantine(fingerprint, str(exc))
                return None
            try:
                os.utime(path)
            except OSError:  # pragma: no cover — racing another process
                pass
        self._hits.inc()
        self._load_seconds.inc(time.perf_counter() - t0)
        return plan, modeled_load_time(header, self.device) + replay_s

    def load_aux(self, fingerprint: str) -> dict | None:
        """Auxiliary arrays of a published artifact, or ``None``.

        ``None`` means absent; an empty dict means the artifact exists
        but carries no aux records (e.g. written before aux support).
        Corruption quarantines the artifact like a failed load.
        """
        path = self.path_for(fingerprint)
        with self._lock:  # a gc/quarantine unlink cannot race the read
            if not path.exists():
                return None
            try:
                return read_aux(path)
            except FileNotFoundError:
                return None  # cross-process removal: plain absence
            except ArtifactError as exc:
                self._load_failures.inc()
                self.quarantine(fingerprint, str(exc))
                return None

    def verify(self, fingerprint: str) -> dict:
        """Full CRC verification of one artifact (raises on failure)."""
        return verify_artifact(self.path_for(fingerprint))

    # ------------------------------------------------------------------
    # delta records (repro.core.delta) — versioned artifacts
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_delta_aux(aux: dict) -> tuple[int, list[int]]:
        """``(base_version, sorted retained delta versions)``."""
        base = (int(np.asarray(aux["delta.base"])[0])
                if "delta.base" in aux else 0)
        versions = sorted({int(n.split(".")[1]) for n in aux
                           if n.startswith("delta.") and n != "delta.base"})
        return base, versions

    @staticmethod
    def _delta_arrays(aux: dict, version: int) -> dict:
        prefix = f"delta.{version}."
        return {n[len(prefix):]: arr for n, arr in aux.items()
                if n.startswith(prefix)}

    def delta_state(self, fingerprint: str) -> tuple[int, list[int]] | None:
        """``(base_version, retained delta versions)`` of a published
        artifact, or ``None`` when absent/corrupt."""
        aux = self.load_aux(fingerprint)
        if aux is None:
            return None
        return self._parse_delta_aux(aux)

    def current_version(self, fingerprint: str) -> int | None:
        """Version :meth:`load` reconstructs — the newest retained
        delta, or the payload's base version."""
        state = self.delta_state(fingerprint)
        if state is None:
            return None
        base, versions = state
        return versions[-1] if versions else base

    def _replay_deltas(self, plan, aux: dict, *,
                       upto: int | None = None):
        """Apply retained delta records to a freshly loaded payload.

        Returns ``(plan_at_version, modeled_patch_seconds)``.
        """
        from ..core.delta import apply_update, delta_from_arrays
        from ..gpu.device import get_device

        base, versions = self._parse_delta_aux(aux)
        dev = get_device(self.device)
        patch_s = 0.0
        for v in versions:
            if upto is not None and v > upto:
                break
            delta = delta_from_arrays(self._delta_arrays(aux, v))
            plan, info = apply_update(plan, delta)
            patch_s += info.seconds(dev)
            self._delta_replayed.inc()
        return plan, patch_s

    def put_delta(self, fingerprint: str, version: int, delta, *,
                  seed_plan=None, retain: int = DELTA_RETAIN) -> Path | None:
        """Append a CRC-checked ``aux.delta.{version}.*`` record to
        *fingerprint*'s artifact.

        The plan payload stays at its base version; :meth:`load`
        replays the retained deltas to reconstruct the current one.
        When more than *retain* deltas accumulate, the oldest are
        folded forward into the payload and their records dropped (gc
        of superseded versions — the remaining window is what
        :meth:`rollback` can reach).  With ``seed_plan`` an absent
        artifact is first published at ``version - 1``.  Returns the
        artifact path, or ``None`` when absent and no seed was given.
        """
        from ..core.delta import (apply_update, consolidate_plan,
                                  delta_from_arrays, delta_to_arrays)

        record = {f"delta.{version}.{n}": np.asarray(a)
                  for n, a in delta_to_arrays(delta).items()}
        with self._lock:
            path = self.path_for(fingerprint)
            if not path.exists():
                if seed_plan is None:
                    return None
                aux = {"delta.base": np.array([version - 1], dtype=np.int64)}
                aux.update(record)
                self._delta_writes.inc()
                return self.put(fingerprint, consolidate_plan(seed_plan),
                                aux=aux)
            try:
                plan, _ = load_artifact(path, mmap=False, verify=True,
                                        fingerprint=fingerprint)
                aux = read_aux(path)
            except ArtifactError as exc:
                self._load_failures.inc()
                self.quarantine(fingerprint, str(exc))
                return None
            base, versions = self._parse_delta_aux(aux)
            current = versions[-1] if versions else base
            check(version == current + 1,
                  f"non-contiguous delta version {version} (current {current})")
            aux.update(record)
            versions.append(version)
            while len(versions) > max(0, int(retain)):
                v0 = versions.pop(0)
                folded = delta_from_arrays(self._delta_arrays(aux, v0))
                plan, _ = apply_update(plan, folded)
                for n in list(aux):
                    if n.startswith(f"delta.{v0}."):
                        del aux[n]
                base = v0
                self._delta_folded.inc()
            aux["delta.base"] = np.array([base], dtype=np.int64)
            self._delta_writes.inc()
            return self.put(fingerprint, consolidate_plan(plan), aux=aux)

    def rollback(self, fingerprint: str, version: int):
        """Truncate the artifact back to *version* and return
        ``(plan_at_version, modeled_seconds)``, or ``None`` when the
        artifact is absent or *version* is outside the retained window
        (older than the folded base or newer than the last delta)."""
        with self._lock:
            path = self.path_for(fingerprint)
            if not path.exists():
                return None
            try:
                plan, header = load_artifact(path, mmap=False, verify=True,
                                             fingerprint=fingerprint)
                aux = read_aux(path)
            except ArtifactError as exc:
                self._load_failures.inc()
                self.quarantine(fingerprint, str(exc))
                return None
            base, versions = self._parse_delta_aux(aux)
            if not (base <= version <= (versions[-1] if versions else base)):
                return None
            kept = {n: a for n, a in aux.items()
                    if not n.startswith("delta.")
                    or n == "delta.base"
                    or int(n.split(".")[1]) <= version}
            if len(kept) != len(aux):
                # Rewrite first, while the payload is still pristine —
                # replay below mutates it in place.
                self.put(fingerprint, plan, aux=kept)
            plan, patch_s = self._replay_deltas(plan, kept, upto=version)
        self._rollbacks.inc()
        return plan, patch_s

    # ------------------------------------------------------------------
    # hygiene
    # ------------------------------------------------------------------
    def quarantine(self, fingerprint: str, reason: str = "") -> None:
        """Move a bad artifact aside (with a ``.reason`` sidecar)."""
        path = self.path_for(fingerprint)
        with self._lock:
            if not path.exists():
                return
            dest = self.quarantine_dir / path.name
            try:
                os.replace(path, dest)
            except FileNotFoundError:  # pragma: no cover — other process
                return
            (self.quarantine_dir / f"{fingerprint}.reason").write_text(
                (reason or "unspecified") + "\n")
        self._quarantined.inc()
        self._bytes.set(self.nbytes())

    def delete(self, fingerprint: str) -> bool:
        path = self.path_for(fingerprint)
        with self._lock:
            if not path.exists():
                return False
            path.unlink()
        self._bytes.set(self.nbytes())
        return True

    def gc(self, capacity_bytes: int | None = None) -> list[str]:
        """Remove least-recently-used artifacts until under capacity.

        Returns removed fingerprints (oldest first).  Uses the bound
        :attr:`capacity_bytes` when no explicit cap is given; no-op
        when neither is set.
        """
        cap = capacity_bytes if capacity_bytes is not None \
            else self.capacity_bytes
        if cap is None:
            return []
        removed = []
        with self._lock:
            entries = []
            for p in self.plans_dir.glob(f"*{EXTENSION}"):
                try:
                    st = p.stat()
                except OSError:  # removed by another process mid-scan
                    continue
                entries.append((max(st.st_atime, st.st_mtime),
                                st.st_size, p))
            total = sum(size for _, size, _ in entries)
            for _, size, p in sorted(entries, key=lambda e: (e[0], e[2])):
                if total <= cap:
                    break
                total -= size
                try:
                    p.unlink()
                except OSError:  # pragma: no cover — already gone
                    continue
                removed.append(p.stem)
        if removed:
            self._gc_removed.inc(len(removed))
            self._bytes.set(self.nbytes())
        return removed

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Counter snapshot (mirrors the ``store.*`` instruments)."""
        return {
            "plans": len(self),
            "bytes": self.nbytes(),
            "hits": int(self._hits.value),
            "misses": int(self._misses.value),
            "writes": int(self._writes.value),
            "load_failures": int(self._load_failures.value),
            "load_skipped": int(self._load_skipped.value),
            "quarantined": int(self._quarantined.value),
            "gc_removed": int(self._gc_removed.value),
            "load_seconds": float(self._load_seconds.value),
            "delta_writes": int(self._delta_writes.value),
            "delta_replayed": int(self._delta_replayed.value),
            "delta_folded": int(self._delta_folded.value),
            "rollbacks": int(self._rollbacks.value),
        }
