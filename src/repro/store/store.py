"""`PlanStore` — a content-addressed directory of plan artifacts.

Layout under the store root::

    plans/<fingerprint>.daspz       published artifacts
    quarantine/<fingerprint>.daspz  artifacts that failed to load
    quarantine/<fingerprint>.reason one-line failure description
    tmp/                            in-flight writes (crash debris only)

Publishing is atomic: :meth:`PlanStore.put` serializes into ``tmp/``
(with an fsync) and ``os.replace``-renames into ``plans/`` — readers
never observe a half-written artifact, and concurrent writers of the
same fingerprint are idempotent (last rename wins, both files are
identical by content addressing).

Loads are fail-safe: any :class:`~repro.store.artifact.ArtifactError`
(corruption, truncation, version mismatch, fingerprint mismatch) moves
the offending file to ``quarantine/``, counts it, and returns a miss —
the caller rebuilds from CSR.  A load is also skipped (counted as
``store.load_skipped_total``) when the cost model says rebuilding is
cheaper than reading the artifact back (:mod:`repro.store.tier`).

Counters flow through :mod:`repro.obs` (``store.*``), so a store bound
to a server's handle reports in the same ``ServerStats`` facade as the
plan cache it backs.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from pathlib import Path

import numpy as np

from .._util import check
from .artifact import (
    EXTENSION,
    ArtifactError,
    load_artifact,
    read_header,
    save_artifact,
    verify_artifact,
)
from .tier import load_beats_rebuild, modeled_load_time


def fingerprint_csr(csr) -> str:
    """Canonical content fingerprint of a CSR matrix.

    Hashes the shape, dtype and the raw ``indptr`` / ``indices`` /
    ``data`` payloads (blake2b-128): two matrices share a fingerprint
    iff they are bytewise-identical CSR structures.  This is the one
    key the plan cache, the artifact store and request routing all
    agree on; :func:`repro.serve.matrix_fingerprint` is an alias.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(repr((tuple(csr.shape), str(csr.data.dtype))).encode())
    h.update(np.ascontiguousarray(csr.indptr).tobytes())
    h.update(np.ascontiguousarray(csr.indices).tobytes())
    h.update(np.ascontiguousarray(csr.data).tobytes())
    return h.hexdigest()


class PlanStore:
    """Durable, capacity-bounded artifact store keyed by fingerprint.

    Parameters
    ----------
    root:
        Store directory (created if missing, including parents).
    capacity_bytes:
        Optional cap on published artifact bytes; exceeding it after a
        :meth:`put` garbage-collects least-recently-used artifacts
        (by file access/modify time — loads touch their artifact).
    device:
        Device whose cost model gates load-vs-rebuild (default A100).
    obs:
        :class:`repro.obs.Obs` handle for the ``store.*`` counters;
        a fresh private one by default.  Components that adopt a
        pre-built store call :meth:`bind` to repoint the counters at
        their shared handle.
    """

    def __init__(self, root, *, capacity_bytes: int | None = None,
                 device="A100", obs=None) -> None:
        self.root = Path(root)
        self.plans_dir = self.root / "plans"
        self.quarantine_dir = self.root / "quarantine"
        self.tmp_dir = self.root / "tmp"
        for d in (self.plans_dir, self.quarantine_dir, self.tmp_dir):
            d.mkdir(parents=True, exist_ok=True)
        if capacity_bytes is not None:
            check(capacity_bytes >= 0, "capacity_bytes must be non-negative")
        self.capacity_bytes = capacity_bytes
        self.device = device
        self._lock = threading.Lock()
        self._seq = 0
        self.bind(obs)

    def bind(self, obs) -> None:
        """(Re)point the ``store.*`` instruments at *obs*' registry."""
        from ..obs import Obs

        if obs is None or not obs.enabled:
            obs = Obs()
        self.obs = obs
        self._hits = obs.counter("store.hits_total")
        self._misses = obs.counter("store.misses_total")
        self._writes = obs.counter("store.writes_total")
        self._load_failures = obs.counter("store.load_failures_total")
        self._load_skipped = obs.counter("store.load_skipped_total")
        self._quarantined = obs.counter("store.quarantined_total")
        self._gc_removed = obs.counter("store.gc_removed_total")
        self._load_seconds = obs.counter("store.load_seconds_total")
        self._bytes = obs.gauge("store.bytes")
        self._bytes.set(self.nbytes())

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        return self.plans_dir / f"{fingerprint}{EXTENSION}"

    def contains(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    __contains__ = contains

    def fingerprints(self) -> list[str]:
        """Published fingerprints, sorted."""
        return sorted(p.stem for p in self.plans_dir.glob(f"*{EXTENSION}"))

    def __len__(self) -> int:
        return len(self.fingerprints())

    def nbytes(self) -> int:
        """Total published artifact bytes."""
        return sum(p.stat().st_size
                   for p in self.plans_dir.glob(f"*{EXTENSION}"))

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, fingerprint: str, plan, *, overwrite: bool = True) -> Path:
        """Atomically publish *plan* under *fingerprint*.

        Serializes to ``tmp/`` then renames into place; a reader never
        sees a partial file.  With ``overwrite=False`` an existing
        artifact is kept (content addressing makes the bytes identical
        anyway).  Returns the published path.
        """
        final = self.path_for(fingerprint)
        if not overwrite and final.exists():
            return final
        with self._lock:
            self._seq += 1
            tmp = self.tmp_dir / (f"{fingerprint}.{os.getpid()}"
                                  f".{self._seq}.part")
        try:
            save_artifact(tmp, plan, fingerprint=fingerprint)
            os.replace(tmp, final)
        finally:
            if tmp.exists():  # failed before the rename
                tmp.unlink()
        self._writes.inc()
        self._bytes.set(self.nbytes())
        if self.capacity_bytes is not None:
            self.gc()
        return final

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def peek_header(self, fingerprint: str) -> dict | None:
        """Header of a published artifact, or ``None`` when absent.

        A malformed header quarantines the artifact (and returns
        ``None``) just like a failed load.
        """
        path = self.path_for(fingerprint)
        if not path.exists():
            return None
        try:
            header, _ = read_header(path)
            return header
        except ArtifactError as exc:
            self._load_failures.inc()
            self.quarantine(fingerprint, str(exc))
            return None

    def load(self, fingerprint: str, *, mmap: bool = True,
             gate: bool = True):
        """Load *fingerprint*'s plan; ``(plan, modeled_load_s)`` or ``None``.

        ``None`` means the caller should build from CSR: the artifact
        is absent (a miss), modeled slower to read than to rebuild
        (skipped, with ``gate=True``), or corrupt (quarantined).  A
        successful load verifies every CRC, counts a hit, charges the
        wall-clock into ``store.load_seconds_total`` and touches the
        file for LRU garbage collection.
        """
        path = self.path_for(fingerprint)
        if not path.exists():
            self._misses.inc()
            return None
        t0 = time.perf_counter()
        try:
            if gate:
                header, _ = read_header(path)
                if not load_beats_rebuild(header, self.device):
                    self._load_skipped.inc()
                    return None
            plan, header = load_artifact(path, mmap=mmap, verify=True,
                                         fingerprint=fingerprint)
        except ArtifactError as exc:
            self._load_failures.inc()
            self.quarantine(fingerprint, str(exc))
            return None
        self._hits.inc()
        self._load_seconds.inc(time.perf_counter() - t0)
        try:
            os.utime(path)
        except OSError:  # pragma: no cover — racing GC/quarantine
            pass
        return plan, modeled_load_time(header, self.device)

    def verify(self, fingerprint: str) -> dict:
        """Full CRC verification of one artifact (raises on failure)."""
        return verify_artifact(self.path_for(fingerprint))

    # ------------------------------------------------------------------
    # hygiene
    # ------------------------------------------------------------------
    def quarantine(self, fingerprint: str, reason: str = "") -> None:
        """Move a bad artifact aside (with a ``.reason`` sidecar)."""
        path = self.path_for(fingerprint)
        with self._lock:
            if not path.exists():
                return
            dest = self.quarantine_dir / path.name
            os.replace(path, dest)
            (self.quarantine_dir / f"{fingerprint}.reason").write_text(
                (reason or "unspecified") + "\n")
        self._quarantined.inc()
        self._bytes.set(self.nbytes())

    def delete(self, fingerprint: str) -> bool:
        path = self.path_for(fingerprint)
        with self._lock:
            if not path.exists():
                return False
            path.unlink()
        self._bytes.set(self.nbytes())
        return True

    def gc(self, capacity_bytes: int | None = None) -> list[str]:
        """Remove least-recently-used artifacts until under capacity.

        Returns removed fingerprints (oldest first).  Uses the bound
        :attr:`capacity_bytes` when no explicit cap is given; no-op
        when neither is set.
        """
        cap = capacity_bytes if capacity_bytes is not None \
            else self.capacity_bytes
        if cap is None:
            return []
        removed = []
        with self._lock:
            entries = []
            for p in self.plans_dir.glob(f"*{EXTENSION}"):
                st = p.stat()
                entries.append((max(st.st_atime, st.st_mtime), p))
            total = sum(p.stat().st_size for _, p in entries)
            for _, p in sorted(entries):
                if total <= cap:
                    break
                total -= p.stat().st_size
                p.unlink()
                removed.append(p.stem)
        if removed:
            self._gc_removed.inc(len(removed))
            self._bytes.set(self.nbytes())
        return removed

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Counter snapshot (mirrors the ``store.*`` instruments)."""
        return {
            "plans": len(self),
            "bytes": self.nbytes(),
            "hits": int(self._hits.value),
            "misses": int(self._misses.value),
            "writes": int(self._writes.value),
            "load_failures": int(self._load_failures.value),
            "load_skipped": int(self._load_skipped.value),
            "quarantined": int(self._quarantined.value),
            "gc_removed": int(self._gc_removed.value),
            "load_seconds": float(self._load_seconds.value),
        }
