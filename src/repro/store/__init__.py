"""`repro.store` — versioned on-disk DASP plan artifacts.

DASP's economics (paper Figure 13) hinge on amortizing the CSR -> DASP
conversion over many SpMVs, but amortization used to end at process
exit.  This package makes plans durable:

* :func:`save_artifact` / :func:`load_artifact` — the ``.daspz``
  format: a JSON header (format version, dtype, MMA geometry, shard
  layout, per-array CRC32) plus 64-byte-aligned raw payloads that load
  through ``np.memmap`` for near-zero-copy warm starts, for both
  :class:`~repro.core.DASPMatrix` and composite
  :class:`~repro.shard.ShardedPlan` plans;
* :class:`PlanStore` — a content-addressed directory of artifacts
  (atomic write-then-rename publishing, quarantine of corrupt files,
  capacity-bounded LRU garbage collection) keyed by
  :func:`fingerprint_csr`, the canonical CSR content hash;
* :mod:`~repro.store.tier` — the load-vs-rebuild cost gate: an
  artifact is only read back when the model says streaming it from
  disk beats re-running preprocessing;
* :class:`ArtifactError` — the one typed failure for corrupt /
  truncated / version-mismatched artifacts; the serving layer
  quarantines and rebuilds, never crashes.

``PlanRegistry(store=...)`` turns the RAM plan cache into the first
tier of a two-tier hierarchy over this package (spill-on-evict,
load-before-build, load-through for plans over the RAM budget), and
``SpMVServer(store=..., warm_start=True)`` preloads registered
matrices' plans at registration time.
"""

from .artifact import (
    ALIGN,
    AUX_PREFIX,
    EXTENSION,
    FORMAT_VERSION,
    MAGIC,
    ArtifactError,
    load_artifact,
    read_aux,
    read_header,
    save_artifact,
    verify_artifact,
)
from .store import DELTA_RETAIN, PlanStore, fingerprint_csr
from .tier import (
    DISK_BW,
    OPEN_OVERHEAD_S,
    load_beats_rebuild,
    modeled_load_time,
    modeled_rebuild_time,
)

__all__ = [
    "ALIGN",
    "AUX_PREFIX",
    "ArtifactError",
    "DELTA_RETAIN",
    "DISK_BW",
    "EXTENSION",
    "FORMAT_VERSION",
    "MAGIC",
    "OPEN_OVERHEAD_S",
    "PlanStore",
    "fingerprint_csr",
    "load_artifact",
    "load_beats_rebuild",
    "modeled_load_time",
    "modeled_rebuild_time",
    "read_aux",
    "read_header",
    "save_artifact",
    "verify_artifact",
]
