"""The ``.daspz`` artifact — one DASP plan, versioned and checksummed.

Layout (all integers little-endian)::

    [ 0: 8]  magic  b"DASPZ001"  (on-disk layout revision)
    [ 8:16]  uint64 header length H
    [16:16+H] JSON header (utf-8)
    ...      zero padding to a 64-byte boundary
    payload  raw array bytes, each array 64-byte aligned

The JSON header carries the semantic format version, the plan kind
(``dasp`` or ``sharded``), the owning fingerprint, the full ``meta``
dict from :meth:`~repro.core.DASPMatrix.to_arrays`, a ``modeled``
section (scalar inputs of the load-vs-rebuild cost comparison,
see :mod:`repro.store.tier`) and one record per array: name, dtype,
shape, payload-relative offset, byte length and CRC32.  Offsets are
relative to the payload section, so the header can be grown without a
fixpoint computation.  ``aux.``-prefixed records carry auxiliary
arrays (e.g. the large-k SpMM row-reorder permutation) that plan
reconstruction never touches — see :func:`save_artifact` /
:func:`read_aux`.

Payloads are loadable through ``np.memmap`` (the default): a warm start
maps the file and the plan's arrays are read-only views into the page
cache — near-zero-copy.  ``verify=True`` streams every array through
CRC32 first, which both detects corruption (a single flipped payload
byte fails the load with :class:`ArtifactError`) and faults the pages
in sequentially.

Every malformed-artifact condition — bad magic, unsupported version,
undecodable header, truncated payload, checksum mismatch, fingerprint
mismatch — raises the same typed :class:`ArtifactError`, which the
store quarantines and the serving layer absorbs by rebuilding.
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

from .._util import ReproError

#: On-disk layout revision (magic prefix).  Bumped only when the binary
#: framing itself changes; semantic changes bump FORMAT_VERSION.
MAGIC = b"DASPZ001"

#: Semantic artifact version; readers reject anything else.
FORMAT_VERSION = 1

#: Array payload alignment (bytes) — memmap-friendly for every dtype.
ALIGN = 64

#: Canonical artifact file extension.
EXTENSION = ".daspz"


class ArtifactError(ReproError):
    """A plan artifact is corrupt, truncated or incompatible.

    Deliberately *not* transient: retrying the same bytes cannot
    succeed.  The store quarantines the file and the registry falls
    back to a fresh build.
    """

    transient = False


def _align(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def _crc32(arr: np.ndarray) -> int:
    a = np.ascontiguousarray(arr)
    return zlib.crc32(a.view(np.uint8).reshape(-1)) & 0xFFFFFFFF


def _modeled_scalars(plan) -> dict:
    """Scalar inputs of the load-vs-rebuild comparison (tier.py).

    Stored in the header so the decision needs no payload read: rows /
    nnz / stored elements feed the host-byte accounting of
    :func:`repro.core.preprocess.dasp_preprocess_events`, ``sort_keys``
    the medium-row sort term, ``allocations`` the per-plan device
    allocations (4 per band).
    """
    shards = getattr(plan, "shards", None)
    plans = [s.dasp for s in shards] if shards is not None else [plan]
    return {
        "rows": int(plan.shape[0]),
        "nnz": int(plan.nnz),
        "stored_elements": int(sum(p.stored_elements for p in plans)),
        "sort_keys": int(sum(p.classification.n_medium for p in plans)),
        "allocations": 4 * len(plans),
    }


#: Record-name prefix for auxiliary (non-plan) arrays.  Plan
#: reconstructors fetch their arrays by explicit name, so ``aux.*``
#: records ride along without a format-version bump and old readers
#: simply never look at them.
AUX_PREFIX = "aux."


def save_artifact(path, plan, *, fingerprint: str | None = None,
                  aux: dict | None = None) -> dict:
    """Write *plan* (a ``DASPMatrix`` or ``ShardedPlan``) to *path*.

    ``aux`` maps names to extra arrays stored alongside the plan —
    e.g. the large-k SpMM row-reorder permutation — under
    ``aux.``-prefixed records (CRC-checked like plan arrays, listed in
    the header's ``aux`` key, invisible to plan reconstruction and to
    the load-vs-rebuild cost model's ``packed_bytes``).

    Returns the header dict that was written.  The write is plain (not
    atomic) — :meth:`repro.store.PlanStore.put` layers write-then-rename
    publishing on top.
    """
    meta, arrays = plan.to_arrays()
    for name in aux or ():
        key = AUX_PREFIX + name
        if key in arrays:  # pragma: no cover — plan arrays never use aux.
            raise ArtifactError(f"aux name collides with plan array {key!r}")
        arrays[key] = np.asarray((aux or {})[name])
    records = []
    offset = 0
    packed_bytes = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        arrays[name] = arr
        offset = _align(offset)
        records.append({
            "name": name,
            "dtype": arr.dtype.str,
            "shape": [int(d) for d in arr.shape],
            "offset": offset,
            "nbytes": int(arr.nbytes),
            "crc32": _crc32(arr),
        })
        offset += arr.nbytes
        if not name.endswith(("csr.indptr", "csr.indices", "csr.data")) \
                and name != "row_starts" \
                and not name.startswith(AUX_PREFIX):
            packed_bytes += arr.nbytes
    header = {
        "magic": MAGIC.decode(),
        "version": FORMAT_VERSION,
        "kind": meta["kind"],
        "fingerprint": fingerprint,
        "dtype": meta["dtype"],
        "meta": meta,
        "aux": sorted(aux) if aux else [],
        "modeled": dict(_modeled_scalars(plan),
                        payload_bytes=int(offset),
                        packed_bytes=int(packed_bytes)),
        "arrays": records,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode()
    payload_start = _align(len(MAGIC) + 8 + len(header_bytes))
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(len(header_bytes).to_bytes(8, "little"))
        f.write(header_bytes)
        f.write(b"\x00" * (payload_start - f.tell()))
        for rec, arr in zip(records, arrays.values()):
            f.write(b"\x00" * (payload_start + rec["offset"] - f.tell()))
            f.write(np.ascontiguousarray(arr).view(np.uint8).reshape(-1)
                    .tobytes())
        f.flush()
        os.fsync(f.fileno())
    return header


def read_header(path) -> tuple[dict, int]:
    """Parse and validate an artifact's header without touching payload.

    Returns ``(header, payload_start)``.  Raises :class:`ArtifactError`
    on any framing problem: bad magic, short file, unsupported version,
    undecodable or incomplete JSON.
    """
    try:
        with open(path, "rb") as f:
            prefix = f.read(len(MAGIC) + 8)
            if len(prefix) < len(MAGIC) + 8:
                raise ArtifactError(f"{path}: too short to be an artifact")
            if prefix[:len(MAGIC)] != MAGIC:
                raise ArtifactError(
                    f"{path}: bad magic {prefix[:len(MAGIC)]!r} "
                    f"(not a {EXTENSION} artifact)")
            hlen = int.from_bytes(prefix[len(MAGIC):], "little")
            if hlen > 64 * 1024 * 1024:
                raise ArtifactError(f"{path}: implausible header length {hlen}")
            header_bytes = f.read(hlen)
    except OSError as exc:
        raise ArtifactError(f"{path}: unreadable artifact: {exc}") from exc
    if len(header_bytes) < hlen:
        raise ArtifactError(f"{path}: truncated header "
                            f"({len(header_bytes)} of {hlen} bytes)")
    try:
        header = json.loads(header_bytes.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"{path}: undecodable header: {exc}") from exc
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"{path}: unsupported artifact version {version!r} "
            f"(this reader handles {FORMAT_VERSION})")
    for key in ("kind", "meta", "arrays", "modeled"):
        if key not in header:
            raise ArtifactError(f"{path}: header missing {key!r}")
    return header, _align(len(MAGIC) + 8 + hlen)


def _read_arrays(path, header: dict, payload_start: int, *,
                 mmap: bool, verify: bool) -> dict:
    payload_bytes = int(header["modeled"]["payload_bytes"])
    try:
        actual = os.path.getsize(path)
    except OSError as exc:
        raise ArtifactError(f"{path}: unreadable artifact: {exc}") from exc
    if actual < payload_start + payload_bytes:
        raise ArtifactError(
            f"{path}: truncated payload ({actual} bytes on disk, "
            f"{payload_start + payload_bytes} expected)")
    if mmap and payload_bytes:
        buf = np.memmap(path, dtype=np.uint8, mode="r")
    else:
        with open(path, "rb") as f:
            buf = np.frombuffer(bytearray(f.read()), dtype=np.uint8)
    arrays = {}
    for rec in header["arrays"]:
        start = payload_start + int(rec["offset"])
        nbytes = int(rec["nbytes"])
        raw = buf[start:start + nbytes]
        if verify and (zlib.crc32(raw) & 0xFFFFFFFF) != int(rec["crc32"]):
            raise ArtifactError(
                f"{path}: checksum mismatch in array {rec['name']!r}")
        try:
            arr = raw.view(np.dtype(rec["dtype"])).reshape(rec["shape"])
        except (TypeError, ValueError) as exc:
            raise ArtifactError(
                f"{path}: malformed array record {rec['name']!r}: "
                f"{exc}") from exc
        arrays[rec["name"]] = arr
    return arrays


def load_artifact(path, *, mmap: bool = True, verify: bool = True,
                  fingerprint: str | None = None):
    """Load a plan from *path*; returns ``(plan, header)``.

    ``mmap=True`` maps the payload so arrays are read-only views into
    the page cache; ``verify=True`` CRC-checks every array first.
    ``fingerprint`` (when given) must match the header's — a mismatch
    means the file was renamed or tampered with and raises
    :class:`ArtifactError` like any other corruption.
    """
    header, payload_start = read_header(path)
    if fingerprint is not None and header.get("fingerprint") != fingerprint:
        raise ArtifactError(
            f"{path}: fingerprint mismatch (header says "
            f"{str(header.get('fingerprint'))[:12]!r}, expected "
            f"{fingerprint[:12]!r})")
    arrays = _read_arrays(path, header, payload_start,
                          mmap=mmap, verify=verify)
    kind = header["kind"]
    try:
        if kind == "dasp":
            from ..core.format import DASPMatrix

            return DASPMatrix.from_arrays(header["meta"], arrays), header
        if kind == "sharded":
            from ..shard.plan import ShardedPlan

            return ShardedPlan.from_arrays(header["meta"], arrays), header
    except ArtifactError:
        raise
    except Exception as exc:  # noqa: BLE001 — malformed meta, bad shapes...
        raise ArtifactError(
            f"{path}: cannot reconstruct {kind!r} plan: {exc}") from exc
    raise ArtifactError(f"{path}: unknown plan kind {kind!r}")


def read_aux(path, *, mmap: bool = True, verify: bool = True) -> dict:
    """Read an artifact's auxiliary arrays (``aux.*`` records).

    Returns ``{name: array}`` with the ``aux.`` prefix stripped —
    empty when the artifact carries none (including artifacts written
    before aux support existed).  Raises :class:`ArtifactError` on the
    same framing/corruption conditions as :func:`load_artifact`.
    """
    header, payload_start = read_header(path)
    sub = dict(header,
               arrays=[r for r in header["arrays"]
                       if r["name"].startswith(AUX_PREFIX)])
    if not sub["arrays"]:
        return {}
    arrays = _read_arrays(path, sub, payload_start, mmap=mmap, verify=verify)
    return {name[len(AUX_PREFIX):]: arr for name, arr in arrays.items()}


def verify_artifact(path) -> dict:
    """Full integrity check (header + every CRC); returns the header.

    Raises :class:`ArtifactError` on the first problem found — the
    backing check of ``repro plan verify``.
    """
    header, payload_start = read_header(path)
    _read_arrays(path, header, payload_start, mmap=True, verify=True)
    return header
