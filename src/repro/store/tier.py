"""Load-vs-rebuild cost comparison for the disk plan tier.

A warm start only pays off if reading the packed arrays back is cheaper
than re-running the CSR -> DASP conversion.  Both sides are modeled
with the same machinery as the rest of the repo:

* **rebuild** — :func:`repro.gpu.cost_model.estimate_preprocess_time`
  over the exact :class:`~repro.gpu.events.PreprocessEvents` scalars
  the original build reported (rows / nnz / stored elements / medium
  sort keys / allocations), which the artifact header carries in its
  ``modeled`` section — no payload read needed to decide;
* **load** — streaming the payload at NVMe sequential bandwidth
  (CRC verify and page-cache fill happen in the same pass), plus one
  pinned-copy upload of the packed device arrays at the host bandwidth
  the preprocess model already uses, plus a fixed open/parse/mmap
  overhead.

The asymmetry that makes warm starts win is the paper's Figure 13 one:
preprocessing is dominated by the medium-row sort and multiple passes
over the CSR payload, while a load is one sequential read of the same
bytes.
"""

from __future__ import annotations

import numpy as np

from ..gpu.cost_model import HOST_BW, estimate_preprocess_time
from ..gpu.device import get_device
from ..gpu.events import PreprocessEvents

#: Modeled sequential read bandwidth (bytes/s) for artifact loads.  The
#: target node class (A100/H800 servers, DGX-style) stripes several
#: PCIe-4 NVMe drives for exactly this weight/plan warm-start pattern;
#: 20 GB/s is a conservative striped-read figure (a single Gen4 drive
#: sustains ~7 GB/s, DGX A100 ships four in RAID 0).
DISK_BW = 20e9

#: Fixed cost of opening an artifact: header parse + mmap setup.
OPEN_OVERHEAD_S = 20e-6


def modeled_load_time(header: dict, device="A100") -> float:
    """Modeled seconds to warm-start from an artifact *header*."""
    md = header["modeled"]
    t = OPEN_OVERHEAD_S
    t += float(md["payload_bytes"]) / DISK_BW     # stream + CRC the payload
    t += float(md["packed_bytes"]) / HOST_BW      # upload packed arrays
    return float(t)


def modeled_rebuild_time(header: dict, device="A100") -> float:
    """Modeled seconds to rebuild the plan from CSR instead.

    Reconstructs the :class:`PreprocessEvents` of the original build
    from the header's ``modeled`` scalars — the same accounting as
    :func:`repro.core.preprocess.dasp_preprocess_events`, summed over
    shards for composite plans.
    """
    md = header["modeled"]
    value_bytes = np.dtype(header["dtype"]).itemsize
    entry_bytes = value_bytes + 4  # value + column index
    host = (float(md["rows"]) + 1) * 8 * 2
    host += float(md["nnz"]) * entry_bytes
    host += 2 * float(md["stored_elements"]) * entry_bytes
    events = PreprocessEvents(
        device_bytes=0.0,
        host_bytes=host,
        sort_keys=float(md["sort_keys"]),
        kernel_launches=0,
        allocations=int(md["allocations"]),
    )
    return float(estimate_preprocess_time(events, get_device(device)))


def load_beats_rebuild(header: dict, device="A100") -> bool:
    """Whether warm-starting from this artifact is modeled cheaper than
    rebuilding — the gate :class:`repro.store.PlanStore` applies before
    committing to a full load."""
    return modeled_load_time(header, device) < modeled_rebuild_time(
        header, device)
