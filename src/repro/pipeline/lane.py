"""The modeled prefetch lane — a second clock beside the device.

Real accelerators overlap host→device copies and plan construction
with kernel execution through independent copy/DMA engines.  The
virtual-time driver models that as a :class:`PrefetchLane`: plan
loads/builds are charged to the lane's clock, batches waiting on them
park until the lane finishes, and the device clock keeps running
batches whose plans are already resident.  The lane never touches an
RNG stream and is only consulted when the pipeline is enabled, so
pipeline-off runs are bit-identical to the pre-pipeline driver.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import check

__all__ = ["PipelineConfig", "PrefetchLane"]


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the async execution layer.

    Attributes
    ----------
    lanes:
        Concurrent prefetch engines (modeled copy/build lanes).  One
        lane already overlaps a cold plan with warm traffic; more lanes
        let several cold matrices load concurrently.
    double_buffer:
        Price shard bands and SpMM column tiles with the
        double-buffered overlap schedule
        (:func:`repro.core.overlap_schedule`) instead of the serial
        sum.  Execution numerics are identical either way.
    """

    lanes: int = 1
    double_buffer: bool = True

    def __post_init__(self) -> None:
        check(self.lanes >= 1, "lanes must be >= 1")


class PrefetchLane:
    """Modeled asynchronous plan-acquisition engine (virtual time).

    ``schedule(now, cost_s)`` books *cost_s* modeled seconds on the
    least-loaded lane starting no earlier than *now* and returns the
    completion time.  The caller performs the actual Python-side
    load/build immediately (the simulation is single-threaded); the
    lane only decides *when* the plan becomes usable on the virtual
    clock.
    """

    def __init__(self, *, obs=None, lanes: int = 1) -> None:
        from ..obs import get_obs

        check(lanes >= 1, "lanes must be >= 1")
        self.obs = obs if obs is not None else get_obs()
        self._free = [0.0] * int(lanes)
        self._prefetches = self.obs.counter("pipeline.prefetch_total")
        self._seconds = self.obs.counter("pipeline.prefetch_seconds_total")

    @property
    def busy_until(self) -> float:
        """When the last lane goes idle (drain/report hook)."""
        return max(self._free)

    def schedule(self, now: float, cost_s: float, *,
                 kind: str = "load") -> float:
        """Book one acquisition; returns its modeled completion time."""
        i = min(range(len(self._free)), key=self._free.__getitem__)
        start = max(self._free[i], float(now))
        ready = start + float(cost_s)
        self._free[i] = ready
        self._prefetches.inc()
        self._seconds.inc(float(cost_s))
        self.obs.counter("pipeline.prefetch_kind_total",
                         {"kind": kind}).inc()
        return ready
