"""Threaded plan prefetcher — the real server's async acquisition path.

A small background executor feeding :class:`repro.serve.PlanRegistry`.
Correctness rides entirely on the registry's per-fingerprint
single-flight: a prefetch racing a demand miss (or another prefetch)
on the same fingerprint does one load/build, not two, and ``load_only``
lookups report an in-flight acquisition as *pending* instead of
blocking behind it — so the prefetcher can sweep a whole catalog
without ever stalling on the one matrix a request thread is already
building.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor

from .._util import ReproError, check

__all__ = ["PlanPrefetcher"]


class PlanPrefetcher:
    """Background plan warming for the threaded :class:`SpMVServer`.

    Parameters
    ----------
    registry:
        The server's :class:`~repro.serve.PlanRegistry` (prefetches go
        through its single-flight, exactly like demand misses).
    workers:
        Prefetch threads.  One is usually right: prefetching competes
        with demand builds for the GIL and the disk.
    obs:
        Metrics handle; defaults to the registry's.
    """

    def __init__(self, registry, *, workers: int = 1, obs=None) -> None:
        check(workers >= 1, "workers must be >= 1")
        self.registry = registry
        self.obs = obs if obs is not None else registry.obs
        self._pool = ThreadPoolExecutor(
            max_workers=int(workers), thread_name_prefix="plan-prefetch")
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self._closed = False
        self._prefetches = self.obs.counter("pipeline.prefetch_total")
        self._seconds = self.obs.counter("pipeline.prefetch_seconds_total")
        self._loads = self.obs.counter("pipeline.warm_load_total")
        self._builds = self.obs.counter("pipeline.warm_build_total")
        self._failed = self.obs.counter("pipeline.warm_failed_total")

    # ------------------------------------------------------------------
    def prefetch(self, fingerprint: str, csr=None, *,
                 builder=None) -> Future:
        """Warm *fingerprint* in the background; returns a future.

        Tries the disk tier first (non-blocking against any in-flight
        acquisition); with *csr* given, a store miss falls through to a
        background build.  The future resolves to ``"ram"`` /
        ``"store"`` / ``"built"`` / ``"pending"`` / ``"absent"``;
        failures resolve (not raise) to ``"failed"`` — a speculative
        warm must never take the server down.
        """
        with self._lock:
            if self._closed:
                f: Future = Future()
                f.set_result("absent")
                return f
            got = self._inflight.get(fingerprint)
            if got is not None and not got.done():
                return got
            fut = self._pool.submit(self._run, fingerprint, csr, builder)
            self._inflight[fingerprint] = fut
            return fut

    def _run(self, fingerprint: str, csr, builder) -> str:
        self._prefetches.inc()
        try:
            plan, source, load_s = self.registry.get_ex(
                None, fingerprint=fingerprint, load_only=True)
            if source == "store":
                self._loads.inc()
                self._seconds.inc(float(load_s))
            if source in ("ram", "store", "pending") or csr is None:
                return source
            # absent from RAM and store: speculative build (through the
            # same single-flight as a demand miss).
            plan, source, _ = self.registry.get_ex(
                csr, fingerprint=fingerprint, builder=builder)
            if source == "built":
                self._builds.inc()
            return source
        except ReproError:
            self._failed.inc()
            return "failed"

    def drain(self, timeout: float | None = None) -> None:
        """Block until every submitted prefetch has finished."""
        with self._lock:
            futures = list(self._inflight.values())
        for f in futures:
            try:
                f.result(timeout=timeout)
            except Exception:  # noqa: BLE001 — drain never raises
                pass

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True)
