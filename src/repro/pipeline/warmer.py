"""Speculative plan warmer — popularity-driven pre-building/preloading.

Zipf-shaped matrix popularity is the serving workloads' standing
assumption; the warmer turns it into a speculation policy.  It watches
per-matrix request counters in the run's :class:`repro.obs` registry,
fits the Zipf exponent from the observed rank/frequency curve
(:func:`zipf_fit`), and nominates registered-but-not-resident matrices
for warming most-popular-first — matrices nobody has asked for yet are
ranked by registration order behind the observed ones, which is
exactly the tail a Zipf fit predicts they occupy.

The warmer only *nominates*; the driver/server executes each warm on
its prefetch machinery, choosing load vs rebuild with the store's
modeled gate (:func:`warm_action` wraps
:func:`repro.store.tier.load_beats_rebuild`) and loading persisted
``aux.`` reorder permutations alongside the plan.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .._util import check

__all__ = ["SpeculativeWarmer", "WarmerConfig", "warm_action", "zipf_fit"]


@dataclass(frozen=True)
class WarmerConfig:
    """Speculation policy knobs.

    Attributes
    ----------
    min_observed:
        Requests to observe before speculating at all — the estimate
        over fewer samples is noise.
    min_share:
        Minimum predicted popularity share a matrix must have to be
        worth warming (0.0 warms the whole catalog eventually).
    max_per_tick:
        Warm at most this many matrices per tick, bounding the burst
        of lane work one tick can book.
    prior_s:
        Zipf exponent assumed until (and blended with nothing beyond)
        the observed counts support a fit.
    """

    min_observed: int = 16
    min_share: float = 0.0
    max_per_tick: int = 2
    prior_s: float = 1.1

    def __post_init__(self) -> None:
        check(self.min_observed >= 0, "min_observed must be >= 0")
        check(0.0 <= self.min_share < 1.0, "min_share must be in [0, 1)")
        check(self.max_per_tick >= 1, "max_per_tick must be >= 1")
        check(self.prior_s > 0.0, "prior_s must be > 0")


def zipf_fit(counts, *, default: float = 1.1) -> float:
    """Least-squares Zipf exponent from descending rank counts.

    Fits ``log c_r = a - s log r`` over the ranks with nonzero counts;
    fewer than two informative ranks (no slope to estimate) returns
    *default*.  The estimate is clamped to ``[0, 10]`` — popularity
    flatter than uniform or steeper than any serving workload only
    destabilizes the share predictions downstream.
    """
    c = np.asarray([x for x in counts if x > 0], dtype=np.float64)
    if c.size < 2:
        return float(default)
    r = np.log(np.arange(1, c.size + 1, dtype=np.float64))
    lc = np.log(c)
    denom = float(((r - r.mean()) ** 2).sum())
    if denom <= 0.0:
        return float(default)
    slope = float(((r - r.mean()) * (lc - lc.mean())).sum() / denom)
    return float(min(max(-slope, 0.0), 10.0))


def warm_action(store, fingerprint: str, device) -> str:
    """``"load"`` or ``"build"`` — the modeled load-vs-rebuild gate.

    Loads win when the store holds the artifact and its header prices
    the load cheaper than a rebuild; everything else (no store, absent
    or corrupt artifact, rebuild-is-cheaper) builds from CSR.
    """
    if store is None:
        return "build"
    header = store.peek_header(fingerprint)
    if header is None:
        return "build"
    from ..store.tier import load_beats_rebuild

    return "load" if load_beats_rebuild(header, device) else "build"


class SpeculativeWarmer:
    """Popularity-driven warm nominations over a registered catalog.

    The per-matrix request counts live in the run's obs registry
    (``pipeline.warmer.observed_total{matrix=...}``) — the warmer
    *watches* counters the serving path increments, it does not keep a
    private tally that could drift from the reported metrics.
    """

    def __init__(self, cfg: WarmerConfig | None = None, *,
                 obs=None) -> None:
        from ..obs import get_obs

        self.cfg = cfg if cfg is not None else WarmerConfig()
        self.obs = obs if obs is not None else get_obs()
        self._catalog: OrderedDict[str, None] = OrderedDict()
        self._dispatched: set[str] = set()
        self._observed = self.obs.counter("pipeline.warmer.requests_total")

    # ------------------------------------------------------------------
    def register(self, fingerprint: str) -> None:
        """Add one matrix to the catalog (registration order = prior
        popularity rank for matrices with no traffic yet)."""
        self._catalog.setdefault(fingerprint, None)

    def observe(self, fingerprint: str) -> None:
        """Count one request for *fingerprint* (obs-registry backed)."""
        self._observed.inc()
        self.obs.counter("pipeline.warmer.observed_total",
                         {"matrix": fingerprint}).inc()

    def count(self, fingerprint: str) -> int:
        return int(self.obs.counter("pipeline.warmer.observed_total",
                                    {"matrix": fingerprint}).value)

    @property
    def total_observed(self) -> int:
        return int(self._observed.value)

    # ------------------------------------------------------------------
    def estimate(self) -> list[tuple[str, float]]:
        """``(fingerprint, predicted_share)`` over the whole catalog.

        Observed matrices rank by count (descending, registration order
        breaking ties); unobserved ones follow in registration order.
        Shares come from the fitted Zipf curve evaluated at each rank —
        which is what lets the warmer price matrices *before their
        first request*.
        """
        fps = list(self._catalog)
        counts = {fp: self.count(fp) for fp in fps}
        order = sorted(range(len(fps)), key=lambda i: (-counts[fps[i]], i))
        s = zipf_fit(sorted(counts.values(), reverse=True),
                     default=self.cfg.prior_s)
        ranks = np.arange(1, len(fps) + 1, dtype=np.float64)
        shares = ranks ** -s
        shares /= shares.sum()
        return [(fps[i], float(shares[r])) for r, i in enumerate(order)]

    def due(self, *, resident) -> list[str]:
        """Nominate up to ``max_per_tick`` matrices to warm now.

        ``resident(fp)`` tells the warmer which matrices already have a
        usable (or in-flight) plan.  Nominations are remembered, so a
        matrix is handed out once; :meth:`reset` forgets that (e.g.
        after an eviction storm or a rebalance moved plans away).
        """
        if self.total_observed < self.cfg.min_observed:
            return []
        out = []
        for fp, share in self.estimate():
            if len(out) >= self.cfg.max_per_tick:
                break
            if fp in self._dispatched or resident(fp):
                continue
            if share < self.cfg.min_share:
                continue
            self._dispatched.add(fp)
            out.append(fp)
        return out

    def reset(self, fingerprint: str | None = None) -> None:
        """Forget dispatch state (one matrix, or all of it)."""
        if fingerprint is None:
            self._dispatched.clear()
        else:
            self._dispatched.discard(fingerprint)
