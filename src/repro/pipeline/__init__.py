"""`repro.pipeline` — asynchronous pipelined execution + speculative
plan warming.

DASP prices preprocessing (classify/pack) separately from kernel
execution, yet the serving stack historically ran plan load/build
synchronously inside the request path: a cold matrix stalled the whole
modeled device for its full rebuild (or artifact load) before its
batch — and every batch queued behind it — could run.  AsyncSparse
(arXiv 2604.17834) makes the case for decoupling dependent stages on
asynchronous hardware; this package applies that to the serving stack
in three pieces:

:class:`PrefetchLane`
    A modeled asynchronous copy/build engine next to the device.  In
    the virtual-time driver, a cold matrix's plan acquisition is
    charged to the lane clock instead of the device clock; the batch
    *parks* until the lane finishes while the device keeps executing
    batches of already-resident matrices.  Everything stays
    deterministic — the lane is just a second clock.

:class:`SpeculativeWarmer`
    Watches the Zipf popularity estimate fitted from ``repro.obs``
    request counters and warms registered-but-not-resident matrices
    *before their first request*, most-popular-first.  Each warm uses
    the store's modeled load-vs-rebuild gate
    (:func:`repro.store.tier.load_beats_rebuild`) to choose between
    loading the ``.daspz`` artifact and rebuilding from CSR, and loads
    persisted ``aux.`` reorder permutations alongside the plan so the
    large-k SpMM tier never re-derives a decision already made.

:class:`PlanPrefetcher`
    The real-threaded counterpart for :class:`repro.serve.SpMVServer`:
    a small background executor feeding :class:`~repro.serve.
    PlanRegistry` through the same per-fingerprint single-flight as
    the synchronous path (``load_only`` lookups never block behind an
    in-flight build — they simply report it as pending).

Double-buffering of shard bands and SpMM column tiles lives with the
kernels (:func:`repro.core.overlap_schedule`,
:func:`repro.core.spmm_tiled_overlap_cost`,
``sharded_batch_cost(double_buffer=True)``); the pipeline config only
switches it on.  Pipeline-off serving is bit-identical to the
pre-pipeline stack, and pipeline-on changes *when* work is charged,
never what is computed — results stay bitwise equal.
"""

from .lane import PipelineConfig, PrefetchLane
from .prefetch import PlanPrefetcher
from .warmer import WarmerConfig, SpeculativeWarmer, warm_action, zipf_fit

__all__ = [
    "PipelineConfig",
    "PlanPrefetcher",
    "PrefetchLane",
    "SpeculativeWarmer",
    "WarmerConfig",
    "warm_action",
    "zipf_fit",
]
