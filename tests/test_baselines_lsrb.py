"""Tests for the LSRB-CSR baseline."""

import numpy as np
import pytest

from repro.baselines import LSRBMethod, build_lsrb
from repro.formats import CSRMatrix
from repro.gpu import A100
from tests.conftest import random_csr


class TestSegments:
    def test_segment_count(self, rng):
        csr = random_csr(100, 200, rng)
        plan = build_lsrb(csr, segment=64)
        assert plan.nsegments == -(-csr.nnz // 64)

    def test_first_row_correct(self, rng):
        csr = random_csr(60, 100, rng)
        plan = build_lsrb(csr, segment=32)
        for s in range(plan.nsegments):
            start = s * 32
            row = int(np.searchsorted(csr.indptr, start, side="right")) - 1
            assert plan.seg_first_row[s] == row

    def test_seg_rows_positive(self, rng):
        plan = build_lsrb(random_csr(60, 100, rng))
        assert np.all(plan.seg_rows >= 1)

    def test_boundary_atomics_zero_when_aligned(self, rng):
        """Rows of exactly segment length never straddle segments."""
        m, seg = 10, 64
        indptr = np.arange(m + 1, dtype=np.int64) * seg
        indices = np.tile(np.arange(seg, dtype=np.int64), m)
        csr = CSRMatrix((m, 600), indptr, indices, np.ones(m * seg))
        plan = build_lsrb(csr, segment=seg)
        assert plan.boundary_atomics == 0

    def test_boundary_atomics_counted(self, rng):
        """One giant row spanning many segments pays one atomic each."""
        csr = random_csr(1, 4000, rng,
                         row_len_sampler=lambda r, m: np.full(m, 1000))
        plan = build_lsrb(csr, segment=64)
        assert plan.boundary_atomics == plan.nsegments - 1

    def test_empty_matrix(self):
        plan = build_lsrb(CSRMatrix.empty((4, 4)))
        assert plan.nsegments == 0


class TestKernel:
    def test_matches_reference(self, profiled_matrix, rng):
        method = LSRBMethod()
        x = rng.standard_normal(profiled_matrix.shape[1])
        y = method.run(method.prepare(profiled_matrix), x)
        assert np.allclose(y, profiled_matrix.matvec(x), rtol=1e-11)

    def test_small_segment_size(self, rng):
        csr = random_csr(40, 60, rng)
        method = LSRBMethod(segment=8)
        x = rng.standard_normal(60)
        assert np.allclose(method.run(method.prepare(csr), x),
                           csr.matvec(x), rtol=1e-11)

    def test_empty(self):
        method = LSRBMethod()
        y = method.run(method.prepare(CSRMatrix.empty((3, 3))), np.ones(3))
        assert np.array_equal(y, np.zeros(3))


class TestEvents:
    def test_no_fp16(self):
        assert not LSRBMethod().supports(np.float16)

    def test_atomics_scale_with_rows_touched(self, rng):
        many_rows = random_csr(2000, 100, rng,
                               row_len_sampler=lambda r, m: np.full(m, 2))
        few_rows = random_csr(8, 100, rng,
                              row_len_sampler=lambda r, m: np.full(m, 500))
        method = LSRBMethod()
        ev_many = method.events(method.prepare(many_rows), A100)
        ev_few = method.events(method.prepare(few_rows), A100)
        assert ev_many.atomic_count > ev_few.atomic_count

    def test_poor_coalescing_modeled(self, rng):
        method = LSRBMethod()
        ev = method.events(method.prepare(random_csr(40, 60, rng)), A100)
        assert ev.mem_efficiency < 0.5

    def test_preprocess_cheap(self, rng):
        """LSRB's design goal is low conversion overhead."""
        csr = random_csr(40, 60, rng)
        method = LSRBMethod()
        pe = method.preprocess_events(method.prepare(csr))
        assert pe.device_bytes < csr.nnz * 12
