"""Tests for the DASP SpMM extension (multi-RHS products)."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.core import DASPMatrix, dasp_spmm, mma_utilization, spmm_events
from repro.gpu import A100, estimate_time
from tests.conftest import ROW_PROFILES, random_csr


def reference_spmm(csr, X):
    return np.stack([csr.matvec(X[:, j]) for j in range(X.shape[1])], axis=1)


class TestCorrectness:
    @pytest.mark.parametrize("profile", sorted(ROW_PROFILES))
    def test_matches_reference_all_profiles(self, profile, rng):
        csr = random_csr(72, 500, rng, row_len_sampler=ROW_PROFILES[profile])
        X = rng.standard_normal((500, 4))
        Y = dasp_spmm(csr, X)
        assert np.allclose(Y, reference_spmm(csr, X), rtol=1e-10), profile

    @pytest.mark.parametrize("k", [1, 2, 3, 8, 16])
    def test_various_widths(self, rng, k):
        csr = random_csr(50, 200, rng)
        X = rng.standard_normal((200, k))
        assert np.allclose(dasp_spmm(csr, X), reference_spmm(csr, X),
                           rtol=1e-10)

    def test_k1_matches_spmv(self, rng):
        from repro.core import dasp_spmv

        csr = random_csr(50, 200, rng)
        x = rng.standard_normal(200)
        Y = dasp_spmm(csr, x[:, None])
        assert np.allclose(Y[:, 0], dasp_spmv(csr, x), rtol=1e-12)

    def test_accepts_prebuilt(self, rng):
        csr = random_csr(30, 60, rng)
        dasp = DASPMatrix.from_csr(csr)
        X = rng.standard_normal((60, 3))
        assert np.allclose(dasp_spmm(dasp, X), reference_spmm(csr, X))

    def test_empty_rows_zero(self, rng):
        csr = random_csr(40, 60, rng, empty_frac=0.5)
        X = rng.standard_normal((60, 3))
        Y = dasp_spmm(csr, X)
        assert np.all(Y[csr.row_lengths() == 0] == 0)

    def test_fp16_acc_fp32(self, rng):
        csr = random_csr(40, 60, rng, dtype=np.float16)
        X = rng.uniform(-1, 1, (60, 4)).astype(np.float16)
        Y = dasp_spmm(csr, X)
        assert Y.dtype == np.float32
        ref = np.stack([csr.matvec(X[:, j], accum_dtype=np.float32)
                        for j in range(4)], axis=1)
        assert np.allclose(Y, ref, rtol=2e-3, atol=1e-3)

    def test_cast_output(self, rng):
        csr = random_csr(10, 20, rng, dtype=np.float16)
        X = np.zeros((20, 2), dtype=np.float16)
        assert dasp_spmm(csr, X, cast_output=True).dtype == np.float16

    def test_rejects_1d(self, rng):
        csr = random_csr(10, 20, rng)
        with pytest.raises(ValidationError):
            dasp_spmm(csr, np.zeros(20))

    def test_rejects_wrong_rows(self, rng):
        csr = random_csr(10, 20, rng)
        with pytest.raises(ValidationError):
            dasp_spmm(csr, np.zeros((19, 2)))


class TestUtilization:
    def test_k1_near_one_eighth(self, rng):
        csr = random_csr(64, 400, rng,
                         row_len_sampler=lambda r, m: np.full(m, 64))
        dasp = DASPMatrix.from_csr(csr)
        u1 = mma_utilization(dasp, 1)
        assert 0.08 < u1 < 0.14  # 1/8 minus padding losses

    def test_k8_saturates(self, rng):
        csr = random_csr(64, 400, rng,
                         row_len_sampler=lambda r, m: np.full(m, 64))
        dasp = DASPMatrix.from_csr(csr)
        u8 = mma_utilization(dasp, 8)
        assert u8 > 0.8
        assert u8 == pytest.approx(8 * mma_utilization(dasp, 1))

    def test_k9_drops(self, rng):
        """k=9 needs a second MMA pass per block for one extra column."""
        csr = random_csr(64, 400, rng,
                         row_len_sampler=lambda r, m: np.full(m, 64))
        dasp = DASPMatrix.from_csr(csr)
        assert mma_utilization(dasp, 9) < mma_utilization(dasp, 8)


class TestEvents:
    def test_matrix_streamed_once(self, rng):
        csr = random_csr(60, 300, rng)
        dasp = DASPMatrix.from_csr(csr)
        ev1 = spmm_events(dasp, A100, 1)
        ev8 = spmm_events(dasp, A100, 8)
        assert ev8.bytes_val == ev1.bytes_val  # shared stream
        # row-major RHS block: gathers coalesce, scaling below naive 8x
        from repro.gpu import rhs_block_traffic_factor

        f = rhs_block_traffic_factor(csr, csr.data.dtype.itemsize, 8)
        assert 1.0 <= f <= 8.0
        assert ev8.bytes_x == pytest.approx(f * ev1.bytes_x)
        assert ev8.mma_count == ev1.mma_count  # k<=8 fits one pass

    def test_spmm_cheaper_than_k_spmv(self, rng):
        csr = random_csr(200, 1000, rng,
                         row_len_sampler=lambda r, m: r.integers(8, 60, m))
        dasp = DASPMatrix.from_csr(csr)
        k = 8
        t_spmm = estimate_time(spmm_events(dasp, A100, k), A100).total
        t_spmv = estimate_time(spmm_events(dasp, A100, 1), A100).total
        assert t_spmm < 0.7 * k * t_spmv

    def test_k_validation(self, rng):
        dasp = DASPMatrix.from_csr(random_csr(10, 20, rng))
        with pytest.raises(ValidationError):
            spmm_events(dasp, A100, 0)
