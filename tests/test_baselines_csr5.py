"""Tests for the CSR5 baseline."""

import numpy as np
import pytest

from repro.baselines import CSR5Method, build_csr5
from repro.gpu import A100
from tests.conftest import ROW_PROFILES, random_csr


class TestStructure:
    def test_tile_count(self, rng):
        csr = random_csr(100, 200, rng)
        plan = build_csr5(csr)
        assert plan.ntiles == -(-csr.nnz // (32 * 16))

    def test_transposed_storage_roundtrip(self, rng):
        """Un-transposing the tile storage must recover the CSR payload."""
        csr = random_csr(100, 200, rng)
        plan = build_csr5(csr)
        recovered = (plan.tile_val.reshape(plan.ntiles, plan.sigma, plan.omega)
                     .transpose(0, 2, 1).reshape(-1))[:csr.nnz]
        assert np.array_equal(recovered, csr.data)

    def test_bit_flags_count_nonempty_rows(self, rng):
        csr = random_csr(80, 200, rng, empty_frac=0.2)
        plan = build_csr5(csr)
        nonempty = int(np.count_nonzero(csr.row_lengths() > 0))
        assert int(plan.bit_flag.sum()) == nonempty

    def test_tile_ptr_rows(self, rng):
        csr = random_csr(60, 100, rng)
        plan = build_csr5(csr)
        for t in range(plan.ntiles):
            first_nnz = t * plan.tile_elems
            row = int(np.searchsorted(csr.indptr, first_nnz, side="right")) - 1
            assert plan.tile_ptr[t] == row

    def test_custom_omega_sigma(self, rng):
        csr = random_csr(50, 80, rng)
        plan = build_csr5(csr, omega=8, sigma=4)
        assert plan.tile_elems == 32

    def test_empty_matrix(self):
        from repro.formats import CSRMatrix

        plan = build_csr5(CSRMatrix.empty((5, 5)))
        assert plan.ntiles == 0


class TestKernel:
    def test_matches_reference(self, profiled_matrix, rng):
        method = CSR5Method()
        x = rng.standard_normal(profiled_matrix.shape[1])
        y = method.run(method.prepare(profiled_matrix), x)
        assert np.allclose(y, profiled_matrix.matvec(x), rtol=1e-11)

    def test_rows_spanning_tiles(self, rng):
        """A row longer than a whole tile exercises the carry path."""
        csr = random_csr(4, 3000, rng,
                         row_len_sampler=lambda r, m: np.full(m, 1000))
        method = CSR5Method()
        x = rng.standard_normal(3000)
        assert np.allclose(method.run(method.prepare(csr), x),
                           csr.matvec(x), rtol=1e-11)

    def test_empty_rows(self, rng):
        csr = random_csr(60, 100, rng, empty_frac=0.5)
        method = CSR5Method()
        x = rng.standard_normal(100)
        y = method.run(method.prepare(csr), x)
        assert np.allclose(y, csr.matvec(x), rtol=1e-11)
        assert np.all(y[csr.row_lengths() == 0] == 0)


class TestEventsAndPreprocess:
    def test_no_fp16(self):
        assert not CSR5Method().supports(np.float16)

    def test_bytes_include_tile_padding(self, rng):
        csr = random_csr(40, 100, rng)
        method = CSR5Method()
        plan = method.prepare(csr)
        ev = method.events(plan, A100)
        assert ev.bytes_val == plan.ntiles * plan.tile_elems * 8

    def test_balanced(self, rng):
        csr = random_csr(40, 100, rng,
                         row_len_sampler=lambda r, m: (r.pareto(1.2, m) * 5).astype(int) + 1)
        method = CSR5Method()
        ev = method.events(method.prepare(csr), A100)
        assert ev.imbalance == 1.0  # nnz splitting ignores row skew

    def test_preprocess_on_device(self, rng):
        csr = random_csr(40, 100, rng)
        method = CSR5Method()
        pe = method.preprocess_events(method.prepare(csr))
        assert pe.device_bytes > 0 and pe.host_bytes == 0
