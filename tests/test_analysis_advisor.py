"""Tests for the rule-based method advisor."""

import numpy as np
import pytest

from repro.analysis import advisor_accuracy, matrix_features, recommend
from repro.bench import run_comparison
from repro.matrices import suite_by_name, synthetic_collection
from tests.conftest import random_csr


class TestFeatures:
    def test_feature_keys(self, rng):
        f = matrix_features(random_csr(40, 40, rng))
        assert {"nnz", "rows", "mean_len", "gini", "blockiness",
                "row_short", "row_medium", "nnz_long"} <= set(f)

    def test_feature_values_sane(self, rng):
        f = matrix_features(random_csr(40, 40, rng))
        assert 0 <= f["gini"] <= 1
        assert 0 <= f["blockiness"] <= 1


class TestRecommend:
    def test_fp16_only_two_methods(self, rng):
        csr = random_csr(20, 20, rng, dtype=np.float16)
        rec = recommend(csr)
        assert set(rec.ranking) == {"DASP", "cuSPARSE-CSR"}

    def test_ranking_is_permutation(self, rng):
        rec = recommend(random_csr(40, 40, rng))
        assert sorted(rec.ranking) == sorted(
            ["DASP", "CSR5", "cuSPARSE-CSR", "cuSPARSE-BSR",
             "TileSpMV", "LSRB-CSR"])

    def test_lsrb_never_recommended_first(self, rng):
        for seed in range(5):
            csr = random_csr(50, 50, np.random.default_rng(seed))
            assert recommend(csr).best != "LSRB-CSR"

    def test_blocked_matrix_raises_bsr(self):
        csr = suite_by_name("cant").matrix()
        rec = recommend(csr)
        assert rec.ranking.index("cuSPARSE-BSR") <= 3

    def test_scattered_matrix_demotes_bsr(self):
        csr = suite_by_name("wiki-Talk").matrix()
        rec = recommend(csr)
        assert rec.ranking.index("cuSPARSE-BSR") >= 3

    def test_best_property(self, rng):
        rec = recommend(random_csr(30, 30, rng))
        assert rec.best == rec.ranking[0]


class TestAccuracy:
    def test_advisor_beats_chance(self):
        """Top-2 hit rate must clearly exceed random guessing (2/6)."""
        entries = synthetic_collection(24, seed=31, min_nnz=4000,
                                       max_nnz=60000)
        res = run_comparison(entries, device="A100", keep_matrices=True)
        acc = advisor_accuracy(res, top_k=2)
        assert acc > 0.55

    def test_top_six_is_always_right(self):
        entries = synthetic_collection(5, seed=8)
        res = run_comparison(entries, device="A100", keep_matrices=True)
        assert advisor_accuracy(res, top_k=6) == 1.0


class TestTranspose:
    def test_transpose_dense_equal(self, rng):
        csr = random_csr(20, 35, rng)
        assert np.allclose(csr.transpose().to_dense(), csr.to_dense().T)

    def test_double_transpose_identity(self, rng):
        csr = random_csr(20, 35, rng)
        assert np.allclose(csr.transpose().transpose().to_dense(),
                           csr.to_dense())

    def test_transpose_empty(self):
        from repro.formats import CSRMatrix

        t = CSRMatrix.empty((3, 7)).transpose()
        assert t.shape == (7, 3) and t.nnz == 0

    def test_transpose_sorted(self, rng):
        csr = random_csr(20, 35, rng)
        assert csr.transpose().has_sorted_indices()
