"""Tests for the `.daspz` artifact format and the `PlanStore`.

The contract under test: ``load(save(plan))`` is *bitwise* identical —
same packed arrays, same classification, same ``dasp_spmv`` output down
to the last ULP — for FP64 and FP16, empty-category matrices and
sharded composites; and every corruption mode (flipped payload byte,
truncation, bad magic, wrong version, fingerprint mismatch) raises the
one typed :class:`ArtifactError` instead of crashing or returning wrong
numbers.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DASPMatrix, dasp_spmv
from repro.formats import COOMatrix
from repro.serve import plan_nbytes
from repro.shard import ShardedPlan, build_sharded_plan
from repro.store import (
    MAGIC,
    ArtifactError,
    PlanStore,
    fingerprint_csr,
    load_artifact,
    read_header,
    save_artifact,
    verify_artifact,
)

from .conftest import ROW_PROFILES, random_csr


def _flip_payload_byte(path: Path) -> None:
    """Flip one byte inside the first checksummed payload array.

    (The very last file bytes can be CRC-free alignment padding, so a
    blind ``blob[-1]`` flip would not be a corruption at all.)"""
    header, payload_start = read_header(path)
    rec = next(r for r in header["arrays"] if r["nbytes"])
    blob = bytearray(path.read_bytes())
    blob[payload_start + int(rec["offset"])] ^= 0xFF
    path.write_bytes(bytes(blob))


def _assert_plans_bitwise_equal(a, b) -> None:
    inv_a = a.array_inventory(include_csr=True)
    inv_b = b.array_inventory(include_csr=True)
    assert list(inv_a) == list(inv_b)
    for name in inv_a:
        x, y = np.asarray(inv_a[name]), np.asarray(inv_b[name])
        assert x.dtype == y.dtype, name
        assert x.shape == y.shape, name
        assert np.array_equal(x, y), f"array {name} differs"


def _roundtrip(plan, tmp_path: Path, **save_kw):
    path = tmp_path / "plan.daspz"
    save_artifact(path, plan, **save_kw)
    loaded, header = load_artifact(path, fingerprint=save_kw.get("fingerprint"))
    return loaded, header, path


@pytest.mark.parametrize("dtype", [np.float64, np.float16])
@pytest.mark.parametrize("profile", sorted(ROW_PROFILES))
def test_roundtrip_bitwise_all_profiles(profile, dtype, tmp_path, rng):
    csr = random_csr(80, 600, rng, row_len_sampler=ROW_PROFILES[profile],
                     dtype=dtype)
    plan = DASPMatrix.from_csr(csr)
    loaded, header, _ = _roundtrip(plan, tmp_path)
    _assert_plans_bitwise_equal(plan, loaded)
    x = rng.uniform(-1, 1, csr.shape[1]).astype(dtype)
    assert np.array_equal(dasp_spmv(plan, x), dasp_spmv(loaded, x))
    # re-derived classification matches the original exactly
    for attr in ("long", "medium", "empty"):
        assert np.array_equal(getattr(plan.classification, attr),
                              getattr(loaded.classification, attr))
    for k in plan.classification.short:
        assert np.array_equal(plan.classification.short[k],
                              loaded.classification.short[k])


def test_roundtrip_empty_matrix(tmp_path, rng):
    csr = random_csr(16, 50, rng, row_len_sampler=lambda r, m: np.zeros(m, int))
    plan = DASPMatrix.from_csr(csr)
    loaded, _, _ = _roundtrip(plan, tmp_path)
    _assert_plans_bitwise_equal(plan, loaded)
    assert np.array_equal(dasp_spmv(plan, np.ones(50)),
                          dasp_spmv(loaded, np.ones(50)))


@pytest.mark.parametrize("shards", [2, 4])
def test_roundtrip_sharded_bitwise(shards, tmp_path, rng):
    csr = random_csr(120, 500, rng, row_len_sampler=ROW_PROFILES["mixed"])
    plan = build_sharded_plan(csr, shards)
    loaded, header, _ = _roundtrip(plan, tmp_path)
    assert isinstance(loaded, ShardedPlan)
    assert loaded.n_shards == plan.n_shards
    _assert_plans_bitwise_equal(plan, loaded)
    # the top-level CSR is reconstructed (not stored) — still bitwise
    for attr in ("indptr", "indices", "data"):
        assert np.array_equal(np.asarray(getattr(plan.csr, attr)),
                              np.asarray(getattr(loaded.csr, attr)))
    x = rng.uniform(-1, 1, csr.shape[1])
    for a, b in zip(plan.shards, loaded.shards):
        assert (a.row_start, a.row_end) == (b.row_start, b.row_end)
        assert np.array_equal(dasp_spmv(a.dasp, x), dasp_spmv(b.dasp, x))


def test_payload_bytes_matches_plan_nbytes(tmp_path, rng):
    """The artifact's size accounting is the include_csr inventory —
    the same figure `plan_nbytes(include_csr=True)` reports (modulo
    per-array 64-byte alignment padding)."""
    csr = random_csr(64, 400, rng, row_len_sampler=ROW_PROFILES["mixed"])
    plan = DASPMatrix.from_csr(csr)
    path = tmp_path / "p.daspz"
    header = save_artifact(path, plan)
    raw = plan_nbytes(plan, include_csr=True)
    payload = int(header["modeled"]["payload_bytes"])
    n_arrays = len(header["arrays"])
    assert raw <= payload <= raw + 64 * n_arrays
    assert int(header["modeled"]["packed_bytes"]) >= plan_nbytes(plan)
    assert sum(int(r["nbytes"]) for r in header["arrays"]) == raw


def test_plan_nbytes_include_csr_flag(rng):
    csr = random_csr(64, 400, rng)
    plan = DASPMatrix.from_csr(csr)
    csr_bytes = sum(np.asarray(getattr(csr, a)).nbytes
                    for a in ("indptr", "indices", "data"))
    assert plan_nbytes(plan, include_csr=True) \
        == plan_nbytes(plan) + csr_bytes


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**31 - 1),
       dtype=st.sampled_from([np.float64, np.float16]),
       m=st.integers(0, 48), n=st.integers(1, 400),
       shards=st.sampled_from([None, 2, 3]))
def test_property_roundtrip_spmv_bitwise(seed, dtype, m, n, shards):
    """load(save(plan)) gives bitwise-identical dasp_spmv results for
    arbitrary sparsity structures, dtypes and shard counts."""
    rng = np.random.default_rng(seed)
    lens = rng.integers(0, min(n, 300) + 1, m)
    rows = np.repeat(np.arange(m, dtype=np.int64), lens)
    cols = (np.concatenate([rng.choice(n, size=int(l), replace=False)
                            for l in lens if l])
            if lens.sum() else np.zeros(0, dtype=np.int64))
    vals = rng.uniform(-1, 1, rows.size).astype(dtype)
    csr = COOMatrix((m, n), rows, cols, vals).to_csr(sum_duplicates=False)
    plan = (build_sharded_plan(csr, shards) if shards and m
            else DASPMatrix.from_csr(csr))
    with tempfile.TemporaryDirectory() as td:
        path = Path(td) / "p.daspz"
        save_artifact(path, plan)
        loaded, _ = load_artifact(path)
        x = rng.uniform(-1, 1, n).astype(dtype)
        if isinstance(plan, ShardedPlan):
            y0 = np.concatenate([dasp_spmv(s.dasp, x) for s in plan.shards])
            y1 = np.concatenate([dasp_spmv(s.dasp, x)
                                 for s in loaded.shards])
        else:
            y0, y1 = dasp_spmv(plan, x), dasp_spmv(loaded, x)
        assert np.array_equal(y0, y1)
        _assert_plans_bitwise_equal(plan, loaded)


# ----------------------------------------------------------------------
# corruption modes
# ----------------------------------------------------------------------
@pytest.fixture
def saved(tmp_path, rng):
    csr = random_csr(64, 400, rng, row_len_sampler=ROW_PROFILES["mixed"])
    plan = DASPMatrix.from_csr(csr)
    fp = fingerprint_csr(csr)
    path = tmp_path / "p.daspz"
    header = save_artifact(path, plan, fingerprint=fp)
    return path, header, fp, plan, csr


def test_flipped_payload_byte_raises(saved):
    path, header, fp, _, _ = saved
    _, payload_start = read_header(path)
    blob = bytearray(path.read_bytes())
    # flip one byte in the middle of the payload section
    victim = payload_start + int(header["modeled"]["payload_bytes"]) // 2
    blob[victim] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(ArtifactError, match="checksum mismatch"):
        load_artifact(path)
    with pytest.raises(ArtifactError):
        verify_artifact(path)


def test_truncated_payload_raises(saved):
    path, _, _, _, _ = saved
    blob = path.read_bytes()
    path.write_bytes(blob[:len(blob) - 100])
    with pytest.raises(ArtifactError, match="truncated"):
        load_artifact(path)


def test_bad_magic_raises(saved):
    path, _, _, _, _ = saved
    blob = bytearray(path.read_bytes())
    blob[:len(MAGIC)] = b"NOTDASPZ"
    path.write_bytes(bytes(blob))
    with pytest.raises(ArtifactError, match="bad magic"):
        read_header(path)


def test_version_mismatch_raises(saved):
    path, _, _, _, _ = saved
    blob = path.read_bytes()
    # same-length in-place edit keeps the framing valid
    patched = blob.replace(json.dumps({"version": 1})[1:-1].encode(),
                           json.dumps({"version": 9})[1:-1].encode(), 1)
    assert patched != blob and len(patched) == len(blob)
    path.write_bytes(patched)
    with pytest.raises(ArtifactError, match="version"):
        read_header(path)


def test_fingerprint_mismatch_raises(saved):
    path, _, fp, _, _ = saved
    with pytest.raises(ArtifactError, match="fingerprint mismatch"):
        load_artifact(path, fingerprint="0" * 32)
    # and the right fingerprint still loads
    load_artifact(path, fingerprint=fp)


def test_empty_file_and_garbage_raise(tmp_path):
    empty = tmp_path / "empty.daspz"
    empty.write_bytes(b"")
    with pytest.raises(ArtifactError, match="too short"):
        read_header(empty)
    garbage = tmp_path / "garbage.daspz"
    garbage.write_bytes(MAGIC + (2**40).to_bytes(8, "little"))
    with pytest.raises(ArtifactError, match="implausible header"):
        read_header(garbage)


# ----------------------------------------------------------------------
# PlanStore
# ----------------------------------------------------------------------
def test_store_put_load_roundtrip(tmp_path, rng):
    csr = random_csr(64, 400, rng, row_len_sampler=ROW_PROFILES["medium"])
    plan = DASPMatrix.from_csr(csr)
    fp = fingerprint_csr(csr)
    store = PlanStore(tmp_path / "store")
    store.put(fp, plan)
    assert fp in store and len(store) == 1
    got = store.load(fp, gate=False)
    assert got is not None
    loaded, load_s = got
    assert load_s > 0
    _assert_plans_bitwise_equal(plan, loaded)
    snap = store.snapshot()
    assert snap["hits"] == 1 and snap["writes"] == 1
    # no in-flight debris after a successful publish
    assert list((tmp_path / "store" / "tmp").iterdir()) == []


def test_store_miss_and_quarantine(tmp_path, rng):
    csr = random_csr(48, 300, rng)
    plan = DASPMatrix.from_csr(csr)
    fp = fingerprint_csr(csr)
    store = PlanStore(tmp_path / "store")
    assert store.load("deadbeef" * 4) is None
    assert store.snapshot()["misses"] == 1
    store.put(fp, plan)
    # corrupt the published artifact
    _flip_payload_byte(store.path_for(fp))
    assert store.load(fp, gate=False) is None
    snap = store.snapshot()
    assert snap["load_failures"] == 1 and snap["quarantined"] == 1
    assert fp not in store
    qdir = tmp_path / "store" / "quarantine"
    assert (qdir / f"{fp}.daspz").exists()
    assert "checksum" in (qdir / f"{fp}.reason").read_text()


def test_store_gc_lru(tmp_path, rng):
    store = PlanStore(tmp_path / "store")
    fps = []
    for i in range(3):
        csr = random_csr(40, 200, np.random.default_rng(i))
        fp = fingerprint_csr(csr)
        store.put(fp, DASPMatrix.from_csr(csr))
        fps.append((fp, store.path_for(fp)))
    # make the first artifact the most recently used
    import os

    for i, (fp, path) in enumerate(fps):
        os.utime(path, (1000.0 + i, 1000.0 + i))
    os.utime(fps[0][1], (2000.0, 2000.0))
    keep_bytes = max(p.stat().st_size for _, p in fps)
    removed = store.gc(capacity_bytes=keep_bytes)
    assert fps[1][0] in removed and fps[2][0] in removed
    assert fps[0][0] in store
    assert store.snapshot()["gc_removed"] == 2


def test_store_verify_raises_on_corrupt(tmp_path, rng):
    csr = random_csr(32, 200, rng)
    fp = fingerprint_csr(csr)
    store = PlanStore(tmp_path / "store")
    store.put(fp, DASPMatrix.from_csr(csr))
    store.verify(fp)  # fine
    _flip_payload_byte(store.path_for(fp))
    with pytest.raises(ArtifactError):
        store.verify(fp)


def test_fingerprint_csr_matches_serve_alias(rng):
    from repro.serve import matrix_fingerprint

    csr = random_csr(32, 100, rng)
    assert fingerprint_csr(csr) == matrix_fingerprint(csr)


# ----------------------------------------------------------------------
# aux records (e.g. the SpMM row-reorder permutation)
# ----------------------------------------------------------------------
class TestAuxRecords:
    def test_roundtrip_bitwise(self, tmp_path, rng):
        from repro.store import read_aux

        csr = random_csr(48, 300, rng)
        plan = DASPMatrix.from_csr(csr)
        perm = rng.permutation(48).astype(np.int64)
        path = tmp_path / "p.daspz"
        save_artifact(path, plan, aux={"spmm.reorder_perm": perm,
                                       "weights": rng.uniform(size=7)})
        aux = read_aux(path)
        assert sorted(aux) == ["spmm.reorder_perm", "weights"]
        assert np.array_equal(aux["spmm.reorder_perm"], perm)
        assert aux["spmm.reorder_perm"].dtype == np.int64
        # the plan itself loads back unaffected by the extra records
        loaded, _ = load_artifact(path)
        x = rng.uniform(-1, 1, 300)
        assert np.array_equal(dasp_spmv(loaded, x), dasp_spmv(plan, x))

    def test_no_aux_gives_empty_dict(self, saved):
        from repro.store import read_aux

        path, header, _, _, _ = saved
        assert read_aux(path) == {}
        assert header["aux"] == []

    def test_aux_listed_in_header_not_packed_bytes(self, tmp_path, rng):
        csr = random_csr(32, 200, rng)
        plan = DASPMatrix.from_csr(csr)
        bare = save_artifact(tmp_path / "a.daspz", plan)
        big = rng.uniform(size=4096)
        with_aux = save_artifact(tmp_path / "b.daspz", plan,
                                 aux={"blob": big})
        assert with_aux["aux"] == ["blob"]
        # aux rides along but is not part of the load-vs-rebuild model
        assert (with_aux["modeled"]["packed_bytes"]
                == bare["modeled"]["packed_bytes"])

    def test_aux_covered_by_verify(self, tmp_path, rng):
        csr = random_csr(32, 200, rng)
        plan = DASPMatrix.from_csr(csr)
        path = tmp_path / "p.daspz"
        save_artifact(path, plan, aux={"perm": np.arange(32)})
        verify_artifact(path)  # fine
        _flip_payload_byte(path)
        with pytest.raises(ArtifactError):
            verify_artifact(path)

    def test_read_aux_without_mmap(self, tmp_path, rng):
        from repro.store import read_aux

        csr = random_csr(16, 80, rng)
        plan = DASPMatrix.from_csr(csr)
        path = tmp_path / "p.daspz"
        save_artifact(path, plan, aux={"perm": np.arange(16)})
        aux = read_aux(path, mmap=False)
        assert np.array_equal(aux["perm"], np.arange(16))

    def test_store_put_and_load_aux(self, tmp_path, rng):
        csr = random_csr(40, 250, rng)
        plan = DASPMatrix.from_csr(csr)
        fp = fingerprint_csr(csr)
        store = PlanStore(tmp_path / "store")
        perm = rng.permutation(40).astype(np.int64)
        store.put(fp, plan, aux={"spmm.reorder_perm": perm})
        aux = store.load_aux(fp)
        assert np.array_equal(aux["spmm.reorder_perm"], perm)
        # absent fingerprint -> None, artifact without aux -> {}
        assert store.load_aux("0" * 32) is None
        fp2 = fingerprint_csr(random_csr(8, 40, rng))
        store.put(fp2, DASPMatrix.from_csr(random_csr(8, 40, rng)))
        assert store.load_aux(fp2) == {}
