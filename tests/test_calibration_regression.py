"""Cost-model calibration regression guard.

The model constants in :mod:`repro.gpu.cost_model` were calibrated so the
paper's evaluation shapes hold (EXPERIMENTS.md).  This test pins those
shapes on a small fixed collection so an accidental constant change (or a
kernel event-accounting change) fails fast in the unit suite rather than
only in the slower benchmark run.
"""

import numpy as np
import pytest

from repro.analysis import speedup_summary
from repro.bench import run_comparison
from repro.matrices import synthetic_collection

#: Small deterministic sample; larger sweeps live in benchmarks/.
ENTRIES = synthetic_collection(30, seed=1234, min_nnz=5_000, max_nnz=120_000)


@pytest.fixture(scope="module")
def sweep():
    return run_comparison(ENTRIES, device="A100", dtype=np.float64)


@pytest.fixture(scope="module")
def sweep_fp16():
    return run_comparison(ENTRIES, device="A100", dtype=np.float16,
                          methods=("cuSPARSE-CSR", "DASP"))


class TestFp64Shapes:
    @pytest.mark.parametrize("base,lo,hi", [
        ("CSR5", 1.1, 2.6),
        ("TileSpMV", 1.0, 3.5),
        ("LSRB-CSR", 1.3, 4.0),
        ("cuSPARSE-BSR", 0.9, 3.5),
        ("cuSPARSE-CSR", 1.1, 2.4),
    ])
    def test_geomean_bands(self, sweep, base, lo, hi):
        s = speedup_summary(sweep.times["DASP"], sweep.times[base], base)
        assert lo < s.geomean < hi, s

    def test_dasp_wins_majority(self, sweep):
        dasp = sweep.times["DASP"]
        wins = sum(1 for n in dasp
                   if min(sweep.times[m][n] for m in sweep.times) == dasp[n])
        assert wins >= 0.5 * len(dasp)

    def test_lsrb_weakest_csr_baseline(self, sweep):
        dasp = sweep.times["DASP"]
        lsrb = speedup_summary(dasp, sweep.times["LSRB-CSR"], "l").geomean
        csr5 = speedup_summary(dasp, sweep.times["CSR5"], "c").geomean
        merge = speedup_summary(dasp, sweep.times["cuSPARSE-CSR"], "m").geomean
        assert lsrb > csr5 and lsrb > merge

    def test_all_times_positive_finite(self, sweep):
        for per_matrix in sweep.times.values():
            for t in per_matrix.values():
                assert np.isfinite(t) and t > 0


class TestFp16Shapes:
    def test_dasp_beats_cusparse(self, sweep_fp16):
        s = speedup_summary(sweep_fp16.times["DASP"],
                            sweep_fp16.times["cuSPARSE-CSR"], "c")
        assert s.geomean > 1.2
        assert s.win_rate > 0.7

    def test_fp16_faster_than_fp64(self, sweep, sweep_fp16):
        """Half the value bytes -> DASP FP16 beats DASP FP64 on most
        matrices (bandwidth-bound regime)."""
        faster = sum(
            sweep_fp16.times["DASP"][n] < sweep.times["DASP"][n]
            for n in sweep.times["DASP"])
        assert faster > 0.7 * len(sweep.times["DASP"])
