"""Tests for the long-rows planner and kernel (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import classify_rows
from repro.core.long_rows import (
    BLOCKS_PER_GROUP,
    build_long_rows,
    long_rows_events,
    run_long_rows,
)
from repro.gpu import A100
from repro.gpu.mma import FP64_M8N8K4, MmaUnit
from tests.conftest import random_csr


@pytest.fixture
def long_matrix(rng):
    return random_csr(24, 2000, rng,
                      row_len_sampler=lambda r, m: r.integers(257, 700, m))


def plan_for(csr):
    cls = classify_rows(csr)
    return build_long_rows(csr, cls.long, FP64_M8N8K4), cls


class TestBuild:
    def test_group_size_is_64(self, long_matrix):
        plan, _ = plan_for(long_matrix)
        assert plan.group_elems == 2 * 8 * 4

    def test_padding_to_group_multiple(self, long_matrix):
        plan, _ = plan_for(long_matrix)
        assert plan.padded_nnz % plan.group_elems == 0
        assert plan.padded_nnz == plan.n_groups * plan.group_elems

    def test_groups_per_row_ceil(self, long_matrix):
        plan, cls = plan_for(long_matrix)
        lens = long_matrix.row_lengths()[cls.long]
        expected = -(-lens // 64)
        assert np.array_equal(np.diff(plan.group_ptr), expected)

    def test_padding_ratio_bounded(self, long_matrix):
        plan, _ = plan_for(long_matrix)
        # worst case: row of 257 padded to 320
        assert 1.0 <= plan.padding_ratio < 64 / 257 + 1

    def test_padded_slots_zero(self, long_matrix):
        plan, cls = plan_for(long_matrix)
        lens = long_matrix.row_lengths()[cls.long]
        # walk rows: padded region of each row must be zero
        pos = 0
        for i, l in enumerate(lens):
            padded_len = int(np.diff(plan.group_ptr)[i]) * 64
            row_slice = plan.val[pos + l: pos + padded_len]
            assert np.all(row_slice == 0)
            pos += padded_len

    def test_empty_selection(self, rng):
        csr = random_csr(5, 10, rng)
        plan = build_long_rows(csr, np.zeros(0, np.int64), FP64_M8N8K4)
        assert plan.n_rows == 0 and plan.n_groups == 0
        assert plan.padding_ratio == 1.0

    def test_orig_nnz(self, long_matrix):
        plan, cls = plan_for(long_matrix)
        assert plan.orig_nnz == int(long_matrix.row_lengths()[cls.long].sum())


class TestKernel:
    def test_matches_reference(self, long_matrix, rng):
        plan, cls = plan_for(long_matrix)
        x = rng.standard_normal(2000)
        y = run_long_rows(plan, x)
        ref = long_matrix.matvec(x)
        assert np.allclose(y, ref[cls.long], rtol=1e-12)

    def test_exact_multiple_of_group(self, rng):
        csr = random_csr(4, 1000, rng,
                         row_len_sampler=lambda r, m: np.full(m, 320))
        plan, cls = plan_for(csr)
        x = rng.standard_normal(1000)
        assert np.allclose(run_long_rows(plan, x), csr.matvec(x)[cls.long])

    def test_counts_mma_issues(self, long_matrix, rng):
        plan, _ = plan_for(long_matrix)
        unit = MmaUnit(FP64_M8N8K4)
        run_long_rows(plan, np.zeros(2000), unit=unit)
        assert unit.issue_count == plan.n_groups * BLOCKS_PER_GROUP

    def test_empty_plan(self, rng):
        csr = random_csr(5, 10, rng)
        plan = build_long_rows(csr, np.zeros(0, np.int64), FP64_M8N8K4)
        assert run_long_rows(plan, np.zeros(10)).size == 0

    def test_fp16_accumulates_fp32(self, rng):
        from repro.gpu.mma import FP16_M8N8K4

        csr = random_csr(4, 600, rng, dtype=np.float16,
                         row_len_sampler=lambda r, m: np.full(m, 300))
        cls = classify_rows(csr)
        plan = build_long_rows(csr, cls.long, FP16_M8N8K4)
        y = run_long_rows(plan, np.ones(600, dtype=np.float16))
        assert y.dtype == np.float32
        ref = csr.matvec(np.ones(600, dtype=np.float16), accum_dtype=np.float32)
        assert np.allclose(y, ref[cls.long], rtol=1e-3)


class TestEvents:
    def test_two_kernels(self, long_matrix):
        plan, _ = plan_for(long_matrix)
        ev = long_rows_events(plan, A100, x_bytes=1e5)
        assert ev.kernel_launches == 2

    def test_bytes_include_padding(self, long_matrix):
        plan, _ = plan_for(long_matrix)
        ev = long_rows_events(plan, A100, x_bytes=0.0)
        assert ev.bytes_val == plan.padded_nnz * 8
        assert ev.bytes_idx == plan.padded_nnz * 4

    def test_mma_flops(self, long_matrix):
        plan, _ = plan_for(long_matrix)
        ev = long_rows_events(plan, A100, x_bytes=0.0)
        assert ev.flops_mma == plan.n_groups * 2 * 512

    def test_empty_plan_no_launches(self, rng):
        csr = random_csr(5, 10, rng)
        plan = build_long_rows(csr, np.zeros(0, np.int64), FP64_M8N8K4)
        assert long_rows_events(plan, A100, x_bytes=0).kernel_launches == 0
