"""Properties of the consistent-hash ring (repro.cluster.ring)."""

import subprocess
import sys

import pytest

from repro.cluster import DEFAULT_VNODES, HashRing, stable_hash


def keys(n, tag="key"):
    return [f"{tag}-{i}" for i in range(n)]


class TestStableHash:
    def test_deterministic_and_seeded(self):
        assert stable_hash(b"abc") == stable_hash(b"abc")
        assert stable_hash("abc") == stable_hash(b"abc")
        assert stable_hash(b"abc") != stable_hash(b"abd")
        assert stable_hash(b"abc", seed=1) != stable_hash(b"abc", seed=2)

    def test_64_bit_range(self):
        for k in keys(200):
            assert 0 <= stable_hash(k) < 2**64

    def test_cross_process_determinism(self):
        """The ring must NOT depend on Python's per-process randomized
        ``hash()`` — a fresh interpreter maps keys identically."""
        ks = keys(32)
        ring = HashRing(["r0", "r1", "r2"], seed=7)
        expect = [ring.lookup(k) for k in ks]
        code = (
            "from repro.cluster import HashRing\n"
            "ring = HashRing(['r0', 'r1', 'r2'], seed=7)\n"
            f"print([ring.lookup(k) for k in {ks!r}])\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            check=True)
        assert out.stdout.strip() == repr(expect)


class TestLookup:
    def test_membership_api(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.members() == ["a", "b"]
        ring.add("c")
        ring.add("c")  # idempotent
        assert len(ring) == 3
        ring.remove("c")
        ring.remove("c")
        assert len(ring) == 2

    def test_empty_ring_raises(self):
        with pytest.raises(Exception):
            HashRing().lookup("k")

    def test_single_member_owns_everything(self):
        ring = HashRing(["solo"])
        assert all(ring.lookup(k) == "solo" for k in keys(50))

    def test_preference_distinct_and_ordered(self):
        ring = HashRing(["a", "b", "c", "d"])
        for k in keys(40):
            prefs = ring.preference(k)
            assert prefs[0] == ring.lookup(k)
            assert sorted(prefs) == sorted(ring.members())
            assert len(set(prefs)) == len(prefs)

    def test_assignments_partition(self):
        ring = HashRing(["a", "b", "c"])
        ks = keys(90)
        groups = ring.assignments(ks)
        flat = [k for ks_ in groups.values() for k in ks_]
        assert sorted(flat) == sorted(ks)
        assert set(groups) == {"a", "b", "c"}


class TestUniformity:
    def test_balanced_within_15_percent(self):
        """At the default 128 vnodes, each of 4 replicas owns its fair
        share of a large key population to within +-15%."""
        n_keys, members = 20_000, ["r0", "r1", "r2", "r3"]
        assert DEFAULT_VNODES == 128
        ring = HashRing(members, seed=0)
        groups = ring.assignments(keys(n_keys))
        fair = n_keys / len(members)
        for rid in members:
            share = len(groups[rid])
            assert abs(share - fair) / fair < 0.15, \
                f"{rid} owns {share} of {n_keys} (fair {fair:.0f})"

    def test_more_vnodes_balance_better(self):
        ks = keys(20_000)

        def spread(vnodes):
            ring = HashRing(["r0", "r1", "r2", "r3"], vnodes=vnodes)
            sizes = [len(v) for v in ring.assignments(ks).values()]
            return (max(sizes) - min(sizes)) / (len(ks) / 4)

        assert spread(128) < spread(4)


class TestMinimalDisruption:
    def test_add_moves_about_one_nth(self):
        """Growing N -> N+1 moves ~K/(N+1) keys, all onto the newcomer."""
        ks = keys(10_000)
        ring = HashRing(["r0", "r1", "r2"], seed=3)
        before = {k: ring.lookup(k) for k in ks}
        ring.add("r3")
        moved = [k for k in ks if ring.lookup(k) != before[k]]
        # every moved key lands on the new member, never between old ones
        assert all(ring.lookup(k) == "r3" for k in moved)
        expected = len(ks) / 4
        assert 0.5 * expected < len(moved) < 1.5 * expected

    def test_remove_moves_only_the_leavers_keys(self):
        ks = keys(10_000)
        ring = HashRing(["r0", "r1", "r2", "r3"], seed=3)
        before = {k: ring.lookup(k) for k in ks}
        owned = [k for k in ks if before[k] == "r3"]
        ring.remove("r3")
        moved = [k for k in ks if ring.lookup(k) != before[k]]
        assert sorted(moved) == sorted(owned)

    def test_add_then_remove_restores_mapping(self):
        ks = keys(2_000)
        ring = HashRing(["r0", "r1"], seed=5)
        before = {k: ring.lookup(k) for k in ks}
        ring.add("r2")
        ring.remove("r2")
        assert {k: ring.lookup(k) for k in ks} == before

    def test_seed_changes_placement(self):
        ks = keys(500)
        a = HashRing(["r0", "r1", "r2"], seed=0).assignments(ks)
        b = HashRing(["r0", "r1", "r2"], seed=99).assignments(ks)
        assert a != b
