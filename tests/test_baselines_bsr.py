"""Tests for the cuSPARSE-BSR baseline."""

import numpy as np
import pytest

from repro.baselines import BSRMethod, CANDIDATE_BLOCKS
from repro.formats import CSRMatrix
from repro.gpu import A100
from tests.conftest import random_csr


class TestBestOfThree:
    def test_tries_all_candidates(self, rng):
        plan = BSRMethod().prepare(random_csr(40, 40, rng))
        assert set(plan.tried) == set(CANDIDATE_BLOCKS)

    def test_picks_minimum_time(self, rng):
        plan = BSRMethod().prepare(random_csr(40, 40, rng))
        best_time = min(plan.tried.values())
        assert plan.tried[plan.bsr.blocksize] == best_time

    def test_blocked_matrix_prefers_larger_blocks(self, rng):
        """A truly 8x8-blocked matrix should not pick 2x2."""
        dense = np.zeros((64, 64))
        blocks = rng.integers(0, 2, (8, 8)).astype(bool)
        for i, j in zip(*np.nonzero(blocks)):
            dense[i * 8:(i + 1) * 8, j * 8:(j + 1) * 8] = rng.standard_normal((8, 8))
        plan = BSRMethod().prepare(CSRMatrix.from_dense(dense))
        assert plan.fill_ratio < 1.3

    def test_scattered_matrix_high_fill(self, rng):
        csr = random_csr(64, 4096, rng,
                         row_len_sampler=lambda r, m: np.full(m, 4))
        plan = BSRMethod().prepare(csr)
        assert plan.fill_ratio > 2.0


class TestKernel:
    def test_matches_reference(self, profiled_matrix, rng):
        method = BSRMethod()
        x = rng.standard_normal(profiled_matrix.shape[1])
        y = method.run(method.prepare(profiled_matrix), x)
        assert np.allclose(y, profiled_matrix.matvec(x), rtol=1e-11)

    def test_no_fp16(self):
        assert not BSRMethod().supports(np.float16)

    def test_empty(self):
        method = BSRMethod()
        y = method.run(method.prepare(CSRMatrix.empty((4, 4))), np.ones(4))
        assert np.array_equal(y, np.zeros(4))


class TestEvents:
    def test_fill_in_multiplies_traffic(self, rng):
        """The lp_osa_60 story: scattered wide rows pay fill-in in both
        bytes and flops."""
        scattered = random_csr(64, 4096, rng,
                               row_len_sampler=lambda r, m: np.full(m, 8))
        method = BSRMethod()
        plan = method.prepare(scattered)
        ev = method.events(plan, A100)
        assert ev.bytes_val >= plan.fill_ratio * scattered.nnz * 8 * 0.99
        assert ev.flops_cuda >= 2.0 * scattered.nnz * plan.fill_ratio * 0.99

    def test_preprocess_covers_all_candidates(self, rng):
        method = BSRMethod()
        plan = method.prepare(random_csr(30, 30, rng))
        pe = method.preprocess_events(plan)
        assert pe.kernel_launches == 10 * len(CANDIDATE_BLOCKS)
        assert pe.device_bytes > 0 and pe.host_bytes > 0
