"""Tests for the BSR format (cuSPARSE-BSR substrate)."""

import numpy as np
import pytest

from repro.formats import BSRMatrix, CSRMatrix
from tests.conftest import random_csr


class TestConversion:
    @pytest.mark.parametrize("bs", [(2, 2), (4, 4), (8, 8), (2, 4), (3, 5)])
    def test_roundtrip(self, rng, bs):
        csr = random_csr(37, 41, rng)
        bsr = BSRMatrix.from_csr(csr, bs)
        assert np.allclose(bsr.to_csr().to_dense(), csr.to_dense())

    def test_non_divisible_shape_edge_blocks(self, rng):
        csr = random_csr(10, 10, rng)
        bsr = BSRMatrix.from_csr(csr, (4, 4))
        assert bsr.indptr.size == 3 + 1  # ceil(10/4)=3 block rows
        assert np.allclose(bsr.to_csr().to_dense(), csr.to_dense())

    def test_identity_blocks(self):
        csr = CSRMatrix.from_dense(np.eye(8))
        bsr = BSRMatrix.from_csr(csr, (4, 4))
        assert bsr.nblocks == 2  # two diagonal blocks only
        assert bsr.fill_ratio(csr.nnz) == pytest.approx(4.0)

    def test_dense_matrix_fill_ratio_one(self, rng):
        d = rng.standard_normal((8, 8))
        bsr = BSRMatrix.from_csr(CSRMatrix.from_dense(d), (4, 4))
        assert bsr.fill_ratio(64) == pytest.approx(1.0)

    def test_empty_matrix(self):
        bsr = BSRMatrix.from_csr(CSRMatrix.empty((6, 6)), (2, 2))
        assert bsr.nblocks == 0
        assert bsr.fill_ratio(0) == 1.0

    def test_scattered_fill_explodes(self, rng):
        """One nonzero per 8x8 block -> fill ratio 64 (the lp_osa_60
        disaster the paper measures as 283.92x slowdown)."""
        rows = np.arange(0, 64, 8)
        cols = np.arange(0, 64, 8)
        csr = CSRMatrix.from_dense(
            np.eye(64)[rows][:, cols].T @ np.eye(8))  # placeholder
        d = np.zeros((64, 64))
        d[rows, cols] = 1.0
        bsr = BSRMatrix.from_csr(CSRMatrix.from_dense(d), (8, 8))
        assert bsr.fill_ratio(8) == pytest.approx(64.0)


class TestMatvec:
    @pytest.mark.parametrize("bs", [(2, 2), (4, 4), (8, 8)])
    def test_matches_reference(self, rng, bs):
        csr = random_csr(50, 60, rng)
        x = rng.standard_normal(60)
        bsr = BSRMatrix.from_csr(csr, bs)
        assert np.allclose(bsr.matvec(x), csr.matvec(x))

    def test_edge_padding_does_not_leak(self, rng):
        """x values beyond n must never be read (zero-padded gather)."""
        csr = random_csr(9, 9, rng)
        bsr = BSRMatrix.from_csr(csr, (4, 4))
        x = rng.standard_normal(9)
        assert np.allclose(bsr.matvec(x), csr.matvec(x))

    def test_empty(self):
        bsr = BSRMatrix.from_csr(CSRMatrix.empty((4, 4)), (2, 2))
        assert np.array_equal(bsr.matvec(np.ones(4)), np.zeros(4))


class TestAccounting:
    def test_stored_values(self, rng):
        csr = random_csr(16, 16, rng)
        bsr = BSRMatrix.from_csr(csr, (4, 4))
        assert bsr.stored_values == bsr.nblocks * 16

    def test_nbytes_positive(self, rng):
        csr = random_csr(16, 16, rng)
        assert BSRMatrix.from_csr(csr, (2, 2)).nbytes > 0
