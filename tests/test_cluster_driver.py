"""Virtual-time cluster driver tests (repro.cluster.driver)."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ElasticConfig,
    HealthConfig,
    run_cluster_workload,
)
from repro.matrices import synthetic_collection
from repro.obs import Obs, Tracer
from repro.serve import WorkloadConfig, run_workload


def entries(n=4, seed=5):
    return synthetic_collection(n, seed=seed)


def cluster_cfg(**overrides) -> ClusterConfig:
    base = dict(n_requests=1500, seed=11, entries=entries(),
                n_replicas=2)
    base.update(overrides)
    return ClusterConfig(**base)


class TestSingleReplicaParity:
    def test_bit_identical_to_run_workload(self):
        """The N=1 cluster IS the single-replica driver: every stat,
        including the full latency list, matches bit for bit."""
        kw = dict(n_requests=1500, seed=11, entries=entries())
        single = run_workload(WorkloadConfig(**kw))
        cluster = run_cluster_workload(ClusterConfig(n_replicas=1, **kw))
        (replica,) = cluster.replicas.values()
        for attr in ("n_requests", "n_completed", "n_rejected", "n_failed",
                     "n_deadline_exceeded", "n_batches", "cache_hits",
                     "cache_misses", "device_busy_s", "preprocess_s",
                     "duration_s", "useful_mma_flops", "issued_mma_flops"):
            assert getattr(single, attr) == getattr(replica, attr), attr
        assert single.latencies_s == replica.latencies_s

    def test_parity_with_chaos_and_deadline(self):
        from repro.serve import ChaosConfig

        kw = dict(n_requests=1000, seed=3, entries=entries(),
                  deadline_s=0.005, chaos=ChaosConfig(fault_rate=0.08))
        single = run_workload(WorkloadConfig(**kw))
        cluster = run_cluster_workload(ClusterConfig(n_replicas=1, **kw))
        (replica,) = cluster.replicas.values()
        assert single.n_completed == replica.n_completed
        assert single.n_failed == replica.n_failed
        assert single.retries == replica.retries
        assert single.latencies_s == replica.latencies_s


class TestDeterminism:
    def test_same_config_same_stats(self):
        a = run_cluster_workload(cluster_cfg(n_replicas=3))
        b = run_cluster_workload(cluster_cfg(n_replicas=3))
        assert a.n_completed == b.n_completed
        assert a.routed == b.routed
        assert a.n_failover == b.n_failover
        assert a.duration_s == b.duration_s
        assert a.latency_percentiles() == b.latency_percentiles()

    def test_all_requests_accounted(self):
        stats = run_cluster_workload(cluster_cfg(n_replicas=3))
        cfg_requests = 1500
        assert stats.n_requests == cfg_requests
        assert (stats.n_completed + stats.n_rejected + stats.n_failed
                + stats.n_deadline_exceeded) >= stats.n_completed
        assert stats.n_completed > 0
        assert sum(stats.routed.values()) == cfg_requests


class TestPlacement:
    def test_traffic_spreads_across_replicas(self):
        stats = run_cluster_workload(cluster_cfg(
            n_replicas=4, n_requests=3000, entries=entries(8)))
        served = [rid for rid, n in stats.routed.items() if n > 0]
        assert len(served) >= 3  # Zipf skew may starve one replica

    def test_ring_seed_changes_placement(self):
        a = run_cluster_workload(cluster_cfg(ring_seed=0))
        b = run_cluster_workload(cluster_cfg(ring_seed=9))
        assert a.routed != b.routed


class TestFailover:
    def test_fault_injected_replica_loses_traffic(self):
        """With one replica erroring on every kernel, health marks it
        down and the ring reroutes — nothing is lost."""
        bad = run_cluster_workload(cluster_cfg(
            n_replicas=3, n_requests=4000, fail_replica=2,
            deadline_s=0.02))
        good = run_cluster_workload(cluster_cfg(
            n_replicas=3, n_requests=4000, deadline_s=0.02))
        assert bad.n_failover > 0
        assert bad.n_transitions_down >= 1
        # the sick replica serves (strictly) less than its fair share
        assert bad.routed["r2"] < good.routed["r2"]
        # no lost futures: offered = completed + explicit failures
        assert (bad.n_completed + bad.n_rejected + bad.n_failed
                + bad.n_deadline_exceeded) == bad.n_requests
        # rerouted traffic still completes within deadline
        assert bad.in_deadline_fraction > 0.95

    def test_fail_replica_must_be_in_range(self):
        with pytest.raises(Exception):
            run_cluster_workload(cluster_cfg(n_replicas=2, fail_replica=5))


class TestElastic:
    def test_scales_up_under_burst_and_back_down(self):
        stats = run_cluster_workload(cluster_cfg(
            n_replicas=1, n_requests=8000, entries=entries(6),
            elastic=ElasticConfig(max_replicas=6)))
        assert stats.n_scale_up >= 1
        assert stats.n_moved_fingerprints >= 1
        assert stats.n_completed == stats.n_requests
        # spawned replicas actually served traffic
        assert sum(1 for n in stats.routed.values() if n > 0) >= 2

    def test_respects_max_replicas(self):
        stats = run_cluster_workload(cluster_cfg(
            n_replicas=1, n_requests=6000,
            elastic=ElasticConfig(max_replicas=2)))
        assert stats.n_replicas <= 2

    def test_validation(self):
        with pytest.raises(Exception):
            ElasticConfig(min_replicas=0)
        with pytest.raises(Exception):
            ElasticConfig(scale_up_depth=1.0, scale_down_depth=2.0)


class TestObservability:
    def test_shared_tracer_attributes_per_replica(self):
        obs = Obs(tracer=Tracer())
        stats = run_cluster_workload(cluster_cfg(n_replicas=2), obs=obs)
        by_replica = obs.tracer.device_time_by_attr("replica")
        assert set(by_replica) <= {"r0", "r1"}
        assert len(by_replica) >= 2
        for rid, sec in by_replica.items():
            assert sec > 0.0
        # phase attribution covers the cluster's device time exactly
        total = stats.device_busy_s + sum(
            s.preprocess_s for s in stats.replicas.values())
        att = obs.tracer.attribution(total)
        assert att["coverage"] == pytest.approx(1.0, rel=1e-9)

    def test_summary_table_renders(self):
        stats = run_cluster_workload(cluster_cfg())
        table = stats.summary_table()
        assert "replicas" in table and "failovers" in table

    def test_health_snapshot_in_stats(self):
        stats = run_cluster_workload(cluster_cfg(
            n_replicas=2, fail_replica=1, n_requests=3000,
            deadline_s=0.02))
        assert "r1" in stats.health
        assert stats.n_probes > 0


class TestWarmStart:
    def test_ring_scoped_warm_start(self, tmp_path):
        """Each replica preloads only its ring-assigned fingerprints
        from the shared store; first-touch rebuilds disappear."""
        store_dir = tmp_path / "plans"
        cold = run_cluster_workload(cluster_cfg(
            n_replicas=2, store=store_dir))
        warm = run_cluster_workload(cluster_cfg(
            n_replicas=2, store=store_dir, warm_start=True))
        cold_loads = sum(s.store_loads for s in cold.replicas.values())
        warm_loads = sum(s.store_loads for s in warm.replicas.values())
        assert warm_loads >= cold_loads
        assert warm.n_completed == warm.n_requests
        # warm replicas preprocess strictly less than cold ones
        warm_pre = sum(s.preprocess_s for s in warm.replicas.values())
        cold_pre = sum(s.preprocess_s for s in cold.replicas.values())
        assert warm_pre < cold_pre


def merged_latencies(stats):
    return [lat for rid in sorted(stats.replicas)
            for lat in stats.replicas[rid].latencies_s]


class TestChaosScenarios:
    def test_slow_replica_is_deterministic(self):
        cfg = dict(n_replicas=4, slow_replica=1, deadline_s=0.004)
        a = run_cluster_workload(cluster_cfg(**cfg))
        b = run_cluster_workload(cluster_cfg(**cfg))
        assert merged_latencies(a) == merged_latencies(b)
        assert a.routed == b.routed

    def test_slow_replica_inflates_its_latency(self):
        base = run_cluster_workload(cluster_cfg(n_replicas=4))
        slow = run_cluster_workload(cluster_cfg(n_replicas=4,
                                                slow_replica=1,
                                                slow_factor=8.0))
        # same placement, so compare the slowed replica against itself
        assert np.mean(slow.replicas["r1"].latencies_s) > \
            2.0 * np.mean(base.replicas["r1"].latencies_s)

    def test_straggler_demotion_soft_drains(self):
        """With straggler_factor set, the slow-but-alive replica loses
        most of its traffic without ever being marked down.  Uses the
        representative-suite pool: its modeled times are large enough
        that device slowness, not queueing noise, drives the EWMA."""
        base = dict(n_requests=1500, n_replicas=4, seed=3,
                    deadline_s=0.004, slow_replica=1)
        plain = run_cluster_workload(ClusterConfig(**base))
        demoted = run_cluster_workload(ClusterConfig(
            **base, health=HealthConfig(straggler_factor=2.0)))
        assert demoted.routed["r1"] < plain.routed["r1"] / 2
        assert demoted.health["r1"]["straggler"]
        assert demoted.health["r1"]["healthy"]

    def test_partition_drops_link_then_recovers(self):
        cfg = cluster_cfg(n_requests=3000, n_replicas=4,
                          partition_replica=0, deadline_s=0.004)
        stats = run_cluster_workload(cfg)
        # health saw the partition and the recovery
        assert stats.n_transitions_down >= 1
        assert stats.n_transitions_up >= 1
        assert stats.n_failover > 0
        # logical accounting holds: nothing silently vanished
        assert stats.overload_enabled
        assert stats.lost_requests == 0
        again = run_cluster_workload(cfg)
        assert merged_latencies(stats) == merged_latencies(again)

    def test_chaos_knobs_validated(self):
        with pytest.raises(Exception):
            run_cluster_workload(cluster_cfg(slow_replica=9))
        with pytest.raises(Exception):
            run_cluster_workload(cluster_cfg(partition_replica=-1))
        with pytest.raises(Exception):
            run_cluster_workload(cluster_cfg(
                partition_replica=0, partition_window=(0.8, 0.2)))


class TestOverloadIntegration:
    def test_disabled_features_keep_bit_parity(self):
        """An OverloadConfig with every mechanism off must not change a
        single latency vs no config at all (RNG-stream parity)."""
        from repro.overload import OverloadConfig

        plain = run_cluster_workload(cluster_cfg(n_replicas=3))
        noop = run_cluster_workload(cluster_cfg(
            n_replicas=3, overload=OverloadConfig()))
        assert merged_latencies(plain) == merged_latencies(noop)
        assert plain.n_completed == noop.n_completed

    def test_hedging_accounts_every_request(self):
        from repro.overload import HedgeConfig, OverloadConfig

        stats = run_cluster_workload(cluster_cfg(
            n_requests=2000, n_replicas=4, slow_replica=1,
            deadline_s=0.004,
            overload=OverloadConfig(hedge=HedgeConfig())))
        assert stats.overload_enabled
        assert stats.n_offered == 2000
        assert stats.lost_requests == 0
        assert stats.n_hedges_won <= stats.n_hedges_issued
        # every resolved pair burns exactly one loser (either side)
        assert stats.n_hedges_wasted <= 2 * stats.n_hedges_issued
        assert stats.n_hedges_issued > 0

    def test_admission_sheds_batch_first(self):
        from repro.overload import AdmissionConfig, OverloadConfig

        stats = run_cluster_workload(cluster_cfg(
            n_requests=2000, n_replicas=2, deadline_s=0.004,
            overload=OverloadConfig(
                admission=AdmissionConfig(rate_rps=1e5, burst=16.0),
                batch_fraction=0.4)))
        assert stats.n_shed > 0
        assert stats.lost_requests == 0
        p = stats.priorities
        shed_rate = {k: p[k]["shed"] / p[k]["offered"] for k in p}
        assert shed_rate["batch"] > shed_rate["interactive"]

    def test_retry_budget_bounds_cluster_retries(self):
        from repro.overload import OverloadConfig, RetryBudgetConfig
        from repro.serve import ChaosConfig

        rb = RetryBudgetConfig(ratio=0.1, initial=5.0, cap=50.0)
        stats = run_cluster_workload(cluster_cfg(
            n_requests=2000, n_replicas=2, deadline_s=0.004,
            chaos=ChaosConfig(fault_rate=0.2, seed=7),
            overload=OverloadConfig(retry_budget=rb)))
        assert stats.retry_budget_granted <= \
            rb.initial + rb.ratio * stats.n_offered
        assert stats.n_retries <= stats.retry_budget_granted
        assert stats.lost_requests == 0

    def test_overload_summary_table_renders(self):
        from repro.overload import HedgeConfig, OverloadConfig

        stats = run_cluster_workload(cluster_cfg(
            n_replicas=3, slow_replica=0, deadline_s=0.004,
            overload=OverloadConfig(hedge=HedgeConfig())))
        table = stats.summary_table()
        assert "hedges issued / won / wasted" in table
        assert "lost requests" in table
